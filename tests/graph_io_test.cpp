#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace domset::graph {
namespace {

TEST(GraphIo, RoundTripSmall) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const graph g = std::move(b).build();

  std::stringstream s;
  write_edge_list(g, s);
  const graph h = read_edge_list(s);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(1, 3));
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(GraphIo, RoundTripRandom) {
  common::rng gen(3);
  const graph g = gnp_random(60, 0.1, gen);
  std::stringstream s;
  write_edge_list(g, s);
  const graph h = read_edge_list(s);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, IgnoresComments) {
  std::stringstream s("# a comment\n3 1\n# another\n0 2\n");
  const graph g = read_edge_list(s);
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream s("0 0\n");
  const graph g = read_edge_list(s);
  EXPECT_EQ(g.node_count(), 0U);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream s("");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdges) {
  std::stringstream s("4 3\n0 1\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream s("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream s("3 1\n1 1\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsMalformedEdgeLine) {
  std::stringstream s("3 1\nnot numbers\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

/// Collects the parser's message for malformed `text`.
std::string parse_error(std::string_view text, std::size_t threads = 1) {
  try {
    (void)parse_edge_list(text, {.threads = threads});
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(GraphIo, ErrorsCarryOneBasedLineNumbers) {
  // Comments and blank lines count toward the physical line number.
  EXPECT_NE(parse_error("3 1\nnot numbers\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(parse_error("# c\n3 2\n0 1\n\nbad line\n").find("line 5"),
            std::string::npos);
  EXPECT_NE(parse_error("3 2\n0 1\n1 1\n").find("line 3"), std::string::npos);
  EXPECT_NE(parse_error("3 2\n0 1\n0 7\n").find("line 3"), std::string::npos);
  EXPECT_NE(parse_error("bad header\n").find("line 1"), std::string::npos);
  // An edge beyond the declared count names the first overlong line.
  const std::string overlong = parse_error("3 1\n0 1\n1 2\n");
  EXPECT_NE(overlong.find("line 3"), std::string::npos);
  EXPECT_NE(overlong.find("declared count"), std::string::npos);
}

TEST(GraphIo, RejectsDuplicateEdges) {
  const std::string repeated = parse_error("3 2\n0 1\n0 1\n");
  EXPECT_NE(repeated.find("duplicate edge"), std::string::npos);
  EXPECT_NE(repeated.find("line 3"), std::string::npos);
  // The reversed spelling is the same undirected edge.
  EXPECT_NE(parse_error("3 2\n0 1\n1 0\n").find("duplicate edge"),
            std::string::npos);
}

TEST(GraphIo, AcceptsSnapStyleCommentHeader) {
  const graph g =
      parse_edge_list("# made by somebody\n# Nodes: 4 Edges: 2\n0 1\n2 3\n");
  EXPECT_EQ(g.node_count(), 4U);
  EXPECT_EQ(g.edge_count(), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  // Counts but no data lines: fine iff Edges: 0.
  EXPECT_EQ(parse_edge_list("# Nodes: 3 Edges: 0\n").node_count(), 3U);
  EXPECT_THROW((void)parse_edge_list("# Nodes: 3 Edges: 1\n"),
               std::runtime_error);
}

TEST(GraphIo, ToleratesCrlfTabsAndPercentComments) {
  const graph g =
      parse_edge_list("% matrix-market style comment\r\n3  2\r\n0\t1\r\n"
                      "  1 \t 2  \r\n");
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, RejectsTrailingGarbageOnEdgeLines) {
  EXPECT_NE(parse_error("3 1\n0 1 junk\n").find("line 2"), std::string::npos);
  EXPECT_NE(parse_error("3 1\n0 1 2\n").find("trailing"), std::string::npos);
}

/// The determinism contract: the chunk-parallel parse is bit-identical
/// to the serial one for every worker count, on shapes with short lines
/// (star), heavy tails (ba), and random structure (gnp).
TEST(GraphIo, ParallelParseIsBitIdenticalToSerial) {
  common::rng gen(17);
  const graph shapes[] = {gnp_random(400, 0.05, gen), star_graph(500),
                          barabasi_albert(300, 4, gen)};
  for (const graph& g : shapes) {
    std::stringstream s;
    write_edge_list(g, s);
    const std::string text = s.str();
    const graph serial = parse_edge_list(text, {.threads = 1});
    for (const std::size_t threads : {2UL, 8UL}) {
      const graph parallel = parse_edge_list(text, {.threads = threads});
      ASSERT_EQ(parallel.node_count(), serial.node_count());
      ASSERT_EQ(parallel.edge_count(), serial.edge_count());
      for (node_id v = 0; v < serial.node_count(); ++v) {
        const auto a = serial.neighbors(v);
        const auto b = parallel.neighbors(v);
        ASSERT_EQ(a.size(), b.size()) << "threads=" << threads << " v=" << v;
        for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
      }
    }
  }
}

/// Errors (and their line numbers) must not depend on the worker count
/// either -- the earliest error in document order wins even when a later
/// chunk fails first in wall-clock.
TEST(GraphIo, ParallelParseReportsTheSameErrorAsSerial) {
  std::string text = "600 600\n";
  for (int i = 0; i < 300; ++i)
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  text += "5 5\n";  // line 302: self-loop
  for (int i = 300; i < 599; ++i)
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  const std::string serial = parse_error(text, 1);
  ASSERT_NE(serial.find("line 302"), std::string::npos) << serial;
  for (const std::size_t threads : {2UL, 8UL})
    EXPECT_EQ(parse_error(text, threads), serial) << "threads=" << threads;
}

// ---- the `file` graph family: graph/io behind `domset run --graph file`

/// Round trip a generated graph through write_edge_list into the API
/// layer's "file" family (the path `domset run/bench --graph file` take)
/// and prove a registry solve on the loaded graph is bit-identical to one
/// on the original.
TEST(GraphIoFileFamily, WriteReadRoundTripThroughTheRegistry) {
  common::rng gen(11);
  const graph g = gnp_random(80, 0.08, gen);
  const std::string path = testing::TempDir() + "roundtrip.edges";
  {
    std::ofstream out(path);
    write_edge_list(g, out);
  }

  api::param_map params;
  params.set("path", path);
  // n and seed are ignored by the file family; pass junk to prove it.
  const graph h = api::make_graph("file", 0, 999, params);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }

  domset::exec::context exec;
  exec.seed = 4;
  const api::solver& lrg = api::solver_registry::instance().find("lrg");
  EXPECT_EQ(api::solution_digest(lrg.solve(g, exec)),
            api::solution_digest(lrg.solve(h, exec)));
}

TEST(GraphIoFileFamily, MissingPathParamIsRequired) {
  try {
    (void)api::make_graph("file", 100, 1);
    FAIL() << "file family without a path must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'path'"), std::string::npos);
  }
}

TEST(GraphIoFileFamily, UnreadableFileNamesThePath) {
  api::param_map params;
  params.set("path", "/no/such/file.edges");
  try {
    (void)api::make_graph("file", 100, 1, params);
    FAIL() << "unreadable file must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/file.edges"),
              std::string::npos);
  }
}

TEST(GraphIoFileFamily, MalformedContentNamesThePath) {
  const std::string path = testing::TempDir() + "malformed.edges";
  std::ofstream(path) << "4 2\n0 1\n";  // truncated: promises 2 edges
  api::param_map params;
  params.set("path", path);
  try {
    (void)api::make_graph("file", 100, 1, params);
    FAIL() << "malformed file must throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path), std::string::npos);
    // ...and keeps read_edge_list's description of what is wrong.
    EXPECT_NE(message.find("edge"), std::string::npos);
  }
}

}  // namespace
}  // namespace domset::graph
