#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace domset::graph {
namespace {

TEST(GraphIo, RoundTripSmall) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const graph g = std::move(b).build();

  std::stringstream s;
  write_edge_list(g, s);
  const graph h = read_edge_list(s);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(1, 3));
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(GraphIo, RoundTripRandom) {
  common::rng gen(3);
  const graph g = gnp_random(60, 0.1, gen);
  std::stringstream s;
  write_edge_list(g, s);
  const graph h = read_edge_list(s);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, IgnoresComments) {
  std::stringstream s("# a comment\n3 1\n# another\n0 2\n");
  const graph g = read_edge_list(s);
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream s("0 0\n");
  const graph g = read_edge_list(s);
  EXPECT_EQ(g.node_count(), 0U);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream s("");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdges) {
  std::stringstream s("4 3\n0 1\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream s("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream s("3 1\n1 1\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsMalformedEdgeLine) {
  std::stringstream s("3 1\nnot numbers\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

// ---- the `file` graph family: graph/io behind `domset run --graph file`

/// Round trip a generated graph through write_edge_list into the API
/// layer's "file" family (the path `domset run/bench --graph file` take)
/// and prove a registry solve on the loaded graph is bit-identical to one
/// on the original.
TEST(GraphIoFileFamily, WriteReadRoundTripThroughTheRegistry) {
  common::rng gen(11);
  const graph g = gnp_random(80, 0.08, gen);
  const std::string path = testing::TempDir() + "roundtrip.edges";
  {
    std::ofstream out(path);
    write_edge_list(g, out);
  }

  api::param_map params;
  params.set("path", path);
  // n and seed are ignored by the file family; pass junk to prove it.
  const graph h = api::make_graph("file", 0, 999, params);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }

  domset::exec::context exec;
  exec.seed = 4;
  const api::solver& lrg = api::solver_registry::instance().find("lrg");
  EXPECT_EQ(api::solution_digest(lrg.solve(g, exec)),
            api::solution_digest(lrg.solve(h, exec)));
}

TEST(GraphIoFileFamily, MissingPathParamIsRequired) {
  try {
    (void)api::make_graph("file", 100, 1);
    FAIL() << "file family without a path must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'path'"), std::string::npos);
  }
}

TEST(GraphIoFileFamily, UnreadableFileNamesThePath) {
  api::param_map params;
  params.set("path", "/no/such/file.edges");
  try {
    (void)api::make_graph("file", 100, 1, params);
    FAIL() << "unreadable file must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/file.edges"),
              std::string::npos);
  }
}

TEST(GraphIoFileFamily, MalformedContentNamesThePath) {
  const std::string path = testing::TempDir() + "malformed.edges";
  std::ofstream(path) << "4 2\n0 1\n";  // truncated: promises 2 edges
  api::param_map params;
  params.set("path", path);
  try {
    (void)api::make_graph("file", 100, 1, params);
    FAIL() << "malformed file must throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path), std::string::npos);
    // ...and keeps read_edge_list's description of what is wrong.
    EXPECT_NE(message.find("edge"), std::string::npos);
  }
}

}  // namespace
}  // namespace domset::graph
