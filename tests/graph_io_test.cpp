#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace domset::graph {
namespace {

TEST(GraphIo, RoundTripSmall) {
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const graph g = std::move(b).build();

  std::stringstream s;
  write_edge_list(g, s);
  const graph h = read_edge_list(s);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(1, 3));
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(GraphIo, RoundTripRandom) {
  common::rng gen(3);
  const graph g = gnp_random(60, 0.1, gen);
  std::stringstream s;
  write_edge_list(g, s);
  const graph h = read_edge_list(s);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, IgnoresComments) {
  std::stringstream s("# a comment\n3 1\n# another\n0 2\n");
  const graph g = read_edge_list(s);
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream s("0 0\n");
  const graph g = read_edge_list(s);
  EXPECT_EQ(g.node_count(), 0U);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream s("");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdges) {
  std::stringstream s("4 3\n0 1\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream s("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream s("3 1\n1 1\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

TEST(GraphIo, RejectsMalformedEdgeLine) {
  std::stringstream s("3 1\nnot numbers\n");
  EXPECT_THROW(read_edge_list(s), std::runtime_error);
}

}  // namespace
}  // namespace domset::graph
