// The .dcsr binary container (graph/csr_file.hpp): round-trip identity
// for both encodings, rejection of every corrupted-header shape, and the
// end-to-end contract that a solver run on an mmap-loaded graph is
// bit-identical to one on the text-parsed original.
#include "graph/csr_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "common/rng.hpp"
#include "exec/context.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace domset::graph {
namespace {

graph sample_graph(std::uint64_t seed = 5) {
  common::rng gen(seed);
  return gnp_random(200, 0.06, gen);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

void expect_same_graph(const graph& a, const graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(a.max_degree(), b.max_degree());
  for (node_id v = 0; v < a.node_count(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "v=" << v;
    for (std::size_t i = 0; i < na.size(); ++i) ASSERT_EQ(na[i], nb[i]);
  }
}

/// Loads the file, patches bytes [at, at+patch.size()), writes it back.
void corrupt_file(const std::string& path, std::size_t at,
                  const std::vector<unsigned char>& patch) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(at));
  f.write(reinterpret_cast<const char*>(patch.data()),
          static_cast<std::streamsize>(patch.size()));
  ASSERT_TRUE(f.good());
}

std::string load_error(const std::string& path) {
  try {
    (void)load_csr(path);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(CsrFile, RawRoundTripIsIdenticalAndMapped) {
  const graph g = sample_graph();
  const std::string path = temp_path("raw.dcsr");
  const csr_file_info written = write_csr(g, path, /*compress=*/false);
  EXPECT_EQ(written.nodes, g.node_count());
  EXPECT_EQ(written.edges, g.edge_count());
  EXPECT_FALSE(written.compressed);
  EXPECT_EQ(written.digest, graph_digest(g));

  csr_file_info loaded_info;
  const graph h = load_csr(path, &loaded_info);
  expect_same_graph(g, h);
  EXPECT_EQ(loaded_info.digest, written.digest);
  EXPECT_FALSE(loaded_info.compressed);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(loaded_info.mapped);
#endif
  EXPECT_EQ(graph_digest(h), graph_digest(g));
}

TEST(CsrFile, CompressedRoundTripIsIdentical) {
  const graph g = sample_graph(9);
  const std::string raw_path = temp_path("z_raw.dcsr");
  const std::string z_path = temp_path("z.dcsr");
  const csr_file_info raw = write_csr(g, raw_path, /*compress=*/false);
  const csr_file_info z = write_csr(g, z_path, /*compress=*/true);
  EXPECT_TRUE(z.compressed);
  // Same logical content => same digest, fewer bytes on disk.
  EXPECT_EQ(z.digest, raw.digest);
  EXPECT_LT(z.bytes, raw.bytes);

  csr_file_info info;
  const graph h = load_csr(z_path, &info);
  EXPECT_TRUE(info.compressed);
  EXPECT_FALSE(info.mapped);  // compressed containers decode to the heap
  expect_same_graph(g, h);
}

TEST(CsrFile, EmptyAndEdgelessGraphsRoundTrip) {
  graph_builder lonely(3);  // nodes without edges
  const graph graphs[] = {graph{}, std::move(lonely).build()};
  for (const graph& g : graphs) {
    for (const bool compress : {false, true}) {
      const std::string path = temp_path("tiny.dcsr");
      write_csr(g, path, compress);
      const graph h = load_csr(path);
      expect_same_graph(g, h);
    }
  }
}

TEST(CsrFile, IsCsrFileSniffsTheMagic) {
  const std::string bin = temp_path("sniff.dcsr");
  write_csr(sample_graph(), bin);
  EXPECT_TRUE(is_csr_file(bin));

  const std::string text = temp_path("sniff.txt");
  std::ofstream(text) << "2 1\n0 1\n";
  EXPECT_FALSE(is_csr_file(text));
  EXPECT_FALSE(is_csr_file(temp_path("does_not_exist.dcsr")));
}

TEST(CsrFile, RejectsCorruptMagic) {
  const std::string path = temp_path("badmagic.dcsr");
  write_csr(sample_graph(), path);
  corrupt_file(path, 0, {'X'});
  const std::string message = load_error(path);
  EXPECT_NE(message.find("magic"), std::string::npos) << message;
  EXPECT_NE(message.find(path), std::string::npos);
}

TEST(CsrFile, RejectsUnsupportedVersion) {
  const std::string path = temp_path("badversion.dcsr");
  write_csr(sample_graph(), path);
  corrupt_file(path, 8, {0x63});
  EXPECT_NE(load_error(path).find("version"), std::string::npos);
}

TEST(CsrFile, RejectsWrongEndianness) {
  const std::string path = temp_path("badendian.dcsr");
  write_csr(sample_graph(), path);
  // Little-endian stores the 0x01020304 tag as bytes 04 03 02 01; a
  // byte-swapped writer would lay down 01 02 03 04 instead.
  corrupt_file(path, 12, {0x01, 0x02, 0x03, 0x04});
  EXPECT_NE(load_error(path).find("endian"), std::string::npos);
}

TEST(CsrFile, RejectsTruncatedFile) {
  const std::string path = temp_path("trunc.dcsr");
  const csr_file_info info = write_csr(sample_graph(), path);
  std::filesystem::resize_file(path, info.bytes - 16);
  EXPECT_NE(load_error(path).find("truncated"), std::string::npos);
  // Shorter than the header itself is its own message.
  std::filesystem::resize_file(path, 10);
  EXPECT_NE(load_error(path).find("header"), std::string::npos);
}

TEST(CsrFile, RejectsPayloadDigestMismatch) {
  for (const bool compress : {false, true}) {
    const std::string path = temp_path("digest.dcsr");
    write_csr(sample_graph(), path, compress);
    // Flip one byte in the stored digest; the payload no longer matches.
    corrupt_file(path, 48, {0x5A});
    EXPECT_NE(load_error(path).find("digest mismatch"), std::string::npos)
        << "compress=" << compress;
  }
}

TEST(CsrFile, RejectsCorruptCompressedStream) {
  const graph g = sample_graph(21);
  const std::string path = temp_path("zcorrupt.dcsr");
  write_csr(g, path, /*compress=*/true);
  // Set every continuation bit in the first adjacency bytes: the varint
  // either overruns the stream or overflows 32 bits -- both must be
  // caught before the digest is even checked.
  const std::size_t adjacency_at = 64 + 8 * (g.node_count() + 1);
  corrupt_file(path, adjacency_at,
               {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_FALSE(load_error(path).empty());
}

TEST(CsrFile, GraphDigestIsFormatIndependent) {
  const graph g = sample_graph(33);

  // Text round trip.
  const std::string text_path = temp_path("fmt.txt");
  {
    std::ofstream out(text_path);
    write_edge_list(g, out);
  }
  const graph from_text = read_edge_list_file(text_path);

  // Raw and compressed binary round trips.
  const std::string raw_path = temp_path("fmt.dcsr");
  const std::string z_path = temp_path("fmtz.dcsr");
  write_csr(g, raw_path, false);
  write_csr(g, z_path, true);

  const std::uint64_t expected = graph_digest(g);
  EXPECT_EQ(graph_digest(from_text), expected);
  EXPECT_EQ(graph_digest(load_csr(raw_path)), expected);
  EXPECT_EQ(graph_digest(load_csr(z_path)), expected);
  EXPECT_EQ(graph_digest_hex(g).size(), 16U);
}

/// End to end: `domset run --graph file` on the mmap'ed binary must
/// produce the bit-identical solution to the text path (the agreement
/// the real-graph CI job asserts with --expect-identical).
TEST(CsrFile, SolverRunOnMappedGraphMatchesTextPath) {
  const graph g = sample_graph(41);
  const std::string text_path = temp_path("solve.txt");
  const std::string bin_path = temp_path("solve.dcsr");
  {
    std::ofstream out(text_path);
    write_edge_list(g, out);
  }
  write_csr(g, bin_path);

  api::graph_source text_source;
  api::param_map text_params;
  text_params.set("path", text_path);
  const graph from_text =
      api::make_graph("file", 0, 1, text_params, &text_source);
  EXPECT_EQ(text_source.format, "text");

  api::graph_source bin_source;
  api::param_map bin_params;
  bin_params.set("path", bin_path);  // format=auto sniffs the magic
  const graph from_bin = api::make_graph("file", 0, 1, bin_params, &bin_source);
  EXPECT_EQ(bin_source.format, "binary");
  EXPECT_EQ(bin_source.path, bin_path);
  EXPECT_GE(bin_source.load_ms, 0.0);

  expect_same_graph(from_text, from_bin);
  exec::context exec;
  exec.seed = 7;
  const api::solver& pipeline =
      api::solver_registry::instance().find("pipeline");
  EXPECT_EQ(api::solution_digest(pipeline.solve(from_text, exec)),
            api::solution_digest(pipeline.solve(from_bin, exec)));
}

TEST(CsrFile, FileFamilyFormatParamIsValidated) {
  api::param_map params;
  params.set("path", temp_path("whatever.txt"));
  params.set("format", "yaml");
  EXPECT_THROW((void)api::make_graph("file", 0, 1, params),
               std::invalid_argument);
}

TEST(CsrFile, FileFamilyFormatBinaryRejectsTextInput) {
  const std::string path = temp_path("really_text.txt");
  {
    // Longer than the 64-byte .dcsr header, so the rejection is the
    // magic check, not the file-size floor.
    std::ofstream out(path);
    write_edge_list(sample_graph(), out);
  }
  api::param_map params;
  params.set("path", path);
  params.set("format", "binary");
  try {
    (void)api::make_graph("file", 0, 1, params);
    FAIL() << "binary loader on a text file must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

}  // namespace
}  // namespace domset::graph
