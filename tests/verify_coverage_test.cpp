// Degradation reports: hole enumeration, covered fraction, worst-hole
// BFS radius (including the no-member-in-component sentinel), and
// per-fault blame attribution -- all on hand-checkable paths.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "sim/fault.hpp"
#include "verify/coverage.hpp"

namespace domset {
namespace {

TEST(Coverage, FullyCoveredReport) {
  const graph::graph g = graph::path_graph(5);
  const std::vector<std::uint8_t> in_set = {1, 0, 1, 0, 1};
  const verify::coverage_report report = verify::coverage(g, in_set);
  EXPECT_EQ(report.nodes, 5U);
  EXPECT_TRUE(report.fully_covered());
  EXPECT_EQ(report.holes(), 0U);
  EXPECT_DOUBLE_EQ(report.covered_fraction, 1.0);
  EXPECT_EQ(report.max_hole_radius, 0U);
  EXPECT_TRUE(report.attribution.empty());
}

TEST(Coverage, HolesAndWorstRadius) {
  // Only the path's center is a member: the two ends are undominated and
  // each sits 2 BFS hops from the nearest member.
  const graph::graph g = graph::path_graph(5);
  const std::vector<std::uint8_t> in_set = {0, 0, 1, 0, 0};
  const verify::coverage_report report = verify::coverage(g, in_set);
  EXPECT_EQ(report.undominated, (std::vector<graph::node_id>{0, 4}));
  EXPECT_FALSE(report.fully_covered());
  EXPECT_DOUBLE_EQ(report.covered_fraction, 0.6);
  EXPECT_EQ(report.max_hole_radius, 2U);
}

TEST(Coverage, MemberlessComponentSentinel) {
  // No member anywhere: every node is a hole and the radius reports the
  // impossible distance n (no path can be that long).
  const graph::graph g = graph::path_graph(3);
  const std::vector<std::uint8_t> in_set = {0, 0, 0};
  const verify::coverage_report report = verify::coverage(g, in_set);
  EXPECT_EQ(report.holes(), 3U);
  EXPECT_DOUBLE_EQ(report.covered_fraction, 0.0);
  EXPECT_EQ(report.max_hole_radius, 3U);
}

TEST(Coverage, SingleIsolatedNode) {
  const graph::graph g = graph::path_graph(1);
  const std::vector<std::uint8_t> in_set = {0};
  const verify::coverage_report report = verify::coverage(g, in_set);
  EXPECT_EQ(report.holes(), 1U);
  EXPECT_EQ(report.max_hole_radius, 1U);  // sentinel n = 1
}

TEST(Coverage, AttributionChargesBlastRadii) {
  // Holes {0, 4} on the path.  The crash at node 0 sees only hole 0 in
  // its closed neighborhood; the 3-4 link cut sees hole 4 from both
  // endpoints but the estimate is capped at the true hole count; a burst
  // is charged everything; duplication never removes coverage.
  const graph::graph g = graph::path_graph(5);
  const std::vector<std::uint8_t> in_set = {0, 0, 1, 0, 0};
  const sim::fault_plan plan =
      sim::parse_fault_plan("crash=0@0+link=3-4@1+burst@2:p=0.5+dup@3");
  const verify::coverage_report report = verify::coverage(g, in_set, &plan);
  ASSERT_EQ(report.attribution.size(), 4U);
  EXPECT_EQ(report.attribution[0].fault, "crash=0@0");
  EXPECT_EQ(report.attribution[0].holes, 1U);
  EXPECT_EQ(report.attribution[1].fault, "link=3-4@1");
  EXPECT_EQ(report.attribution[1].holes, 2U);
  EXPECT_EQ(report.attribution[2].fault, "burst@2:p=0.5");
  EXPECT_EQ(report.attribution[2].holes, 2U);
  EXPECT_EQ(report.attribution[3].fault, "dup@3");
  EXPECT_EQ(report.attribution[3].holes, 0U);
}

TEST(Coverage, AttributionIgnoresOutOfRangeFaultNodes) {
  // A plan can be swept across graph families; a fault naming a node the
  // current graph does not have is listed with zero blame, not an error.
  const graph::graph g = graph::path_graph(3);
  const std::vector<std::uint8_t> in_set = {0, 0, 0};
  const sim::fault_plan plan = sim::parse_fault_plan("crash=9@0");
  const verify::coverage_report report = verify::coverage(g, in_set, &plan);
  ASSERT_EQ(report.attribution.size(), 1U);
  EXPECT_EQ(report.attribution[0].holes, 0U);
}

}  // namespace
}  // namespace domset
