#include "core/alg3.hpp"

#include <gtest/gtest.h>

#include "core/alg2.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/wide_uint.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"

namespace domset::core {
namespace {

using common::compare_pow;

std::vector<graph::graph> test_graphs() {
  common::rng gen(201);
  std::vector<graph::graph> graphs;
  graphs.push_back(graph::star_graph(20));
  graphs.push_back(graph::cycle_graph(12));
  graphs.push_back(graph::path_graph(10));
  graphs.push_back(graph::grid_graph(4, 4));
  graphs.push_back(graph::complete_graph(8));
  graphs.push_back(graph::gnp_random(25, 0.2, gen));
  graphs.push_back(graph::barabasi_albert(25, 2, gen));
  graphs.push_back(graph::complete_bipartite(4, 9));
  return graphs;
}

TEST(Alg3, ProducesFeasibleLpSolution) {
  for (const auto& g : test_graphs()) {
    for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
      const auto res = approximate_lp(g, {.k = k});
      EXPECT_TRUE(lp::is_primal_feasible(g, res.x))
          << g.summary() << " k=" << k;
    }
  }
}

TEST(Alg3, RoundCountMatchesFormula) {
  for (const auto& g : test_graphs()) {
    for (std::uint32_t k : {1U, 2U, 3U, 5U}) {
      const auto res = approximate_lp(g, {.k = k});
      EXPECT_EQ(res.metrics.rounds, alg3_round_count(k))
          << g.summary() << " k=" << k;
      // 4k^2 + O(k): the constant in O(k) is 2, plus the 2-round prelude.
      EXPECT_EQ(alg3_round_count(k), 4ULL * k * k + 2ULL * k + 2ULL);
    }
  }
}

TEST(Alg3, ObjectiveWithinTheorem5Bound) {
  for (const auto& g : test_graphs()) {
    const auto lp_opt = lp::solve_lp_mds(g);
    ASSERT_TRUE(lp_opt.has_value());
    for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
      const auto res = approximate_lp(g, {.k = k});
      EXPECT_LE(res.objective, res.ratio_bound * lp_opt->value + 1e-6)
          << g.summary() << " k=" << k;
      EXPECT_NEAR(res.ratio_bound, alg3_ratio_bound(g.max_degree(), k), 1e-12);
    }
  }
}

TEST(Alg3, Lemma5InvariantHoldsExactly) {
  // At the start of each outer iteration the dynamic degree (fresh in
  // Algorithm 3's schedule) satisfies dyn^k <= (Delta+1)^{ell+1}.
  for (const auto& g : test_graphs()) {
    const std::uint64_t dp1 = g.max_degree() + 1;
    for (std::uint32_t k : {2U, 3U, 4U}) {
      alg3_observer obs = [&](const alg3_iteration_view& view) {
        if (view.m != k - 1) return;
        for (graph::node_id v = 0; v < g.node_count(); ++v) {
          EXPECT_TRUE(compare_pow(view.dyn_degree[v], k, dp1, view.ell + 1) <= 0)
              << g.summary() << " k=" << k << " ell=" << view.ell
              << " node=" << v << " dyn=" << view.dyn_degree[v];
        }
      };
      (void)approximate_lp(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg3, Lemma6InvariantHoldsExactly) {
  // Before each x assignment, a(v_i) <= (Delta+1)^{(m+1)/k} for all nodes.
  for (const auto& g : test_graphs()) {
    const std::uint64_t dp1 = g.max_degree() + 1;
    for (std::uint32_t k : {2U, 3U, 4U}) {
      alg3_observer obs = [&](const alg3_iteration_view& view) {
        for (graph::node_id v = 0; v < g.node_count(); ++v) {
          EXPECT_TRUE(compare_pow(view.a[v], k, dp1, view.m + 1) <= 0)
              << g.summary() << " k=" << k << " ell=" << view.ell
              << " m=" << view.m << " node=" << v << " a=" << view.a[v];
        }
      };
      (void)approximate_lp(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg3, Lemma7ZBoundHoldsExactly) {
  // z-accounting over the (fresh) white sets; at the end of each outer
  // iteration z_i <= (1 + (Delta+1)^{1/k}) / gamma^(1)(v_i)^{ell/(ell+1)}
  // where gamma^(1)(v_i) is the maximum dynamic degree in N_i at the start
  // of the outer iteration.
  for (const auto& g : test_graphs()) {
    const std::size_t n = g.node_count();
    const double dp1 = static_cast<double>(g.max_degree()) + 1.0;
    for (std::uint32_t k : {2U, 3U}) {
      std::vector<double> z(n, 0.0);
      std::vector<double> prev_x(n, 0.0);
      std::vector<double> gamma1(n, 0.0);
      alg3_observer obs = [&](const alg3_iteration_view& view) {
        if (view.m == k - 1) {
          std::fill(z.begin(), z.end(), 0.0);
          for (graph::node_id v = 0; v < n; ++v) {
            std::uint32_t best = 0;
            g.for_closed_neighborhood(v, [&](graph::node_id u) {
              best = std::max(best, view.dyn_degree[u]);
            });
            gamma1[v] = static_cast<double>(best);
          }
        }
        for (graph::node_id j = 0; j < n; ++j) {
          const double inc = view.x[j] - prev_x[j];
          if (inc <= 1e-15) continue;
          std::vector<graph::node_id> whites;
          g.for_closed_neighborhood(j, [&](graph::node_id u) {
            if (!view.gray[u]) whites.push_back(u);
          });
          for (const graph::node_id u : whites)
            z[u] += inc / static_cast<double>(whites.size());
        }
        prev_x = view.x;
        if (view.m == 0) {
          const double exponent = static_cast<double>(view.ell) /
                                  (static_cast<double>(view.ell) + 1.0);
          for (graph::node_id v = 0; v < n; ++v) {
            if (gamma1[v] < 1.0) {
              EXPECT_LE(z[v], 1e-12) << g.summary() << " node " << v;
              continue;
            }
            const double bound = (1.0 + std::pow(dp1, 1.0 / k)) /
                                 std::pow(gamma1[v], exponent);
            EXPECT_LE(z[v], bound + 1e-9)
                << g.summary() << " k=" << k << " ell=" << view.ell
                << " node=" << v << " gamma1=" << gamma1[v];
          }
        }
      };
      (void)approximate_lp(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg3, ActiveNodesSatisfyLine7Threshold) {
  // Consistency of the activity flag with the exact comparison.
  common::rng gen(202);
  const graph::graph g = graph::gnp_random(30, 0.15, gen);
  const std::uint32_t k = 3;
  alg3_observer obs = [&](const alg3_iteration_view& view) {
    for (graph::node_id v = 0; v < g.node_count(); ++v) {
      if (!view.active[v]) continue;
      EXPECT_GE(view.dyn_degree[v], 1U);
      EXPECT_TRUE(common::geq_rational_power(view.dyn_degree[v],
                                             view.gamma2[v], view.ell,
                                             view.ell + 1))
          << "node " << v << " ell=" << view.ell;
    }
  };
  (void)approximate_lp(g, {.k = k}, &obs);
}

TEST(Alg3, MessageSizesAreLogarithmic) {
  for (const auto& g : test_graphs()) {
    if (g.max_degree() == 0) continue;
    for (std::uint32_t k : {2U, 4U}) {
      const auto res = approximate_lp(g, {.k = k});
      // Largest payload: the x encoding base*(k) + m + 1 <= (Delta+2)*k.
      const auto limit = static_cast<std::uint32_t>(
          std::bit_width(static_cast<std::uint64_t>(g.max_degree() + 2) * k));
      EXPECT_LE(res.metrics.max_message_bits, limit) << g.summary();
    }
  }
}

TEST(Alg3, CongestLimitEnforcedByEngineMeter) {
  // Run with the engine's CONGEST meter set to the claimed width: no
  // violation may be flagged; with a meter strictly below the observed
  // maximum, a violation must be flagged (the meter itself works).
  common::rng gen(205);
  const graph::graph g = graph::gnp_random(40, 0.2, gen);
  const std::uint32_t k = 3;
  lp_approx_params ok;
  ok.k = k;
  ok.exec.congest_bit_limit = static_cast<std::uint32_t>(
      std::bit_width(static_cast<std::uint64_t>(g.max_degree() + 2) * k));
  const auto res_ok = approximate_lp(g, ok);
  EXPECT_FALSE(res_ok.metrics.congest_violation);

  lp_approx_params tight;
  tight.k = k;
  tight.exec.congest_bit_limit = res_ok.metrics.max_message_bits - 1;
  EXPECT_TRUE(approximate_lp(g, tight).metrics.congest_violation);
}

TEST(Alg3, NeedsNoGlobalDeltaButMatchesBounds) {
  // Run on a graph whose Delta differs wildly across regions: a star glued
  // to a long path.  Algorithm 3 only uses 2-hop information.
  graph::graph_builder b(30);
  for (graph::node_id v = 1; v < 15; ++v) b.add_edge(0, v);  // star
  for (graph::node_id v = 15; v + 1 < 30; ++v) b.add_edge(v, v + 1);
  b.add_edge(14, 15);  // glue
  const graph::graph g = std::move(b).build();
  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  for (std::uint32_t k : {2U, 3U, 4U}) {
    const auto res = approximate_lp(g, {.k = k});
    EXPECT_TRUE(lp::is_primal_feasible(g, res.x));
    EXPECT_LE(res.objective, res.ratio_bound * lp_opt->value + 1e-6);
  }
}

TEST(Alg3, DeterministicAcrossRuns) {
  common::rng gen(203);
  const graph::graph g = graph::gnp_random(40, 0.1, gen);
  const auto a = approximate_lp(g, {.k = 3});
  const auto b = approximate_lp(g, {.k = 3});
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
}

TEST(Alg3, EmptyAndTrivialInputs) {
  const auto empty = approximate_lp(graph::graph{}, {.k = 2});
  EXPECT_TRUE(empty.x.empty());

  const auto single = approximate_lp(graph::empty_graph(1), {.k = 2});
  ASSERT_EQ(single.x.size(), 1U);
  EXPECT_DOUBLE_EQ(single.x[0], 1.0);

  const auto isolated = approximate_lp(graph::empty_graph(4), {.k = 3});
  for (const double xi : isolated.x) EXPECT_DOUBLE_EQ(xi, 1.0);
}

TEST(Alg3, RejectsInvalidK) {
  EXPECT_THROW((void)approximate_lp(graph::path_graph(3), {.k = 0}),
               std::invalid_argument);
}

TEST(Alg3, ComparableToAlg2OnSameInputs) {
  // Both solve the same LP; Algorithm 3's bound is looser by
  // (Delta+1)^{1/k}, and on these instances the objectives should be in
  // the same ballpark (within the ratio bounds of each other).
  common::rng gen(204);
  const graph::graph g = graph::gnp_random(35, 0.15, gen);
  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  for (std::uint32_t k : {2U, 3U}) {
    const auto a2 = approximate_lp_known_delta(g, {.k = k});
    const auto a3 = approximate_lp(g, {.k = k});
    EXPECT_LE(a2.objective, a2.ratio_bound * lp_opt->value + 1e-6);
    EXPECT_LE(a3.objective, a3.ratio_bound * lp_opt->value + 1e-6);
  }
}

TEST(Alg3, ViewSequenceCoversAllIterations) {
  const graph::graph g = graph::cycle_graph(9);
  const std::uint32_t k = 3;
  std::size_t views = 0;
  alg3_observer obs = [&](const alg3_iteration_view&) { ++views; };
  (void)approximate_lp(g, {.k = k}, &obs);
  EXPECT_EQ(views, static_cast<std::size_t>(k) * k);
}

}  // namespace
}  // namespace domset::core
