// The flat-mailbox engine promises bit-identical output for every thread
// count AND every delivery mode: node randomness, drop decisions, slot
// addressing, and metric folds are all derived per node, never from
// execution order or from where a message physically waited between
// rounds.  These tests pin that promise on the public algorithm APIs
// (Alg2 end to end) and on a chaos program fuzzing the raw engine across
// the {push, pull, auto} x {1, 2, 8} grid.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace domset {
namespace {

using graph::node_id;
using sim::delivery_mode;

constexpr std::array<std::size_t, 3> thread_counts = {1, 2, 8};
constexpr std::array<delivery_mode, 3> delivery_modes = {
    delivery_mode::push, delivery_mode::pull, delivery_mode::automatic};

void expect_same_metrics(const sim::run_metrics& a, const sim::run_metrics& b,
                         std::size_t threads) {
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << threads;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << "threads=" << threads;
  EXPECT_EQ(a.bits_sent, b.bits_sent) << "threads=" << threads;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "threads=" << threads;
  EXPECT_EQ(a.max_messages_per_node, b.max_messages_per_node)
      << "threads=" << threads;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << "threads=" << threads;
  EXPECT_EQ(a.messages_lost_to_faults, b.messages_lost_to_faults)
      << "threads=" << threads;
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated)
      << "threads=" << threads;
  EXPECT_EQ(a.node_rounds_down, b.node_rounds_down) << "threads=" << threads;
  EXPECT_EQ(a.nodes_crashed, b.nodes_crashed) << "threads=" << threads;
  EXPECT_EQ(a.congest_violation, b.congest_violation) << "threads=" << threads;
  EXPECT_EQ(a.hit_round_limit, b.hit_round_limit) << "threads=" << threads;
}

TEST(ParallelDeterminism, Alg2IdenticalAcrossThreadCounts) {
  common::rng gen(4711);
  const graph::graph graphs[] = {graph::gnp_random(300, 0.03, gen),
                                 graph::barabasi_albert(200, 3, gen),
                                 graph::star_graph(64)};
  for (const auto& g : graphs) {
    core::lp_approx_params params;
    params.k = 3;
    params.exec.seed = 9;
    params.exec.delivery = delivery_mode::push;
    const auto serial = core::approximate_lp_known_delta(g, params);
    for (const delivery_mode mode : delivery_modes) {
      for (const std::size_t t : thread_counts) {
        params.exec.delivery = mode;
        params.exec.threads = t;
        const auto run = core::approximate_lp_known_delta(g, params);
        // Bitwise-equal x vectors: the doubles decode from the same integer
        // exponents, so exact comparison is the correct assertion.
        ASSERT_EQ(run.x.size(), serial.x.size());
        for (std::size_t v = 0; v < run.x.size(); ++v)
          EXPECT_EQ(run.x[v], serial.x[v])
              << "threads=" << t << " delivery=" << to_string(mode)
              << " v=" << v;
        EXPECT_EQ(run.objective, serial.objective) << "threads=" << t;
        expect_same_metrics(run.metrics, serial.metrics, t);
      }
    }
  }
}

TEST(ParallelDeterminism, Alg3IdenticalUnderMessageLoss) {
  common::rng gen(4712);
  const graph::graph g = graph::gnp_random(250, 0.04, gen);
  core::lp_approx_params params;
  params.k = 2;
  params.exec.seed = 31;
  params.exec.drop_probability = 0.3;  // drop streams are per sender: order-free
  params.exec.delivery = delivery_mode::push;
  const auto serial = core::approximate_lp(g, params);
  for (const delivery_mode mode : delivery_modes) {
    for (const std::size_t t : thread_counts) {
      params.exec.delivery = mode;
      params.exec.threads = t;
      const auto run = core::approximate_lp(g, params);
      for (std::size_t v = 0; v < run.x.size(); ++v)
        EXPECT_EQ(run.x[v], serial.x[v])
            << "threads=" << t << " delivery=" << to_string(mode)
            << " v=" << v;
      expect_same_metrics(run.metrics, serial.metrics, t);
    }
  }
}

/// Chaos program for the raw engine: random sends, broadcasts, and
/// per-edge message bursts (to exercise the overflow path), with a
/// digest of everything received.
class chaos_program final : public sim::node_program {
 public:
  explicit chaos_program(std::size_t lifetime) : lifetime_(lifetime) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) override {
    for (const sim::message& msg : inbox)
      digest_ = digest_ * 1099511628211ULL ^
                (msg.payload + msg.from + msg.tag + msg.bits);
    received_ += inbox.size();
    if (ctx.round() >= lifetime_) {
      done_ = true;
      return;
    }
    auto& gen = ctx.random();
    for (const node_id u : ctx.neighbors()) {
      if (gen.next_bernoulli(0.5))
        ctx.send(u, static_cast<std::uint16_t>(gen.next_below(8)), gen(),
                 static_cast<std::uint32_t>(1 + gen.next_below(16)));
      // Occasional second message down the same edge: overflow path.
      if (gen.next_bernoulli(0.1)) ctx.send(u, 9, gen(), 4);
    }
    if (!ctx.neighbors().empty() && gen.next_bernoulli(0.3))
      ctx.broadcast(7, gen(), 4);
  }

  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  std::size_t lifetime_;
  bool done_ = false;
  std::uint64_t digest_ = 14695981039346656037ULL;
  std::uint64_t received_ = 0;
};

struct chaos_outcome {
  sim::run_metrics metrics;
  std::vector<std::uint64_t> digests;
  std::vector<std::uint64_t> received;
};

chaos_outcome run_chaos(const graph::graph& g, std::uint64_t seed, double drop,
                        std::size_t threads,
                        delivery_mode delivery = delivery_mode::automatic,
                        const std::string& faults = "none") {
  sim::engine_config cfg;
  cfg.seed = seed;
  cfg.drop_probability = drop;
  cfg.max_rounds = 100;
  cfg.threads = threads;
  cfg.delivery = delivery;
  sim::fault_plan plan = sim::parse_fault_plan(faults);
  if (!plan.empty())
    cfg.faults = std::make_shared<const sim::fault_plan>(std::move(plan));
  sim::engine eng(g, cfg);
  common::rng lifetimes(seed ^ 0x5eedULL);
  eng.load([&](node_id) {
    return std::make_unique<chaos_program>(3 + lifetimes.next_below(12));
  });
  chaos_outcome out;
  out.metrics = eng.run();
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto& prog = eng.program_as<chaos_program>(v);
    out.digests.push_back(prog.digest());
    out.received.push_back(prog.received());
  }
  return out;
}

TEST(ParallelDeterminism, ChaosFuzzAcrossThreadCounts) {
  common::rng gen(4713);
  const graph::graph graphs[] = {graph::gnp_random(120, 0.08, gen),
                                 graph::grid_graph(12, 12),
                                 graph::complete_graph(24)};
  for (const auto& g : graphs) {
    for (const double drop : {0.0, 0.25}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto serial = run_chaos(g, seed, drop, 1);
        for (const std::size_t t : thread_counts) {
          const auto run = run_chaos(g, seed, drop, t);
          EXPECT_EQ(run.digests, serial.digests)
              << g.summary() << " threads=" << t << " drop=" << drop;
          EXPECT_EQ(run.received, serial.received)
              << g.summary() << " threads=" << t;
          expect_same_metrics(run.metrics, serial.metrics, t);
        }
      }
    }
  }
}

TEST(ParallelDeterminism, ChaosFuzzAcrossDeliveryModes) {
  // The delivery grid on the topologies where push and pull lay messages
  // out most differently: a hub-dominated star (pull's target case, and
  // `auto` resolves to pull), a bounded-degree grid (`auto` resolves to
  // push) and a heavy-tailed power-law graph.  The chaos program mixes
  // targeted sends, broadcasts, and same-edge bursts, so the lane,
  // demotion, and overflow paths all run in both modes.
  common::rng gen(4715);
  const graph::graph graphs[] = {graph::star_graph(96),
                                 graph::grid_graph(10, 10),
                                 graph::barabasi_albert(150, 3, gen)};
  for (const auto& g : graphs) {
    for (const double drop : {0.0, 0.25}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto serial = run_chaos(g, seed, drop, 1, delivery_mode::push);
        for (const delivery_mode mode : delivery_modes) {
          for (const std::size_t t : thread_counts) {
            const auto run = run_chaos(g, seed, drop, t, mode);
            EXPECT_EQ(run.digests, serial.digests)
                << g.summary() << " threads=" << t
                << " delivery=" << to_string(mode) << " drop=" << drop;
            EXPECT_EQ(run.received, serial.received)
                << g.summary() << " threads=" << t
                << " delivery=" << to_string(mode);
            expect_same_metrics(run.metrics, serial.metrics, t);
          }
        }
      }
    }
  }
}

TEST(ParallelDeterminism, ChaosFuzzWithFaultPlan) {
  // The fault plane's decisions are pure functions of (plan, sender, edge
  // position, round) plus per-sender streams, so chaos runs stay
  // bit-identical across the whole grid even with every fault kind active
  // at once, stacked on base message loss.
  common::rng gen(4716);
  const graph::graph graphs[] = {graph::star_graph(96),
                                 graph::grid_graph(10, 10),
                                 graph::gnp_random(120, 0.08, gen)};
  const std::string plan =
      "crash=5@4+crash=2@2-6+link=0-1@1-8:flap=2/3+burst@3-5:p=0.35+"
      "dup@2-9:p=0.2";
  for (const auto& g : graphs) {
    for (const double drop : {0.0, 0.25}) {
      const auto serial = run_chaos(g, 11, drop, 1, delivery_mode::push, plan);
      EXPECT_EQ(serial.metrics.nodes_crashed, 2U) << g.summary();
      EXPECT_GT(serial.metrics.node_rounds_down, 0U) << g.summary();
      for (const delivery_mode mode : delivery_modes) {
        for (const std::size_t t : thread_counts) {
          const auto run = run_chaos(g, 11, drop, t, mode, plan);
          EXPECT_EQ(run.digests, serial.digests)
              << g.summary() << " threads=" << t
              << " delivery=" << to_string(mode) << " drop=" << drop;
          EXPECT_EQ(run.received, serial.received)
              << g.summary() << " threads=" << t;
          expect_same_metrics(run.metrics, serial.metrics, t);
        }
      }
    }
  }
}

TEST(ParallelDeterminism, AutoThreadCountAlsoIdentical) {
  common::rng gen(4714);
  const graph::graph g = graph::gnp_random(150, 0.06, gen);
  const auto serial = run_chaos(g, 7, 0.0, 1);
  const auto autod = run_chaos(g, 7, 0.0, 0);  // 0 = hardware concurrency
  EXPECT_EQ(autod.digests, serial.digests);
  expect_same_metrics(autod.metrics, serial.metrics, 0);
}

}  // namespace
}  // namespace domset
