// Randomized stress of the engine's core invariants: arbitrary node
// programs sending arbitrary (valid) messages must never break message
// conservation, inbox ordering, metric accounting, or determinism.
#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace domset::sim {
namespace {

using graph::node_id;

/// Sends a random subset of neighbors random payloads each round for a
/// random lifetime; records everything received.
class chaos_program final : public node_program {
 public:
  explicit chaos_program(std::size_t lifetime) : lifetime_(lifetime) {}

  void on_round(round_context& ctx, std::span<const message> inbox) override {
    received_ += inbox.size();
    for (std::size_t i = 1; i < inbox.size(); ++i)
      ordered_ &= inbox[i - 1].from <= inbox[i].from;
    if (ctx.round() >= lifetime_) {
      done_ = true;
      return;
    }
    auto& gen = ctx.random();
    for (const node_id u : ctx.neighbors()) {
      if (gen.next_bernoulli(0.4)) {
        const auto bits = static_cast<std::uint32_t>(1 + gen.next_below(16));
        ctx.send(u, static_cast<std::uint16_t>(gen.next_below(8)), gen(),
                 bits);
        ++sent_;
      }
    }
    if (!ctx.neighbors().empty() && gen.next_bernoulli(0.2)) {
      ctx.broadcast(7, gen(), 4);
      sent_ += ctx.neighbors().size();
    }
  }

  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] bool ordered() const { return ordered_; }

 private:
  std::size_t lifetime_;
  bool done_ = false;
  bool ordered_ = true;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

struct fuzz_outcome {
  run_metrics metrics;
  std::uint64_t declared_sent = 0;
  std::uint64_t delivered = 0;
  bool all_ordered = true;
};

fuzz_outcome run_fuzz(const graph::graph& g, std::uint64_t seed, double drop,
                      std::size_t threads = 1,
                      delivery_mode delivery = delivery_mode::automatic) {
  engine_config cfg;
  cfg.seed = seed;
  cfg.drop_probability = drop;
  cfg.max_rounds = 200;
  cfg.threads = threads;
  cfg.delivery = delivery;
  engine eng(g, cfg);
  common::rng lifetimes(seed ^ 0x5eedULL);
  eng.load([&](node_id) {
    return std::make_unique<chaos_program>(3 + lifetimes.next_below(20));
  });
  fuzz_outcome out;
  out.metrics = eng.run();
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto& prog = eng.program_as<chaos_program>(v);
    out.declared_sent += prog.sent();
    out.delivered += prog.received();
    out.all_ordered &= prog.ordered();
  }
  return out;
}

TEST(SimFuzz, ConservationAndOrderingAcrossTopologies) {
  common::rng gen(1801);
  const graph::graph graphs[] = {
      graph::complete_graph(12),     graph::cycle_graph(20),
      graph::star_graph(15),         graph::gnp_random(40, 0.1, gen),
      graph::grid_graph(5, 5),       graph::barabasi_albert(30, 2, gen)};
  // The invariants must hold for every worker count and delivery mode,
  // and the pooled runs give the sanitizer jobs real multi-threaded
  // traffic to chew on (pull mode adds the cross-thread gather loads).
  // The two indices are decorrelated (seed vs seed / 3) so the seeds
  // sample mixed {mode x threads} cells -- including pull at 8 threads --
  // instead of locking each mode to one thread count; the exhaustive grid
  // lives in FullDeterminism below.
  const std::size_t thread_counts[] = {1, 2, 8};
  const delivery_mode modes[] = {delivery_mode::push, delivery_mode::pull,
                                 delivery_mode::automatic};
  for (const auto& g : graphs) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto out = run_fuzz(g, seed, 0.0, thread_counts[seed % 3],
                                modes[(seed / 3) % std::size(modes)]);
      EXPECT_EQ(out.metrics.messages_sent, out.declared_sent) << g.summary();
      // Reliable network: everything sent before termination is delivered
      // except messages sent in the final round (engine stops once all
      // programs finish, so last-round sends can be in flight).
      EXPECT_LE(out.delivered, out.metrics.messages_sent) << g.summary();
      EXPECT_GE(out.delivered + 2 * g.edge_count() + g.node_count(),
                out.metrics.messages_sent)
          << g.summary();
      EXPECT_TRUE(out.all_ordered) << g.summary();
      EXPECT_FALSE(out.metrics.hit_round_limit) << g.summary();
      EXPECT_EQ(out.metrics.messages_dropped, 0U);
    }
  }
}

TEST(SimFuzz, LossyConservation) {
  common::rng gen(1802);
  const graph::graph g = graph::gnp_random(30, 0.2, gen);
  for (const double drop : {0.1, 0.5, 0.9}) {
    const auto out = run_fuzz(g, 77, drop, /*threads=*/2);
    EXPECT_EQ(out.metrics.messages_sent, out.declared_sent);
    EXPECT_LE(out.delivered,
              out.metrics.messages_sent - out.metrics.messages_dropped);
    EXPECT_GT(out.metrics.messages_dropped, 0U) << drop;
  }
}

TEST(SimFuzz, BitAccountingIsExact) {
  // All chaos messages declare 1..16 bits (direct) or 4 (broadcast), so
  // totals must lie within [1, 16] x messages.
  common::rng gen(1803);
  const graph::graph g = graph::gnp_random(25, 0.25, gen);
  const auto out = run_fuzz(g, 5, 0.0);
  EXPECT_GE(out.metrics.bits_sent, out.metrics.messages_sent);
  EXPECT_LE(out.metrics.bits_sent, 16 * out.metrics.messages_sent);
  EXPECT_LE(out.metrics.max_message_bits, 16U);
}

TEST(SimFuzz, FullDeterminism) {
  // Every {delivery mode x thread count} cell must reproduce the serial
  // push run exactly -- delivery and threading are wall-clock knobs only.
  common::rng gen(1804);
  const graph::graph graphs[] = {graph::gnp_random(35, 0.15, gen),
                                 graph::star_graph(80)};
  for (const auto& g : graphs) {
    for (const double drop : {0.0, 0.3}) {
      const auto a = run_fuzz(g, 99, drop, /*threads=*/1, delivery_mode::push);
      for (const delivery_mode mode :
           {delivery_mode::push, delivery_mode::pull,
            delivery_mode::automatic}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                          std::size_t{8}}) {
          const auto b = run_fuzz(g, 99, drop, threads, mode);
          EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent)
              << g.summary() << " " << to_string(mode) << " t=" << threads;
          EXPECT_EQ(a.metrics.bits_sent, b.metrics.bits_sent);
          EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
          EXPECT_EQ(a.metrics.messages_dropped, b.metrics.messages_dropped);
          EXPECT_EQ(a.delivered, b.delivered);
          EXPECT_TRUE(b.all_ordered)
              << g.summary() << " " << to_string(mode) << " t=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace domset::sim
