// Parameterized property sweep: every (graph family x size x k x seed)
// combination must satisfy the paper's headline guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "lp/lp_mds.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

struct family_spec {
  std::string name;
  graph::graph (*make)(std::uint64_t seed);
};

graph::graph make_gnp_sparse(std::uint64_t seed) {
  common::rng gen(seed);
  return graph::gnp_random(60, 0.05, gen);
}
graph::graph make_gnp_dense(std::uint64_t seed) {
  common::rng gen(seed);
  return graph::gnp_random(40, 0.25, gen);
}
graph::graph make_udg(std::uint64_t seed) {
  common::rng gen(seed);
  return graph::random_geometric(70, 0.18, gen).g;
}
graph::graph make_ba(std::uint64_t seed) {
  common::rng gen(seed);
  return graph::barabasi_albert(60, 2, gen);
}
graph::graph make_regular(std::uint64_t seed) {
  common::rng gen(seed);
  return graph::random_regular(50, 4, gen);
}
graph::graph make_grid(std::uint64_t) { return graph::grid_graph(8, 7); }
graph::graph make_star(std::uint64_t) { return graph::star_graph(40); }
graph::graph make_cycle(std::uint64_t) { return graph::cycle_graph(45); }
graph::graph make_caterpillar(std::uint64_t) {
  return graph::caterpillar(8, 3);
}
graph::graph make_cluster(std::uint64_t seed) {
  common::rng gen(seed);
  return graph::cluster_graph(6, 7, 5, gen);
}

const family_spec kFamilies[] = {
    {"gnp_sparse", make_gnp_sparse}, {"gnp_dense", make_gnp_dense},
    {"udg", make_udg},               {"ba", make_ba},
    {"regular", make_regular},       {"grid", make_grid},
    {"star", make_star},             {"cycle", make_cycle},
    {"caterpillar", make_caterpillar}, {"cluster", make_cluster},
};

class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t, int>> {};

TEST_P(PipelineProperty, DominatesAndRespectsBounds) {
  const auto [family_idx, k, seed] = GetParam();
  const family_spec& family = kFamilies[family_idx];
  const graph::graph g = family.make(static_cast<std::uint64_t>(seed));

  core::pipeline_params params;
  params.k = k;
  params.exec.seed = static_cast<std::uint64_t>(seed) * 7919 + k;
  const auto res = core::compute_dominating_set(g, params);

  // (1) The output is a dominating set.
  ASSERT_TRUE(verify::is_dominating_set(g, res.in_set))
      << family.name << " k=" << k << " seed=" << seed;

  // (2) The fractional stage is LP-feasible.
  EXPECT_TRUE(lp::is_primal_feasible(g, res.fractional.x)) << family.name;

  // (3) Rounds match the Theorem 5 schedule plus constant rounding cost.
  EXPECT_EQ(res.total_rounds, core::alg3_round_count(k) + 4) << family.name;

  // (4) Size is at least the certified dual lower bound.
  EXPECT_GE(static_cast<double>(res.size),
            graph::dual_lower_bound(g) - 1e-9)
      << family.name;

  // (5) Messages per node obey the O(k^2 * Delta) claim (constant 8 covers
  // the 4 broadcasts per inner iteration plus boundary and prelude).
  if (g.max_degree() > 0) {
    EXPECT_LE(res.fractional.metrics.max_messages_per_node,
              8ULL * (k * k + k + 1) * g.max_degree())
        << family.name;
  }

  // (6) CONGEST: message sizes are O(log Delta + log k) bits.
  const auto limit = static_cast<std::uint32_t>(std::bit_width(
      static_cast<std::uint64_t>(g.max_degree() + 2) * (k + 1)));
  EXPECT_LE(res.fractional.metrics.max_message_bits,
            std::max(limit, 1U))
      << family.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, PipelineProperty,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1U, 2U, 3U),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<PipelineProperty::ParamType>& info) {
      return kFamilies[std::get<0>(info.param)].name + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class Alg2VsAlg3Property
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(Alg2VsAlg3Property, BothFeasibleWithBoundedObjectives) {
  const auto [family_idx, k] = GetParam();
  const graph::graph g = kFamilies[family_idx].make(11);

  const auto r2 = core::approximate_lp_known_delta(g, {.k = k});
  const auto r3 = core::approximate_lp(g, {.k = k});
  EXPECT_TRUE(lp::is_primal_feasible(g, r2.x));
  EXPECT_TRUE(lp::is_primal_feasible(g, r3.x));

  // Both objectives upper-bound the LP optimum, which itself upper-bounds
  // the certified dual bound; the objectives must be >= the dual bound.
  const double lb = graph::dual_lower_bound(g);
  EXPECT_GE(r2.objective, lb - 1e-9);
  EXPECT_GE(r3.objective, lb - 1e-9);

  // And both stay within their claimed ratios of it... relative to the LP
  // optimum; using the dual bound as a proxy keeps this cheap for the
  // larger instances (dual bound <= LP optimum).
  EXPECT_LE(r2.objective / std::max(lb, 1e-12),
            r2.ratio_bound * (lp::solve_lp_mds(g)->value / std::max(lb, 1e-12)) +
                1e-6);
  EXPECT_LE(r3.objective, r3.ratio_bound * lp::solve_lp_mds(g)->value + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Families, Alg2VsAlg3Property,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(2U, 4U)),
    [](const ::testing::TestParamInfo<Alg2VsAlg3Property::ParamType>& info) {
      return kFamilies[std::get<0>(info.param)].name + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace domset
