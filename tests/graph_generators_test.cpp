#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/properties.hpp"

namespace domset::graph {
namespace {

TEST(Deterministic, EmptyGraph) {
  const graph g = empty_graph(7);
  EXPECT_EQ(g.node_count(), 7U);
  EXPECT_EQ(g.edge_count(), 0U);
}

TEST(Deterministic, CompleteGraph) {
  const graph g = complete_graph(6);
  EXPECT_EQ(g.edge_count(), 15U);
  EXPECT_EQ(g.max_degree(), 5U);
  EXPECT_EQ(diameter(g), 1U);
}

TEST(Deterministic, PathGraph) {
  const graph g = path_graph(5);
  EXPECT_EQ(g.edge_count(), 4U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(2), 2U);
  EXPECT_EQ(diameter(g), 4U);
}

TEST(Deterministic, CycleGraph) {
  const graph g = cycle_graph(8);
  EXPECT_EQ(g.edge_count(), 8U);
  for (node_id v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2U);
  EXPECT_EQ(diameter(g), 4U);
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Deterministic, StarGraph) {
  const graph g = star_graph(9);
  EXPECT_EQ(g.degree(0), 8U);
  for (node_id v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1U);
  EXPECT_EQ(g.max_degree(), 8U);
}

TEST(Deterministic, CompleteBipartite) {
  const graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7U);
  EXPECT_EQ(g.edge_count(), 12U);
  for (node_id v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4U);
  for (node_id v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3U);
}

TEST(Deterministic, GridGraph) {
  const graph g = grid_graph(4, 3);
  EXPECT_EQ(g.node_count(), 12U);
  // Edges: 3 per row * 3 rows + 4 per column-gap * 2 gaps = 9 + 8.
  EXPECT_EQ(g.edge_count(), 17U);
  EXPECT_EQ(g.max_degree(), 4U);
  EXPECT_TRUE(is_connected(g));
}

TEST(Deterministic, TorusGraphIsRegular) {
  const graph g = torus_graph(4, 5);
  EXPECT_EQ(g.node_count(), 20U);
  for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4U);
  EXPECT_EQ(g.edge_count(), 40U);
  EXPECT_THROW(torus_graph(2, 5), std::invalid_argument);
}

TEST(Deterministic, BalancedTree) {
  const graph g = balanced_tree(2, 3);  // 1+2+4+8 = 15 nodes
  EXPECT_EQ(g.node_count(), 15U);
  EXPECT_EQ(g.edge_count(), 14U);  // tree
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2U);       // root
  EXPECT_EQ(g.degree(14), 1U);      // leaf
  EXPECT_EQ(g.max_degree(), 3U);    // internal: parent + 2 children
}

TEST(Deterministic, BalancedTreeDepthZero) {
  const graph g = balanced_tree(5, 0);
  EXPECT_EQ(g.node_count(), 1U);
  EXPECT_EQ(g.edge_count(), 0U);
}

TEST(Deterministic, Caterpillar) {
  const graph g = caterpillar(4, 3);
  EXPECT_EQ(g.node_count(), 16U);
  EXPECT_EQ(g.edge_count(), 3U + 12U);  // spine + legs
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 4U);  // spine end: 1 spine nbr + 3 legs
  EXPECT_EQ(g.degree(1), 5U);  // inner spine: 2 + 3
}

TEST(Deterministic, GreedyAdversarialStructure) {
  const std::size_t t = 4;
  const graph g = greedy_adversarial(t);
  // Elements: 2+4+8+16 = 30; set nodes: t+2 = 6.
  EXPECT_EQ(g.node_count(), 36U);
  EXPECT_TRUE(is_connected(g));
  // Every element node has degree 2 (its S_i and one of T_1/T_2).
  for (node_id v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 2U);
  // T nodes cover half the elements plus the set-node clique.
  EXPECT_EQ(g.degree(34), 15U + 5U);
  EXPECT_EQ(g.degree(35), 15U + 5U);
  EXPECT_THROW(greedy_adversarial(0), std::invalid_argument);
}

TEST(Random, GnpEdgeCountConcentrates) {
  common::rng gen(42);
  const std::size_t n = 400;
  const double p = 0.05;
  const graph g = gnp_random(n, p, gen);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(g.edge_count(), expected * 0.85);
  EXPECT_LT(g.edge_count(), expected * 1.15);
}

TEST(Random, GnpExtremes) {
  common::rng gen(43);
  EXPECT_EQ(gnp_random(50, 0.0, gen).edge_count(), 0U);
  EXPECT_EQ(gnp_random(10, 1.0, gen).edge_count(), 45U);
  EXPECT_EQ(gnp_random(0, 0.5, gen).node_count(), 0U);
  EXPECT_EQ(gnp_random(1, 0.5, gen).edge_count(), 0U);
}

TEST(Random, GnmExactEdgeCount) {
  common::rng gen(44);
  const graph g = gnm_random(30, 100, gen);
  EXPECT_EQ(g.node_count(), 30U);
  EXPECT_EQ(g.edge_count(), 100U);
  EXPECT_THROW(gnm_random(5, 11, gen), std::invalid_argument);
}

TEST(Random, GnmFullDensity) {
  common::rng gen(45);
  const graph g = gnm_random(8, 28, gen);
  EXPECT_EQ(g.edge_count(), 28U);  // = K_8
  EXPECT_EQ(g.max_degree(), 7U);
}

TEST(Random, GeometricRespectsRadius) {
  common::rng gen(46);
  const auto [g, x, y] = random_geometric(200, 0.15, gen);
  EXPECT_EQ(g.node_count(), 200U);
  for (node_id v = 0; v < g.node_count(); ++v) {
    for (const node_id u : g.neighbors(v)) {
      const double dx = x[v] - x[u];
      const double dy = y[v] - y[u];
      EXPECT_LE(std::sqrt(dx * dx + dy * dy), 0.15 + 1e-12);
    }
  }
}

TEST(Random, GeometricFindsAllPairs) {
  // Brute-force cross-check of the grid bucketing.
  common::rng gen(47);
  const auto [g, x, y] = random_geometric(120, 0.2, gen);
  std::size_t expected_edges = 0;
  for (std::size_t i = 0; i < 120; ++i) {
    for (std::size_t j = i + 1; j < 120; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx * dx + dy * dy <= 0.2 * 0.2) ++expected_edges;
    }
  }
  EXPECT_EQ(g.edge_count(), expected_edges);
}

TEST(Random, BarabasiAlbertDegrees) {
  common::rng gen(48);
  const std::size_t n = 300;
  const std::size_t m = 3;
  const graph g = barabasi_albert(n, m, gen);
  EXPECT_EQ(g.node_count(), n);
  // Each new node adds exactly m edges; seed clique has m(m+1)/2.
  EXPECT_EQ(g.edge_count(), (n - m - 1) * m + m * (m + 1) / 2);
  EXPECT_TRUE(is_connected(g));
  for (node_id v = 0; v < n; ++v) EXPECT_GE(g.degree(v), m);
  EXPECT_THROW(barabasi_albert(3, 3, gen), std::invalid_argument);
}

TEST(Random, RegularGraphDegrees) {
  common::rng gen(49);
  const graph g = random_regular(60, 4, gen);
  for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4U);
  EXPECT_THROW(random_regular(5, 3, gen), std::invalid_argument);  // odd n*d
  EXPECT_THROW(random_regular(4, 4, gen), std::invalid_argument);  // d >= n
}

TEST(Random, RegularDegreeZero) {
  common::rng gen(50);
  const graph g = random_regular(6, 0, gen);
  EXPECT_EQ(g.edge_count(), 0U);
}

TEST(Random, ClusterGraphShape) {
  common::rng gen(51);
  const graph g = cluster_graph(5, 8, 4, gen);
  EXPECT_EQ(g.node_count(), 40U);
  EXPECT_TRUE(is_connected(g));
  // Intra-cluster cliques present.
  EXPECT_TRUE(g.has_edge(0, 7));
  EXPECT_THROW(cluster_graph(0, 3, 0, gen), std::invalid_argument);
}

TEST(Random, UniformCostsInRange) {
  common::rng gen(52);
  const auto costs = uniform_costs(500, 4.0, gen);
  EXPECT_EQ(costs.size(), 500U);
  for (const double c : costs) {
    EXPECT_GE(c, 1.0);
    EXPECT_LE(c, 4.0);
  }
  EXPECT_THROW(uniform_costs(5, 0.5, gen), std::invalid_argument);
}

TEST(Random, GeneratorsAreSeedDeterministic) {
  common::rng a(7);
  common::rng b(7);
  const graph ga = gnp_random(100, 0.1, a);
  const graph gb = gnp_random(100, 0.1, b);
  EXPECT_EQ(ga.edge_count(), gb.edge_count());
  for (node_id v = 0; v < 100; ++v) {
    const auto na = ga.neighbors(v);
    const auto nb = gb.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

}  // namespace
}  // namespace domset::graph
