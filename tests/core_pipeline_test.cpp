#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace domset::core {
namespace {

TEST(Pipeline, EndToEndProducesDominatingSet) {
  common::rng gen(401);
  for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
    const graph::graph g = graph::gnp_random(50, 0.1, gen);
    pipeline_params params;
    params.k = k;
    params.exec.seed = k;
    const auto res = compute_dominating_set(g, params);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "k=" << k;
    EXPECT_EQ(res.size, verify::set_size(res.in_set));
  }
}

TEST(Pipeline, TotalRoundsAreDeterministicInK) {
  const graph::graph g = graph::grid_graph(5, 5);
  for (std::uint32_t k : {1U, 2U, 4U}) {
    pipeline_params params;
    params.k = k;
    const auto res = compute_dominating_set(g, params);
    // Algorithm 3 rounds + Algorithm 1 rounds (4 without announcement).
    EXPECT_EQ(res.total_rounds, alg3_round_count(k) + 4) << "k=" << k;
  }
}

TEST(Pipeline, KnownDeltaVariantUsesFewerRounds) {
  const graph::graph g = graph::grid_graph(5, 5);
  pipeline_params a3;
  a3.k = 3;
  pipeline_params a2 = a3;
  a2.assume_known_delta = true;
  const auto res3 = compute_dominating_set(g, a3);
  const auto res2 = compute_dominating_set(g, a2);
  EXPECT_TRUE(verify::is_dominating_set(g, res2.in_set));
  EXPECT_LT(res2.total_rounds, res3.total_rounds);
  EXPECT_EQ(res2.total_rounds, alg2_round_count(3) + 4);
}

TEST(Pipeline, AverageSizeWithinTheorem6Bound) {
  common::rng gen(402);
  const graph::graph g = graph::gnp_random(30, 0.2, gen);
  const auto opt = exact::solve_mds(g);
  ASSERT_TRUE(opt.has_value());
  for (std::uint32_t k : {2U, 3U}) {
    common::running_stats sizes;
    double bound = 0.0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      pipeline_params params;
      params.k = k;
      params.exec.seed = seed;
      const auto res = compute_dominating_set(g, params);
      ASSERT_TRUE(verify::is_dominating_set(g, res.in_set));
      sizes.add(static_cast<double>(res.size));
      bound = res.expected_ratio_bound;
    }
    EXPECT_LE(sizes.mean(),
              bound * static_cast<double>(opt->size) + 1e-9)
        << "k=" << k;
  }
}

TEST(Pipeline, SizeNeverBelowCertifiedLowerBound) {
  common::rng gen(403);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::graph g = graph::gnp_random(60, 0.08, gen);
    pipeline_params params;
    params.exec.seed = 500 + trial;
    params.k = 2;
    const auto res = compute_dominating_set(g, params);
    EXPECT_GE(static_cast<double>(res.size),
              graph::dual_lower_bound(g) - 1e-9);
  }
}

TEST(Pipeline, DeterministicGivenSeed) {
  common::rng gen(404);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  pipeline_params params;
  params.k = 2;
  params.exec.seed = 99;
  const auto a = compute_dominating_set(g, params);
  const auto b = compute_dominating_set(g, params);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.total_messages, b.total_messages);
}

TEST(Pipeline, MetricsAggregateBothStages) {
  const graph::graph g = graph::cycle_graph(15);
  pipeline_params params;
  params.k = 2;
  const auto res = compute_dominating_set(g, params);
  EXPECT_EQ(res.total_rounds,
            res.fractional.metrics.rounds + res.rounding.metrics.rounds);
  EXPECT_EQ(res.total_messages, res.fractional.metrics.messages_sent +
                                    res.rounding.metrics.messages_sent);
  EXPECT_GT(res.total_messages, 0U);
}

TEST(Pipeline, StarGraphStaysNearOptimal) {
  // MDS of a star is 1; the pipeline should stay within its guarantee and
  // in practice produce a small set.
  const graph::graph g = graph::star_graph(50);
  common::running_stats sizes;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    pipeline_params params;
    params.k = 3;
    params.exec.seed = seed;
    const auto res = compute_dominating_set(g, params);
    ASSERT_TRUE(verify::is_dominating_set(g, res.in_set));
    sizes.add(static_cast<double>(res.size));
  }
  EXPECT_LE(sizes.mean(),
            compute_dominating_set(g, {.k = 3, .exec = {.seed = 0}})
                .expected_ratio_bound);
}

TEST(Pipeline, LogLogVariantWorksEndToEnd) {
  common::rng gen(405);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  pipeline_params params;
  params.k = 2;
  params.variant = rounding_variant::log_log;
  const auto res = compute_dominating_set(g, params);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
}

TEST(Pipeline, KThetaLogDeltaRemark) {
  // The remark after Theorem 6: k = Theta(log Delta) yields an
  // O(log^2 Delta) approximation in O(log^2 Delta) rounds.  Verify the
  // bound formula scales polylogarithmically.
  for (std::uint32_t delta : {15U, 255U}) {
    const auto k = static_cast<std::uint32_t>(
        std::max(1.0, std::log2(static_cast<double>(delta) + 1.0)));
    const double alpha = alg3_ratio_bound(delta, k);
    const double log_d = std::log2(static_cast<double>(delta) + 1.0);
    // alpha = k((D+1)^{1/k} + (D+1)^{2/k}) = k(2 + 4) with k = log2(D+1).
    EXPECT_NEAR(alpha, 6.0 * log_d, 1e-6);
    EXPECT_LE(rounding_ratio_bound(delta, alpha),
              1.0 + 6.0 * log_d * std::log(static_cast<double>(delta) + 1.0) +
                  1e-6);
  }
}

}  // namespace
}  // namespace domset::core
