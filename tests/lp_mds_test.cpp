#include "lp/lp_mds.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace domset::lp {
namespace {

using graph::graph_builder;

/// The Petersen graph: vertex-transitive with closed neighborhoods of size
/// 4, so its LP_MDS optimum is exactly 10/4 = 2.5.
graph::graph petersen() {
  graph_builder b(10);
  for (graph::node_id i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);                    // outer cycle
    b.add_edge(static_cast<graph::node_id>(5 + i),
               static_cast<graph::node_id>(5 + (i + 2) % 5));  // inner star
    b.add_edge(i, static_cast<graph::node_id>(5 + i));         // spokes
  }
  return std::move(b).build();
}

TEST(Objective, Sums) {
  const std::vector<double> x{0.5, 0.25, 0.0};
  EXPECT_DOUBLE_EQ(objective(x), 0.75);
}

TEST(Feasibility, PrimalOnTriangle) {
  const graph::graph g = graph::complete_graph(3);
  EXPECT_TRUE(is_primal_feasible(g, std::vector<double>{1.0, 0.0, 0.0}));
  EXPECT_TRUE(is_primal_feasible(
      g, std::vector<double>{1.0 / 3, 1.0 / 3, 1.0 / 3}));
  EXPECT_FALSE(is_primal_feasible(g, std::vector<double>{0.2, 0.2, 0.2}));
  EXPECT_FALSE(is_primal_feasible(g, std::vector<double>{-0.5, 1.0, 1.0}));
  EXPECT_FALSE(is_primal_feasible(g, std::vector<double>{1.0, 1.0}));  // size
}

TEST(Feasibility, DualOnTriangle) {
  const graph::graph g = graph::complete_graph(3);
  EXPECT_TRUE(is_dual_feasible(
      g, std::vector<double>{1.0 / 3, 1.0 / 3, 1.0 / 3}));
  EXPECT_FALSE(is_dual_feasible(g, std::vector<double>{0.5, 0.5, 0.5}));
  EXPECT_FALSE(is_dual_feasible(g, std::vector<double>{-0.1, 0.1, 0.1}));
}

TEST(Feasibility, IsolatedNodeNeedsOwnWeight) {
  const graph::graph g = graph::empty_graph(2);
  EXPECT_TRUE(is_primal_feasible(g, std::vector<double>{1.0, 1.0}));
  EXPECT_FALSE(is_primal_feasible(g, std::vector<double>{1.0, 0.5}));
}

TEST(Coverage, PerNodeSums) {
  const graph::graph g = graph::path_graph(3);
  const std::vector<double> x{0.5, 0.25, 0.125};
  const auto cov = coverage(g, x);
  EXPECT_DOUBLE_EQ(cov[0], 0.75);
  EXPECT_DOUBLE_EQ(cov[1], 0.875);
  EXPECT_DOUBLE_EQ(cov[2], 0.375);
}

TEST(Lemma1, AssignmentIsAlwaysDualFeasible) {
  common::rng gen(31);
  const graph::graph graphs[] = {
      graph::complete_graph(7),        graph::star_graph(9),
      graph::cycle_graph(11),          graph::path_graph(8),
      graph::grid_graph(4, 4),         petersen(),
      graph::gnp_random(40, 0.15, gen),
      graph::barabasi_albert(40, 2, gen)};
  for (const auto& g : graphs) {
    const auto y = lemma1_dual_assignment(g);
    EXPECT_TRUE(is_dual_feasible(g, y)) << g.summary();
    EXPECT_NEAR(objective(y), graph::dual_lower_bound(g), 1e-9);
  }
}

TEST(Lemma1, LowerBoundsEveryDominatingSet) {
  common::rng gen(32);
  const graph::graph g = graph::gnp_random(30, 0.2, gen);
  const auto opt = exact::solve_mds(g);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(graph::dual_lower_bound(g),
            static_cast<double>(opt->size) + 1e-9);
}

TEST(SolveLpMds, ClosedFormOptima) {
  // K_n: 1.  Star: 1.  C_9: 3.  Empty_4: 4.  Petersen: 2.5.
  EXPECT_NEAR(solve_lp_mds(graph::complete_graph(6))->value, 1.0, 1e-9);
  EXPECT_NEAR(solve_lp_mds(graph::star_graph(8))->value, 1.0, 1e-9);
  EXPECT_NEAR(solve_lp_mds(graph::cycle_graph(9))->value, 3.0, 1e-9);
  EXPECT_NEAR(solve_lp_mds(graph::empty_graph(4))->value, 4.0, 1e-9);
  EXPECT_NEAR(solve_lp_mds(petersen())->value, 2.5, 1e-9);
}

TEST(SolveLpMds, CycleFractionalValue) {
  // C_n has LP optimum n/3 (uniform x = 1/3) even when n % 3 != 0, while
  // the integral optimum is ceil(n/3): a true integrality gap case.
  EXPECT_NEAR(solve_lp_mds(graph::cycle_graph(7))->value, 7.0 / 3.0, 1e-9);
  const auto opt = exact::solve_mds(graph::cycle_graph(7));
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->size, 3U);
}

TEST(SolveLpMds, SolutionsAreFeasibleAndDual) {
  common::rng gen(33);
  for (int trial = 0; trial < 5; ++trial) {
    const graph::graph g = graph::gnp_random(25, 0.15, gen);
    const auto res = solve_lp_mds(g);
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(is_primal_feasible(g, res->x, 1e-6)) << g.summary();
    EXPECT_TRUE(is_dual_feasible(g, res->y, 1e-6)) << g.summary();
    EXPECT_NEAR(objective(res->x), res->value, 1e-6);
    EXPECT_NEAR(objective(res->y), res->value, 1e-6);  // strong duality
  }
}

TEST(SolveLpMds, SandwichedByBounds) {
  common::rng gen(34);
  for (int trial = 0; trial < 5; ++trial) {
    const graph::graph g = graph::gnp_random(24, 0.2, gen);
    const auto lp = solve_lp_mds(g);
    ASSERT_TRUE(lp.has_value());
    const auto ip = exact::solve_mds(g);
    ASSERT_TRUE(ip.has_value());
    EXPECT_LE(graph::dual_lower_bound(g), lp->value + 1e-9);
    EXPECT_LE(lp->value, static_cast<double>(ip->size) + 1e-9);
  }
}

TEST(SolveLpMds, EmptyGraphIsZero) {
  const auto res = solve_lp_mds(graph::graph{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->value, 0.0);
}

TEST(SolveWeighted, MatchesUnweightedForUnitCosts) {
  common::rng gen(35);
  const graph::graph g = graph::gnp_random(20, 0.2, gen);
  const std::vector<double> ones(g.node_count(), 1.0);
  EXPECT_NEAR(solve_weighted_lp_mds(g, ones)->value,
              solve_lp_mds(g)->value, 1e-9);
}

TEST(SolveWeighted, PrefersCheapDominator) {
  // Star where the hub is expensive: covering via the hub costs 10, but
  // every leaf must still be covered; LP puts weight on leaves only if
  // that is cheaper.  With 3 leaves of cost 1, hub cost 10: leaf-only
  // cover costs 3 (each leaf covers itself; hub covered by any leaf).
  const graph::graph g = graph::star_graph(4);
  const std::vector<double> cost{10.0, 1.0, 1.0, 1.0};
  const auto res = solve_weighted_lp_mds(g, cost);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->value, 3.0, 1e-9);
}

TEST(SolveWeighted, RejectsBadCosts) {
  const graph::graph g = graph::path_graph(3);
  EXPECT_THROW((void)solve_weighted_lp_mds(g, std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)solve_weighted_lp_mds(g, std::vector<double>{1.0, 0.0, 1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace domset::lp
