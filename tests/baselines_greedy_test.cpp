#include "baselines/greedy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset::baselines {
namespace {

TEST(Greedy, AlwaysDominates) {
  common::rng gen(601);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::graph g = graph::gnp_random(50, 0.05 + 0.02 * trial, gen);
    const auto res = greedy_mds(g);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "trial " << trial;
    EXPECT_EQ(res.size, verify::set_size(res.in_set));
    EXPECT_EQ(res.size, res.pick_order.size());
  }
}

TEST(Greedy, OptimalOnEasyFamilies) {
  EXPECT_EQ(greedy_mds(graph::complete_graph(9)).size, 1U);
  EXPECT_EQ(greedy_mds(graph::star_graph(12)).size, 1U);
  EXPECT_EQ(greedy_mds(graph::empty_graph(4)).size, 4U);
  // Path P9: greedy achieves the optimum 3 (picks degree-2 centers).
  EXPECT_EQ(greedy_mds(graph::path_graph(9)).size, 3U);
}

TEST(Greedy, FirstPickHasMaximumDegree) {
  common::rng gen(602);
  const graph::graph g = graph::barabasi_albert(60, 2, gen);
  const auto res = greedy_mds(g);
  ASSERT_FALSE(res.pick_order.empty());
  EXPECT_EQ(g.degree(res.pick_order.front()), g.max_degree());
}

TEST(Greedy, WithinHDeltaOfOptimum) {
  common::rng gen(603);
  for (int trial = 0; trial < 8; ++trial) {
    const graph::graph g = graph::gnp_random(26, 0.15, gen);
    const auto res = greedy_mds(g);
    const auto opt = exact::solve_mds(g);
    ASSERT_TRUE(opt.has_value());
    EXPECT_LE(static_cast<double>(res.size),
              greedy_ratio_bound(g.max_degree()) *
                      static_cast<double>(opt->size) +
                  1e-9)
        << g.summary();
  }
}

TEST(Greedy, AdversarialInstanceForcesLogRatio) {
  // On greedy_adversarial(t) the optimum is 2 but greedy picks the bait
  // chain: one set node per size class, roughly t picks.
  for (std::size_t t : {4UL, 5UL, 6UL}) {
    const graph::graph g = graph::greedy_adversarial(t);
    const auto res = greedy_mds(g);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
    EXPECT_GE(res.size, t - 1) << "t=" << t;  // near-linear in t
    const auto opt = exact::solve_mds(g);
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->size, 2U);
  }
}

TEST(Greedy, TieBreaksByLowestId) {
  // Two disjoint edges: spans are all 2; greedy must pick node 0 first.
  graph::graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph::graph g = std::move(b).build();
  const auto res = greedy_mds(g);
  ASSERT_EQ(res.size, 2U);
  EXPECT_EQ(res.pick_order[0], 0U);
  EXPECT_EQ(res.pick_order[1], 2U);
}

TEST(GreedyBound, HarmonicValues) {
  EXPECT_NEAR(greedy_ratio_bound(0), 1.0, 1e-12);
  EXPECT_NEAR(greedy_ratio_bound(1), 1.5, 1e-12);
  EXPECT_NEAR(greedy_ratio_bound(3), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(WeightedGreedy, PrefersCheapCover) {
  // Star with pricey hub: weighted greedy covers via leaves when the hub
  // costs more than covering each leaf individually... with 3 leaves and
  // hub cost 10 the leaf-only cover (cost 3) wins.
  const graph::graph g = graph::star_graph(4);
  const std::vector<double> cost{10.0, 1.0, 1.0, 1.0};
  const auto res = greedy_weighted_mds(g, cost);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  EXPECT_LE(verify::set_cost(res.in_set, cost), 3.0 + 1e-12);
}

TEST(WeightedGreedy, UnitCostsMatchUnweighted) {
  common::rng gen(604);
  const graph::graph g = graph::gnp_random(40, 0.1, gen);
  const std::vector<double> ones(g.node_count(), 1.0);
  EXPECT_EQ(greedy_weighted_mds(g, ones).size, greedy_mds(g).size);
}

TEST(WeightedGreedy, InputValidation) {
  const graph::graph g = graph::path_graph(3);
  EXPECT_THROW((void)greedy_weighted_mds(g, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)greedy_weighted_mds(g, std::vector<double>{1.0, -1.0, 1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace domset::baselines
