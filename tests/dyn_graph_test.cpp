// The dynamic overlay graph: pending-vs-committed isolation, commit
// folding with cancellation, rebase correctness against a freshly built
// CSR, snapshot persistence, and every documented apply() rejection.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dyn/dynamic_graph.hpp"
#include "dyn/mutation.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace domset {
namespace {

using dyn::dynamic_graph;
using dyn::mutation;

void apply_spec(dynamic_graph& g, const char* spec) {
  for (const mutation& m : dyn::parse_mutation_list(spec)) g.apply(m);
}

/// The committed adjacency read three ways -- overlay neighbors(), the
/// repair view, and a materialized snapshot -- must agree exactly.
void expect_surfaces_agree(dynamic_graph& g) {
  const core::adjacency_view view = g.view();
  ASSERT_EQ(view.node_count, g.node_count());
  std::vector<std::vector<graph::node_id>> via_view(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    view.for_each_neighbor(
        v, [&](graph::node_id u) { via_view[v].push_back(u); });

  // neighbors() and view() read the overlay *before* snapshot() rebases.
  std::vector<std::vector<graph::node_id>> via_neighbors(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    via_neighbors[v] = g.neighbors(v);

  const graph::graph snap = g.snapshot();
  ASSERT_EQ(snap.node_count(), g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    std::vector<graph::node_id> via_snap;
    for (const graph::node_id u : snap.neighbors(v)) via_snap.push_back(u);
    EXPECT_EQ(via_neighbors[v], via_snap) << "node " << v;
    EXPECT_EQ(via_view[v], via_snap) << "node " << v;
  }
}

TEST(DynGraph, PendingBatchIsInvisibleUntilCommit) {
  dynamic_graph g(graph::path_graph(4));  // 0-1-2-3
  apply_spec(g, "add=0-3+del=1-2");

  // Committed surface: still the path.
  EXPECT_EQ(g.epoch(), 0U);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.edge_count(), 3U);
  // Live surface: the batch applied.
  EXPECT_FALSE(g.live_has_edge(1, 2));
  EXPECT_TRUE(g.live_has_edge(0, 3));
  EXPECT_EQ(g.live_edge_count(), 3U);
  EXPECT_EQ(g.pending_mutations(), 2U);

  const dyn::commit_result commit = g.commit();
  EXPECT_EQ(commit.epoch, 1U);
  EXPECT_EQ(commit.mutations.size(), 2U);
  EXPECT_EQ(commit.touched,
            (std::vector<graph::node_id>{0, 1, 2, 3}));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_EQ(g.pending_mutations(), 0U);
}

TEST(DynGraph, CommitFoldsWithCancellation) {
  dynamic_graph g(graph::path_graph(3));  // 0-1-2
  apply_spec(g, "del=0-1");
  g.commit();
  apply_spec(g, "add=0-1");  // re-add of a committed removal must cancel
  g.commit();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 2U);
  expect_surfaces_agree(g);
}

TEST(DynGraph, NodeLifecycleAndTouchedSets) {
  dynamic_graph g(graph::path_graph(3));  // 0-1-2
  apply_spec(g, "delnode=1");
  const dyn::commit_result commit = g.commit();
  // A deleted hub touches itself and every ex-neighbor.
  EXPECT_EQ(commit.touched, (std::vector<graph::node_id>{0, 1, 2}));
  EXPECT_EQ(g.node_count(), 3U);  // the id stays valid, isolated
  EXPECT_EQ(g.degree(1), 0U);
  EXPECT_EQ(g.edge_count(), 0U);

  apply_spec(g, "addnode=3+add=3-0");
  g.commit();
  EXPECT_EQ(g.node_count(), 4U);
  EXPECT_TRUE(g.has_edge(0, 3));
  expect_surfaces_agree(g);
}

TEST(DynGraph, ApplyRejectsInconsistentMutations) {
  dynamic_graph g(graph::path_graph(3));
  EXPECT_THROW(apply_spec(g, "add=0-1"), std::invalid_argument);  // exists
  EXPECT_THROW(apply_spec(g, "del=0-2"), std::invalid_argument);  // missing
  EXPECT_THROW(apply_spec(g, "add=0-9"), std::invalid_argument);  // range
  EXPECT_THROW(apply_spec(g, "addnode=7"), std::invalid_argument);  // id gap
  // Rejections leave the pending batch untouched.
  EXPECT_EQ(g.pending_mutations(), 0U);
  // Within one batch the rules apply to the *live* state.
  apply_spec(g, "add=0-2");
  EXPECT_THROW(apply_spec(g, "add=0-2"), std::invalid_argument);
  apply_spec(g, "del=0-2");  // legal again: deleting the pending add
}

TEST(DynGraph, SnapshotsPersistAcrossLaterCommitsAndRebases) {
  dynamic_graph g(graph::path_graph(4));
  const graph::graph before = g.snapshot();

  // Churn enough to force rebases (snapshot() rebases unconditionally).
  for (int round = 0; round < 4; ++round) {
    apply_spec(g, "del=1-2");
    g.commit();
    (void)g.snapshot();
    apply_spec(g, "add=1-2");
    g.commit();
    (void)g.snapshot();
  }

  // The first snapshot still reads as the original path.
  ASSERT_EQ(before.node_count(), 4U);
  EXPECT_EQ(before.edge_count(), 3U);
  for (graph::node_id v = 0; v + 1 < 4; ++v) {
    bool found = false;
    for (const graph::node_id u : before.neighbors(v)) found |= u == v + 1;
    EXPECT_TRUE(found) << "edge " << v << "-" << v + 1;
  }
}

TEST(DynGraph, LongMutationStreamMatchesFreshlyBuiltGraph) {
  // Drive a deterministic add/del stream, then compare every surface
  // against a graph built directly from the surviving edge set.
  const std::size_t n = 30;
  dynamic_graph g(graph::path_graph(n));
  std::vector<std::vector<bool>> edge(n, std::vector<bool>(n, false));
  for (std::size_t v = 0; v + 1 < n; ++v)
    edge[v][v + 1] = edge[v + 1][v] = true;

  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int batch = 0; batch < 20; ++batch) {
    for (int i = 0; i < 10; ++i) {
      const graph::node_id u = next() % n;
      const graph::node_id v = next() % n;
      if (u == v) continue;
      const mutation m{edge[u][v] ? dyn::mutation_kind::del_edge
                                  : dyn::mutation_kind::add_edge,
                       std::min(u, v), std::max(u, v)};
      g.apply(m);
      edge[u][v] = edge[v][u] = !edge[u][v];
    }
    g.commit();
  }

  graph::graph_builder b(n);
  std::size_t edges = 0;
  for (graph::node_id u = 0; u < n; ++u)
    for (graph::node_id v = u + 1; v < n; ++v)
      if (edge[u][v]) {
        b.add_edge(u, v);
        ++edges;
      }
  const graph::graph expected = std::move(b).build();

  EXPECT_EQ(g.edge_count(), edges);
  for (graph::node_id v = 0; v < n; ++v) {
    std::vector<graph::node_id> want;
    for (const graph::node_id u : expected.neighbors(v)) want.push_back(u);
    EXPECT_EQ(g.neighbors(v), want) << "node " << v;
  }
  expect_surfaces_agree(g);
}

TEST(DynGraph, EmptyCommitIsALegalEpoch) {
  dynamic_graph g(graph::path_graph(2));
  const dyn::commit_result commit = g.commit();
  EXPECT_EQ(commit.epoch, 1U);
  EXPECT_TRUE(commit.mutations.empty());
  EXPECT_TRUE(commit.touched.empty());
  EXPECT_EQ(g.edge_count(), 1U);
}

}  // namespace
}  // namespace domset
