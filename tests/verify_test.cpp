#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace domset::verify {
namespace {

TEST(DominatingSet, HubDominatesStar) {
  const graph::graph g = graph::star_graph(6);
  std::vector<std::uint8_t> hub(6, 0);
  hub[0] = 1;
  EXPECT_TRUE(is_dominating_set(g, hub));
  std::vector<std::uint8_t> leaf(6, 0);
  leaf[1] = 1;
  EXPECT_FALSE(is_dominating_set(g, leaf));  // other leaves uncovered
}

TEST(DominatingSet, EmptySetOnlyForEmptyGraph) {
  EXPECT_TRUE(is_dominating_set(graph::graph{}, std::vector<std::uint8_t>{}));
  const graph::graph g = graph::empty_graph(1);
  EXPECT_FALSE(is_dominating_set(g, std::vector<std::uint8_t>{0}));
  EXPECT_TRUE(is_dominating_set(g, std::vector<std::uint8_t>{1}));
}

TEST(DominatingSet, UndominatedNodesListed) {
  const graph::graph g = graph::path_graph(5);
  std::vector<std::uint8_t> mid(5, 0);
  mid[2] = 1;  // covers 1,2,3
  const auto holes = undominated_nodes(g, mid);
  ASSERT_EQ(holes.size(), 2U);
  EXPECT_EQ(holes[0], 0U);
  EXPECT_EQ(holes[1], 4U);
}

TEST(SetHelpers, SizeAndCost) {
  const std::vector<std::uint8_t> s{1, 0, 1, 1, 0};
  EXPECT_EQ(set_size(s), 3U);
  const std::vector<double> cost{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(set_cost(s, cost), 8.0);
}

TEST(Minimality, DetectsRedundantMember) {
  const graph::graph g = graph::path_graph(3);
  // {1} is minimal; {0,1} is dominating but 0 is redundant.
  std::vector<std::uint8_t> minimal{0, 1, 0};
  EXPECT_TRUE(is_minimal_dominating_set(g, minimal));
  std::vector<std::uint8_t> redundant{1, 1, 0};
  EXPECT_FALSE(is_minimal_dominating_set(g, redundant));
}

TEST(Minimality, NonDominatingIsNotMinimal) {
  const graph::graph g = graph::path_graph(4);
  EXPECT_FALSE(is_minimal_dominating_set(g, std::vector<std::uint8_t>{1, 0, 0, 0}));
}

TEST(Minimality, AllNodesOfCompleteGraph) {
  const graph::graph g = graph::complete_graph(4);
  EXPECT_FALSE(
      is_minimal_dominating_set(g, std::vector<std::uint8_t>{1, 1, 1, 1}));
  EXPECT_TRUE(
      is_minimal_dominating_set(g, std::vector<std::uint8_t>{1, 0, 0, 0}));
}

}  // namespace
}  // namespace domset::verify
