#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace domset::common {
namespace {

TEST(SplitMix64, AdvancesAndMixes) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  const std::uint64_t a = splitmix64_next(s1);
  const std::uint64_t b = splitmix64_next(s2);
  EXPECT_EQ(a, b);            // deterministic
  EXPECT_NE(s1, 42ULL);       // state advanced
  EXPECT_NE(splitmix64_next(s1), a);  // subsequent output differs
}

TEST(DeriveSeed, DistinctStreamsDiffer) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream)
    seeds.insert(derive_seed(7, stream));
  EXPECT_EQ(seeds.size(), 1000U);
}

TEST(DeriveSeed, AdjacentGlobalSeedsDoNotCollide) {
  // Regression guard for the naive xor-combination pitfall.
  EXPECT_NE(derive_seed(8, 0), derive_seed(9, 1));
  EXPECT_NE(derive_seed(8, 1), derive_seed(9, 0));
}

TEST(Rng, DeterministicReplay) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsFromSameGlobalSeedDiverge) {
  rng a(99, 0);
  rng b(99, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  rng gen(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = gen.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  rng gen(6);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += gen.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  rng gen(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(gen.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  rng gen(8);
  constexpr std::uint64_t bound = 10;
  std::array<int, bound> counts{};
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.next_below(bound)];
  for (const int c : counts) {
    EXPECT_GT(c, n / bound * 0.9);
    EXPECT_LT(c, n / bound * 1.1);
  }
}

TEST(Rng, NextInInclusiveRange) {
  rng gen(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = gen.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  rng gen(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.next_bernoulli(0.0));
    EXPECT_TRUE(gen.next_bernoulli(1.0));
    EXPECT_FALSE(gen.next_bernoulli(-0.5));
    EXPECT_TRUE(gen.next_bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  rng gen(11);
  constexpr int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (gen.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  rng gen(12);
  constexpr int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = gen.next_normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(ShuffleSpan, IsPermutation) {
  rng gen(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle_span(v.data(), v.size(), gen);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 10U);
}

TEST(ShuffleSpan, SmallInputsAreNoOps) {
  rng gen(14);
  std::vector<int> empty;
  shuffle_span(empty.data(), 0, gen);
  std::vector<int> one{7};
  shuffle_span(one.data(), 1, gen);
  EXPECT_EQ(one[0], 7);
}

TEST(ShuffleSpan, UniformFirstPosition) {
  constexpr int n = 5;
  std::array<int, n> counts{};
  constexpr int trials = 50000;
  rng gen(15);
  for (int t = 0; t < trials; ++t) {
    std::array<int, n> v{0, 1, 2, 3, 4};
    shuffle_span(v.data(), v.size(), gen);
    ++counts[v[0]];
  }
  for (const int c : counts) {
    EXPECT_GT(c, trials / n * 0.9);
    EXPECT_LT(c, trials / n * 1.1);
  }
}

}  // namespace
}  // namespace domset::common
