// Parameterized structural-property sweep over every generator family:
// whatever the family and size, the produced graph must be a simple
// undirected graph with consistent CSR structure, and family-specific
// invariants (regularity, tree-ness, connectivity, planarity of degree
// bounds) must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace domset::graph {
namespace {

struct generator_spec {
  std::string name;
  graph (*make)(std::size_t n, std::uint64_t seed);
  bool always_connected;
};

graph make_path(std::size_t n, std::uint64_t) { return path_graph(n); }
graph make_cycle(std::size_t n, std::uint64_t) {
  return cycle_graph(std::max<std::size_t>(n, 3));
}
graph make_star(std::size_t n, std::uint64_t) { return star_graph(n); }
graph make_complete(std::size_t n, std::uint64_t) {
  return complete_graph(std::min<std::size_t>(n, 40));
}
graph make_grid(std::size_t n, std::uint64_t) {
  const auto side = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
  return grid_graph(side, side);
}
graph make_torus(std::size_t n, std::uint64_t) {
  const auto side = std::max<std::size_t>(
      3, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
  return torus_graph(side, side);
}
graph make_tree(std::size_t n, std::uint64_t) {
  std::size_t depth = 1;
  while (((1ULL << (depth + 2)) - 1) < n) ++depth;
  return balanced_tree(2, depth);
}
graph make_caterpillar(std::size_t n, std::uint64_t) {
  return caterpillar(std::max<std::size_t>(1, n / 4), 3);
}
graph make_gnp(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return gnp_random(n, 6.0 / static_cast<double>(n), gen);
}
graph make_gnm(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return gnm_random(n, 3 * n, gen);
}
graph make_udg(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return random_geometric(n, 1.4 / std::sqrt(static_cast<double>(n)), gen).g;
}
graph make_ba(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return barabasi_albert(n, 3, gen);
}
graph make_regular(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return random_regular(n - n % 2, 5, gen);
}
graph make_cluster(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return cluster_graph(std::max<std::size_t>(1, n / 10), 10, n / 20, gen);
}
graph make_adversarial(std::size_t n, std::uint64_t) {
  std::size_t t = 2;
  while ((2ULL << (t + 1)) - 2 + t + 2 < n) ++t;
  return greedy_adversarial(t);
}

const generator_spec kGenerators[] = {
    {"path", make_path, true},
    {"cycle", make_cycle, true},
    {"star", make_star, true},
    {"complete", make_complete, true},
    {"grid", make_grid, true},
    {"torus", make_torus, true},
    {"tree", make_tree, true},
    {"caterpillar", make_caterpillar, true},
    {"gnp", make_gnp, false},
    {"gnm", make_gnm, false},
    {"udg", make_udg, false},
    {"ba", make_ba, true},
    {"regular", make_regular, false},
    {"cluster", make_cluster, true},
    {"adversarial", make_adversarial, true},
};

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(GeneratorProperty, StructuralInvariants) {
  const auto [gen_idx, n] = GetParam();
  const generator_spec& spec = kGenerators[gen_idx];
  const graph g = spec.make(n, 42 + n);

  // (1) Degree sum = 2m (handshake lemma via CSR consistency).
  std::size_t degree_sum = 0;
  for (node_id v = 0; v < g.node_count(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.edge_count());

  // (2) Neighbor lists sorted, self-loop free, duplicate free, symmetric.
  std::uint32_t observed_max = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (const node_id u : nbrs) {
      EXPECT_NE(u, v);
      EXPECT_LT(u, g.node_count());
      EXPECT_TRUE(g.has_edge(u, v));
    }
    observed_max = std::max(observed_max, g.degree(v));
  }

  // (3) max_degree() is exact.
  EXPECT_EQ(g.max_degree(), observed_max);

  // (4) Connectivity where the family guarantees it.
  if (spec.always_connected && g.node_count() > 0) {
    EXPECT_TRUE(is_connected(g)) << spec.name << " n=" << n;
  }

  // (5) delta^(2) >= delta^(1) >= degree, pointwise.
  const auto d1 = max_degree_1hop(g);
  const auto d2 = max_degree_2hop(g);
  for (node_id v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(d1[v], g.degree(v));
    EXPECT_GE(d2[v], d1[v]);
    EXPECT_LE(d2[v], g.max_degree());
  }
}

TEST_P(GeneratorProperty, SeedDeterminism) {
  const auto [gen_idx, n] = GetParam();
  const generator_spec& spec = kGenerators[gen_idx];
  const graph a = spec.make(n, 777);
  const graph b = spec.make(n, 777);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (node_id v = 0; v < a.node_count(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorProperty,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Values<std::size_t>(12, 60, 200)),
    [](const ::testing::TestParamInfo<GeneratorProperty::ParamType>& info) {
      return kGenerators[std::get<0>(info.param)].name + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace domset::graph
