// Registry-generic property harness (ISSUE 8): every registered integral
// solver -- enrolled automatically via solver::integral_output(), so a
// newly registered solver joins every sweep with zero test edits -- runs
// over every harness graph family (tests/support/families.hpp: gnp, ba,
// star, grid, tree, and a .dcsr-file-loaded ba) and must uphold the
// properties no dominating-set solver may violate:
//
//   * validity: the output dominates the graph;
//   * determinism: digest + run metrics are bit-identical across
//     {push, pull} x {1, 2, 8} threads (docs/threading.md contract);
//   * soundness: size >= OPT (exact branch-and-bound) and size >= the
//     LP dual lower bound; solvers carrying a *worst-case* certificate
//     (arboricity's per-instance bound, greedy's H(Delta + 1)) must also
//     come in under ratio_bound * OPT -- expectation-only bounds
//     (pipeline, lrg, ...) are checked for sanity (>= 1), not enforced
//     per instance;
//   * metamorphic: relabeling nodes or adding one edge never breaks
//     validity, and the ID-oblivious arboricity solver must commute with
//     relabeling exactly;
//   * fault/repair: with crash faults injected, repair=radius and
//     repair=greedy both restore a verified dominating set.
//
// The `auto` meta-solver gets two extra contracts: bit-identity with its
// selected base solver, and a recorded selection block.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "exact/exact_mds.hpp"
#include "exec/context.hpp"
#include "graph/properties.hpp"
#include "sim/fault.hpp"
#include "support/families.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

using testsupport::family_names;
using testsupport::integral_solver_names;
using testsupport::make_family;

constexpr std::uint64_t kSeed = 7;

api::solve_result run_solver(const std::string& name, const graph::graph& g,
                             const exec::context& exec,
                             const api::param_map& params = {}) {
  return api::solver_registry::instance().find(name).solve(g, exec, params);
}

void expect_metrics_equal(const sim::run_metrics& a,
                          const sim::run_metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bits_sent, b.bits_sent);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.max_messages_per_node, b.max_messages_per_node);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_lost_to_faults, b.messages_lost_to_faults);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.node_rounds_down, b.node_rounds_down);
  EXPECT_EQ(a.nodes_crashed, b.nodes_crashed);
  EXPECT_EQ(a.congest_violation, b.congest_violation);
  EXPECT_EQ(a.hit_round_limit, b.hit_round_limit);
}

/// Solvers whose ratio_bound is a worst-case (per-instance or
/// adversarial) certificate rather than an in-expectation guarantee.
bool has_hard_certificate(const std::string& solver) {
  return solver == "arboricity" || solver == "greedy";
}

class SolverProperties
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  [[nodiscard]] const std::string& solver() const {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] const std::string& family() const {
    return std::get<1>(GetParam());
  }
};

TEST_P(SolverProperties, ValidAndDeterministicAcrossDeliveryAndThreads) {
  const graph::graph g = make_family(family(), 90, kSeed);

  exec::context reference_exec;
  reference_exec.seed = kSeed;
  reference_exec.delivery = sim::delivery_mode::push;
  reference_exec.threads = 1;
  const api::solve_result reference = run_solver(solver(), g, reference_exec);

  ASSERT_EQ(reference.in_set.size(), g.node_count());
  EXPECT_TRUE(verify::is_dominating_set(g, reference.in_set))
      << solver() << " on " << family() << ": "
      << verify::undominated_nodes(g, reference.in_set).size()
      << " undominated nodes";
  EXPECT_EQ(reference.size, verify::set_size(reference.in_set));
  const std::uint64_t reference_digest = api::solution_digest(reference);

  for (const sim::delivery_mode delivery :
       {sim::delivery_mode::push, sim::delivery_mode::pull}) {
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      if (delivery == sim::delivery_mode::push && threads == 1) continue;
      exec::context exec = reference_exec;
      exec.delivery = delivery;
      exec.threads = threads;
      const api::solve_result probe = run_solver(solver(), g, exec);
      EXPECT_EQ(api::solution_digest(probe), reference_digest)
          << solver() << " on " << family() << " diverged at "
          << (delivery == sim::delivery_mode::push ? "push" : "pull") << "/"
          << threads << " threads";
      expect_metrics_equal(probe.metrics, reference.metrics);
    }
  }
}

TEST_P(SolverProperties, SizeSoundAgainstExactOptimum) {
  const graph::graph g = make_family(family(), 36, kSeed);

  exec::context exec;
  exec.seed = kSeed;
  const api::solve_result result = run_solver(solver(), g, exec);
  ASSERT_TRUE(verify::is_dominating_set(g, result.in_set));

  const auto exact = exact::solve_mds(g);
  ASSERT_TRUE(exact.has_value()) << "exact solver blew its node budget";
  EXPECT_GE(result.size, exact->size)
      << solver() << " on " << family() << " undercut the optimum";
  EXPECT_GE(static_cast<double>(result.size) + 1e-9,
            graph::dual_lower_bound(g));

  if (result.ratio_bound > 0.0) {
    EXPECT_GE(result.ratio_bound, 1.0);
    if (has_hard_certificate(solver())) {
      EXPECT_LE(static_cast<double>(result.size),
                result.ratio_bound * static_cast<double>(exact->size) + 1e-6)
          << solver() << " on " << family()
          << " violated its own certificate: size " << result.size
          << ", bound " << result.ratio_bound << ", OPT " << exact->size;
    }
  }
}

TEST_P(SolverProperties, MetamorphicRelabelPreservesValidity) {
  const graph::graph g = make_family(family(), 60, kSeed);
  const auto pi = testsupport::random_permutation(g.node_count(), kSeed + 1);
  const graph::graph h = testsupport::relabel(g, pi);

  exec::context exec;
  exec.seed = kSeed;
  const api::solve_result base = run_solver(solver(), g, exec);
  const api::solve_result relabeled = run_solver(solver(), h, exec);

  EXPECT_TRUE(verify::is_dominating_set(g, base.in_set));
  EXPECT_TRUE(verify::is_dominating_set(h, relabeled.in_set));

  // The arboricity sweep never reads node ids (thresholds and counters
  // only), so it must commute with relabeling node for node.  Randomized
  // and id-tie-breaking solvers are exempt: their output may legitimately
  // change under a renaming.
  if (solver() == "arboricity") {
    EXPECT_EQ(base.size, relabeled.size);
    for (graph::node_id v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(relabeled.in_set[pi[v]], base.in_set[v])
          << "node " << v << " (renamed " << pi[v] << ")";
    }
  }
}

TEST_P(SolverProperties, MetamorphicEdgeAddPreservesValidity) {
  const graph::graph g = make_family(family(), 60, kSeed);
  const graph::graph h = testsupport::with_extra_edge(g, kSeed + 2);

  exec::context exec;
  exec.seed = kSeed;
  const api::solve_result result = run_solver(solver(), h, exec);
  EXPECT_TRUE(verify::is_dominating_set(h, result.in_set))
      << solver() << " on " << family() << " broke after one edge insert";
}

TEST_P(SolverProperties, CrashFaultsPlusRepairRestoreValidity) {
  const graph::graph g = make_family(family(), 60, kSeed);

  exec::context exec;
  exec.seed = kSeed;
  exec.faults = std::make_shared<const sim::fault_plan>(
      sim::parse_fault_plan("crash=5@1+crash=11@2"));

  for (const char* mode : {"radius", "greedy"}) {
    api::param_map params;
    params.set("repair", mode);
    const api::solve_result result = run_solver(solver(), g, exec, params);
    EXPECT_TRUE(verify::is_dominating_set(g, result.in_set))
        << solver() << " on " << family() << " with repair=" << mode;
    EXPECT_TRUE(result.repair.attempted);
    EXPECT_EQ(result.repair.mode, mode);
    EXPECT_EQ(result.repair.holes_after, 0U);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverProperties,
    ::testing::Combine(::testing::ValuesIn(integral_solver_names()),
                       ::testing::ValuesIn(family_names())),
    [](const ::testing::TestParamInfo<SolverProperties::ParamType>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// ------------------------------------------------------------- auto solver

class AutoSolverContract : public ::testing::TestWithParam<std::string> {};

/// `auto` must be a pure dispatcher: bit-identical output, metrics and
/// ratio to the solver it says it selected, with the probe evidence
/// recorded alongside.
TEST_P(AutoSolverContract, BitIdenticalWithSelectedSolver) {
  const graph::graph g = make_family(GetParam(), 120, kSeed);

  exec::context exec;
  exec.seed = kSeed;
  const api::solve_result via_auto = run_solver("auto", g, exec);

  ASSERT_TRUE(via_auto.selection.attempted);
  ASSERT_FALSE(via_auto.selection.selected_solver.empty());
  EXPECT_NE(via_auto.selection.selected_solver, "auto");
  EXPECT_GT(via_auto.selection.avg_degree, 0.0);
  EXPECT_GE(via_auto.selection.arboricity_lower, 0.5);

  const api::solve_result direct =
      run_solver(via_auto.selection.selected_solver, g, exec);
  EXPECT_EQ(api::solution_digest(via_auto), api::solution_digest(direct));
  EXPECT_EQ(via_auto.size, direct.size);
  EXPECT_DOUBLE_EQ(via_auto.ratio_bound, direct.ratio_bound);
  expect_metrics_equal(via_auto.metrics, direct.metrics);
  EXPECT_FALSE(direct.selection.attempted);
}

INSTANTIATE_TEST_SUITE_P(Families, AutoSolverContract,
                         ::testing::ValuesIn(family_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

/// The portfolio pays off where it should: on the power-law ba family the
/// probe steers `auto` to the arboricity sweep and the result beats the
/// pipeline outright; on the bounded-degree grid it keeps the pipeline
/// and never loses to the sweep.  (The full-size comparison lives in the
/// portfolio bench row; this pins the selection rule's sign at test
/// scale.)
TEST(SolverPortfolio, AutoMatchesTheWinningSpecialist) {
  exec::context exec;
  exec.seed = 1;

  const graph::graph ba = make_family("ba", 2000, 1);
  const api::solve_result ba_auto = run_solver("auto", ba, exec);
  const api::solve_result ba_pipeline = run_solver("pipeline", ba, exec);
  const api::solve_result ba_arb = run_solver("arboricity", ba, exec);
  EXPECT_EQ(ba_auto.selection.selected_solver, "arboricity");
  EXPECT_EQ(ba_auto.size, ba_arb.size);
  EXPECT_LT(ba_auto.size, ba_pipeline.size);
  EXPECT_LE(ba_auto.size, std::min(ba_pipeline.size, ba_arb.size));

  const graph::graph grid = make_family("grid", 900, 1);
  const api::solve_result grid_auto = run_solver("auto", grid, exec);
  const api::solve_result grid_pipeline = run_solver("pipeline", grid, exec);
  const api::solve_result grid_arb = run_solver("arboricity", grid, exec);
  EXPECT_EQ(grid_auto.selection.selected_solver, "pipeline");
  EXPECT_EQ(grid_auto.size, grid_pipeline.size);
  EXPECT_LE(grid_auto.size, std::min(grid_pipeline.size, grid_arb.size));
}

/// Every harness family enrolls every integral solver: the sweep above is
/// only meaningful if the enrollment list actually covers the registry.
TEST(SolverPortfolio, HarnessEnrollsEveryIntegralSolver) {
  const auto enrolled = integral_solver_names();
  std::size_t integral = 0;
  for (const api::solver* s : api::solver_registry::instance().list())
    if (s->integral_output()) ++integral;
  EXPECT_EQ(enrolled.size(), integral);
  EXPECT_GE(enrolled.size(), 9U);
  for (const char* required : {"pipeline", "arboricity", "auto", "greedy",
                               "lrg", "cds"}) {
    EXPECT_NE(std::find(enrolled.begin(), enrolled.end(), required),
              enrolled.end())
        << required << " missing from the harness enrollment";
  }
}

}  // namespace
}  // namespace domset
