// Numeric verification of the mathematical facts the paper's proofs rest
// on (Sect. 3), plus sanity properties of the bound formulas exposed by
// the library.  These document the analysis machinery and guard the bound
// helpers against regressions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "core/rounding.hpp"
#include "core/weighted.hpp"

namespace domset {
namespace {

TEST(Fact1MeansInequality, HoldsOnRandomSets) {
  // prod(x) <= (sum(x)/|A|)^{|A|} for positive reals.
  common::rng gen(1501);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + gen.next_below(12);
    double log_prod = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = 0.01 + gen.next_double() * 10.0;
      log_prod += std::log(x);
      sum += x;
    }
    const double log_rhs =
        static_cast<double>(n) * std::log(sum / static_cast<double>(n));
    EXPECT_LE(log_prod, log_rhs + 1e-9) << "trial " << trial;
  }
}

TEST(Fact2ExponentialBound, HoldsOnGridOfInputs) {
  // (1 - x/n)^n <= e^{-x} for n >= x >= 1.
  for (double n = 1.0; n <= 64.0; n += 1.0) {
    for (double x = 1.0; x <= n; x += 0.5) {
      const double lhs = std::pow(1.0 - x / n, n);
      EXPECT_LE(lhs, std::exp(-x) + 1e-12) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Theorem3Chain, QiBoundMatchesProofSteps) {
  // The proof of Theorem 3 bounds the probability that no neighbor of v_i
  // is selected by 1/(delta^(1)_i + 1) via Facts 1 and 2.  Reproduce the
  // chain numerically: for any feasible x over a neighborhood of size
  // d+1 with max-degree proxy D >= d, prod(1 - x_j ln(D+1)) <= 1/(D+1)
  // whenever all p_j < 1.
  common::rng gen(1502);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t d_plus_1 = 2 + gen.next_below(20);
    const double big_d = static_cast<double>(d_plus_1);  // D+1 >= d+1
    // Random feasible x on the neighborhood: sum >= 1.
    std::vector<double> x(d_plus_1);
    double sum = 0.0;
    for (auto& xi : x) {
      xi = gen.next_double();
      sum += xi;
    }
    for (auto& xi : x) xi /= sum;  // sum exactly 1
    double log_q = 0.0;
    bool saturated = false;
    for (const double xi : x) {
      const double p = xi * std::log(big_d);
      if (p >= 1.0) {
        saturated = true;  // q_i = 0 in the proof
        break;
      }
      log_q += std::log(1.0 - p);
    }
    if (!saturated) {
      EXPECT_LE(log_q, -std::log(big_d) + 1e-9) << "trial " << trial;
    }
  }
}

TEST(BoundFormulas, Alg2BoundDecreasingThenFlat) {
  // k*(Delta+1)^{2/k}: decreasing in k until ~2*ln(Delta+1), then grows.
  const std::uint32_t delta = 100;
  const double at_min = 2.0 * std::log(101.0);
  double best = 1e300;
  std::uint32_t best_k = 0;
  for (std::uint32_t k = 1; k <= 30; ++k) {
    const double b = core::alg2_ratio_bound(delta, k);
    if (b < best) {
      best = b;
      best_k = k;
    }
  }
  EXPECT_NEAR(static_cast<double>(best_k), at_min, 2.0);
  // At the optimum the bound is ~ 2e ln(Delta+1) = O(log Delta).
  EXPECT_LE(best, 2.0 * std::exp(1.0) * std::log(101.0) + 1.0);
}

TEST(BoundFormulas, Alg3BoundDominatesAlg2Bound) {
  for (std::uint32_t delta : {1U, 5U, 50U, 500U}) {
    for (std::uint32_t k = 1; k <= 8; ++k) {
      EXPECT_GE(core::alg3_ratio_bound(delta, k),
                core::alg2_ratio_bound(delta, k));
    }
  }
}

TEST(BoundFormulas, WeightedReducesToUnweightedAtUnitCost) {
  for (std::uint32_t delta : {3U, 30U}) {
    for (std::uint32_t k = 1; k <= 6; ++k) {
      EXPECT_NEAR(core::weighted_ratio_bound(delta, k, 1.0),
                  core::alg2_ratio_bound(delta, k), 1e-9);
      // And degrades monotonically in c_max.
      EXPECT_GT(core::weighted_ratio_bound(delta, k, 4.0),
                core::weighted_ratio_bound(delta, k, 2.0));
    }
  }
}

TEST(BoundFormulas, RoundingBoundMonotoneInAlphaAndDelta) {
  EXPECT_GT(core::rounding_ratio_bound(10, 2.0),
            core::rounding_ratio_bound(10, 1.0));
  EXPECT_GT(core::rounding_ratio_bound(100, 1.0),
            core::rounding_ratio_bound(10, 1.0));
  EXPECT_NEAR(core::rounding_ratio_bound(0, 5.0), 1.0, 1e-12);  // ln 1 = 0
}

TEST(BoundFormulas, LogLogVsPlainCrossover) {
  // At alpha = 1:  2(ln d - ln ln d) < 1 + ln d  iff  ln d < 1 + 2 ln ln d.
  // That holds in a moderate-degree window (e.g. d = 20) and fails for
  // very large d where the factor 2 dominates -- the remark's variant is
  // a win for its *multiplicative* form, not uniformly in magnitude.
  EXPECT_LT(core::rounding_ratio_bound_log_log(19, 1.0),
            core::rounding_ratio_bound(19, 1.0));
  EXPECT_GT(core::rounding_ratio_bound_log_log(100000, 1.0),
            core::rounding_ratio_bound(100000, 1.0));
}

TEST(RoundFormulas, ExactCounts) {
  EXPECT_EQ(core::alg2_round_count(1), 2U);
  EXPECT_EQ(core::alg2_round_count(4), 32U);
  EXPECT_EQ(core::alg3_round_count(1), 8U);
  EXPECT_EQ(core::alg3_round_count(4), 74U);
  // O(k^2) with small constants, as Theorem 5 states.
  for (std::uint32_t k = 1; k <= 16; ++k)
    EXPECT_LE(core::alg3_round_count(k), 4U * k * k + 2U * k + 2U);
}

}  // namespace
}  // namespace domset
