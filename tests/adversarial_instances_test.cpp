// Adversarial instances: where the baselines struggle and the bounds bite.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/greedy.hpp"
#include "baselines/wu_li.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

TEST(Adversarial, GreedyBaitVsLpPipeline) {
  // greedy_adversarial(t): OPT = 2, greedy ~ t.  The LP optimum is small,
  // so the pipeline's guarantee is a constant independent of t -- the
  // LP-relaxation approach is immune to the bait structure.
  const std::size_t t = 6;
  const graph::graph g = graph::greedy_adversarial(t);
  const auto opt = exact::solve_mds(g);
  ASSERT_TRUE(opt.has_value());
  ASSERT_EQ(opt->size, 2U);

  const auto greedy = baselines::greedy_mds(g);
  EXPECT_GE(greedy.size, t - 1);

  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  EXPECT_LE(lp_opt->value, 2.0 + 1e-9);

  common::running_stats pipeline_sizes;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    core::pipeline_params params;
    params.k = 3;
    params.exec.seed = seed;
    const auto res = core::compute_dominating_set(g, params);
    ASSERT_TRUE(verify::is_dominating_set(g, res.in_set));
    pipeline_sizes.add(static_cast<double>(res.size));
  }
  // Theorem 6 bound with OPT = 2; measured mean must respect it.
  core::pipeline_params probe;
  probe.k = 3;
  const double bound =
      core::compute_dominating_set(g, probe).expected_ratio_bound * 2.0;
  EXPECT_LE(pipeline_sizes.mean(), bound);
}

TEST(Adversarial, CycleIntegralityGapIsOneThird) {
  // On C_n the LP optimum is n/3 while the IP optimum is ceil(n/3): the
  // relaxation is tight up to rounding, and the algorithms must not
  // undershoot the LP value.
  const graph::graph g = graph::cycle_graph(20);
  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  EXPECT_NEAR(lp_opt->value, 20.0 / 3.0, 1e-9);
  const auto res = core::approximate_lp(g, {.k = 3});
  EXPECT_GE(res.objective, lp_opt->value - 1e-9);
}

TEST(Adversarial, HighDegreeHubDoesNotOverwhelmAlg3) {
  // A hub adjacent to everything plus a sparse fringe: Delta = n-1 makes
  // the bounds weakest.  Everything must still hold.
  common::rng gen(1001);
  graph::graph_builder b(40);
  for (graph::node_id v = 1; v < 40; ++v) b.add_edge(0, v);
  for (int extra = 0; extra < 30; ++extra) {
    const auto u = static_cast<graph::node_id>(1 + gen.next_below(39));
    const auto v = static_cast<graph::node_id>(1 + gen.next_below(39));
    if (u != v) b.add_edge(u, v);
  }
  const graph::graph g = std::move(b).build();
  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  for (std::uint32_t k : {2U, 3U, 4U}) {
    const auto res = core::approximate_lp(g, {.k = k});
    EXPECT_TRUE(lp::is_primal_feasible(g, res.x));
    EXPECT_LE(res.objective, res.ratio_bound * lp_opt->value + 1e-6);
  }
}

TEST(Adversarial, WuLiBlowsUpOnCyclesPipelineDoesNot) {
  const graph::graph g = graph::cycle_graph(60);  // OPT = 20
  const auto wl = baselines::wu_li_mds(g);
  EXPECT_GE(wl.size, 30U);  // Theta(n) behavior

  common::running_stats pipeline_sizes;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    core::pipeline_params params;
    params.k = 4;
    params.exec.seed = seed;
    pipeline_sizes.add(static_cast<double>(
        core::compute_dominating_set(g, params).size));
  }
  // Pipeline should beat Wu-Li on average here.
  EXPECT_LT(pipeline_sizes.mean(), static_cast<double>(wl.size));
}

TEST(Adversarial, DisconnectedComponentsHandledIndependently) {
  // Union of a clique, a cycle and isolated nodes.
  graph::graph_builder b(20);
  for (graph::node_id u = 0; u < 6; ++u)
    for (graph::node_id v = u + 1; v < 6; ++v) b.add_edge(u, v);
  for (graph::node_id v = 6; v < 15; ++v)
    b.add_edge(v, v + 1 == 15 ? 6 : v + 1);
  const graph::graph g = std::move(b).build();  // nodes 15..19 isolated
  core::pipeline_params params;
  params.k = 2;
  const auto res = core::compute_dominating_set(g, params);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  for (graph::node_id v = 15; v < 20; ++v)
    EXPECT_TRUE(res.in_set[v]);  // isolated nodes must self-select
}

TEST(Adversarial, BoundsTightestAtKOne) {
  // k = 1: ratio bound collapses to (Delta+1) + (Delta+1)^2 -- trivially
  // loose; the algorithm selects everything (x = 1).  This anchors the
  // trade-off curve's left end.
  const graph::graph g = graph::grid_graph(4, 4);
  const auto res = core::approximate_lp(g, {.k = 1});
  EXPECT_NEAR(res.objective, 16.0, 1e-9);
}

TEST(Adversarial, DeepTreesKeepInvariants) {
  const graph::graph g = graph::balanced_tree(3, 4);  // 121 nodes
  const auto res = core::approximate_lp(g, {.k = 3});
  EXPECT_TRUE(lp::is_primal_feasible(g, res.x));
  core::pipeline_params params;
  params.k = 3;
  const auto ds = core::compute_dominating_set(g, params);
  EXPECT_TRUE(verify::is_dominating_set(g, ds.in_set));
}

}  // namespace
}  // namespace domset
