#include "baselines/luby_mis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset::baselines {
namespace {

void expect_independent(const graph::graph& g,
                        const std::vector<std::uint8_t>& in_set) {
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    if (!in_set[v]) continue;
    for (const graph::node_id u : g.neighbors(v))
      EXPECT_FALSE(in_set[u]) << "edge " << v << "-" << u << " inside MIS";
  }
}

TEST(LubyMis, IndependentAndDominatingAcrossFamilies) {
  common::rng gen(1201);
  const graph::graph graphs[] = {
      graph::star_graph(20),        graph::cycle_graph(17),
      graph::path_graph(13),        graph::grid_graph(6, 6),
      graph::complete_graph(11),    graph::empty_graph(5),
      graph::gnp_random(60, 0.1, gen), graph::barabasi_albert(50, 2, gen)};
  for (const auto& g : graphs) {
    luby_params params;
    params.exec.seed = 5;
    const auto res = luby_mis(g, params);
    EXPECT_FALSE(res.metrics.hit_round_limit) << g.summary();
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << g.summary();
    expect_independent(g, res.in_set);
    EXPECT_EQ(res.size, verify::set_size(res.in_set));
  }
}

TEST(LubyMis, CompleteGraphSelectsExactlyOne) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    luby_params params;
    params.exec.seed = seed;
    const auto res = luby_mis(graph::complete_graph(25), params);
    EXPECT_EQ(res.size, 1U);
    // One drawing phase settles everything; the losers consume the join
    // announcement one round later, so the engine runs 3 rounds.
    EXPECT_EQ(res.metrics.rounds, 3U);
    EXPECT_LE(res.phases, 2U);
  }
}

TEST(LubyMis, EmptyGraphSelectsEveryone) {
  const auto res = luby_mis(graph::empty_graph(7), {});
  EXPECT_EQ(res.size, 7U);
}

TEST(LubyMis, PhasesAreLogarithmicOnRandomGraphs) {
  common::rng gen(1202);
  const graph::graph g = graph::gnp_random(400, 0.03, gen);
  common::running_stats phases;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    luby_params params;
    params.exec.seed = seed;
    const auto res = luby_mis(g, params);
    EXPECT_FALSE(res.metrics.hit_round_limit);
    phases.add(static_cast<double>(res.phases));
  }
  // O(log n) phases whp; generous constant.
  EXPECT_LE(phases.mean(), 6.0 * std::log2(400.0));
}

TEST(LubyMis, DeterministicPerSeed) {
  common::rng gen(1203);
  const graph::graph g = graph::gnp_random(60, 0.1, gen);
  luby_params params;
  params.exec.seed = 9;
  const auto a = luby_mis(g, params);
  const auto b = luby_mis(g, params);
  EXPECT_EQ(a.in_set, b.in_set);
}

TEST(LubyMis, StarCanBlowUp) {
  // On a star the MIS is either {hub} or all the leaves; the latter is
  // n-1 times the optimum -- the "no approximation guarantee" contrast
  // with the paper's approach.  Over seeds we must see the bad outcome.
  bool saw_leaves = false;
  for (std::uint64_t seed = 0; seed < 30 && !saw_leaves; ++seed) {
    luby_params params;
    params.exec.seed = seed;
    const auto res = luby_mis(graph::star_graph(12), params);
    EXPECT_TRUE(res.size == 1 || res.size == 11);
    saw_leaves = res.size == 11;
  }
  EXPECT_TRUE(saw_leaves);
}

TEST(LubyMis, MaximalityNoAugmentationPossible) {
  common::rng gen(1204);
  const graph::graph g = graph::gnp_random(50, 0.15, gen);
  const auto res = luby_mis(g, {});
  // Maximal: every non-member has a member neighbor (= domination), and
  // adding any non-member breaks independence.
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    if (res.in_set[v]) continue;
    bool has_member_neighbor = false;
    for (const graph::node_id u : g.neighbors(v))
      has_member_neighbor |= res.in_set[u] != 0;
    EXPECT_TRUE(has_member_neighbor) << "node " << v;
  }
}

}  // namespace
}  // namespace domset::baselines
