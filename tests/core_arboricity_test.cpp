// The bounded-arboricity threshold sweep (core/arboricity.hpp): schedule
// construction, the per-instance ratio certificate, solver facts on
// instances with known optima, and the round bound 2*(phases + 1) + 4.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "core/arboricity.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

TEST(ArboricitySchedule, StrictlyDecreasingAndFloorRespected) {
  const auto schedule = core::threshold_schedule(100, 1, 0.5);
  ASSERT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.front(), 101U);
  for (std::size_t i = 1; i < schedule.size(); ++i)
    EXPECT_LT(schedule[i], schedule[i - 1]);
  for (const std::uint32_t tau : schedule) EXPECT_GE(tau, 4U);  // 2A + 2
  // The sweep stops at the floor: one more decay step would cross it.
  EXPECT_LT(schedule.back() / (1.0 + 0.5), 4.0 + 1.0);
}

TEST(ArboricitySchedule, EmptyInCleanupOnlyRegime) {
  // Delta + 1 = 4 < 2A + 2 = 6: no threshold fits, cleanup does it all.
  EXPECT_TRUE(core::threshold_schedule(3, 2, 0.5).empty());
}

TEST(ArboricitySchedule, TinyEpsilonStillTerminates) {
  // Denormal-small epsilon: floor division alone would stall, the
  // schedule must still descend (the tau - 1 guard).
  const auto schedule = core::threshold_schedule(40, 1, 1e-12);
  ASSERT_FALSE(schedule.empty());
  for (std::size_t i = 1; i < schedule.size(); ++i)
    EXPECT_LT(schedule[i], schedule[i - 1]);
  EXPECT_EQ(schedule.size(), 41U - 4U + 1U);  // every value 41..4
}

TEST(ArboricitySchedule, RejectsNonPositiveEpsilon) {
  EXPECT_THROW((void)core::threshold_schedule(10, 1, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)core::threshold_schedule(10, 1, -0.5),
               std::invalid_argument);
  EXPECT_THROW(
      (void)core::threshold_schedule(
          10, 1, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(ArboricityRatioBound, MatchesTheHandComputedSum) {
  // Delta = 9, A = 1, schedule {10, 6, 4}:
  //   2A*tau_{-1}/(tau_0-2A-1) = 2*10/7
  // + 2A*tau_0/(tau_1-2A-1)    = 2*10/3
  // + 2A*tau_1/(tau_2-2A-1)    = 2*6/1
  // + tau_last                  = 4
  const std::uint32_t schedule[] = {10, 6, 4};
  EXPECT_NEAR(core::arboricity_ratio_bound(9, 1, schedule),
              20.0 / 7.0 + 20.0 / 3.0 + 12.0 + 4.0, 1e-12);
  // Empty schedule: the cleanup-only certificate is Delta + 1.
  EXPECT_DOUBLE_EQ(
      core::arboricity_ratio_bound(9, 1, std::span<const std::uint32_t>{}),
      10.0);
}

TEST(ArboricityMds, StarPicksTheHub) {
  const auto res = core::arboricity_mds(graph::star_graph(100), {});
  EXPECT_EQ(res.size, 1U);
  EXPECT_EQ(res.in_set[0], 1);  // the hub
  EXPECT_TRUE(verify::is_dominating_set(graph::star_graph(100), res.in_set));
}

TEST(ArboricityMds, CompleteGraphIsTheCleanupRegime) {
  // K_n: A = n - 1, so 2A + 2 > Delta + 1 -- no threshold phase runs and
  // every (mutually uncovered) node joins in cleanup.  The certificate
  // Delta + 1 = n is exactly tight against OPT = 1.
  const graph::graph g = graph::complete_graph(12);
  const auto res = core::arboricity_mds(g, {});
  EXPECT_EQ(res.phases, 0U);
  EXPECT_EQ(res.size, 12U);
  EXPECT_DOUBLE_EQ(res.ratio_bound, 12.0);
}

TEST(ArboricityMds, CertificateHoldsAgainstExactOptimum) {
  common::rng gen(5);
  const graph::graph g = graph::barabasi_albert(60, 2, gen);
  const auto res = core::arboricity_mds(g, {});
  ASSERT_TRUE(verify::is_dominating_set(g, res.in_set));
  const auto exact = exact::solve_mds(g);
  ASSERT_TRUE(exact.has_value());
  EXPECT_GE(res.ratio_bound, 1.0);
  EXPECT_LE(static_cast<double>(res.size),
            res.ratio_bound * static_cast<double>(exact->size) + 1e-9);
}

TEST(ArboricityMds, RoundCountStaysInsideTheBudget) {
  common::rng gen(3);
  const graph::graph g = graph::barabasi_albert(400, 3, gen);
  core::arboricity_params params;
  const auto res = core::arboricity_mds(g, params);
  EXPECT_FALSE(res.metrics.hit_round_limit);
  EXPECT_LE(res.metrics.rounds, 2 * (res.phases + 1) + 4);
  // Messages carry one bit each: LOCAL-model frugality.
  EXPECT_LE(res.metrics.max_message_bits, 1U);
}

TEST(ArboricityMds, SmallerEpsilonMeansMorePhases) {
  common::rng gen(11);
  const graph::graph g = graph::barabasi_albert(300, 2, gen);
  core::arboricity_params coarse;
  coarse.epsilon = 1.0;
  core::arboricity_params fine;
  fine.epsilon = 0.1;
  const auto coarse_res = core::arboricity_mds(g, coarse);
  const auto fine_res = core::arboricity_mds(g, fine);
  EXPECT_GT(fine_res.phases, coarse_res.phases);
  EXPECT_TRUE(verify::is_dominating_set(g, coarse_res.in_set));
  EXPECT_TRUE(verify::is_dominating_set(g, fine_res.in_set));
  // Both sweeps certify something real (the per-phase union bound grows
  // with the phase count, so the finer sweep's certificate is usually
  // *looser* even when its set is smaller -- no ordering is asserted).
  EXPECT_GE(coarse_res.ratio_bound, 1.0);
  EXPECT_GE(fine_res.ratio_bound, 1.0);
}

}  // namespace
}  // namespace domset
