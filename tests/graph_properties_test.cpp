#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace domset::graph {
namespace {

TEST(MaxDegreeHops, StarGraph) {
  const graph g = star_graph(6);  // hub 0 with degree 5
  const auto d1 = max_degree_1hop(g);
  for (node_id v = 0; v < 6; ++v) EXPECT_EQ(d1[v], 5U);  // hub in every N_i
  const auto d2 = max_degree_2hop(g);
  for (node_id v = 0; v < 6; ++v) EXPECT_EQ(d2[v], 5U);
}

TEST(MaxDegreeHops, PathGraph) {
  const graph g = path_graph(6);  // degrees 1,2,2,2,2,1
  const auto d1 = max_degree_1hop(g);
  EXPECT_EQ(d1[0], 2U);
  EXPECT_EQ(d1[3], 2U);
  const auto d2 = max_degree_2hop(g);
  EXPECT_EQ(d2[0], 2U);
}

TEST(MaxDegreeHops, TwoHopSeesDistantHub) {
  // Hub of a star, with a pendant path: 0-1, 0-2, 0-3, 3-4, 4-5.
  graph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const graph g = std::move(b).build();
  const auto d1 = max_degree_1hop(g);
  const auto d2 = max_degree_2hop(g);
  EXPECT_EQ(d1[5], 2U);  // node 5 sees only node 4 (degree 2)
  EXPECT_EQ(d2[5], 2U);  // distance-2 sees node 3 (degree 2)
  EXPECT_EQ(d2[4], 3U);  // distance-2 from 4 reaches hub 0 (degree 3)
}

TEST(DualLowerBound, KnownValues) {
  // K_n: every delta^(1) = n-1, so bound = n * 1/n = 1 = |MDS|.
  EXPECT_NEAR(dual_lower_bound(complete_graph(8)), 1.0, 1e-12);
  // Empty graph: bound = n, and MDS = n.
  EXPECT_NEAR(dual_lower_bound(empty_graph(5)), 5.0, 1e-12);
  // Cycle: every delta^(1) = 2, bound = n/3 = |MDS| for n % 3 == 0.
  EXPECT_NEAR(dual_lower_bound(cycle_graph(9)), 3.0, 1e-12);
}

TEST(Components, DisjointPieces) {
  graph_builder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const graph g = std::move(b).build();  // {0,1,2}, {3,4}, {5}, {6}
  const auto res = connected_components(g);
  EXPECT_EQ(res.count, 4U);
  EXPECT_EQ(res.component[0], res.component[2]);
  EXPECT_EQ(res.component[3], res.component[4]);
  EXPECT_NE(res.component[0], res.component[3]);
  EXPECT_NE(res.component[5], res.component[6]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, SingleAndEmpty) {
  EXPECT_TRUE(is_connected(empty_graph(1)));
  EXPECT_TRUE(is_connected(empty_graph(0)));
  EXPECT_FALSE(is_connected(empty_graph(2)));
}

TEST(Bfs, DistancesOnPath) {
  const graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  graph_builder b(3);
  b.add_edge(0, 1);
  const graph g = std::move(b).build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(Diameter, KnownGraphs) {
  EXPECT_EQ(diameter(path_graph(10)), 9U);
  EXPECT_EQ(diameter(cycle_graph(10)), 5U);
  EXPECT_EQ(diameter(complete_graph(5)), 1U);
  EXPECT_EQ(diameter(star_graph(5)), 2U);
  EXPECT_EQ(diameter(empty_graph(1)), 0U);
}

TEST(Diameter, DisconnectedIsInfinite) {
  EXPECT_EQ(diameter(empty_graph(3)),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(AverageDegree, Values) {
  EXPECT_DOUBLE_EQ(average_degree(cycle_graph(7)), 2.0);
  EXPECT_DOUBLE_EQ(average_degree(empty_graph(4)), 0.0);
  EXPECT_DOUBLE_EQ(average_degree(graph{}), 0.0);
}

TEST(DegreeHistogram, Star) {
  const auto hist = degree_histogram(star_graph(6));
  ASSERT_EQ(hist.size(), 6U);  // max degree 5
  EXPECT_EQ(hist[1], 5U);
  EXPECT_EQ(hist[5], 1U);
  EXPECT_EQ(hist[0], 0U);
}

}  // namespace
}  // namespace domset::graph
