// graph::probe against known ground truth (ISSUE 8 satellite): exact
// degeneracy on families where the core number is a textbook fact, the
// Nash-Williams / Matula-Beck arboricity bracket around it, triangle
// density at its extremes, and the determinism contract -- the probe
// steers the `auto` meta-solver, so its values must be bit-identical at
// every thread count.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/probe.hpp"
#include "sim/thread_pool.hpp"

namespace domset {
namespace {

TEST(GraphProbe, DegeneracyGroundTruth) {
  EXPECT_EQ(graph::degeneracy(graph::empty_graph(5)), 0U);
  // Any forest peels down at degree 1.
  EXPECT_EQ(graph::degeneracy(graph::balanced_tree(3, 4)), 1U);
  EXPECT_EQ(graph::degeneracy(graph::star_graph(50)), 1U);
  EXPECT_EQ(graph::degeneracy(graph::path_graph(17)), 1U);
  // A cycle is 2-regular: min degree 2 everywhere.
  EXPECT_EQ(graph::degeneracy(graph::cycle_graph(20)), 2U);
  // Grids peel from the corners at degree 2.
  EXPECT_EQ(graph::degeneracy(graph::grid_graph(8, 8)), 2U);
  // K_n is (n-1)-degenerate and nothing less.
  EXPECT_EQ(graph::degeneracy(graph::complete_graph(12)), 11U);
}

TEST(GraphProbe, ArboricityBracketFromDegeneracy) {
  const graph::probe_result tree = graph::probe(graph::balanced_tree(3, 4));
  EXPECT_EQ(tree.degeneracy, 1U);
  EXPECT_DOUBLE_EQ(tree.arboricity_lower, 1.0);  // a tree IS one forest
  EXPECT_EQ(tree.arboricity_upper, 1U);

  const graph::probe_result clique = graph::probe(graph::complete_graph(12));
  EXPECT_EQ(clique.degeneracy, 11U);
  EXPECT_DOUBLE_EQ(clique.arboricity_lower, 6.0);  // ceil(n/2) = true value
  EXPECT_EQ(clique.arboricity_upper, 11U);

  const graph::probe_result grid = graph::probe(graph::grid_graph(8, 8));
  EXPECT_DOUBLE_EQ(grid.arboricity_lower, 1.5);
  EXPECT_EQ(grid.arboricity_upper, 2U);
}

TEST(GraphProbe, TriangleDensityAtTheExtremes) {
  // Every wedge of a clique closes.
  const graph::probe_result clique = graph::probe(graph::complete_graph(16));
  EXPECT_GT(clique.wedges_sampled, 0U);
  EXPECT_DOUBLE_EQ(clique.triangle_density, 1.0);
  EXPECT_EQ(clique.triangles_closed, clique.wedges_sampled);

  // Trees and grids are triangle-free.
  EXPECT_DOUBLE_EQ(graph::probe(graph::balanced_tree(3, 5)).triangle_density,
                   0.0);
  EXPECT_DOUBLE_EQ(graph::probe(graph::grid_graph(10, 10)).triangle_density,
                   0.0);

  // No wedge exists below degree 2: the star's leaves are never centers.
  const graph::probe_result star = graph::probe(graph::star_graph(40));
  EXPECT_DOUBLE_EQ(star.triangle_density, 0.0);

  graph::probe_params no_sampling;
  no_sampling.triangle_samples = 0;
  const graph::probe_result skipped =
      graph::probe(graph::complete_graph(8), no_sampling);
  EXPECT_EQ(skipped.wedges_sampled, 0U);
  EXPECT_DOUBLE_EQ(skipped.triangle_density, 0.0);
}

TEST(GraphProbe, DegreeStatsRideAlong) {
  const graph::probe_result star = graph::probe(graph::star_graph(41));
  EXPECT_EQ(star.degrees.max_degree, 40U);
  EXPECT_GT(star.degrees.skew, 10.0);

  const graph::probe_result cycle = graph::probe(graph::cycle_graph(30));
  EXPECT_EQ(cycle.degrees.max_degree, 2U);
  EXPECT_DOUBLE_EQ(cycle.degrees.skew, 1.0);
}

/// The determinism contract: identical values for every worker count,
/// with and without a shared pool.  (Each wedge sample draws from its own
/// derived rng stream, so the partition into workers cannot matter.)
TEST(GraphProbe, BitIdenticalAcrossThreadCounts) {
  common::rng gen(99);
  const graph::graph g = graph::gnp_random(300, 0.04, gen);

  const graph::probe_result reference = graph::probe(g);
  for (const std::size_t threads : {2UL, 8UL}) {
    graph::probe_params params;
    params.threads = threads;
    const graph::probe_result probe = graph::probe(g, params);
    EXPECT_EQ(probe.degeneracy, reference.degeneracy);
    EXPECT_EQ(probe.wedges_sampled, reference.wedges_sampled);
    EXPECT_EQ(probe.triangles_closed, reference.triangles_closed);
    EXPECT_DOUBLE_EQ(probe.triangle_density, reference.triangle_density);
  }

  graph::probe_params pooled;
  pooled.threads = 4;
  pooled.pool = std::make_shared<sim::thread_pool>(4);
  const graph::probe_result probe = graph::probe(g, pooled);
  EXPECT_EQ(probe.triangles_closed, reference.triangles_closed);
  EXPECT_EQ(probe.wedges_sampled, reference.wedges_sampled);
}

/// The probe deliberately ignores the run seed: selection must be a
/// function of the graph alone (see probe_params::sample_seed).
TEST(GraphProbe, SampleSeedChangesEstimateNotStructure) {
  common::rng gen(7);
  const graph::graph g = graph::gnp_random(200, 0.06, gen);

  graph::probe_params other_seed;
  other_seed.sample_seed = 12345;
  const graph::probe_result a = graph::probe(g);
  const graph::probe_result b = graph::probe(g, other_seed);
  // Structural values are exact and seed-free...
  EXPECT_EQ(a.degeneracy, b.degeneracy);
  EXPECT_EQ(a.arboricity_upper, b.arboricity_upper);
  // ...while the sampled estimate may move (and the default is stable).
  const graph::probe_result c = graph::probe(g);
  EXPECT_EQ(a.triangles_closed, c.triangles_closed);
}

}  // namespace
}  // namespace domset
