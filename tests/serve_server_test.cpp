// End-to-end contract of `domset serve` + `domset load`: the in-process
// request surface answers every query from a consistently pinned epoch,
// errors carry the connection's request line, a socket demo with 8
// concurrent clients plus a mutator observes zero epoch/digest
// conflicts, and the served final digest is bit-identical to an offline
// `domset replay` of the admitted stream across {push, pull} x {1, 2, 8}
// threads.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dyn/mutation.hpp"
#include "dyn/replay.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "serve/load.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/delivery.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

using serve::response;
using serve::server;
using serve::server_params;

graph::graph test_graph(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return graph::barabasi_albert(n, 3, gen);
}

response handle(server& srv, const std::string& line, std::size_t line_no) {
  bool want_shutdown = false;
  return serve::parse_response(srv.handle_line(line, line_no, &want_shutdown));
}

TEST(ServeServer, InProcessRequestSurface) {
  server srv(test_graph(150, 3), server_params{});

  const response ping = handle(srv, "ping", 1);
  ASSERT_TRUE(ping.ok) << ping.error;
  EXPECT_EQ(ping.get("epoch"), "0");

  const response stats = handle(srv, "query stats", 2);
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.get("nodes"), "150");
  EXPECT_EQ(stats.get("digest").size(), 16u);

  // Mutations stay pending (invisible to queries) until commit.  The
  // fresh node + edge cannot collide with anything the generator built.
  const response mutate = handle(srv, "mutate addnode=150+add=0-150", 3);
  ASSERT_TRUE(mutate.ok) << mutate.error;
  EXPECT_EQ(mutate.get("admitted"), "2");
  EXPECT_EQ(mutate.get("epoch"), "0");
  EXPECT_EQ(handle(srv, "query stats", 4).get("digest"), stats.get("digest"));

  const response commit = handle(srv, "commit", 5);
  ASSERT_TRUE(commit.ok) << commit.error;
  EXPECT_EQ(commit.get("epoch"), "1");
  EXPECT_EQ(commit.get("digest").size(), 16u);
  // An empty commit is a no-op, not a new epoch.
  EXPECT_EQ(handle(srv, "commit", 6).get("epoch"), "1");

  // The published epoch answers member/set/digest consistently.
  const response digest = handle(srv, "query digest", 7);
  EXPECT_EQ(digest.get("epoch"), "1");
  EXPECT_EQ(digest.get("digest"), commit.get("digest"));
  const response member = handle(srv, "query member 0", 8);
  ASSERT_TRUE(member.ok);
  const response set = handle(srv, "query set", 9);
  ASSERT_TRUE(set.ok);
  const std::string members = "," + set.get("members") + ",";
  EXPECT_EQ(members.find(",0,") != std::string::npos,
            member.get("member") == "1");

  const serve::server_stats counters = srv.stats();
  EXPECT_EQ(counters.mutations_admitted, 2u);
  EXPECT_EQ(counters.commits, 1u);
  EXPECT_EQ(counters.epochs_published, 2u);
  srv.request_stop();
}

TEST(ServeServer, ErrorsNameTheRequestLineAndKeepServing) {
  server srv(test_graph(80, 4), server_params{});

  const response bad_parse = handle(srv, "query member x", 3);
  ASSERT_FALSE(bad_parse.ok);
  EXPECT_EQ(bad_parse.error.rfind("request line 3: ", 0), 0u)
      << bad_parse.error;

  const response out_of_range = handle(srv, "query member 99999", 4);
  ASSERT_FALSE(out_of_range.ok);
  EXPECT_EQ(out_of_range.error.rfind("request line 4: ", 0), 0u);

  // Honest partial admission: the atoms before the bad one stay pending.
  const response partial = handle(srv, "mutate addnode=80+add=0-99999", 5);
  ASSERT_FALSE(partial.ok);
  EXPECT_NE(partial.error.find("applied 1 of 2"), std::string::npos)
      << partial.error;

  // The connection (and the server) keeps serving after errors.
  EXPECT_TRUE(handle(srv, "ping", 6).ok);
  EXPECT_EQ(handle(srv, "commit", 7).get("epoch"), "1");
  srv.request_stop();
}

TEST(ServeServer, ConcurrentHandlersSeeConsistentPinnedEpochs) {
  // The in-process analogue of the socket demo: handler threads query
  // while commits run; any response pairing an epoch with a foreign
  // digest (a torn pin) fails the test.
  server srv(test_graph(200, 6), server_params{});
  std::vector<std::thread> readers;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> conflicts{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::unordered_map<std::uint64_t, std::string> seen;
      std::size_t line = 0;
      while (!stop.load()) {
        bool unused = false;
        const response resp = serve::parse_response(
            srv.handle_line("query digest", ++line, &unused));
        if (resp.ok) {
          const auto [it, fresh] = seen.try_emplace(
              std::stoull(resp.get("epoch")), resp.get("digest"));
          if (!fresh && it->second != resp.get("digest"))
            conflicts.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  dyn::workload_params wp;
  wp.seed = 6;
  dyn::workload gen(wp);
  graph::graph mirror_base = test_graph(200, 6);
  dyn::dynamic_graph mirror(mirror_base);
  std::size_t line = 100;
  for (int epoch = 1; epoch <= 6; ++epoch) {
    for (int i = 0; i < 8; ++i) {
      const dyn::mutation m = gen.next(mirror, mirror.rebase_point());
      mirror.apply(m);
      bool unused = false;
      const response resp = serve::parse_response(
          srv.handle_line("mutate " + dyn::to_string(m), ++line, &unused));
      ASSERT_TRUE(resp.ok) << resp.error;
    }
    (void)mirror.commit();
    bool unused = false;
    const response resp = serve::parse_response(
        srv.handle_line("commit", ++line, &unused));
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.get("epoch"), std::to_string(epoch));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(conflicts.load(), 0u);
  srv.request_stop();
}

TEST(ServeServer, SocketLoadAgreesWithOfflineReplayAcrossExecKnobs) {
  // The acceptance demo: a real AF_UNIX server, 8 concurrent query
  // clients plus the mutator, every response from a consistently pinned
  // epoch, and the served final digest reproduced by an offline replay
  // of the admitted stream under every delivery mode and thread count.
  const std::string socket_path =
      testing::TempDir() + "domset_serve_test_" +
      std::to_string(::getpid()) + ".sock";
  const std::uint64_t seed = 7;
  const std::size_t n = 200;

  server_params sp;
  sp.socket_path = socket_path;
  sp.inc.exec.seed = seed;
  server srv(test_graph(n, seed), sp);
  std::thread server_thread([&] { srv.run(); });

  serve::load_params lp;
  lp.socket_path = socket_path;
  lp.clients = 8;
  lp.queries_per_client = 50;
  lp.mutations = 96;
  lp.batch = 24;
  lp.gen.seed = seed;
  lp.query_seed = seed;
  lp.shutdown_server = true;

  // The server binds the socket on its own thread; wait for it.
  for (int i = 0; i < 500 && ::access(socket_path.c_str(), F_OK) != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const serve::load_report report = run_load(test_graph(n, seed), lp);
  server_thread.join();

  EXPECT_EQ(report.clients, 8u);
  EXPECT_EQ(report.query.count, 8u * 50u);
  EXPECT_EQ(report.mutations_sent, 96u);
  EXPECT_EQ(report.commits, 4u);
  EXPECT_EQ(report.final_epoch, 4u);
  EXPECT_EQ(report.final_digest.size(), 16u);
  // Every epoch is immutable once published: no response may pair an
  // epoch with a digest another response contradicts.
  EXPECT_EQ(report.epoch_digest_conflicts, 0u);

  // Offline agreement: replaying the admitted stream with the same batch
  // reproduces the served digest bit-for-bit, at every delivery mode and
  // thread count (the engine's determinism contract).
  std::vector<dyn::mutation> log;
  for (const std::string& atom : report.admitted)
    log.push_back(dyn::parse_mutation(atom));
  ASSERT_EQ(log.size(), 96u);
  for (const sim::delivery_mode delivery :
       {sim::delivery_mode::push, sim::delivery_mode::pull}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      dyn::replay_spec spec;
      spec.inc.exec.seed = seed;
      spec.inc.exec.delivery = delivery;
      spec.inc.exec.threads = threads;
      spec.batch = lp.batch;
      spec.log = log;
      spec.mutations_label = "file:admitted";
      const dyn::replay_result offline =
          dyn::run_replay(test_graph(n, seed), "ba", spec);
      EXPECT_EQ(offline.summary.final_digest, report.final_digest)
          << sim::to_string(delivery) << " x " << threads << " threads";
      EXPECT_EQ(offline.summary.final_size, report.final_size);
    }
  }
}

}  // namespace
}  // namespace domset
