// Statistical conformance of Algorithm 1's coin flips.  Because line 3's
// coins are independent Bernoulli(p_i) with p_i = min{1, x_i*ln(d2_i+1)},
// closed-form membership probabilities exist:
//   P(v in DS) = p_v + prod_{u in N[v]} (1 - p_u)
// (the two events -- random selection and the line 5-6 fix-up -- are
// disjoint).  These tests check the empirical frequencies against the
// closed forms within binomial noise, which validates both the formula
// and the independence of the per-node random streams.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/rounding.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "lp/lp_mds.hpp"

namespace domset::core {
namespace {

std::vector<double> selection_probabilities(const graph::graph& g,
                                            const std::vector<double>& x) {
  const auto d2 = graph::max_degree_2hop(g);
  std::vector<double> p(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    p[v] = std::min(1.0, x[v] * std::log(static_cast<double>(d2[v]) + 1.0));
  return p;
}

TEST(RoundingStats, MembershipFrequenciesMatchClosedForm) {
  common::rng gen(1701);
  const graph::graph g = graph::gnp_random(30, 0.15, gen);

  // A deliberately non-uniform (and not necessarily feasible) input: the
  // closed form holds for any x.
  std::vector<double> x(g.node_count());
  for (auto& xi : x) xi = 0.05 + 0.4 * gen.next_double();
  const auto p = selection_probabilities(g, x);

  constexpr std::uint64_t kTrials = 3000;
  std::vector<std::size_t> hits(g.node_count(), 0);
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    rounding_params params;
    params.exec.seed = seed;
    const auto res = round_to_dominating_set(g, x, params);
    for (graph::node_id v = 0; v < g.node_count(); ++v)
      if (res.in_set[v]) ++hits[v];
  }

  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    double nobody = 1.0 - p[v];
    for (const graph::node_id u : g.neighbors(v)) nobody *= 1.0 - p[u];
    const double expected = p[v] + nobody;
    const double freq =
        static_cast<double>(hits[v]) / static_cast<double>(kTrials);
    const double noise =
        4.0 * std::sqrt(expected * (1.0 - expected) / kTrials) + 0.005;
    EXPECT_NEAR(freq, expected, noise) << "node " << v;
  }
}

TEST(RoundingStats, FixupRateDropsWithCoverage) {
  // Scaling a feasible x up cuts the fix-up rate; scaling it down raises
  // it (monotonicity of the E[X] / E[Y] trade in Theorem 3's proof).
  common::rng gen(1702);
  const graph::graph g = graph::gnp_random(40, 0.12, gen);
  const auto lp = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp.has_value());

  const auto fixup_rate = [&](double scale) {
    std::vector<double> x = lp->x;
    for (auto& xi : x) xi = std::min(1.0, xi * scale);
    std::size_t total = 0;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
      rounding_params params;
      params.exec.seed = seed;
      total += round_to_dominating_set(g, x, params).selected_by_fixup;
    }
    return static_cast<double>(total) / 300.0;
  };

  const double low = fixup_rate(0.25);
  const double mid = fixup_rate(1.0);
  const double high = fixup_rate(2.0);
  EXPECT_GT(low, mid);
  EXPECT_GE(mid, high);
}

TEST(RoundingStats, JointMembershipMatchesIndependentCoins) {
  // On a cycle, membership of adjacent nodes 10 and 11 depends only on
  // the coins of nodes 8..13; enumerate those 6 coins exactly and compare
  // the joint frequency.  A failure would indicate cross-node correlation
  // in the per-node random streams.
  const graph::graph g = graph::cycle_graph(60);
  const std::vector<double> x(60, 1.0 / 3.0);
  const auto p = selection_probabilities(g, x);
  const double q = p[10];  // identical for all nodes by symmetry

  // member(v) = S_v or (no S in N[v]).
  double expected = 0.0;
  for (unsigned mask = 0; mask < 64; ++mask) {
    const auto coin = [&](int node) {
      return (mask >> (node - 8)) & 1U;  // nodes 8..13
    };
    const bool m10 = coin(10) || (!coin(9) && !coin(10) && !coin(11));
    const bool m11 = coin(11) || (!coin(10) && !coin(11) && !coin(12));
    if (!(m10 && m11)) continue;
    double prob = 1.0;
    for (int node = 8; node <= 13; ++node)
      prob *= coin(node) ? q : 1.0 - q;
    expected += prob;
  }

  constexpr std::uint64_t kTrials = 4000;
  std::size_t joint = 0;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    rounding_params params;
    params.exec.seed = seed;
    const auto res = round_to_dominating_set(g, x, params);
    if (res.in_set[10] && res.in_set[11]) ++joint;
  }
  const double joint_freq =
      static_cast<double>(joint) / static_cast<double>(kTrials);
  const double noise =
      4.0 * std::sqrt(expected * (1.0 - expected) / kTrials) + 0.005;
  EXPECT_NEAR(joint_freq, expected, noise);
}

}  // namespace
}  // namespace domset::core
