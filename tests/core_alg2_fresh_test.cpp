#include "core/alg2_fresh.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/wide_uint.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"

namespace domset::core {
namespace {

std::vector<graph::graph> test_graphs() {
  common::rng gen(1301);
  std::vector<graph::graph> graphs;
  graphs.push_back(graph::star_graph(20));
  graphs.push_back(graph::cycle_graph(12));
  graphs.push_back(graph::grid_graph(4, 4));
  graphs.push_back(graph::complete_graph(8));
  graphs.push_back(graph::gnp_random(25, 0.2, gen));
  graphs.push_back(graph::barabasi_albert(25, 2, gen));
  return graphs;
}

TEST(Alg2Fresh, FeasibleWithSameRoundCount) {
  for (const auto& g : test_graphs()) {
    for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
      const auto res = approximate_lp_known_delta_fresh(g, {.k = k});
      EXPECT_TRUE(lp::is_primal_feasible(g, res.x))
          << g.summary() << " k=" << k;
      // The reordering is free: still exactly 2k^2 rounds.
      EXPECT_EQ(res.metrics.rounds, alg2_round_count(k));
    }
  }
}

TEST(Alg2Fresh, ObjectiveWithinTheorem4Bound) {
  for (const auto& g : test_graphs()) {
    const auto lp_opt = lp::solve_lp_mds(g);
    ASSERT_TRUE(lp_opt.has_value());
    for (std::uint32_t k : {2U, 3U, 4U}) {
      const auto res = approximate_lp_known_delta_fresh(g, {.k = k});
      EXPECT_LE(res.objective, res.ratio_bound * lp_opt->value + 1e-6)
          << g.summary() << " k=" << k;
    }
  }
}

TEST(Alg2Fresh, ActivityUsesTrueDynamicDegree) {
  // The view's dyn_degree must equal the true white count of the closed
  // neighborhood -- the whole point of the reordering.
  for (const auto& g : test_graphs()) {
    const std::uint32_t k = 3;
    alg2_observer obs = [&](const alg2_iteration_view& view) {
      for (graph::node_id v = 0; v < g.node_count(); ++v) {
        std::uint32_t whites = 0;
        g.for_closed_neighborhood(v, [&](graph::node_id u) {
          if (!view.gray[u]) ++whites;
        });
        EXPECT_EQ(view.dyn_degree[v], whites)
            << g.summary() << " node " << v << " ell=" << view.ell
            << " m=" << view.m;
      }
    };
    (void)approximate_lp_known_delta_fresh(g, {.k = k}, &obs);
  }
}

TEST(Alg2Fresh, Lemma4ZBoundHoldsExactlyNoSlack) {
  // With fresh degrees the paper's Lemma 4 arithmetic applies verbatim:
  // z_i <= 1/(Delta+1)^{(ell-1)/k} at the end of each outer iteration.
  for (const auto& g : test_graphs()) {
    const std::size_t n = g.node_count();
    const double dp1 = static_cast<double>(g.max_degree()) + 1.0;
    for (std::uint32_t k : {2U, 3U}) {
      std::vector<double> z(n, 0.0);
      std::vector<double> prev_x(n, 0.0);
      alg2_observer obs = [&](const alg2_iteration_view& view) {
        if (view.m == k - 1) std::fill(z.begin(), z.end(), 0.0);
        for (graph::node_id j = 0; j < n; ++j) {
          const double inc = view.x[j] - prev_x[j];
          if (inc <= 1e-15) continue;
          std::vector<graph::node_id> whites;
          g.for_closed_neighborhood(j, [&](graph::node_id u) {
            if (!view.gray[u]) whites.push_back(u);
          });
          for (const graph::node_id u : whites)
            z[u] += inc / static_cast<double>(whites.size());
        }
        prev_x = view.x;
        if (view.m == 0) {
          const double bound =
              std::pow(dp1, -(static_cast<double>(view.ell) - 1.0) /
                                static_cast<double>(k));
          for (graph::node_id v = 0; v < n; ++v)
            EXPECT_LE(z[v], bound + 1e-9)
                << g.summary() << " k=" << k << " ell=" << view.ell
                << " node=" << v;
        }
      };
      (void)approximate_lp_known_delta_fresh(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg2Fresh, Lemma2And3StillHold) {
  for (const auto& g : test_graphs()) {
    const std::uint64_t dp1 = g.max_degree() + 1;
    const std::uint32_t k = 3;
    alg2_observer obs = [&](const alg2_iteration_view& view) {
      for (graph::node_id v = 0; v < g.node_count(); ++v) {
        if (view.m == k - 1) {
          EXPECT_TRUE(
              common::compare_pow(view.dyn_degree[v], k, dp1, view.ell + 1) <=
              0)
              << g.summary();
        }
        if (!view.gray[v]) {
          std::uint32_t actives = 0;
          g.for_closed_neighborhood(v, [&](graph::node_id u) {
            if (view.active[u]) ++actives;
          });
          EXPECT_TRUE(common::compare_pow(actives, k, dp1, view.m + 1) <= 0)
              << g.summary();
        }
      }
    };
    (void)approximate_lp_known_delta_fresh(g, {.k = k}, &obs);
  }
}

TEST(Alg2Fresh, ComparableObjectiveToLiteralSchedule) {
  // Freshness changes decisions, but both schedules satisfy the same
  // theorem; objectives should be close on typical inputs.
  common::rng gen(1302);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  for (std::uint32_t k : {2U, 3U, 4U}) {
    const auto stale = approximate_lp_known_delta(g, {.k = k});
    const auto fresh = approximate_lp_known_delta_fresh(g, {.k = k});
    EXPECT_TRUE(lp::is_primal_feasible(g, fresh.x));
    // Fresh decisions can only deactivate nodes the stale schedule kept
    // active; the fresh objective should not be substantially larger.
    EXPECT_LE(fresh.objective, stale.objective * 1.5 + 1.0) << "k=" << k;
  }
}

TEST(Alg2Fresh, EmptyAndTrivialInputs) {
  const auto empty = approximate_lp_known_delta_fresh(graph::graph{}, {.k = 2});
  EXPECT_TRUE(empty.x.empty());
  const auto single =
      approximate_lp_known_delta_fresh(graph::empty_graph(1), {.k = 2});
  ASSERT_EQ(single.x.size(), 1U);
  EXPECT_DOUBLE_EQ(single.x[0], 1.0);
}

}  // namespace
}  // namespace domset::core
