#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace domset::lp {
namespace {

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2,6).
  dense_matrix a(3, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 2;
  a.at(2, 0) = 3;
  a.at(2, 1) = 2;
  const std::vector<double> b{4, 12, 18};
  const std::vector<double> c{3, 5};
  const simplex_result res = maximize(a, b, c);
  ASSERT_EQ(res.status, simplex_status::optimal);
  EXPECT_NEAR(res.objective, 36.0, 1e-9);
  EXPECT_NEAR(res.solution[0], 2.0, 1e-9);
  EXPECT_NEAR(res.solution[1], 6.0, 1e-9);
}

TEST(Simplex, DualPricesSatisfyStrongDuality) {
  dense_matrix a(3, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 2;
  a.at(2, 0) = 3;
  a.at(2, 1) = 2;
  const std::vector<double> b{4, 12, 18};
  const std::vector<double> c{3, 5};
  const simplex_result res = maximize(a, b, c);
  ASSERT_EQ(res.status, simplex_status::optimal);
  double dual_obj = 0.0;
  for (std::size_t i = 0; i < 3; ++i) dual_obj += res.dual_solution[i] * b[i];
  EXPECT_NEAR(dual_obj, res.objective, 1e-9);
  for (const double y : res.dual_solution) EXPECT_GE(y, -1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  // max x s.t. -x + y <= 1 (x free to grow).
  dense_matrix a(1, 2);
  a.at(0, 0) = -1;
  a.at(0, 1) = 1;
  const std::vector<double> b{1};
  const std::vector<double> c{1, 0};
  EXPECT_EQ(maximize(a, b, c).status, simplex_status::unbounded);
}

TEST(Simplex, ZeroObjectiveAtOrigin) {
  // All-negative costs: optimum is y = 0.
  dense_matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;
  const std::vector<double> b{5, 5};
  const std::vector<double> c{-1, -2};
  const simplex_result res = maximize(a, b, c);
  ASSERT_EQ(res.status, simplex_status::optimal);
  EXPECT_NEAR(res.objective, 0.0, 1e-12);
  EXPECT_NEAR(res.solution[0], 0.0, 1e-12);
}

TEST(Simplex, DegenerateInstanceTerminates) {
  // Classic Beale-style cycling candidate; the Bland fallback must cope.
  dense_matrix a(3, 4);
  const double rows[3][4] = {
      {0.25, -8.0, -1.0, 9.0}, {0.5, -12.0, -0.5, 3.0}, {0.0, 0.0, 1.0, 0.0}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t col = 0; col < 4; ++col) a.at(r, col) = rows[r][col];
  const std::vector<double> b{0, 0, 1};
  const std::vector<double> c{0.75, -20.0, 0.5, -6.0};
  const simplex_result res = maximize(a, b, c);
  ASSERT_EQ(res.status, simplex_status::optimal);
  EXPECT_NEAR(res.objective, 1.25, 1e-9);
}

TEST(Simplex, RejectsNegativeRhs) {
  dense_matrix a(1, 1);
  a.at(0, 0) = 1;
  const std::vector<double> b{-1};
  const std::vector<double> c{1};
  EXPECT_THROW((void)maximize(a, b, c), std::invalid_argument);
}

TEST(Simplex, RejectsDimensionMismatch) {
  dense_matrix a(2, 2);
  const std::vector<double> b{1};
  const std::vector<double> c{1, 1};
  EXPECT_THROW((void)maximize(a, b, c), std::invalid_argument);
}

TEST(Simplex, EqualityThroughTightConstraints) {
  // max x+y s.t. x+y <= 1, x <= 1, y <= 1: any point on the segment works;
  // objective must be exactly 1.
  dense_matrix a(3, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(2, 1) = 1;
  const std::vector<double> b{1, 1, 1};
  const std::vector<double> c{1, 1};
  const simplex_result res = maximize(a, b, c);
  ASSERT_EQ(res.status, simplex_status::optimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-9);
  EXPECT_NEAR(res.solution[0] + res.solution[1], 1.0, 1e-9);
}

}  // namespace
}  // namespace domset::lp
