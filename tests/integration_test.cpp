// Cross-module integration: chains that exercise the whole stack the way
// the benches and examples do, with every intermediate artifact verified.
#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "baselines/lrg.hpp"
#include "baselines/luby_mis.hpp"
#include "baselines/simple.hpp"
#include "baselines/wu_li.hpp"
#include "core/weighted.hpp"
#include "common/rng.hpp"
#include "core/alg2_fresh.hpp"
#include "core/cds.hpp"
#include "core/pipeline.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "lp/lp_mds.hpp"
#include "verify/verify.hpp"

#include <sstream>

namespace domset {
namespace {

TEST(Integration, FullStackOnUnitDisk) {
  // Generate -> largest component -> serialize/parse round trip ->
  // LP solve -> distributed LP approx -> rounding -> CDS -> verify all.
  common::rng gen(1601);
  const auto geo = graph::random_geometric(120, 0.16, gen);
  const auto comp = graph::largest_component(geo.g);
  const graph::graph& g = comp.g;
  ASSERT_TRUE(graph::is_connected(g));

  std::stringstream buffer;
  graph::write_edge_list(g, buffer);
  const graph::graph reparsed = graph::read_edge_list(buffer);
  ASSERT_EQ(reparsed.node_count(), g.node_count());
  ASSERT_EQ(reparsed.edge_count(), g.edge_count());

  const auto lp_opt = lp::solve_lp_mds(reparsed);
  ASSERT_TRUE(lp_opt.has_value());
  EXPECT_GE(lp_opt->value, graph::dual_lower_bound(reparsed) - 1e-9);

  core::pipeline_params params;
  params.k = 3;
  params.exec.seed = 9;
  const auto ds = core::compute_dominating_set(reparsed, params);
  EXPECT_TRUE(verify::is_dominating_set(reparsed, ds.in_set));
  EXPECT_GE(ds.fractional.objective, lp_opt->value - 1e-9);

  const auto cds = core::connect_dominating_set(reparsed, ds.in_set);
  EXPECT_TRUE(core::is_connected_within_components(reparsed, cds.in_set));
  EXPECT_TRUE(verify::is_dominating_set(reparsed, cds.in_set));
  EXPECT_LE(cds.size, 3 * ds.size);
}

TEST(Integration, EveryAlgorithmDominatesTheSameGraph) {
  common::rng gen(1602);
  const graph::graph g = graph::gnp_random(70, 0.08, gen);
  const auto opt = exact::solve_mds(g);
  ASSERT_TRUE(opt.has_value());
  const double lb = graph::dual_lower_bound(g);

  const auto check = [&](const std::vector<std::uint8_t>& in_set,
                         const char* name) {
    EXPECT_TRUE(verify::is_dominating_set(g, in_set)) << name;
    EXPECT_GE(static_cast<double>(verify::set_size(in_set)), lb - 1e-9)
        << name;
    EXPECT_GE(verify::set_size(in_set), opt->size) << name;
  };

  core::pipeline_params kw;
  kw.k = 2;
  kw.exec.seed = 4;
  check(core::compute_dominating_set(g, kw).in_set, "kw");
  check(baselines::greedy_mds(g).in_set, "greedy");
  baselines::lrg_params lrg;
  lrg.exec.seed = 4;
  check(baselines::lrg_mds(g, lrg).in_set, "lrg");
  check(baselines::wu_li_mds(g).in_set, "wu_li");
  baselines::luby_params luby;
  luby.exec.seed = 4;
  check(baselines::luby_mis(g, luby).in_set, "luby");
  check(baselines::trivial_all_nodes(g), "trivial");
  check(baselines::centralized_lp_rounding(g, 4).in_set, "central_lp");
}

TEST(Integration, FractionalObjectivesOrderConsistently) {
  // LP_OPT <= alg2, alg2_fresh, alg3 objectives <= their bounds * LP_OPT.
  common::rng gen(1603);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  for (std::uint32_t k : {2U, 3U}) {
    const auto a2 = core::approximate_lp_known_delta(g, {.k = k});
    const auto a2f = core::approximate_lp_known_delta_fresh(g, {.k = k});
    const auto a3 = core::approximate_lp(g, {.k = k});
    for (const auto* res : {&a2, &a2f, &a3}) {
      EXPECT_GE(res->objective, lp_opt->value - 1e-9);
      EXPECT_LE(res->objective, res->ratio_bound * lp_opt->value + 1e-6);
    }
  }
}

TEST(Integration, WeightedPipelineEndToEnd) {
  common::rng gen(1604);
  const graph::graph g = graph::random_geometric(60, 0.25, gen).g;
  const auto costs = graph::uniform_costs(g.node_count(), 5.0, gen);
  const auto frac = core::approximate_weighted_lp(g, costs, {.k = 3});
  ASSERT_TRUE(lp::is_primal_feasible(g, frac.x));
  core::rounding_params r;
  r.exec.seed = 2;
  const auto ds = core::round_to_dominating_set(g, frac.x, r);
  EXPECT_TRUE(verify::is_dominating_set(g, ds.in_set));
  // Weighted greedy should not be beaten by orders of magnitude...
  const auto wg = baselines::greedy_weighted_mds(g, costs);
  EXPECT_LE(verify::set_cost(wg.in_set, costs),
            verify::set_cost(ds.in_set, costs) + 1e-9);
}

TEST(Integration, MetricsAreInternallyConsistent) {
  common::rng gen(1605);
  const graph::graph g = graph::gnp_random(50, 0.1, gen);
  const auto res = core::approximate_lp(g, {.k = 3});
  const auto& m = res.metrics;
  EXPECT_GT(m.messages_sent, 0U);
  EXPECT_GE(m.bits_sent, m.messages_sent);  // every message >= 1 bit
  EXPECT_LE(m.max_messages_per_node, m.messages_sent);
  EXPECT_EQ(m.messages_dropped, 0U);
  EXPECT_FALSE(m.congest_violation);
  EXPECT_FALSE(m.hit_round_limit);
}

TEST(Integration, LargeGraphSmokeTest) {
  // The whole pipeline at n = 5000 runs in well under a second per stage
  // and keeps its guarantees checkable via the dual bound.
  common::rng gen(1606);
  const graph::graph g = graph::barabasi_albert(5000, 3, gen);
  core::pipeline_params params;
  params.k = 2;
  const auto res = core::compute_dominating_set(g, params);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  EXPECT_EQ(res.total_rounds, core::alg3_round_count(2) + 4);
  EXPECT_GE(static_cast<double>(res.size),
            graph::dual_lower_bound(g) - 1e-9);
}

}  // namespace
}  // namespace domset
