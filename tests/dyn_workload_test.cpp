// The seeded mutation generator: same-seed determinism, every drawn
// mutation applies cleanly, hub bias concentrates churn on hubs, and the
// documented error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/mutation.hpp"
#include "dyn/workload.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace domset {
namespace {

using dyn::dynamic_graph;
using dyn::mutation;
using dyn::workload;
using dyn::workload_bias;
using dyn::workload_params;

/// Runs `count` draws against a fresh overlay of `base`, applying each
/// (the generator's contract) and committing every 8 draws.
std::vector<mutation> drive(const graph::graph& base,
                            const workload_params& params, int count) {
  dynamic_graph g(base);
  workload gen(params);
  std::vector<mutation> stream;
  for (int i = 0; i < count; ++i) {
    const mutation m = gen.next(g, g.rebase_point());
    g.apply(m);  // an invalid draw would throw std::invalid_argument here
    stream.push_back(m);
    if (i % 8 == 7) g.commit();
  }
  return stream;
}

TEST(DynWorkload, BiasParseRoundTrips) {
  for (const workload_bias bias : {workload_bias::uniform, workload_bias::hub})
    EXPECT_EQ(dyn::parse_workload_bias(dyn::to_string(bias)), bias);
  EXPECT_THROW((void)dyn::parse_workload_bias("zipf"), std::invalid_argument);
}

graph::graph gnp(std::size_t n, double p, std::uint64_t seed) {
  common::rng gen(seed);
  return graph::gnp_random(n, p, gen);
}

TEST(DynWorkload, SameSeedSameStream) {
  const graph::graph base = gnp(120, 0.05, 7);
  workload_params params;
  params.seed = 42;
  const std::vector<mutation> a = drive(base, params, 200);
  const std::vector<mutation> b = drive(base, params, 200);
  EXPECT_EQ(a, b);
  params.seed = 43;
  EXPECT_NE(drive(base, params, 200), a);
}

TEST(DynWorkload, EveryDrawAppliesCleanlyAcrossBiases) {
  // drive() applies each mutation as drawn; surviving 300 draws with
  // commits interleaved means the generator never emits a stale edge.
  const graph::graph base = gnp(150, 0.04, 11);
  for (const workload_bias bias :
       {workload_bias::uniform, workload_bias::hub}) {
    workload_params params;
    params.bias = bias;
    params.seed = 5;
    const std::vector<mutation> stream = drive(base, params, 300);
    EXPECT_EQ(stream.size(), 300U);
  }
}

TEST(DynWorkload, HubBiasConcentratesChurnOnHighDegreeNodes) {
  // On a power-law graph, hub-biased endpoint sampling (uniform over
  // adjacency slots, i.e. degree-proportional) must land adds on the
  // high-degree decile far more often than uniform sampling does.  Both
  // streams are deterministic, so the comparison is a fixed inequality.
  common::rng gen_graph(19);
  const graph::graph base = graph::barabasi_albert(200, 2, gen_graph);
  std::vector<graph::node_id> by_degree(base.node_count());
  for (graph::node_id v = 0; v < base.node_count(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](graph::node_id a, graph::node_id b) {
              return base.neighbors(a).size() > base.neighbors(b).size();
            });
  std::vector<std::uint8_t> is_hub(base.node_count(), 0);
  for (std::size_t i = 0; i < base.node_count() / 10; ++i)
    is_hub[by_degree[i]] = 1;

  const auto hub_touches = [&](workload_bias bias) {
    workload_params params;
    params.bias = bias;
    params.seed = 3;
    params.p_add = 1.0;
    params.p_del = params.p_addnode = params.p_delnode = 0.0;
    dynamic_graph g(base);
    workload gen(params);
    int touches = 0;
    for (int i = 0; i < 200; ++i) {
      const mutation m = gen.next(g, g.rebase_point());
      g.apply(m);
      touches += is_hub[m.u] + is_hub[m.v];
    }
    return touches;
  };
  const int hub = hub_touches(workload_bias::hub);
  const int uniform = hub_touches(workload_bias::uniform);
  EXPECT_GT(hub, 2 * uniform)
      << "hub=" << hub << " uniform=" << uniform;
}

TEST(DynWorkload, ParameterAndSaturationErrors) {
  workload_params params;
  params.p_add = -1.0;
  EXPECT_THROW(workload{params}, std::invalid_argument);
  params.p_add = params.p_del = params.p_addnode = params.p_delnode = 0.0;
  EXPECT_THROW(workload{params}, std::invalid_argument);

  // Deleting from an edgeless graph can never produce a valid mutation.
  workload_params del_only;
  del_only.p_add = del_only.p_addnode = del_only.p_delnode = 0.0;
  del_only.p_del = 1.0;
  workload gen(del_only);
  dynamic_graph empty(graph::empty_graph(4));
  EXPECT_THROW((void)gen.next(empty, empty.rebase_point()),
               std::runtime_error);
}

}  // namespace
}  // namespace domset
