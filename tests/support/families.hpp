// Shared fixture library of the registry-generic property harness
// (tests/solver_properties_test.cpp, tests/solver_differential_fuzz_test.cpp):
// named graph families at arbitrary (n, seed), the registry's integral
// solver vocabulary, and a reusable on-disk .dcsr fixture so the harness
// also sweeps the binary-container load path.
//
// Every builder is a pure function of (n, seed) -- same inputs, same
// graph, byte for byte -- so any failure a harness test reports is
// reproducible from the parameters in its name alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace domset::testsupport {

/// One family of the harness matrix.
struct family_spec {
  /// Harness name; for the cli_family below it doubles as the
  /// `domset run --graph` vocabulary.
  std::string name;
  /// `domset run --graph` family reproducing this builder ("" when the
  /// builder has no CLI equivalent, e.g. the temp-file .dcsr fixture).
  std::string cli_family;
  graph::graph (*make)(std::size_t n, std::uint64_t seed);
};

/// The harness matrix: gnp, ba, star, grid, tree and a .dcsr-file-loaded
/// ba graph (exercising graph/csr_file + api::make_graph("file")).
const std::vector<family_spec>& families();

/// Just the names, for gtest ValuesIn.
const std::vector<std::string>& family_names();

/// Builds `name` at ~n nodes; throws std::invalid_argument for a name
/// not in families().
[[nodiscard]] graph::graph make_family(const std::string& name, std::size_t n,
                                       std::uint64_t seed);

/// Names of every registered solver with integral_output() == true, in
/// registry (sorted) order -- the auto-enrollment list: a newly
/// registered integral solver appears here, and in every harness sweep,
/// with zero test-code changes.
std::vector<std::string> integral_solver_names();

/// Seeded permutation pi of [0, n); relabels ids for the metamorphic
/// tests.
[[nodiscard]] std::vector<graph::node_id> random_permutation(
    std::size_t n, std::uint64_t seed);

/// The graph with every node v renamed pi[v] (same edges up to the
/// renaming).
[[nodiscard]] graph::graph relabel(const graph::graph& g,
                                   const std::vector<graph::node_id>& pi);

/// Adds one seeded non-edge to g; returns g unchanged when the graph is
/// complete.
[[nodiscard]] graph::graph with_extra_edge(const graph::graph& g,
                                           std::uint64_t seed);

}  // namespace domset::testsupport
