#include "support/families.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/solver.hpp"
#include "common/rng.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"

namespace domset::testsupport {

namespace {

graph::graph make_gnp(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  const double p = std::min(1.0, 8.0 / static_cast<double>(std::max<std::size_t>(n, 1)));
  return graph::gnp_random(n, p, gen);
}

graph::graph make_ba(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return graph::barabasi_albert(n, 2, gen);
}

graph::graph make_star(std::size_t n, std::uint64_t) {
  return graph::star_graph(n);
}

graph::graph make_grid(std::size_t n, std::uint64_t) {
  const auto w = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))));
  return graph::grid_graph(w, (n + w - 1) / w);
}

graph::graph make_tree(std::size_t n, std::uint64_t) {
  // Deepest complete 3-ary tree within ~n nodes (>= 1 level).
  std::size_t depth = 1, count = 4;
  while (count * 3 + 1 <= n) {
    count = count * 3 + 1;
    ++depth;
  }
  return graph::balanced_tree(3, depth);
}

/// ba(n, m=2, seed) written once to a temp .dcsr and re-loaded through
/// the api "file" family -- the harness's coverage of the binary
/// container and loader (graph/csr_file.hpp).
graph::graph make_dcsr(std::size_t n, std::uint64_t seed) {
  namespace fs = std::filesystem;
  char name[96];
  std::snprintf(name, sizeof name, "domset_harness_ba_%zu_%llu.dcsr", n,
                static_cast<unsigned long long>(seed));
  const fs::path path = fs::temp_directory_path() / name;
  if (!fs::exists(path)) {
    common::rng gen(seed);
    const graph::graph g = graph::barabasi_albert(n, 2, gen);
    (void)graph::write_csr(g, path.string(), /*compress=*/false);
  }
  api::param_map params;
  params.set("path", path.string());
  params.set("format", "binary");
  return api::make_graph("file", 0, seed, params);
}

}  // namespace

const std::vector<family_spec>& families() {
  static const std::vector<family_spec> all = {
      {"gnp", "gnp", &make_gnp},   {"ba", "ba", &make_ba},
      {"star", "star", &make_star}, {"grid", "grid", &make_grid},
      {"tree", "tree", &make_tree}, {"dcsr", "", &make_dcsr},
  };
  return all;
}

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const family_spec& f : families()) out.push_back(f.name);
    return out;
  }();
  return names;
}

graph::graph make_family(const std::string& name, std::size_t n,
                         std::uint64_t seed) {
  for (const family_spec& f : families())
    if (f.name == name) return f.make(n, seed);
  throw std::invalid_argument("unknown harness family '" + name + "'");
}

std::vector<std::string> integral_solver_names() {
  std::vector<std::string> out;
  for (const api::solver* s : api::solver_registry::instance().list())
    if (s->integral_output()) out.emplace_back(s->name());
  return out;
}

std::vector<graph::node_id> random_permutation(std::size_t n,
                                               std::uint64_t seed) {
  std::vector<graph::node_id> pi(n);
  for (std::size_t i = 0; i < n; ++i) pi[i] = static_cast<graph::node_id>(i);
  common::rng gen(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = gen.next_below(i);
    std::swap(pi[i - 1], pi[j]);
  }
  return pi;
}

graph::graph relabel(const graph::graph& g,
                     const std::vector<graph::node_id>& pi) {
  graph::graph_builder builder(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    for (const graph::node_id u : g.neighbors(v))
      if (v < u) builder.add_edge(pi[v], pi[u]);
  return std::move(builder).build();
}

graph::graph with_extra_edge(const graph::graph& g, std::uint64_t seed) {
  const std::size_t n = g.node_count();
  graph::graph_builder builder(n);
  for (graph::node_id v = 0; v < n; ++v)
    for (const graph::node_id u : g.neighbors(v))
      if (v < u) builder.add_edge(v, u);
  common::rng gen(seed);
  for (int attempt = 0; attempt < 256 && n >= 2; ++attempt) {
    const auto u = static_cast<graph::node_id>(gen.next_below(n));
    const auto v = static_cast<graph::node_id>(gen.next_below(n));
    if (u != v && !builder.has_edge_slow(u, v)) {
      builder.add_edge(u, v);
      break;
    }
  }
  return std::move(builder).build();
}

}  // namespace domset::testsupport
