// The API layer contract (ISSUE 4): every registered solver resolves by
// name, unknown names/params fail with a clear error, every solver's
// output on a fixed G(n, p) instance is valid, and a registry-invoked run
// is bit-identical (solution digest + run metrics) to the corresponding
// algorithm-specific entry point across delivery modes and thread counts
// -- the registry is an adapter, not a fork.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault.hpp"

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "baselines/greedy.hpp"
#include "baselines/lrg.hpp"
#include "baselines/luby_mis.hpp"
#include "baselines/wu_li.hpp"
#include "core/alg2.hpp"
#include "core/alg2_fresh.hpp"
#include "core/alg3.hpp"
#include "core/cds.hpp"
#include "core/pipeline.hpp"
#include "core/rounding.hpp"
#include "core/weighted.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

graph::graph fixed_instance() {
  common::rng gen(42);
  return graph::gnp_random(180, 0.05, gen);
}

void expect_metrics_equal(const sim::run_metrics& a, const sim::run_metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bits_sent, b.bits_sent);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.max_messages_per_node, b.max_messages_per_node);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_lost_to_faults, b.messages_lost_to_faults);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.node_rounds_down, b.node_rounds_down);
  EXPECT_EQ(a.nodes_crashed, b.nodes_crashed);
  EXPECT_EQ(a.congest_violation, b.congest_violation);
  EXPECT_EQ(a.hit_round_limit, b.hit_round_limit);
}

/// Bitwise equality for fractional solutions (the adapter must not even
/// re-round a double).
void expect_x_identical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
  }
}

TEST(ApiRegistry, EveryExpectedSolverResolvesByName) {
  const auto& registry = api::solver_registry::instance();
  for (const char* name :
       {"pipeline", "alg2", "alg2_fresh", "alg3", "rounding", "lrg", "luby",
        "wu_li", "greedy", "weighted", "cds"}) {
    const api::solver& s = registry.find(name);
    EXPECT_EQ(s.name(), name);
    EXPECT_FALSE(s.description().empty());
    const auto fresh = registry.create(name);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->name(), name);
  }
  // list() and names() agree and are sorted (stable CLI output).
  const auto names = registry.names();
  EXPECT_GE(names.size(), 7U);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(registry.list().size(), names.size());
}

TEST(ApiRegistry, UnknownSolverNameFailsWithClearError) {
  try {
    (void)api::solver_registry::instance().find("does_not_exist");
    FAIL() << "unknown solver name must throw";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("does_not_exist"), std::string::npos);
    // The error teaches the vocabulary.
    EXPECT_NE(message.find("pipeline"), std::string::npos);
  }
}

TEST(ApiRegistry, UnknownParamKeyFailsWithClearError) {
  const graph::graph g = graph::path_graph(8);
  const api::solver& alg2 = api::solver_registry::instance().find("alg2");
  api::param_map params;
  params.set("bogus", "1");
  try {
    (void)alg2.solve(g, exec::context{}, params);
    FAIL() << "unknown param must throw";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("k"), std::string::npos);  // the accepted set
  }
}

TEST(ApiRegistry, MalformedParamValueNamesTheParam) {
  const graph::graph g = graph::path_graph(8);
  const api::solver& alg2 = api::solver_registry::instance().find("alg2");
  api::param_map params;
  params.set("k", "three");
  try {
    (void)alg2.solve(g, exec::context{}, params);
    FAIL() << "malformed param must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'k'"), std::string::npos);
  }
}

TEST(ApiRegistry, EverySolverProducesValidOutputOnFixedGnp) {
  const graph::graph g = fixed_instance();
  exec::context exec;
  exec.seed = 9;
  for (const api::solver* s : api::solver_registry::instance().list()) {
    SCOPED_TRACE(std::string(s->name()));
    const api::solve_result res = s->solve(g, exec);
    if (res.integral()) {
      ASSERT_EQ(res.in_set.size(), g.node_count());
      EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
      EXPECT_EQ(res.size, verify::set_size(res.in_set));
      EXPECT_DOUBLE_EQ(res.objective, static_cast<double>(res.size));
    }
    if (!res.x.empty()) {
      // Fractional output must be LP-feasible: closed neighborhoods sum
      // to >= 1 (shared tolerance).
      ASSERT_EQ(res.x.size(), g.node_count());
      for (graph::node_id v = 0; v < g.node_count(); ++v) {
        double covered = res.x[v];
        for (const graph::node_id u : g.neighbors(v)) covered += res.x[u];
        EXPECT_GE(covered, 1.0 - 1e-9) << "node " << v;
      }
    }
    EXPECT_TRUE(res.integral() || !res.x.empty())
        << "a solver must return a set or a fractional solution";
  }
}

TEST(ApiRegistry, PipelineAdapterIsBitIdenticalAcrossModesAndThreads) {
  const graph::graph g = fixed_instance();
  const api::solver& solver = api::solver_registry::instance().find("pipeline");
  api::param_map params;
  params.set("k", "3");
  for (const sim::delivery_mode mode :
       {sim::delivery_mode::push, sim::delivery_mode::pull,
        sim::delivery_mode::automatic}) {
    for (const std::size_t threads : {1U, 2U, 8U}) {
      SCOPED_TRACE(std::string(sim::to_string(mode)) + "/threads=" +
                   std::to_string(threads));
      exec::context exec;
      exec.seed = 7;
      exec.threads = threads;
      exec.delivery = mode;

      core::pipeline_params direct;
      direct.k = 3;
      direct.exec = exec;
      const core::pipeline_result expected =
          core::compute_dominating_set(g, direct);

      const api::solve_result actual = solver.solve(g, exec, params);

      EXPECT_EQ(actual.in_set, expected.in_set);
      expect_x_identical(actual.x, expected.fractional.x);
      EXPECT_EQ(actual.size, expected.size);
      EXPECT_DOUBLE_EQ(actual.ratio_bound, expected.expected_ratio_bound);
      // The adapter folds the two stages' metrics: sums for totals,
      // maxima for peaks.
      EXPECT_EQ(actual.metrics.rounds, expected.total_rounds);
      EXPECT_EQ(actual.metrics.messages_sent, expected.total_messages);
      EXPECT_EQ(actual.metrics.bits_sent,
                expected.fractional.metrics.bits_sent +
                    expected.rounding.metrics.bits_sent);
      EXPECT_EQ(actual.metrics.max_message_bits,
                std::max(expected.fractional.metrics.max_message_bits,
                         expected.rounding.metrics.max_message_bits));
      EXPECT_EQ(actual.metrics.max_messages_per_node,
                std::max(expected.fractional.metrics.max_messages_per_node,
                         expected.rounding.metrics.max_messages_per_node));
    }
  }
}

TEST(ApiRegistry, FractionalAdaptersAreBitIdentical) {
  const graph::graph g = fixed_instance();
  exec::context exec;
  exec.seed = 5;
  api::param_map params;
  params.set("k", "2");
  core::lp_approx_params direct;
  direct.k = 2;
  direct.exec = exec;

  {
    const auto expected = core::approximate_lp_known_delta(g, direct);
    const auto actual =
        api::solver_registry::instance().find("alg2").solve(g, exec, params);
    expect_x_identical(actual.x, expected.x);
    EXPECT_DOUBLE_EQ(actual.objective, expected.objective);
    EXPECT_DOUBLE_EQ(actual.ratio_bound, expected.ratio_bound);
    expect_metrics_equal(actual.metrics, expected.metrics);
  }
  {
    const auto expected = core::approximate_lp_known_delta_fresh(g, direct);
    const auto actual = api::solver_registry::instance()
                            .find("alg2_fresh")
                            .solve(g, exec, params);
    expect_x_identical(actual.x, expected.x);
    expect_metrics_equal(actual.metrics, expected.metrics);
  }
  {
    const auto expected = core::approximate_lp(g, direct);
    const auto actual =
        api::solver_registry::instance().find("alg3").solve(g, exec, params);
    expect_x_identical(actual.x, expected.x);
    EXPECT_DOUBLE_EQ(actual.ratio_bound, expected.ratio_bound);
    expect_metrics_equal(actual.metrics, expected.metrics);
  }
}

TEST(ApiRegistry, BaselineAdaptersAreBitIdentical) {
  const graph::graph g = fixed_instance();
  exec::context exec;
  exec.seed = 11;
  {
    baselines::lrg_params p;
    p.exec = exec;
    const auto expected = baselines::lrg_mds(g, p);
    const auto actual =
        api::solver_registry::instance().find("lrg").solve(g, exec);
    EXPECT_EQ(actual.in_set, expected.in_set);
    EXPECT_EQ(actual.size, expected.size);
    expect_metrics_equal(actual.metrics, expected.metrics);
  }
  {
    baselines::luby_params p;
    p.exec = exec;
    const auto expected = baselines::luby_mis(g, p);
    const auto actual =
        api::solver_registry::instance().find("luby").solve(g, exec);
    EXPECT_EQ(actual.in_set, expected.in_set);
    expect_metrics_equal(actual.metrics, expected.metrics);
  }
  {
    baselines::wu_li_params p;
    p.exec = exec;
    const auto expected = baselines::wu_li_mds(g, p);
    const auto actual =
        api::solver_registry::instance().find("wu_li").solve(g, exec);
    EXPECT_EQ(actual.in_set, expected.in_set);
    expect_metrics_equal(actual.metrics, expected.metrics);
  }
}

TEST(ApiRegistry, RoundingAdapterMatchesDirectCallOnUniformPoint) {
  const graph::graph g = fixed_instance();
  exec::context exec;
  exec.seed = 13;
  // The standalone solver rounds the uniform feasible point
  // x = 1/(min_degree + 1); reproduce it and call Algorithm 1 directly.
  std::uint32_t d_min = ~std::uint32_t{0};
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    d_min = std::min(d_min, g.degree(v));
  const std::vector<double> x(g.node_count(),
                              1.0 / (static_cast<double>(d_min) + 1.0));
  core::rounding_params p;
  p.exec = exec;
  const auto expected = core::round_to_dominating_set(g, x, p);
  const auto actual =
      api::solver_registry::instance().find("rounding").solve(g, exec);
  EXPECT_EQ(actual.in_set, expected.in_set);
  EXPECT_EQ(actual.size, expected.size);
  expect_metrics_equal(actual.metrics, expected.metrics);
}

TEST(ApiRegistry, WeightedAdapterIsBitIdenticalAcrossModesAndThreads) {
  const graph::graph g = fixed_instance();
  const api::solver& solver = api::solver_registry::instance().find("weighted");
  // costs=degree is the deterministic scheme: cost(v) = 1 + deg(v).
  std::vector<double> cost(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    cost[v] = 1.0 + static_cast<double>(g.degree(v));
  api::param_map params;
  params.set("k", "3");
  params.set("costs", "degree");
  for (const sim::delivery_mode mode :
       {sim::delivery_mode::push, sim::delivery_mode::pull}) {
    for (const std::size_t threads : {1U, 8U}) {
      SCOPED_TRACE(std::string(sim::to_string(mode)) + "/threads=" +
                   std::to_string(threads));
      exec::context exec;
      exec.seed = 21;
      exec.threads = threads;
      exec.delivery = mode;

      core::lp_approx_params direct;
      direct.k = 3;
      direct.exec = exec;
      const core::weighted_lp_result expected =
          core::approximate_weighted_lp(g, cost, direct);

      const api::solve_result actual = solver.solve(g, exec, params);
      expect_x_identical(actual.x, expected.x);
      EXPECT_DOUBLE_EQ(actual.objective, expected.objective);
      EXPECT_DOUBLE_EQ(actual.ratio_bound, expected.ratio_bound);
      expect_metrics_equal(actual.metrics, expected.metrics);
    }
  }
}

TEST(ApiRegistry, WeightedUniformCostsMatchTheSeededDraw) {
  const graph::graph g = fixed_instance();
  exec::context exec;
  exec.seed = 33;
  // costs=uniform draws from rng(exec.seed) -- reproduce the draw and the
  // direct call must match bitwise.
  common::rng gen(exec.seed);
  const auto cost = graph::uniform_costs(g.node_count(), 5.0, gen);
  core::lp_approx_params direct;
  direct.k = 2;
  direct.exec = exec;
  const auto expected = core::approximate_weighted_lp(g, cost, direct);

  api::param_map params;
  params.set("costs", "uniform");
  params.set("cmax", "5");
  const auto actual =
      api::solver_registry::instance().find("weighted").solve(g, exec, params);
  expect_x_identical(actual.x, expected.x);
  EXPECT_DOUBLE_EQ(actual.objective, expected.objective);
  expect_metrics_equal(actual.metrics, expected.metrics);
}

TEST(ApiRegistry, WeightedRejectsBadCostParams) {
  const graph::graph g = graph::path_graph(6);
  const api::solver& solver = api::solver_registry::instance().find("weighted");
  const exec::context exec;
  const auto expect_rejected = [&](const char* key, const std::string& value,
                                   const char* needle) {
    api::param_map params;
    params.set(key, value);
    try {
      (void)solver.solve(g, exec, params);
      FAIL() << key << "=" << value << " must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_rejected("costs", "file:", "needs a path");
  expect_rejected("costs", "file:/does/not/exist.costs", "cannot open");
  expect_rejected("costs", "banana", "'costs'");

  // A cost below 1 (negative included) is rejected naming the file and
  // the offending entry.
  const std::string bad = testing::TempDir() + "bad.costs";
  std::ofstream(bad) << "1.5 2 -3 1 1 1\n";
  expect_rejected("costs", "file:" + bad, "must be >= 1");

  // Count mismatch: 6-node graph, 2 values.
  const std::string few = testing::TempDir() + "few.costs";
  std::ofstream(few) << "1 2\n";
  expect_rejected("costs", "file:" + few, "holds 2 values");

  // Non-numeric content.
  const std::string junk = testing::TempDir() + "junk.costs";
  std::ofstream(junk) << "1 2 x 4 5 6\n";
  expect_rejected("costs", "file:" + junk, "non-numeric");

  // cmax only modifies the uniform draw.
  api::param_map params;
  params.set("costs", "degree");
  params.set("cmax", "9");
  EXPECT_THROW((void)solver.solve(g, exec, params), std::invalid_argument);
}

TEST(ApiRegistry, WeightedFileCostsMatchDirectCall) {
  common::rng gen(8);
  const graph::graph g = graph::gnp_random(40, 0.1, gen);
  const std::string path = testing::TempDir() + "ok.costs";
  {
    std::ofstream out(path);
    for (graph::node_id v = 0; v < g.node_count(); ++v)
      out << 1.0 + (v % 5) * 0.5 << "\n";
  }
  std::vector<double> cost(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    cost[v] = 1.0 + (v % 5) * 0.5;

  exec::context exec;
  core::lp_approx_params direct;
  direct.exec = exec;
  const auto expected = core::approximate_weighted_lp(g, cost, direct);
  api::param_map params;
  params.set("costs", "file:" + path);
  const auto actual =
      api::solver_registry::instance().find("weighted").solve(g, exec, params);
  expect_x_identical(actual.x, expected.x);
  EXPECT_DOUBLE_EQ(actual.objective, expected.objective);
}

TEST(ApiRegistry, CdsAdapterIsBitIdenticalAcrossModesAndThreads) {
  const graph::graph g = fixed_instance();
  const api::solver& solver = api::solver_registry::instance().find("cds");
  api::param_map params;
  params.set("base", "pipeline");
  params.set("k", "3");
  for (const sim::delivery_mode mode :
       {sim::delivery_mode::push, sim::delivery_mode::pull}) {
    for (const std::size_t threads : {1U, 8U}) {
      SCOPED_TRACE(std::string(sim::to_string(mode)) + "/threads=" +
                   std::to_string(threads));
      exec::context exec;
      exec.seed = 17;
      exec.threads = threads;
      exec.delivery = mode;

      core::pipeline_params direct;
      direct.k = 3;
      direct.exec = exec;
      const core::pipeline_result base =
          core::compute_dominating_set(g, direct);
      const core::cds_result expected =
          core::connect_dominating_set(g, base.in_set);

      const api::solve_result actual = solver.solve(g, exec, params);
      EXPECT_EQ(actual.in_set, expected.in_set);
      EXPECT_EQ(actual.size, expected.size);
      EXPECT_TRUE(core::is_connected_within_components(g, actual.in_set));
      EXPECT_TRUE(verify::is_dominating_set(g, actual.in_set));
      // The 3x connector guarantee triples the base's ratio bound.
      EXPECT_DOUBLE_EQ(actual.ratio_bound,
                       3.0 * base.expected_ratio_bound);
    }
  }
}

TEST(ApiRegistry, CdsOverGreedyMatchesDirectCall) {
  const graph::graph g = fixed_instance();
  const auto base = baselines::greedy_mds(g);
  const auto expected = core::connect_dominating_set(g, base.in_set);
  api::param_map params;
  params.set("base", "greedy");
  const auto actual = api::solver_registry::instance().find("cds").solve(
      g, exec::context{}, params);
  EXPECT_EQ(actual.in_set, expected.in_set);
  EXPECT_EQ(actual.size, expected.size);
}

TEST(ApiRegistry, CdsRejectsBadBase) {
  const graph::graph g = graph::path_graph(8);
  const api::solver& solver = api::solver_registry::instance().find("cds");
  const exec::context exec;
  const auto expect_rejected = [&](const std::string& base,
                                   const char* needle) {
    api::param_map params;
    params.set("base", base);
    try {
      (void)solver.solve(g, exec, params);
      FAIL() << "base=" << base << " must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_rejected("does_not_exist", "does_not_exist");
  expect_rejected("alg2", "fractional-only");
  expect_rejected("cds", "cannot stack on itself");
  // Params the base does not accept fail through the base's own
  // require_known, not silently.
  api::param_map params;
  params.set("base", "greedy");
  params.set("k", "3");
  EXPECT_THROW((void)solver.solve(g, exec, params), std::invalid_argument);
}

// A crash cluster covering node 55's whole closed neighborhood on the
// 10x10 grid: nobody inside the hole survives to self-select, so the
// damaged output is guaranteed invalid (the repairable test fixture).
constexpr const char* kClusterPlan =
    "crash=55@0+crash=45@0+crash=54@0+crash=56@0+crash=65@0";

exec::context cluster_exec() {
  exec::context exec;
  exec.seed = 2;
  exec.faults = std::make_shared<const sim::fault_plan>(
      sim::parse_fault_plan(kClusterPlan));
  return exec;
}

TEST(ApiRegistry, RepairRadiusHealsACrashCluster) {
  const graph::graph g = api::make_graph("grid", 100, 2);
  const api::solver& solver = api::solver_registry::instance().find("pipeline");
  const exec::context exec = cluster_exec();
  api::param_map params;
  params.set("k", "2");

  const api::solve_result damaged = solver.solve(g, exec, params);
  EXPECT_FALSE(verify::is_dominating_set(g, damaged.in_set));
  EXPECT_FALSE(damaged.repair.attempted);
  EXPECT_EQ(damaged.metrics.nodes_crashed, 5U);

  params.set("repair", "radius");
  params.set("repair-radius", "2");
  const api::solve_result healed = solver.solve(g, exec, params);
  EXPECT_TRUE(verify::is_dominating_set(g, healed.in_set));
  EXPECT_TRUE(healed.repair.attempted);
  EXPECT_EQ(healed.repair.mode, "radius");
  EXPECT_EQ(healed.repair.radius, 2U);
  EXPECT_GE(healed.repair.holes_before, 1U);
  EXPECT_EQ(healed.repair.holes_after, 0U);
  EXPECT_GT(healed.repair.added, 0U);
  // The acceptance bound: repair work confined to the dirty frontier, not
  // proportional to the graph.
  EXPECT_LT(healed.repair.touched_nodes, g.node_count() / 2);
  // Union only: the repaired set extends the damaged one.
  ASSERT_EQ(healed.in_set.size(), damaged.in_set.size());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    EXPECT_GE(healed.in_set[v], damaged.in_set[v]);
  EXPECT_EQ(healed.size, verify::set_size(healed.in_set));
  EXPECT_DOUBLE_EQ(healed.objective, static_cast<double>(healed.size));
}

TEST(ApiRegistry, RepairGreedyHealsACrashCluster) {
  const graph::graph g = api::make_graph("grid", 100, 2);
  const api::solver& solver = api::solver_registry::instance().find("pipeline");
  api::param_map params;
  params.set("k", "2");
  params.set("repair", "greedy");
  const api::solve_result healed = solver.solve(g, cluster_exec(), params);
  EXPECT_TRUE(verify::is_dominating_set(g, healed.in_set));
  EXPECT_EQ(healed.repair.mode, "greedy");
  EXPECT_GE(healed.repair.holes_before, 1U);
  EXPECT_GT(healed.repair.added, 0U);
  // Greedy touches only the holes and their direct neighbors.
  EXPECT_LE(healed.repair.touched_nodes, 5U * healed.repair.holes_before);
}

TEST(ApiRegistry, RepairOnACleanRunIsANoOp) {
  const graph::graph g = api::make_graph("grid", 100, 2);
  const api::solver& solver = api::solver_registry::instance().find("pipeline");
  exec::context exec;
  exec.seed = 2;
  api::param_map params;
  params.set("k", "2");
  const api::solve_result plain = solver.solve(g, exec, params);
  params.set("repair", "radius");
  const api::solve_result repaired = solver.solve(g, exec, params);
  EXPECT_TRUE(repaired.repair.attempted);
  EXPECT_EQ(repaired.repair.holes_before, 0U);
  EXPECT_EQ(repaired.repair.added, 0U);
  EXPECT_EQ(repaired.repair.touched_nodes, 0U);
  EXPECT_EQ(repaired.in_set, plain.in_set);
  EXPECT_EQ(api::solution_digest(repaired), api::solution_digest(plain));
}

TEST(ApiRegistry, RepairParamRules) {
  const graph::graph g = graph::path_graph(8);
  const auto& registry = api::solver_registry::instance();
  const exec::context exec;
  const auto expect_rejected = [&](const char* solver_name,
                                   const api::param_map& params) {
    EXPECT_THROW((void)registry.find(solver_name).solve(g, exec, params),
                 std::invalid_argument);
  };
  {
    // repair-radius without radius mode is a contradiction, not a no-op.
    api::param_map params;
    params.set("repair-radius", "2");
    expect_rejected("greedy", params);
    params.set("repair", "greedy");
    expect_rejected("greedy", params);
  }
  {
    api::param_map params;
    params.set("repair", "bogus");
    expect_rejected("greedy", params);
  }
  {
    // Radius 0 would repair nothing; reject rather than silently no-op.
    api::param_map params;
    params.set("repair", "radius");
    params.set("repair-radius", "0");
    expect_rejected("greedy", params);
  }
  {
    // Fractional solvers have no set to repair.
    api::param_map params;
    params.set("repair", "greedy");
    expect_rejected("alg2", params);
    params.set("repair", "radius");
    expect_rejected("weighted", params);
  }
  {
    // Unknown solver params still fail through require_known even when
    // repair keys are present (the strip must not swallow them).
    api::param_map params;
    params.set("repair", "greedy");
    params.set("bogus", "1");
    expect_rejected("greedy", params);
  }
}

TEST(ApiRegistry, SolutionDigestSeparatesDifferentRuns) {
  const graph::graph g = fixed_instance();
  const api::solver& lrg = api::solver_registry::instance().find("lrg");
  exec::context a;
  a.seed = 1;
  exec::context b;
  b.seed = 2;
  const auto res_a = lrg.solve(g, a);
  const auto res_a2 = lrg.solve(g, a);
  const auto res_b = lrg.solve(g, b);
  EXPECT_EQ(api::solution_digest(res_a), api::solution_digest(res_a2));
  // Different seeds virtually never produce identical LRG sets here
  // (checked: they differ on this instance).
  EXPECT_NE(res_a.in_set, res_b.in_set);
  EXPECT_NE(api::solution_digest(res_a), api::solution_digest(res_b));
}

TEST(ApiGraphs, FamiliesResolveAndRejectUnknowns) {
  const auto g = api::make_graph("star", 40, 1);
  EXPECT_EQ(g.node_count(), 40U);
  EXPECT_EQ(g.max_degree(), 39U);

  EXPECT_THROW((void)api::make_graph("nope", 10, 1), std::invalid_argument);
  api::param_map params;
  params.set("radius", "0.5");
  // 'radius' belongs to udg, not gnp.
  EXPECT_THROW((void)api::make_graph("gnp", 10, 1, params),
               std::invalid_argument);
  EXPECT_NO_THROW((void)api::make_graph("udg", 10, 1, params));
}

TEST(ApiGraphs, GnpHonorsExplicitEdgeProbability) {
  api::param_map dense;
  dense.set("p", "1");
  const auto g = api::make_graph("gnp", 12, 3, dense);
  EXPECT_EQ(g.edge_count(), 12U * 11U / 2U);
}

}  // namespace
}  // namespace domset
