// Bounded-radius self-healing: union-only semantics, dirty-region size
// proportional to the damage (never the graph), greedy determinism, and
// every documented error path.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/repair.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

using core::repair_mode;
using core::repair_params;
using core::repair_result;

TEST(RepairMode, ParseRoundTrips) {
  for (const repair_mode mode :
       {repair_mode::off, repair_mode::radius, repair_mode::greedy}) {
    EXPECT_EQ(core::parse_repair_mode(core::to_string(mode)), mode);
  }
  EXPECT_THROW((void)core::parse_repair_mode("bogus"), std::invalid_argument);
}

TEST(Repair, AlreadyValidSetIsUntouched) {
  const graph::graph g = graph::path_graph(3);
  const std::vector<std::uint8_t> in_set = {0, 1, 0};
  repair_params params;
  params.mode = repair_mode::greedy;
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_EQ(result.in_set, in_set);
  EXPECT_EQ(result.holes_before, 0U);
  EXPECT_EQ(result.added, 0U);
  EXPECT_EQ(result.touched_nodes, 0U);
}

TEST(Repair, GreedyPicksBestCoveringNode) {
  // Ends of a 7-path are members; holes are {2, 3, 4}.  Node 3 covers all
  // three at once, so greedy repairs with a single addition while touching
  // only the holes and their direct neighbors.
  const graph::graph g = graph::path_graph(7);
  const std::vector<std::uint8_t> in_set = {1, 0, 0, 0, 0, 0, 1};
  repair_params params;
  params.mode = repair_mode::greedy;
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_TRUE(verify::is_dominating_set(g, result.in_set));
  EXPECT_EQ(result.holes_before, 3U);
  EXPECT_EQ(result.holes_after, 0U);
  EXPECT_EQ(result.added, 1U);
  EXPECT_EQ(result.touched_nodes, 5U);  // {1, 2, 3, 4, 5}
  EXPECT_EQ(result.in_set, (std::vector<std::uint8_t>{1, 0, 0, 1, 0, 0, 1}));
}

TEST(Repair, GreedyBreaksTiesTowardSmallestId) {
  // Both nodes of an edge cover both holes; the scan order makes node 0
  // the deterministic winner.
  const graph::graph g = graph::path_graph(2);
  const std::vector<std::uint8_t> in_set = {0, 0};
  repair_params params;
  params.mode = repair_mode::greedy;
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_EQ(result.in_set, (std::vector<std::uint8_t>{1, 0}));
  EXPECT_EQ(result.added, 1U);
}

TEST(Repair, RadiusHandsSubsolverTheDirtyBall) {
  // radius=1 around holes {2, 3, 4} of the 7-path is exactly {1..5}; the
  // subsolver sees that induced path and its original-id map.
  const graph::graph g = graph::path_graph(7);
  const std::vector<std::uint8_t> in_set = {1, 0, 0, 0, 0, 0, 1};
  repair_params params;
  params.mode = repair_mode::radius;
  params.radius = 1;
  std::vector<graph::node_id> seen_ids;
  params.subsolver = [&](const graph::graph& sub,
                         const std::vector<graph::node_id>& original_id) {
    seen_ids = original_id;
    // Dominate the 5-node sub-path with {1, 3} (its domination number is 2).
    std::vector<std::uint8_t> sub_set(sub.node_count(), 0);
    sub_set[1] = 1;
    sub_set[3] = 1;
    return sub_set;
  };
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_EQ(seen_ids, (std::vector<graph::node_id>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(verify::is_dominating_set(g, result.in_set));
  EXPECT_EQ(result.touched_nodes, 5U);
  EXPECT_EQ(result.added, 2U);  // original nodes 2 and 4
  // Union only: no original member was evicted.
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    EXPECT_GE(result.in_set[v], in_set[v]);
}

TEST(Repair, RadiusWorkStaysLocalOnLongPath) {
  // Members every third node on a 50-path, with the member at 25 knocked
  // out: holes {24, 25, 26}.  The radius-2 dirty ball is {22..28} -- 7
  // nodes regardless of the other 43 -- and re-adding 25 alone heals it.
  const std::size_t n = 50;
  const graph::graph g = graph::path_graph(n);
  std::vector<std::uint8_t> in_set(n, 0);
  for (std::size_t v = 0; v < n; ++v) in_set[v] = v % 3 == 1 ? 1 : 0;
  in_set[25] = 0;
  repair_params params;
  params.mode = repair_mode::radius;
  params.radius = 2;
  params.subsolver = [](const graph::graph& sub,
                        const std::vector<graph::node_id>& original_id) {
    std::vector<std::uint8_t> sub_set(sub.node_count(), 0);
    for (graph::node_id s = 0; s < sub.node_count(); ++s)
      sub_set[s] = original_id[s] % 3 == 1 || original_id[s] == 25 ? 1 : 0;
    return sub_set;
  };
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_TRUE(verify::is_dominating_set(g, result.in_set));
  EXPECT_EQ(result.holes_before, 3U);
  EXPECT_EQ(result.touched_nodes, 7U);
  EXPECT_LE(result.touched_nodes,
            result.holes_before * (2 * params.radius + 1));
  EXPECT_EQ(result.added, 1U);
}

TEST(Repair, SubsolverFailuresThrow) {
  const graph::graph g = graph::path_graph(5);
  const std::vector<std::uint8_t> in_set = {0, 0, 0, 0, 0};
  repair_params params;
  params.mode = repair_mode::radius;
  params.radius = 1;
  params.subsolver = [](const graph::graph& sub,
                        const std::vector<graph::node_id>&) {
    return std::vector<std::uint8_t>(sub.node_count(), 0);  // dominates nothing
  };
  EXPECT_THROW((void)core::repair(g, in_set, params), std::runtime_error);
  params.subsolver = [](const graph::graph&,
                        const std::vector<graph::node_id>&) {
    return std::vector<std::uint8_t>{1};  // wrong size
  };
  EXPECT_THROW((void)core::repair(g, in_set, params), std::runtime_error);
}

TEST(Repair, ParameterErrorPaths) {
  const graph::graph g = graph::path_graph(3);
  const std::vector<std::uint8_t> in_set = {0, 0, 0};
  repair_params params;
  params.mode = repair_mode::off;
  EXPECT_THROW((void)core::repair(g, in_set, params), std::invalid_argument);
  params.mode = repair_mode::radius;
  params.subsolver = nullptr;
  EXPECT_THROW((void)core::repair(g, in_set, params), std::invalid_argument);
  params.mode = repair_mode::greedy;
  const std::vector<std::uint8_t> wrong_size = {0, 0};
  EXPECT_THROW((void)core::repair(g, wrong_size, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace domset
