// Bounded-radius self-healing: union-only semantics, dirty-region size
// proportional to the damage (never the graph), greedy determinism, and
// every documented error path.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/repair.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

using core::repair_mode;
using core::repair_params;
using core::repair_result;

TEST(RepairMode, ParseRoundTrips) {
  for (const repair_mode mode :
       {repair_mode::off, repair_mode::radius, repair_mode::greedy}) {
    EXPECT_EQ(core::parse_repair_mode(core::to_string(mode)), mode);
  }
  EXPECT_THROW((void)core::parse_repair_mode("bogus"), std::invalid_argument);
}

TEST(Repair, AlreadyValidSetIsUntouched) {
  const graph::graph g = graph::path_graph(3);
  const std::vector<std::uint8_t> in_set = {0, 1, 0};
  repair_params params;
  params.mode = repair_mode::greedy;
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_EQ(result.in_set, in_set);
  EXPECT_EQ(result.holes_before, 0U);
  EXPECT_EQ(result.added, 0U);
  EXPECT_EQ(result.touched_nodes, 0U);
}

TEST(Repair, GreedyPicksBestCoveringNode) {
  // Ends of a 7-path are members; holes are {2, 3, 4}.  Node 3 covers all
  // three at once, so greedy repairs with a single addition while touching
  // only the holes and their direct neighbors.
  const graph::graph g = graph::path_graph(7);
  const std::vector<std::uint8_t> in_set = {1, 0, 0, 0, 0, 0, 1};
  repair_params params;
  params.mode = repair_mode::greedy;
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_TRUE(verify::is_dominating_set(g, result.in_set));
  EXPECT_EQ(result.holes_before, 3U);
  EXPECT_EQ(result.holes_after, 0U);
  EXPECT_EQ(result.added, 1U);
  EXPECT_EQ(result.touched_nodes, 5U);  // {1, 2, 3, 4, 5}
  EXPECT_EQ(result.in_set, (std::vector<std::uint8_t>{1, 0, 0, 1, 0, 0, 1}));
}

TEST(Repair, GreedyBreaksTiesTowardSmallestId) {
  // Both nodes of an edge cover both holes; the scan order makes node 0
  // the deterministic winner.
  const graph::graph g = graph::path_graph(2);
  const std::vector<std::uint8_t> in_set = {0, 0};
  repair_params params;
  params.mode = repair_mode::greedy;
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_EQ(result.in_set, (std::vector<std::uint8_t>{1, 0}));
  EXPECT_EQ(result.added, 1U);
}

TEST(Repair, RadiusHandsSubsolverTheDirtyBall) {
  // radius=1 around holes {2, 3, 4} of the 7-path is exactly {1..5}; the
  // subsolver sees that induced path and its original-id map.
  const graph::graph g = graph::path_graph(7);
  const std::vector<std::uint8_t> in_set = {1, 0, 0, 0, 0, 0, 1};
  repair_params params;
  params.mode = repair_mode::radius;
  params.radius = 1;
  std::vector<graph::node_id> seen_ids;
  params.subsolver = [&](const graph::graph& sub,
                         const std::vector<graph::node_id>& original_id) {
    seen_ids = original_id;
    // Dominate the 5-node sub-path with {1, 3} (its domination number is 2).
    std::vector<std::uint8_t> sub_set(sub.node_count(), 0);
    sub_set[1] = 1;
    sub_set[3] = 1;
    return sub_set;
  };
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_EQ(seen_ids, (std::vector<graph::node_id>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(verify::is_dominating_set(g, result.in_set));
  EXPECT_EQ(result.touched_nodes, 5U);
  EXPECT_EQ(result.added, 2U);  // original nodes 2 and 4
  // Union only: no original member was evicted.
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    EXPECT_GE(result.in_set[v], in_set[v]);
}

TEST(Repair, RadiusWorkStaysLocalOnLongPath) {
  // Members every third node on a 50-path, with the member at 25 knocked
  // out: holes {24, 25, 26}.  The radius-2 dirty ball is {22..28} -- 7
  // nodes regardless of the other 43 -- and re-adding 25 alone heals it.
  const std::size_t n = 50;
  const graph::graph g = graph::path_graph(n);
  std::vector<std::uint8_t> in_set(n, 0);
  for (std::size_t v = 0; v < n; ++v) in_set[v] = v % 3 == 1 ? 1 : 0;
  in_set[25] = 0;
  repair_params params;
  params.mode = repair_mode::radius;
  params.radius = 2;
  params.subsolver = [](const graph::graph& sub,
                        const std::vector<graph::node_id>& original_id) {
    std::vector<std::uint8_t> sub_set(sub.node_count(), 0);
    for (graph::node_id s = 0; s < sub.node_count(); ++s)
      sub_set[s] = original_id[s] % 3 == 1 || original_id[s] == 25 ? 1 : 0;
    return sub_set;
  };
  const repair_result result = core::repair(g, in_set, params);
  EXPECT_TRUE(verify::is_dominating_set(g, result.in_set));
  EXPECT_EQ(result.holes_before, 3U);
  EXPECT_EQ(result.touched_nodes, 7U);
  EXPECT_LE(result.touched_nodes,
            result.holes_before * (2 * params.radius + 1));
  EXPECT_EQ(result.added, 1U);
}

TEST(RepairView, DirtyRegionReportsDepthsAndSize) {
  // radius-2 around seed {5} on a 11-path: ball {3..7} with BFS depths
  // 2,1,0,1,2; everything else unreached.
  const graph::graph g = graph::path_graph(11);
  const std::vector<graph::node_id> seeds = {5};
  const core::dirty_ball ball =
      core::dirty_region(core::as_view(g), seeds, 2);
  EXPECT_EQ(ball.size, 5U);
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    const bool inside = v >= 3 && v <= 7;
    EXPECT_EQ(ball.in_ball[v] != 0, inside) << "node " << v;
    if (inside)
      EXPECT_EQ(ball.depth[v], v > 5 ? v - 5 : 5 - v) << "node " << v;
    else
      EXPECT_EQ(ball.depth[v], core::dirty_ball::unreached) << "node " << v;
  }

  // Duplicate seeds are fine; out-of-range seeds throw.
  const std::vector<graph::node_id> dup = {5, 5};
  EXPECT_EQ(core::dirty_region(core::as_view(g), dup, 2).size, 5U);
  const std::vector<graph::node_id> bad = {42};
  EXPECT_THROW((void)core::dirty_region(core::as_view(g), bad, 1),
               std::invalid_argument);
}

TEST(RepairView, DegreeCapPinsHubsToTheBoundaryShell) {
  // A star: the hub dominates every BFS, so any ball touching a leaf
  // swallows the whole graph.  With the cap below the hub degree the hub
  // enters pinned at depth == radius -- in the ball (the coverage check
  // must see it) but never expanded (no fan-out to the other leaves).
  const graph::graph g = graph::star_graph(101);  // hub 0, leaves 1..100
  const std::vector<graph::node_id> seeds = {1};

  const core::dirty_ball uncapped =
      core::dirty_region(core::as_view(g), seeds, 2);
  EXPECT_EQ(uncapped.size, 101U);  // leaf -> hub -> every other leaf
  EXPECT_EQ(uncapped.capped, 0U);

  const core::dirty_ball capped =
      core::dirty_region(core::as_view(g), seeds, 2, /*degree_cap=*/16);
  EXPECT_EQ(capped.size, 2U);  // just the seed leaf and the pinned hub
  EXPECT_EQ(capped.capped, 1U);
  EXPECT_EQ(capped.depth[1], 0U);
  EXPECT_EQ(capped.depth[0], 2U);  // pinned to the boundary shell
  EXPECT_EQ(capped.depth[2], core::dirty_ball::unreached);

  // A capped *seed* is still admitted (pinned), so mutations touching a
  // hub always leave it visible to the coverage check.
  const std::vector<graph::node_id> hub_seed = {0};
  const core::dirty_ball hub_ball =
      core::dirty_region(core::as_view(g), hub_seed, 2, 16);
  EXPECT_EQ(hub_ball.size, 1U);
  EXPECT_EQ(hub_ball.capped, 1U);
  EXPECT_EQ(hub_ball.depth[0], 2U);

  // A cap at or above the max degree changes nothing.
  const core::dirty_ball loose =
      core::dirty_region(core::as_view(g), seeds, 2, 100);
  EXPECT_EQ(loose.size, 101U);
  EXPECT_EQ(loose.capped, 0U);
}

TEST(RepairView, ExtractSubgraphMatchesInducedSubgraph) {
  // Keeping {1, 2, 3, 5} of a 6-cycle keeps edges 1-2 and 2-3 (5's cycle
  // neighbors 4 and 0 are dropped), with ascending original ids.
  const graph::graph g = graph::cycle_graph(6);
  const std::vector<std::uint8_t> keep = {0, 1, 1, 1, 0, 1};
  const core::view_subgraph sub =
      core::extract_subgraph(core::as_view(g), keep);
  EXPECT_EQ(sub.original_id, (std::vector<graph::node_id>{1, 2, 3, 5}));
  EXPECT_EQ(sub.g.node_count(), 4U);
  EXPECT_EQ(sub.g.edge_count(), 2U);
  std::vector<graph::node_id> row1(sub.g.neighbors(1).begin(),
                                   sub.g.neighbors(1).end());
  EXPECT_EQ(row1, (std::vector<graph::node_id>{0, 2}));  // new-id space
}

TEST(RepairView, GreedyPatchOverAViewMatchesTheCsrPass) {
  // Same scenario as GreedyPicksBestCoveringNode, driven through the
  // view-based building block directly.
  const graph::graph g = graph::path_graph(7);
  std::vector<std::uint8_t> in_set = {1, 0, 0, 0, 0, 0, 1};
  const std::vector<graph::node_id> holes = {2, 3, 4};
  const core::patch_result patched =
      core::greedy_patch(core::as_view(g), holes, in_set);
  EXPECT_EQ(patched.added, 1U);
  EXPECT_EQ(patched.touched_nodes, 5U);
  EXPECT_EQ(in_set, (std::vector<std::uint8_t>{1, 0, 0, 1, 0, 0, 1}));
  EXPECT_TRUE(verify::is_dominating_set(g, in_set));
}

TEST(Repair, SubsolverFailuresThrow) {
  const graph::graph g = graph::path_graph(5);
  const std::vector<std::uint8_t> in_set = {0, 0, 0, 0, 0};
  repair_params params;
  params.mode = repair_mode::radius;
  params.radius = 1;
  params.subsolver = [](const graph::graph& sub,
                        const std::vector<graph::node_id>&) {
    return std::vector<std::uint8_t>(sub.node_count(), 0);  // dominates nothing
  };
  EXPECT_THROW((void)core::repair(g, in_set, params), std::runtime_error);
  params.subsolver = [](const graph::graph&,
                        const std::vector<graph::node_id>&) {
    return std::vector<std::uint8_t>{1};  // wrong size
  };
  EXPECT_THROW((void)core::repair(g, in_set, params), std::runtime_error);
}

TEST(Repair, ParameterErrorPaths) {
  const graph::graph g = graph::path_graph(3);
  const std::vector<std::uint8_t> in_set = {0, 0, 0};
  repair_params params;
  params.mode = repair_mode::off;
  EXPECT_THROW((void)core::repair(g, in_set, params), std::invalid_argument);
  params.mode = repair_mode::radius;
  params.subsolver = nullptr;
  EXPECT_THROW((void)core::repair(g, in_set, params), std::invalid_argument);
  params.mode = repair_mode::greedy;
  const std::vector<std::uint8_t> wrong_size = {0, 0};
  EXPECT_THROW((void)core::repair(g, wrong_size, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace domset
