#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace domset::graph {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  graph g = graph_builder(0).build();
  EXPECT_EQ(g.node_count(), 0U);
  EXPECT_EQ(g.edge_count(), 0U);
  EXPECT_EQ(g.max_degree(), 0U);
}

TEST(GraphBuilder, IsolatedNodes) {
  graph g = graph_builder(5).build();
  EXPECT_EQ(g.node_count(), 5U);
  EXPECT_EQ(g.edge_count(), 0U);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0U);
}

TEST(GraphBuilder, SimpleTriangle) {
  graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  graph g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 3U);
  EXPECT_EQ(g.max_degree(), 2U);
  for (node_id v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2U);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  b.add_edge(0, 1);
  graph g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(1), 1U);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  graph_builder b(2);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  graph_builder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(b.add_edge(5, 0), std::invalid_argument);
}

TEST(GraphBuilder, HasEdgeSlow) {
  graph_builder b(4);
  b.add_edge(0, 3);
  EXPECT_TRUE(b.has_edge_slow(0, 3));
  EXPECT_TRUE(b.has_edge_slow(3, 0));
  EXPECT_FALSE(b.has_edge_slow(1, 2));
}

TEST(Graph, NeighborListsAreSorted) {
  graph_builder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 1);
  b.add_edge(3, 4);
  b.add_edge(3, 0);
  graph g = std::move(b).build();
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4U);
}

TEST(Graph, HasEdgeBothDirections) {
  graph_builder b(4);
  b.add_edge(1, 2);
  graph g = std::move(b).build();
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, ClosedNeighborhoodVisitsSelfFirst) {
  graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  graph g = std::move(b).build();
  std::vector<node_id> visited;
  g.for_closed_neighborhood(0, [&](node_id u) { visited.push_back(u); });
  ASSERT_EQ(visited.size(), 3U);
  EXPECT_EQ(visited[0], 0U);
  EXPECT_EQ(g.closed_degree(0), 3U);
}

TEST(Graph, AdjacencySymmetry) {
  graph_builder b(10);
  b.add_edge(0, 9);
  b.add_edge(4, 5);
  b.add_edge(2, 7);
  graph g = std::move(b).build();
  for (node_id v = 0; v < g.node_count(); ++v)
    for (const node_id u : g.neighbors(v)) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(Graph, SummaryMentionsCounts) {
  graph_builder b(3);
  b.add_edge(0, 1);
  graph g = std::move(b).build();
  const std::string s = g.summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
  EXPECT_NE(s.find("maxdeg=1"), std::string::npos);
}

}  // namespace
}  // namespace domset::graph
