#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace domset::graph {
namespace {

TEST(InducedSubgraph, KeepsSelectedEdgesOnly) {
  // Square 0-1-2-3-0 with diagonal 0-2; keep {0,1,2}.
  graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  const graph g = std::move(b).build();
  const std::vector<std::uint8_t> keep{1, 1, 1, 0};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.g.node_count(), 3U);
  EXPECT_EQ(sub.g.edge_count(), 3U);  // 0-1, 1-2, 0-2
  ASSERT_EQ(sub.original_id.size(), 3U);
  EXPECT_EQ(sub.original_id[0], 0U);
  EXPECT_EQ(sub.original_id[1], 1U);
  EXPECT_EQ(sub.original_id[2], 2U);
}

TEST(InducedSubgraph, EmptySelection) {
  const graph g = complete_graph(5);
  const std::vector<std::uint8_t> keep(5, 0);
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.g.node_count(), 0U);
  EXPECT_TRUE(sub.original_id.empty());
}

TEST(InducedSubgraph, FullSelectionIsIdentity) {
  common::rng gen(1401);
  const graph g = gnp_random(30, 0.2, gen);
  const std::vector<std::uint8_t> keep(30, 1);
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.g.node_count(), g.node_count());
  EXPECT_EQ(sub.g.edge_count(), g.edge_count());
  for (node_id v = 0; v < 30; ++v) EXPECT_EQ(sub.original_id[v], v);
}

TEST(InducedSubgraph, DegreesNeverGrow) {
  common::rng gen(1402);
  const graph g = gnp_random(40, 0.15, gen);
  std::vector<std::uint8_t> keep(40);
  for (auto& k : keep) k = gen.next_bernoulli(0.6) ? 1 : 0;
  const auto sub = induced_subgraph(g, keep);
  for (node_id v = 0; v < sub.g.node_count(); ++v)
    EXPECT_LE(sub.g.degree(v), g.degree(sub.original_id[v]));
}

TEST(LargestComponent, PicksTheBiggest) {
  // Triangle + edge + isolated node.
  graph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  const graph g = std::move(b).build();
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.g.node_count(), 3U);
  EXPECT_EQ(sub.g.edge_count(), 3U);
  EXPECT_TRUE(is_connected(sub.g));
}

TEST(LargestComponent, ConnectedGraphIsUnchanged) {
  const graph g = cycle_graph(12);
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.g.node_count(), 12U);
  EXPECT_EQ(sub.g.edge_count(), 12U);
}

TEST(LargestComponent, AlwaysConnectedOnRandomInputs) {
  common::rng gen(1403);
  for (int trial = 0; trial < 10; ++trial) {
    const graph g = gnp_random(80, 0.02, gen);  // likely fragmented
    const auto sub = largest_component(g);
    EXPECT_TRUE(is_connected(sub.g)) << "trial " << trial;
    EXPECT_GE(sub.g.node_count(), 1U);
  }
}

TEST(LargestComponent, EmptyGraph) {
  const auto sub = largest_component(graph{});
  EXPECT_EQ(sub.g.node_count(), 0U);
}

}  // namespace
}  // namespace domset::graph
