// Differential fuzz (ISSUE 8 satellite): seeded random instances, every
// registered integral solver, outputs cross-checked against the exact
// branch-and-bound optimum (small n) or the validity oracle (larger n).
// Instances are built through api::make_graph with the CLI's own family
// vocabulary and default parameters, so every failure message is a
// ready-to-paste reproducer:
//
//   domset run --alg <solver> --graph <family> --n <n> --seed <seed>
//
// The seeds are fixed (gtest params, not wall-clock entropy): the suite
// is a regression corpus that happens to have been found by fuzzing, not
// a flaky roll of the dice.
#include <gtest/gtest.h>

#include <string>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/solver.hpp"
#include "exact/exact_mds.hpp"
#include "exec/context.hpp"
#include "support/families.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

std::string reproducer(const std::string& solver, const std::string& family,
                       std::size_t n, std::uint64_t seed) {
  return "reproduce with: domset run --alg " + solver + " --graph " + family +
         " --n " + std::to_string(n) + " --seed " + std::to_string(seed);
}

void check_instance(const std::string& family, std::size_t n,
                    std::uint64_t seed, bool against_exact) {
  const graph::graph g = api::make_graph(family, n, seed);
  std::size_t opt = 0;
  if (against_exact) {
    const auto exact = exact::solve_mds(g);
    ASSERT_TRUE(exact.has_value());
    opt = exact->size;
  }

  exec::context exec;
  exec.seed = seed;
  for (const std::string& name : testsupport::integral_solver_names()) {
    const api::solve_result result =
        api::solver_registry::instance().find(name).solve(g, exec);
    EXPECT_TRUE(verify::is_dominating_set(g, result.in_set))
        << name << " returned a non-dominating set ("
        << verify::undominated_nodes(g, result.in_set).size()
        << " holes); " << reproducer(name, family, n, seed);
    EXPECT_EQ(result.size, verify::set_size(result.in_set))
        << reproducer(name, family, n, seed);
    if (against_exact) {
      EXPECT_GE(result.size, opt)
          << name << " reported a set below the exact optimum " << opt
          << "; " << reproducer(name, family, n, seed);
    }
  }
}

class SolverDifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SolverDifferentialFuzz, SmallInstancesMatchExactOptimum) {
  const std::uint64_t seed = GetParam();
  // n in [20, 60], exact-checked.
  const std::size_t n = 20 + (seed * 13) % 41;
  check_instance("gnp", n, seed, /*against_exact=*/true);
  check_instance("ba", n, seed + 100, /*against_exact=*/true);
}

TEST_P(SolverDifferentialFuzz, LargerInstancesStayValid) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 120 + (seed * 29) % 81;  // n in [120, 200]
  check_instance("gnp", n, seed, /*against_exact=*/false);
  check_instance("ba", n, seed + 100, /*against_exact=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SolverDifferentialFuzz, ::testing::Range<std::uint64_t>(1, 7),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

}  // namespace
}  // namespace domset
