// The mutation grammar: canonical round-trips, '+'-joined batches, log
// parsing with 1-based line numbers, and every documented rejection.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dyn/mutation.hpp"

namespace domset {
namespace {

using dyn::mutation;
using dyn::mutation_kind;

std::string thrown_message(const std::string& spec) {
  try {
    (void)dyn::parse_mutation(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(DynMutation, RoundTripsAllFourKinds) {
  for (const char* spec : {"add=2-5", "del=0-9", "addnode=7", "delnode=0"}) {
    EXPECT_EQ(dyn::to_string(dyn::parse_mutation(spec)), spec);
  }
}

TEST(DynMutation, EdgeEndpointsCanonicalizeSmallLarge) {
  const mutation m = dyn::parse_mutation("add=5-2");
  EXPECT_EQ(m.kind, mutation_kind::add_edge);
  EXPECT_EQ(m.u, 2U);
  EXPECT_EQ(m.v, 5U);
  EXPECT_EQ(dyn::to_string(m), "add=2-5");
  EXPECT_EQ(dyn::parse_mutation("del=9-3"), dyn::parse_mutation("del=3-9"));
}

TEST(DynMutation, NodeOperationsStoreTheNodeInBothFields) {
  const mutation m = dyn::parse_mutation("delnode=4");
  EXPECT_EQ(m.kind, mutation_kind::del_node);
  EXPECT_EQ(m.u, 4U);
  EXPECT_EQ(m.v, 4U);
}

TEST(DynMutation, ListRoundTripsAndEmptyIsEmpty) {
  const std::vector<mutation> batch =
      dyn::parse_mutation_list("add=0-1+delnode=2+addnode=3");
  ASSERT_EQ(batch.size(), 3U);
  EXPECT_EQ(dyn::to_string(batch), "add=0-1+delnode=2+addnode=3");
  EXPECT_TRUE(dyn::parse_mutation_list("").empty());
  EXPECT_EQ(dyn::to_string(std::vector<mutation>{}), "");
}

TEST(DynMutation, RejectionsNameTheSpecAndTheReason) {
  EXPECT_NE(thrown_message("grow=1-2").find(
                "expected add=, del=, addnode= or delnode="),
            std::string::npos);
  EXPECT_NE(thrown_message("add=3-3").find("edge endpoints must differ"),
            std::string::npos);
  EXPECT_NE(thrown_message("add=1").find("'-' between edge ends"),
            std::string::npos);
  EXPECT_NE(thrown_message("addnode=").find("expected a node id"),
            std::string::npos);
  EXPECT_NE(thrown_message("add=1-2junk").find("trailing characters"),
            std::string::npos);
  EXPECT_NE(thrown_message("add=1-2junk").find("add=1-2junk"),
            std::string::npos)
      << "errors must quote the offending spec";
  EXPECT_THROW((void)dyn::parse_mutation_list("add=0-1+"),
               std::invalid_argument);
  EXPECT_THROW((void)dyn::parse_mutation_list("add=0-1 del=1-2"),
               std::invalid_argument);
}

TEST(DynMutation, LogParsesCommentsBlanksAndCrLf) {
  const std::vector<mutation> log = dyn::parse_mutation_log(
      "# header comment\n"
      "add=0-1\r\n"
      "\n"
      "  del=0-1   # inline comment\n"
      "addnode=5");
  ASSERT_EQ(log.size(), 3U);
  EXPECT_EQ(dyn::to_string(log[0]), "add=0-1");
  EXPECT_EQ(dyn::to_string(log[1]), "del=0-1");
  EXPECT_EQ(dyn::to_string(log[2]), "addnode=5");
}

TEST(DynMutation, LogErrorsCarryOneBasedLineNumbers) {
  try {
    (void)dyn::parse_mutation_log("add=0-1\n# fine\nbogus=3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(DynMutation, MissingLogFileThrows) {
  EXPECT_THROW((void)dyn::load_mutation_log("/nonexistent/mutations.log"),
               std::runtime_error);
}

}  // namespace
}  // namespace domset
