// The bench-runner contract (ISSUE 5): the declarative sweep enumerates
// the full cross product in deterministic order, shares one worker pool,
// reports a median over repeat-interleaved timings, embeds one valid
// domset-run/1 record per cell, and fails loudly on ill-formed specs --
// it is the single substrate the CI trend gate, the driver's `bench`
// subcommand and examples/parameter_sweep.cpp all run on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "api/bench_runner.hpp"
#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "baselines/greedy.hpp"
#include "core/cds.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

api::bench_spec small_spec() {
  api::bench_spec spec;
  spec.algs = {"greedy", "lrg"};
  spec.graphs = {"star", "gnp"};
  spec.ns = {60};
  spec.seeds = {1, 2};
  spec.deliveries = {sim::delivery_mode::push, sim::delivery_mode::pull};
  spec.threads = {1, 2};
  spec.repeats = 2;
  return spec;
}

TEST(BenchRunner, EnumeratesTheFullCrossProduct) {
  const api::bench_document doc = api::run_bench(small_spec());
  // graphs(2) x n(1) x seeds(2) x algs(2) x delivery(2) x threads(2).
  EXPECT_EQ(doc.cells.size(), 32U);
  EXPECT_EQ(doc.repeats, 2U);
  for (const api::bench_cell& cell : doc.cells) {
    EXPECT_EQ(cell.times_ms.size(), 2U);
    EXPECT_GE(cell.median_ms, 0.0);
    EXPECT_DOUBLE_EQ(cell.record.elapsed_ms, cell.median_ms);
    EXPECT_TRUE(cell.record.valid);
    EXPECT_TRUE(cell.record.result.integral());
  }
  // Deterministic order: graph axes outermost, then alg, delivery, threads.
  EXPECT_EQ(doc.cells[0].record.graph_family, "star");
  EXPECT_EQ(doc.cells[0].record.alg, "greedy");
  EXPECT_EQ(doc.cells[0].record.exec.threads, 1U);
  EXPECT_EQ(doc.cells[1].record.exec.threads, 2U);
  EXPECT_EQ(doc.cells[16].record.graph_family, "gnp");
}

TEST(BenchRunner, CellsMatchDirectRegistryRuns) {
  api::bench_spec spec;
  spec.algs = {"greedy"};
  spec.graphs = {"gnp"};
  spec.ns = {80};
  spec.seeds = {7};
  spec.repeats = 1;
  const api::bench_document doc = api::run_bench(spec);
  ASSERT_EQ(doc.cells.size(), 1U);

  const graph::graph g = api::make_graph("gnp", 80, 7);
  exec::context exec;
  exec.seed = 7;
  const api::solve_result direct =
      api::solver_registry::instance().find("greedy").solve(g, exec);
  EXPECT_EQ(api::solution_digest(doc.cells[0].record.result),
            api::solution_digest(direct));
  EXPECT_EQ(doc.cells[0].record.nodes, g.node_count());
  EXPECT_EQ(doc.cells[0].record.edges, g.edge_count());
}

TEST(BenchRunner, SolverParamsAreFilteredPerSolver) {
  // k reaches pipeline but not greedy; the sweep must not reject it and
  // must echo it only on the pipeline cells.
  api::bench_spec spec;
  spec.algs = {"pipeline", "greedy"};
  spec.graphs = {"star"};
  spec.ns = {40};
  spec.repeats = 1;
  spec.solver_params.set("k", "3");
  const api::bench_document doc = api::run_bench(spec);
  ASSERT_EQ(doc.cells.size(), 2U);
  for (const api::bench_cell& cell : doc.cells) {
    if (cell.record.alg == "pipeline")
      EXPECT_TRUE(cell.record.params.contains("k"));
    else
      EXPECT_TRUE(cell.record.params.empty());
  }
}

TEST(BenchRunner, DeduplicatesSizesThatBuildTheSameGraph) {
  // grid rounds n to side^2: 100 and 110 both build the 10x10 grid.  A
  // naive cross product would emit two byte-identical cells colliding on
  // the document key (family, nodes, seed); the runner drops the
  // duplicate instead.
  api::bench_spec spec;
  spec.algs = {"greedy"};
  spec.graphs = {"grid"};
  spec.ns = {100, 110, 144};
  spec.repeats = 1;
  const api::bench_document doc = api::run_bench(spec);
  ASSERT_EQ(doc.cells.size(), 2U);
  EXPECT_EQ(doc.cells[0].record.nodes, 100U);
  EXPECT_EQ(doc.cells[1].record.nodes, 144U);
}

TEST(BenchRunner, RejectsIllFormedSpecs) {
  {
    api::bench_spec spec = small_spec();
    spec.algs.clear();
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    api::bench_spec spec = small_spec();
    spec.repeats = 0;
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    api::bench_spec spec = small_spec();
    spec.algs = {"does_not_exist"};
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    api::bench_spec spec = small_spec();
    spec.graphs = {"not_a_family"};
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    // A solver param nothing in the sweep accepts is a spec error, not a
    // silent no-op.
    api::bench_spec spec = small_spec();
    spec.algs = {"greedy"};
    spec.solver_params.set("k", "3");
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    // Same contract for graph params ('p' belongs to gnp, not star).
    api::bench_spec spec = small_spec();
    spec.graphs = {"star"};
    spec.graph_params.set("p", "0.5");
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
}

TEST(BenchRunner, SharesOnePoolAcrossParallelCells) {
  api::bench_spec spec;
  spec.algs = {"lrg"};
  spec.graphs = {"gnp"};
  spec.ns = {60};
  spec.threads = {1, 2, 4};
  spec.repeats = 1;
  // An injected pool must be reused rather than replaced.
  spec.base_exec.threads = 4;
  spec.base_exec.ensure_shared_pool();
  const auto pool = spec.base_exec.pool;
  ASSERT_NE(pool, nullptr);
  const api::bench_document doc = api::run_bench(spec);
  EXPECT_EQ(doc.cells.size(), 3U);
  // Serial and parallel cells agree bit-for-bit (pool/threads are
  // wall-clock knobs).
  const std::uint64_t digest =
      api::solution_digest(doc.cells[0].record.result);
  for (const api::bench_cell& cell : doc.cells)
    EXPECT_EQ(api::solution_digest(cell.record.result), digest);
}

TEST(BenchRunner, WeightedAndCdsSweepThroughTheRunner) {
  api::bench_spec spec;
  spec.algs = {"weighted", "cds"};
  spec.graphs = {"gnp"};
  spec.ns = {60};
  spec.seeds = {3};
  spec.repeats = 2;
  // k reaches weighted AND flows through cds into its pipeline base; costs
  // reaches only weighted.  (A base that rejects k, e.g. base=greedy,
  // would fail the sweep loudly -- covered in api_registry_test.)
  spec.solver_params.set("k", "2");
  spec.solver_params.set("costs", "degree");
  spec.solver_params.set("base", "pipeline");
  const api::bench_document doc = api::run_bench(spec);
  ASSERT_EQ(doc.cells.size(), 2U);
  EXPECT_FALSE(doc.cells[0].record.result.integral());  // weighted: LP only
  EXPECT_TRUE(doc.cells[1].record.result.integral());   // cds: a real set
  const graph::graph g = api::make_graph("gnp", 60, 3);
  EXPECT_TRUE(core::is_connected_within_components(
      g, doc.cells[1].record.result.in_set));
}

TEST(BenchRunner, DropAndFaultAxesExpandTheGrid) {
  api::bench_spec spec;
  spec.algs = {"wu_li"};
  spec.graphs = {"gnp"};
  spec.ns = {40};
  spec.seeds = {1};
  spec.repeats = 1;
  spec.drops = {0.0, 0.2};
  spec.faults = {"none", "crash=1@0-1"};
  const api::bench_document doc = api::run_bench(spec);
  ASSERT_EQ(doc.cells.size(), 4U);
  // Axis order: drop outer, faults innermost.
  EXPECT_DOUBLE_EQ(doc.cells[0].record.exec.drop_probability, 0.0);
  EXPECT_EQ(doc.cells[0].record.exec.faults, nullptr);
  EXPECT_FALSE(doc.cells[0].record.exec.faulty());
  ASSERT_NE(doc.cells[1].record.exec.faults, nullptr);
  EXPECT_EQ(doc.cells[1].record.exec.faults->spec, "crash=1@0-1");
  EXPECT_DOUBLE_EQ(doc.cells[2].record.exec.drop_probability, 0.2);
  EXPECT_EQ(doc.cells[2].record.exec.faults, nullptr);
  EXPECT_TRUE(doc.cells[2].record.exec.faulty());  // drop alone degrades
  EXPECT_DOUBLE_EQ(doc.cells[3].record.exec.drop_probability, 0.2);
  ASSERT_NE(doc.cells[3].record.exec.faults, nullptr);
  // The faulty cells actually lost something to the crash.
  EXPECT_GT(doc.cells[1].record.result.metrics.nodes_crashed, 0U);
}

TEST(BenchRunner, DegradedCellsRecordCoverageInsteadOfFailing) {
  // A crash cluster that swallows node 55's whole closed neighborhood on
  // the 10x10 grid: the cell's solution cannot dominate, and the runner
  // must record a degradation report instead of throwing -- with the
  // digest still bit-identical across delivery modes and thread counts.
  api::bench_spec spec;
  spec.algs = {"pipeline"};
  spec.graphs = {"grid"};
  spec.ns = {100};
  spec.seeds = {2};
  spec.repeats = 1;
  spec.deliveries = {sim::delivery_mode::push, sim::delivery_mode::pull};
  spec.threads = {1, 2};
  spec.solver_params.set("k", "2");
  spec.faults = {"crash=55@0+crash=45@0+crash=54@0+crash=56@0+crash=65@0"};
  const api::bench_document doc = api::run_bench(spec);
  ASSERT_EQ(doc.cells.size(), 4U);
  const std::uint64_t digest = api::solution_digest(doc.cells[0].record.result);
  for (const api::bench_cell& cell : doc.cells) {
    EXPECT_FALSE(cell.record.valid);
    ASSERT_TRUE(cell.record.coverage.has_value());
    EXPECT_FALSE(cell.record.coverage->fully_covered());
    EXPECT_GE(cell.record.coverage->holes(), 1U);
    EXPECT_FALSE(cell.record.coverage->attribution.empty());
    EXPECT_EQ(api::solution_digest(cell.record.result), digest);
  }
  const std::string json = api::to_json(doc);
  EXPECT_NE(json.find("\"faults\": \"crash=55@0"), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
}

TEST(BenchRunner, RejectsBadDropAndFaultAxes) {
  {
    api::bench_spec spec = small_spec();
    spec.drops = {1.0};  // certain loss can never terminate convergecasts
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    api::bench_spec spec = small_spec();
    spec.drops = {-0.1};
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
  {
    api::bench_spec spec = small_spec();
    spec.faults = {"not-a-fault"};
    EXPECT_THROW((void)api::run_bench(spec), std::invalid_argument);
  }
}

TEST(BenchRunner, JsonDocumentCarriesTheSchemaAndCells) {
  api::bench_spec spec;
  spec.algs = {"greedy"};
  spec.graphs = {"star"};
  spec.ns = {30};
  spec.repeats = 2;
  const api::bench_document doc = api::run_bench(spec);
  const std::string json = api::to_json(doc);
  EXPECT_NE(json.find("\"schema\": \"domset-bench/1\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"domset-run/1\""), std::string::npos);
  EXPECT_NE(json.find("\"repeats\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cell_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"median_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\": \"" +
                          api::digest_hex(doc.cells[0].record.result) + "\""),
            std::string::npos);
  // Braces balance (cheap structural sanity; the python validator does
  // the real schema check in CI).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace domset
