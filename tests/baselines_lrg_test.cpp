#include "baselines/lrg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "baselines/greedy.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset::baselines {
namespace {

TEST(Lrg, AlwaysDominates) {
  common::rng gen(701);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::graph g = graph::gnp_random(60, 0.04 + 0.02 * trial, gen);
    lrg_params params;
    params.exec.seed = 900 + trial;
    const auto res = lrg_mds(g, params);
    EXPECT_FALSE(res.metrics.hit_round_limit);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "trial " << trial;
    EXPECT_EQ(res.size, verify::set_size(res.in_set));
  }
}

TEST(Lrg, HandlesStructuredFamilies) {
  const graph::graph graphs[] = {
      graph::star_graph(25),   graph::cycle_graph(21),
      graph::path_graph(17),   graph::grid_graph(6, 6),
      graph::complete_graph(9), graph::empty_graph(5),
      graph::caterpillar(6, 2)};
  for (const auto& g : graphs) {
    const auto res = lrg_mds(g, {});
    EXPECT_FALSE(res.metrics.hit_round_limit) << g.summary();
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << g.summary();
  }
}

TEST(Lrg, CompleteGraphSelectsFewNodes) {
  // All spans equal: every node is a candidate with support n, so each
  // joins w.p. 1/n; expected joiners per phase is 1.
  const graph::graph g = graph::complete_graph(30);
  common::running_stats sizes;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    lrg_params params;
    params.exec.seed = seed;
    const auto res = lrg_mds(g, params);
    ASSERT_TRUE(verify::is_dominating_set(g, res.in_set));
    sizes.add(static_cast<double>(res.size));
  }
  EXPECT_LT(sizes.mean(), 4.0);  // optimum 1; expect a small constant
}

TEST(Lrg, PhasesArePolylogOnRandomGraphs) {
  common::rng gen(702);
  const graph::graph g = graph::gnp_random(200, 0.05, gen);
  const auto res = lrg_mds(g, {});
  EXPECT_FALSE(res.metrics.hit_round_limit);
  // O(log n log Delta) phases whp; generous numeric guard.
  const double limit = 6.0 * std::log2(200.0) *
                       std::log2(static_cast<double>(g.max_degree()) + 2.0);
  EXPECT_LE(static_cast<double>(res.phases), limit) << g.summary();
}

TEST(Lrg, QualityComparableToGreedyOnRandomGraphs) {
  common::rng gen(703);
  const graph::graph g = graph::gnp_random(120, 0.08, gen);
  const auto greedy = greedy_mds(g);
  common::running_stats sizes;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    lrg_params params;
    params.exec.seed = seed;
    sizes.add(static_cast<double>(lrg_mds(g, params).size));
  }
  // Expected O(log Delta) approximation: allow a factor ~3 of greedy.
  EXPECT_LE(sizes.mean(), 3.0 * static_cast<double>(greedy.size) + 3.0);
}

TEST(Lrg, DeterministicPerSeed) {
  common::rng gen(704);
  const graph::graph g = graph::gnp_random(50, 0.1, gen);
  lrg_params params;
  params.exec.seed = 42;
  const auto a = lrg_mds(g, params);
  const auto b = lrg_mds(g, params);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(Lrg, MessageSizesAreLogarithmic) {
  common::rng gen(705);
  const graph::graph g = graph::gnp_random(80, 0.1, gen);
  const auto res = lrg_mds(g, {});
  // Spans and supports are <= Delta+1.
  const auto limit = static_cast<std::uint32_t>(
      std::bit_width(static_cast<std::uint64_t>(g.max_degree()) + 1));
  EXPECT_LE(res.metrics.max_message_bits, limit);
}

TEST(Lrg, EmptyGraphTrivial) {
  const auto res = lrg_mds(graph::graph{}, {});
  EXPECT_TRUE(res.in_set.empty());
  EXPECT_EQ(res.size, 0U);
}

TEST(Lrg, IsolatedNodesSelectThemselves) {
  const auto res = lrg_mds(graph::empty_graph(6), {});
  EXPECT_EQ(res.size, 6U);
}

}  // namespace
}  // namespace domset::baselines
