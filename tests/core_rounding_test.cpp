#include "core/rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/alg3.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"
#include "verify/verify.hpp"

namespace domset::core {
namespace {

TEST(Rounding, AlwaysProducesDominatingSet) {
  common::rng gen(301);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::graph g = graph::gnp_random(40, 0.08 + 0.01 * trial, gen);
    const auto lp_res = approximate_lp(g, {.k = 2});
    rounding_params params;
    params.exec.seed = 1000 + trial;
    const auto res = round_to_dominating_set(g, lp_res.x, params);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "trial " << trial;
    EXPECT_EQ(res.size, verify::set_size(res.in_set));
  }
}

TEST(Rounding, DominatingEvenFromZeroInput) {
  // With x = 0 everywhere every p_i = 0, so only the line 5-6 fix-up acts:
  // every node self-selects, which is still a dominating set.  (A zero
  // vector is not LP-feasible; this checks the fix-up path in isolation.)
  const graph::graph g = graph::cycle_graph(9);
  const std::vector<double> zero(g.node_count(), 0.0);
  const auto res = round_to_dominating_set(g, zero, {});
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  EXPECT_EQ(res.selected_randomly, 0U);
  EXPECT_EQ(res.selected_by_fixup, g.node_count());
}

TEST(Rounding, SaturatedProbabilitiesSelectEveryone) {
  // x = 1 everywhere makes every p_i = 1 (ln(d) >= ln 2 > 0 for any graph
  // with an edge): every node joins in line 3 and the fix-up is idle.
  const graph::graph g = graph::complete_graph(6);
  const std::vector<double> ones(g.node_count(), 1.0);
  const auto res = round_to_dominating_set(g, ones, {});
  EXPECT_EQ(res.size, 6U);
  EXPECT_EQ(res.selected_randomly, 6U);
  EXPECT_EQ(res.selected_by_fixup, 0U);
}

TEST(Rounding, RoundCountIsConstant) {
  const graph::graph g = graph::grid_graph(5, 5);
  const auto lp_res = approximate_lp(g, {.k = 2});
  const auto res = round_to_dominating_set(g, lp_res.x, {});
  EXPECT_EQ(res.metrics.rounds, 4U);  // 2 (delta^(2)) + 1 (x_DS) + 1 (fix-up)
  rounding_params announce;
  announce.announce_final = true;
  const auto res2 = round_to_dominating_set(g, lp_res.x, announce);
  EXPECT_EQ(res2.metrics.rounds, 5U);
}

TEST(Rounding, ExpectedSizeWithinTheorem3Bound) {
  // Average over many seeds against (1 + alpha*ln(Delta+1)) * |DS_OPT|,
  // with the LP optimum as the alpha = 1 input.
  common::rng gen(302);
  const graph::graph g = graph::gnp_random(35, 0.15, gen);
  const auto lp_opt = lp::solve_lp_mds(g);
  ASSERT_TRUE(lp_opt.has_value());
  const auto exact_opt = exact::solve_mds(g);
  ASSERT_TRUE(exact_opt.has_value());

  common::running_stats sizes;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    rounding_params params;
    params.exec.seed = seed;
    const auto res = round_to_dominating_set(g, lp_opt->x, params);
    ASSERT_TRUE(verify::is_dominating_set(g, res.in_set));
    sizes.add(static_cast<double>(res.size));
  }
  const double bound = rounding_ratio_bound(g.max_degree(), 1.0) *
                       static_cast<double>(exact_opt->size);
  // Mean plus CI must sit below the theorem bound (it is far below in
  // practice; this guards against gross regressions).
  EXPECT_LE(sizes.mean() + sizes.ci95_halfwidth(), bound);
}

TEST(Rounding, LogLogVariantAlsoDominates) {
  common::rng gen(303);
  const graph::graph g = graph::gnp_random(40, 0.12, gen);
  const auto lp_res = approximate_lp(g, {.k = 3});
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rounding_params params;
    params.exec.seed = seed;
    params.variant = rounding_variant::log_log;
    const auto res = round_to_dominating_set(g, lp_res.x, params);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "seed " << seed;
  }
}

TEST(Rounding, LogLogSelectsFewerRandomNodesOnAverage) {
  // The log-log scaling factor is strictly smaller than ln(d) for d > e^e,
  // so with high-degree graphs the random phase selects fewer nodes.
  const graph::graph g = graph::complete_bipartite(20, 20);  // d2 = 20
  std::vector<double> x(g.node_count(), 0.05);  // feasible: each side sums 1+
  std::size_t plain_total = 0;
  std::size_t loglog_total = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    rounding_params p1;
    p1.exec.seed = seed;
    plain_total += round_to_dominating_set(g, x, p1).selected_randomly;
    rounding_params p2;
    p2.exec.seed = seed;
    p2.variant = rounding_variant::log_log;
    loglog_total += round_to_dominating_set(g, x, p2).selected_randomly;
  }
  EXPECT_LT(loglog_total, plain_total);
}

TEST(Rounding, AnnounceFinalYieldsValidDominators) {
  common::rng gen(304);
  const graph::graph g = graph::gnp_random(30, 0.2, gen);
  const auto lp_res = approximate_lp(g, {.k = 2});
  rounding_params params;
  params.announce_final = true;
  const auto res = round_to_dominating_set(g, lp_res.x, params);
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    const graph::node_id d = res.dominator[v];
    ASSERT_NE(d, graph::invalid_node) << "node " << v;
    EXPECT_TRUE(res.in_set[d]);
    EXPECT_TRUE(d == v || g.has_edge(v, d));
  }
}

TEST(Rounding, SeedsChangeOutcomeDeterministically) {
  const graph::graph g = graph::grid_graph(6, 6);
  const auto lp_res = approximate_lp(g, {.k = 2});
  rounding_params a;
  a.exec.seed = 7;
  const auto res_a1 = round_to_dominating_set(g, lp_res.x, a);
  const auto res_a2 = round_to_dominating_set(g, lp_res.x, a);
  EXPECT_EQ(res_a1.in_set, res_a2.in_set);

  // Different seeds give a different set at least once over several tries.
  bool any_diff = false;
  for (std::uint64_t seed = 8; seed < 13 && !any_diff; ++seed) {
    rounding_params b;
    b.exec.seed = seed;
    any_diff = round_to_dominating_set(g, lp_res.x, b).in_set != res_a1.in_set;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rounding, RejectsSizeMismatch) {
  const graph::graph g = graph::path_graph(4);
  EXPECT_THROW(
      (void)round_to_dominating_set(g, std::vector<double>{1.0}, {}),
      std::invalid_argument);
}

TEST(Rounding, BoundHelpers) {
  EXPECT_NEAR(rounding_ratio_bound(9, 2.0), 1.0 + 2.0 * std::log(10.0), 1e-12);
  // log-log bound for small Delta falls back to the plain bound.
  EXPECT_NEAR(rounding_ratio_bound_log_log(1, 1.0),
              rounding_ratio_bound(1, 1.0), 1e-12);
  const double d = std::log(101.0);
  EXPECT_NEAR(rounding_ratio_bound_log_log(100, 1.0),
              2.0 * (d - std::log(d)), 1e-12);
}

TEST(Rounding, IsolatedNodesAlwaysJoin) {
  const graph::graph g = graph::empty_graph(5);
  const std::vector<double> x(5, 1.0);
  // delta^(2) = 0 -> ln(1) = 0 -> p_i = 0; fix-up selects everyone.
  const auto res = round_to_dominating_set(g, x, {});
  EXPECT_EQ(res.size, 5U);
  EXPECT_EQ(res.selected_by_fixup, 5U);
}

}  // namespace
}  // namespace domset::core
