// The wire grammar of `domset serve`: requests and responses round-trip
// through their canonical text, and every parse error carries the
// 1-based per-connection request line, matching the mutation-log and
// edge-list parser style.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dyn/mutation.hpp"
#include "serve/protocol.hpp"

namespace domset {
namespace {

using serve::format_error;
using serve::format_ok;
using serve::parse_request;
using serve::parse_request_line;
using serve::parse_response;
using serve::request;
using serve::request_kind;
using serve::response;

TEST(ServeProtocol, RequestsRoundTripThroughCanonicalText) {
  std::vector<request> cases;
  request mutate;
  mutate.kind = request_kind::mutate;
  mutate.batch = dyn::parse_mutation_list("add=0-1+del=2-3+addnode=7");
  cases.push_back(mutate);
  cases.push_back({request_kind::commit, {}, 0});
  cases.push_back({request_kind::query_member, {}, 42});
  cases.push_back({request_kind::query_set, {}, 0});
  cases.push_back({request_kind::query_stats, {}, 0});
  cases.push_back({request_kind::query_digest, {}, 0});
  cases.push_back({request_kind::ping, {}, 0});
  cases.push_back({request_kind::shutdown, {}, 0});

  for (const request& req : cases) {
    const std::string text = serve::to_string(req);
    EXPECT_EQ(parse_request(text), req) << text;
    // Wire tolerance: surrounding whitespace and the trailing CR a
    // netcat-style client leaves behind.
    EXPECT_EQ(parse_request("  " + text + " \r"), req) << text;
  }
}

TEST(ServeProtocol, ParseRejectsMalformedRequests) {
  EXPECT_THROW(parse_request(""), std::invalid_argument);
  EXPECT_THROW(parse_request("   "), std::invalid_argument);
  EXPECT_THROW(parse_request("frobnicate"), std::invalid_argument);
  EXPECT_THROW(parse_request("mutate"), std::invalid_argument);
  EXPECT_THROW(parse_request("mutate bogus=1-2"), std::invalid_argument);
  EXPECT_THROW(parse_request("query"), std::invalid_argument);
  EXPECT_THROW(parse_request("query member"), std::invalid_argument);
  EXPECT_THROW(parse_request("query member x"), std::invalid_argument);
  EXPECT_THROW(parse_request("query member 1 2"), std::invalid_argument);
  EXPECT_THROW(parse_request("query everything"), std::invalid_argument);
  EXPECT_THROW(parse_request("commit now"), std::invalid_argument);
  EXPECT_THROW(parse_request("ping pong"), std::invalid_argument);
}

TEST(ServeProtocol, ErrorsNameTheRequestLine) {
  try {
    (void)parse_request_line("query member x", 7);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_EQ(std::string(err.what()).rfind("request line 7: ", 0), 0u)
        << err.what();
  }
  // Valid lines pass through untouched.
  EXPECT_EQ(parse_request_line("ping", 3).kind, request_kind::ping);
}

TEST(ServeProtocol, FormatErrorPrefixesOnceAndOnlyOnce) {
  const std::string plain = format_error(4, "node 9 out of range");
  EXPECT_EQ(plain, "err request line 4: node 9 out of range");
  // A message already carrying its line prefix (the parse_request_line
  // path) must not be double-prefixed.
  const std::string prefixed =
      format_error(4, "request line 4: 'x' is not a node id");
  EXPECT_EQ(prefixed, "err request line 4: 'x' is not a node id");
}

TEST(ServeProtocol, ResponsesRoundTripWithOrderedFields) {
  const std::string ok =
      format_ok({{"epoch", "3"}, {"size", "17"}, {"digest", "00ff00ff00ff00ff"}});
  EXPECT_EQ(ok, "ok epoch=3 size=17 digest=00ff00ff00ff00ff");
  const response parsed = parse_response(ok);
  EXPECT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.fields.size(), 3u);
  EXPECT_EQ(parsed.get("epoch"), "3");
  EXPECT_EQ(parsed.get("digest"), "00ff00ff00ff00ff");
  EXPECT_TRUE(parsed.has("size"));
  EXPECT_FALSE(parsed.has("nodes"));
  EXPECT_EQ(parsed.get("nodes"), "");

  const response err = parse_response("err request line 2: bad things");
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "request line 2: bad things");

  EXPECT_THROW(parse_response("maybe"), std::invalid_argument);
  EXPECT_THROW(parse_response("ok naked-field"), std::invalid_argument);
}

TEST(ServeProtocol, EmptyOkHasNoFields) {
  EXPECT_EQ(format_ok({}), "ok");
  const response parsed = parse_response("ok");
  EXPECT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.fields.empty());
}

}  // namespace
}  // namespace domset
