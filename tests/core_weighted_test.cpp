#include "core/weighted.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"

namespace domset::core {
namespace {

TEST(WeightedLp, UnitCostsMatchUnweightedBound) {
  common::rng gen(501);
  const graph::graph g = graph::gnp_random(25, 0.2, gen);
  const std::vector<double> ones(g.node_count(), 1.0);
  const auto res = approximate_weighted_lp(g, ones, {.k = 3});
  EXPECT_TRUE(lp::is_primal_feasible(g, res.x));
  // c_max = 1: bound reduces to k*(Delta+1)^{2/k}, the Theorem 4 bound.
  EXPECT_NEAR(res.ratio_bound,
              weighted_ratio_bound(g.max_degree(), 3, 1.0), 1e-12);
}

TEST(WeightedLp, FeasibleAcrossFamiliesAndCosts) {
  common::rng gen(502);
  const graph::graph graphs[] = {
      graph::star_graph(15), graph::cycle_graph(12),
      graph::grid_graph(4, 4), graph::gnp_random(30, 0.15, gen)};
  for (const auto& g : graphs) {
    const auto costs = graph::uniform_costs(g.node_count(), 5.0, gen);
    for (std::uint32_t k : {1U, 2U, 3U}) {
      const auto res = approximate_weighted_lp(g, costs, {.k = k});
      EXPECT_TRUE(lp::is_primal_feasible(g, res.x))
          << g.summary() << " k=" << k;
    }
  }
}

TEST(WeightedLp, ObjectiveWithinRemarkBound) {
  common::rng gen(503);
  for (int trial = 0; trial < 5; ++trial) {
    const graph::graph g = graph::gnp_random(22, 0.2, gen);
    const auto costs = graph::uniform_costs(g.node_count(), 4.0, gen);
    const auto lp_opt = lp::solve_weighted_lp_mds(g, costs);
    ASSERT_TRUE(lp_opt.has_value());
    for (std::uint32_t k : {2U, 3U}) {
      const auto res = approximate_weighted_lp(g, costs, {.k = k});
      EXPECT_LE(res.objective, res.ratio_bound * lp_opt->value + 1e-6)
          << g.summary() << " k=" << k << " trial=" << trial;
    }
  }
}

TEST(WeightedLp, RoundScheduleMatchesAlg2) {
  common::rng gen(504);
  const graph::graph g = graph::grid_graph(4, 4);
  const auto costs = graph::uniform_costs(g.node_count(), 3.0, gen);
  const auto res = approximate_weighted_lp(g, costs, {.k = 3});
  EXPECT_EQ(res.metrics.rounds, 18U);  // 2k^2
}

TEST(WeightedLp, ExpensiveHubGetsLessWeightThanCheapHub) {
  // Star with an expensive hub vs unit costs: the weighted objective of
  // the expensive-hub run should not charge the hub at full price when the
  // leaves can cover more cheaply per unit.
  const graph::graph g = graph::star_graph(20);
  std::vector<double> cheap(g.node_count(), 1.0);
  std::vector<double> pricey(g.node_count(), 1.0);
  pricey[0] = 10.0;
  const auto res_cheap = approximate_weighted_lp(g, cheap, {.k = 4});
  const auto res_pricey = approximate_weighted_lp(g, pricey, {.k = 4});
  EXPECT_TRUE(lp::is_primal_feasible(g, res_cheap.x));
  EXPECT_TRUE(lp::is_primal_feasible(g, res_pricey.x));
  // The hub's x-value should not increase when it becomes expensive.
  EXPECT_LE(res_pricey.x[0], res_cheap.x[0] + 1e-12);
}

TEST(WeightedLp, CmaxIsComputedFromInput) {
  const graph::graph g = graph::path_graph(5);
  const std::vector<double> costs{1.0, 2.0, 7.5, 1.0, 3.0};
  const auto res = approximate_weighted_lp(g, costs, {.k = 2});
  EXPECT_DOUBLE_EQ(res.c_max, 7.5);
  EXPECT_NEAR(res.ratio_bound, weighted_ratio_bound(2, 2, 7.5), 1e-12);
}

TEST(WeightedLp, InputValidation) {
  const graph::graph g = graph::path_graph(3);
  EXPECT_THROW((void)approximate_weighted_lp(
                   g, std::vector<double>{1.0, 1.0}, {.k = 2}),
               std::invalid_argument);
  EXPECT_THROW((void)approximate_weighted_lp(
                   g, std::vector<double>{1.0, 0.5, 1.0}, {.k = 2}),
               std::invalid_argument);
  EXPECT_THROW((void)approximate_weighted_lp(
                   g, std::vector<double>{1.0, 1.0, 1.0}, {.k = 0}),
               std::invalid_argument);
}

TEST(WeightedLp, EmptyGraph) {
  const auto res = approximate_weighted_lp(graph::graph{}, {}, {.k = 2});
  EXPECT_TRUE(res.x.empty());
  EXPECT_EQ(res.objective, 0.0);
}

}  // namespace
}  // namespace domset::core
