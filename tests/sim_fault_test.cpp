// The deterministic fault plane: grammar round-trips, compile-time
// validation, and the exact engine semantics of every fault kind --
// crash-stop, crash-recover, link cuts (plain and flapping), bursts and
// duplication -- pinned with a fully deterministic flood program whose
// delivery counts can be derived by hand on a 3-node path.
//
// Path topology (0 - 1 - 2), flood lifetime R = 4: every node sends one
// 8-bit message to each neighbor in rounds 0..3 and finishes at round 4,
// so the reliable baseline executes 5 rounds, sends 16 messages (4 per
// round: ends send 1, the middle sends 2), and delivers
// received = {4, 8, 4}.  Every fault scenario below perturbs exactly one
// mechanism and asserts the exact counter deltas that follow.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace domset {
namespace {

using graph::node_id;
using sim::delivery_mode;
using sim::fault_plan;
using sim::fault_window;
using sim::parse_fault_plan;

// ------------------------------------------------------------- grammar

TEST(FaultGrammar, EmptyAndNone) {
  for (const char* spec : {"", "none"}) {
    const fault_plan plan = parse_fault_plan(spec);
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.spec, "none");
    EXPECT_EQ(to_string(plan), "none");
  }
}

TEST(FaultGrammar, CrashSingleRoundMeansForever) {
  const fault_plan plan = parse_fault_plan("crash=7@10");
  ASSERT_EQ(plan.node_faults.size(), 1U);
  EXPECT_EQ(plan.node_faults[0].node, 7U);
  EXPECT_EQ(plan.node_faults[0].window.first, 10U);
  EXPECT_TRUE(plan.node_faults[0].window.open_ended());
  EXPECT_TRUE(plan.node_faults[0].crash_stop());
  EXPECT_EQ(plan.spec, "crash=7@10");
  // The explicit open form canonicalizes to the same rendering.
  EXPECT_EQ(parse_fault_plan("crash=7@10-").spec, "crash=7@10");
}

TEST(FaultGrammar, CrashRecoverWindow) {
  const fault_plan plan = parse_fault_plan("crash=3@2-5");
  ASSERT_EQ(plan.node_faults.size(), 1U);
  EXPECT_FALSE(plan.node_faults[0].crash_stop());
  EXPECT_EQ(plan.node_faults[0].window, (fault_window{2, 5}));
  EXPECT_EQ(plan.spec, "crash=3@2-5");
}

TEST(FaultGrammar, LinkSingleRoundMeansThatRoundOnly) {
  const fault_plan plan = parse_fault_plan("link=2-5@4");
  ASSERT_EQ(plan.link_faults.size(), 1U);
  EXPECT_EQ(plan.link_faults[0].u, 2U);
  EXPECT_EQ(plan.link_faults[0].v, 5U);
  EXPECT_EQ(plan.link_faults[0].window, (fault_window{4, 4}));
  EXPECT_EQ(plan.spec, "link=2-5@4");
}

TEST(FaultGrammar, LinkFlapPhase) {
  const fault_plan plan = parse_fault_plan("link=0-3@4-9:flap=1/3");
  ASSERT_EQ(plan.link_faults.size(), 1U);
  const sim::link_fault& f = plan.link_faults[0];
  EXPECT_EQ(f.flap_down, 1U);
  EXPECT_EQ(f.flap_period, 3U);
  // Down for the first flap_down rounds of each cycle, phase-aligned to
  // the window start: 4, 7 down; 5, 6, 8, 9 up; outside the window up.
  EXPECT_TRUE(f.down_at(4));
  EXPECT_FALSE(f.down_at(5));
  EXPECT_FALSE(f.down_at(6));
  EXPECT_TRUE(f.down_at(7));
  EXPECT_FALSE(f.down_at(9));
  EXPECT_FALSE(f.down_at(3));
  EXPECT_FALSE(f.down_at(10));
  EXPECT_EQ(plan.spec, "link=0-3@4-9:flap=1/3");
}

TEST(FaultGrammar, BurstAndDupProbabilities) {
  const fault_plan plan = parse_fault_plan("burst@5-6:p=0.5+dup@0-:p=0.25");
  ASSERT_EQ(plan.bursts.size(), 1U);
  EXPECT_EQ(plan.bursts[0].window, (fault_window{5, 6}));
  EXPECT_DOUBLE_EQ(plan.bursts[0].probability, 0.5);
  ASSERT_EQ(plan.dups.size(), 1U);
  EXPECT_TRUE(plan.dups[0].window.open_ended());
  EXPECT_DOUBLE_EQ(plan.dups[0].probability, 0.25);
  EXPECT_EQ(plan.spec, "burst@5-6:p=0.5+dup@0-:p=0.25");
  // p omitted = certain.
  EXPECT_DOUBLE_EQ(parse_fault_plan("burst@3").bursts[0].probability, 1.0);
}

TEST(FaultGrammar, CompositePlanRoundTrips) {
  const char* spec =
      "crash=7@10+crash=2@1-3+link=0-3@4-9:flap=1/3+burst@5-6:p=0.5+dup@2";
  const fault_plan plan = parse_fault_plan(spec);
  EXPECT_EQ(plan.spec, spec);
  const fault_plan again = parse_fault_plan(plan.spec);
  EXPECT_EQ(again.node_faults, plan.node_faults);
  EXPECT_EQ(again.link_faults, plan.link_faults);
  EXPECT_EQ(again.bursts, plan.bursts);
  EXPECT_EQ(again.dups, plan.dups);
}

TEST(FaultGrammar, MalformedSpecsThrow) {
  for (const char* bad :
       {"bogus", "crash=", "crash=1", "crash=x@3", "crash=1@5-3",
        "link=0-0@1", "link=1@2", "link=0-1@2:flap=4/3", "link=0-1@2:flap=1/0",
        "burst@", "burst@1:p=1.5", "dup@1:p=-0.1", "crash=1@2+",
        "crash=1@2,crash=2@3"}) {
    EXPECT_THROW((void)parse_fault_plan(bad), std::invalid_argument) << bad;
  }
}

TEST(FaultCompile, OutOfRangeNodeThrows) {
  const graph::graph g = graph::path_graph(3);
  EXPECT_THROW(sim::compiled_faults(g, parse_fault_plan("crash=3@0")),
               std::invalid_argument);
  EXPECT_THROW(sim::compiled_faults(g, parse_fault_plan("link=0-9@0")),
               std::invalid_argument);
}

// ------------------------------------------------------ engine semantics

/// Deterministic flood: one message per neighbor per round for `lifetime`
/// rounds, then finish.  No RNG, so every delivery count is derivable.
class flood_program final : public sim::node_program {
 public:
  explicit flood_program(std::size_t lifetime) : lifetime_(lifetime) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) override {
    received_ += inbox.size();
    for (const sim::message& msg : inbox)
      digest_ = digest_ * 1099511628211ULL ^ (msg.payload + msg.from);
    if (ctx.round() >= lifetime_) {
      done_ = true;
      return;
    }
    for (const node_id u : ctx.neighbors())
      ctx.send(u, 1, 1000 * ctx.id() + ctx.round(), 8);
  }

  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

 private:
  std::size_t lifetime_;
  bool done_ = false;
  std::uint64_t received_ = 0;
  std::uint64_t digest_ = 14695981039346656037ULL;
};

struct flood_outcome {
  sim::run_metrics metrics;
  std::vector<std::uint64_t> received;
  std::vector<std::uint64_t> digests;
};

flood_outcome run_flood(const graph::graph& g, const std::string& faults,
                        std::size_t lifetime = 4, std::size_t threads = 1,
                        delivery_mode delivery = delivery_mode::push) {
  sim::engine_config cfg;
  cfg.seed = 99;
  cfg.max_rounds = 50;
  cfg.threads = threads;
  cfg.delivery = delivery;
  fault_plan plan = parse_fault_plan(faults);
  if (!plan.empty())
    cfg.faults = std::make_shared<const fault_plan>(std::move(plan));
  sim::engine eng(g, cfg);
  eng.load([&](node_id) { return std::make_unique<flood_program>(lifetime); });
  flood_outcome out;
  out.metrics = eng.run();
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto& prog = eng.program_as<flood_program>(v);
    out.received.push_back(prog.received());
    out.digests.push_back(prog.digest());
  }
  return out;
}

TEST(FaultSemantics, ReliableBaseline) {
  const auto out = run_flood(graph::path_graph(3), "none");
  EXPECT_EQ(out.metrics.rounds, 5U);
  EXPECT_EQ(out.metrics.messages_sent, 16U);
  EXPECT_EQ(out.metrics.messages_dropped, 0U);
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 0U);
  EXPECT_EQ(out.metrics.messages_duplicated, 0U);
  EXPECT_EQ(out.metrics.node_rounds_down, 0U);
  EXPECT_EQ(out.metrics.nodes_crashed, 0U);
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{4, 8, 4}));
}

TEST(FaultSemantics, CrashStopExactCounters) {
  // Node 1 crashes at round 2 and never recovers: it sent only in rounds
  // 0-1 (4 messages instead of 8), its inboxes for rounds 2-4 (2 messages
  // each, sent by the live ends in rounds 1-3) are discarded, and the run
  // still terminates in the baseline 5 rounds because a crash-stop node
  // counts as finished.
  const auto out = run_flood(graph::path_graph(3), "crash=1@2");
  EXPECT_EQ(out.metrics.rounds, 5U);
  EXPECT_EQ(out.metrics.messages_sent, 12U);
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 6U);
  EXPECT_EQ(out.metrics.messages_dropped, 0U);
  EXPECT_EQ(out.metrics.node_rounds_down, 3U);  // rounds 2, 3, 4
  EXPECT_EQ(out.metrics.nodes_crashed, 1U);
  // Ends hear node 1's rounds 0-1 sends; node 1 heard only its round-1
  // inbox before going dark.
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{2, 2, 2}));
}

TEST(FaultSemantics, CrashRecoverResumesSending) {
  // Node 1 is dark for rounds 1-2 only: its inboxes for those rounds (2
  // messages each) are lost and it skips those sends, but it resumes in
  // round 3 and finishes normally.
  const auto out = run_flood(graph::path_graph(3), "crash=1@1-2");
  EXPECT_EQ(out.metrics.rounds, 5U);
  EXPECT_EQ(out.metrics.messages_sent, 12U);  // node 1 sends rounds 0, 3
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 4U);
  EXPECT_EQ(out.metrics.node_rounds_down, 2U);
  EXPECT_EQ(out.metrics.nodes_crashed, 1U);
  // Ends hear rounds 0 and 3; node 1 hears rounds 3-4 inboxes (sent in
  // rounds 2-3).
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{2, 4, 2}));
}

TEST(FaultSemantics, LinkCutLosesBothDirections) {
  // The 0-1 link is cut in rounds 1-2: the two messages crossing it each
  // of those rounds vanish at the sender.  Senders still paid the
  // transmission (messages_sent is unchanged).
  const auto out = run_flood(graph::path_graph(3), "link=0-1@1-2");
  EXPECT_EQ(out.metrics.messages_sent, 16U);
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 4U);
  EXPECT_EQ(out.metrics.node_rounds_down, 0U);
  EXPECT_EQ(out.metrics.nodes_crashed, 0U);
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{2, 6, 4}));
}

TEST(FaultSemantics, FlappingLinkDownPhases) {
  // Window 0-3 with flap=1/2: down in rounds 0 and 2, up in 1 and 3 --
  // exactly half the crossings are lost.
  const auto out = run_flood(graph::path_graph(3), "link=0-1@0-3:flap=1/2");
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 4U);
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{2, 6, 4}));
}

TEST(FaultSemantics, NonAdjacentLinkFaultIsNoOp) {
  // 0 and 2 are not adjacent on the path; the fault compiles to nothing
  // and the run is bit-identical to the reliable baseline.
  const auto base = run_flood(graph::path_graph(3), "none");
  const auto out = run_flood(graph::path_graph(3), "link=0-2@0-");
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 0U);
  EXPECT_EQ(out.received, base.received);
  EXPECT_EQ(out.digests, base.digests);
}

TEST(FaultSemantics, CertainBurstDropsEveryMessageInWindow) {
  // burst@1-2 with the default p=1 removes all 8 messages sent in rounds
  // 1-2, accounted as drops (the loss-adversary meter), not fault losses.
  const auto out = run_flood(graph::path_graph(3), "burst@1-2");
  EXPECT_EQ(out.metrics.messages_sent, 16U);
  EXPECT_EQ(out.metrics.messages_dropped, 8U);
  EXPECT_EQ(out.metrics.messages_lost_to_faults, 0U);
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{2, 4, 2}));
}

TEST(FaultSemantics, CertainDupDoublesEveryDelivery) {
  // dup@0- with p=1 delivers one adversarial copy per message: received
  // counts double, messages_sent does not (the duplicate is the
  // network's doing, not the sender's).
  const auto out = run_flood(graph::path_graph(3), "dup@0-");
  EXPECT_EQ(out.metrics.messages_sent, 16U);
  EXPECT_EQ(out.metrics.messages_duplicated, 16U);
  EXPECT_EQ(out.metrics.messages_dropped, 0U);
  EXPECT_EQ(out.received, (std::vector<std::uint64_t>{8, 16, 8}));
}

TEST(FaultSemantics, BurstComposesWithBaseDrop) {
  // With base drop 0.5 and a certain burst, everything in the window is
  // gone; outside the window the base drop still applies.  Exact counts
  // are seed-dependent, but the partition identity holds: delivered +
  // dropped = sent, and nothing is double-counted as a fault loss.
  sim::engine_config cfg;
  cfg.seed = 5;
  cfg.max_rounds = 50;
  cfg.drop_probability = 0.5;
  cfg.faults = std::make_shared<const fault_plan>(parse_fault_plan("burst@1"));
  const graph::graph g = graph::complete_graph(6);
  sim::engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<flood_program>(4); });
  const sim::run_metrics m = eng.run();
  std::uint64_t delivered = 0;
  for (node_id v = 0; v < g.node_count(); ++v)
    delivered += eng.program_as<flood_program>(v).received();
  EXPECT_EQ(delivered + m.messages_dropped, m.messages_sent);
  EXPECT_EQ(m.messages_lost_to_faults, 0U);
  // Round 1's 30 messages are certainly gone, so drops exceed them.
  EXPECT_GE(m.messages_dropped, 30U);
}

TEST(FaultSemantics, FaultyRunsBitIdenticalAcrossGrid) {
  // The full determinism contract under one plan exercising every fault
  // kind at once: same digests, same received counts, same counters for
  // {push, pull, auto} x {1, 2, 8}.
  common::rng gen(321);
  const graph::graph graphs[] = {graph::gnp_random(80, 0.08, gen),
                                 graph::star_graph(40),
                                 graph::grid_graph(8, 8)};
  const std::string plan =
      "crash=3@2+crash=5@1-3+link=0-1@1-6:flap=2/3+burst@2-4:p=0.4+"
      "dup@1-5:p=0.3";
  for (const auto& g : graphs) {
    const auto serial = run_flood(g, plan, 8, 1, delivery_mode::push);
    for (const delivery_mode mode :
         {delivery_mode::push, delivery_mode::pull, delivery_mode::automatic}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                        std::size_t{8}}) {
        const auto run = run_flood(g, plan, 8, threads, mode);
        EXPECT_EQ(run.digests, serial.digests)
            << g.summary() << " threads=" << threads
            << " delivery=" << to_string(mode);
        EXPECT_EQ(run.received, serial.received);
        EXPECT_EQ(run.metrics.messages_sent, serial.metrics.messages_sent);
        EXPECT_EQ(run.metrics.messages_dropped,
                  serial.metrics.messages_dropped);
        EXPECT_EQ(run.metrics.messages_lost_to_faults,
                  serial.metrics.messages_lost_to_faults);
        EXPECT_EQ(run.metrics.messages_duplicated,
                  serial.metrics.messages_duplicated);
        EXPECT_EQ(run.metrics.node_rounds_down,
                  serial.metrics.node_rounds_down);
        EXPECT_EQ(run.metrics.nodes_crashed, serial.metrics.nodes_crashed);
      }
    }
  }
}

}  // namespace
}  // namespace domset
