// The incremental engine's contract: every epoch's spliced solution
// dominates the materialized snapshot, its size stays within the
// incumbent's quality envelope of a from-scratch re-solve, replay digests
// are bit-identical across {push, pull} x {1, 2, 8} threads, and the
// escape hatch / parameter errors behave as documented.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/incremental.hpp"
#include "dyn/mutation.hpp"
#include "dyn/workload.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sim/delivery.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

using dyn::incremental_engine;
using dyn::incremental_params;
using dyn::mutation;

graph::graph test_graph(std::size_t n, std::uint64_t seed) {
  common::rng gen(seed);
  return graph::barabasi_albert(n, 3, gen);
}

incremental_params base_params() {
  incremental_params params;
  params.solver = "pipeline";
  return params;
}

TEST(DynIncremental, EveryEpochStaysValidAndNearFromScratchQuality) {
  incremental_params params = base_params();
  params.exec.seed = 5;
  incremental_engine engine(test_graph(400, 5), params);

  dyn::workload_params wp;
  wp.seed = 5;
  dyn::workload gen(wp);
  for (int epoch = 1; epoch <= 8; ++epoch) {
    for (int i = 0; i < 12; ++i)
      engine.network().apply(
          gen.next(engine.network(), engine.network().rebase_point()));
    const dyn::epoch_report rep = engine.commit_and_repair();
    EXPECT_EQ(rep.epoch, static_cast<std::uint64_t>(epoch));

    const graph::graph g = engine.snapshot();
    EXPECT_TRUE(verify::is_dominating_set(g, engine.solution()))
        << "epoch " << epoch;
    EXPECT_EQ(rep.size, engine.size());
    EXPECT_EQ(rep.nodes, g.node_count());

    // Quality: the spliced incumbent must stay within the solver's own
    // approximation envelope of a from-scratch run on the same snapshot
    // (full.size >= OPT, so ratio_bound * full.size bounds any solution
    // the solver itself could certify).
    const api::solve_result full = engine.full_resolve();
    const double bound = full.ratio_bound > 0.0 ? full.ratio_bound : 3.0;
    EXPECT_LE(static_cast<double>(rep.size),
              bound * static_cast<double>(full.size))
        << "epoch " << epoch;
  }
}

TEST(DynIncremental, ReplayDigestsAreBitIdenticalAcrossExecKnobs) {
  // The determinism contract of the whole subsystem: per-epoch digests
  // are a pure function of (graph, params, seed), never of delivery mode
  // or thread count.
  const graph::graph base = test_graph(300, 9);
  std::vector<std::vector<std::uint64_t>> histories;
  for (const sim::delivery_mode delivery :
       {sim::delivery_mode::push, sim::delivery_mode::pull}) {
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      incremental_params params = base_params();
      params.exec.seed = 7;
      params.exec.threads = threads;
      params.exec.delivery = delivery;
      incremental_engine engine(base, params);

      dyn::workload_params wp;
      wp.seed = 7;
      wp.bias = dyn::workload_bias::hub;
      dyn::workload gen(wp);
      std::vector<std::uint64_t> digests{engine.digest()};
      for (int epoch = 0; epoch < 5; ++epoch) {
        for (int i = 0; i < 8; ++i)
          engine.network().apply(
              gen.next(engine.network(), engine.network().rebase_point()));
        digests.push_back(engine.commit_and_repair().digest);
      }
      histories.push_back(std::move(digests));
    }
  }
  for (std::size_t i = 1; i < histories.size(); ++i)
    EXPECT_EQ(histories[i], histories[0]) << "configuration " << i;
}

TEST(DynIncremental, FrontierCapKeepsHubBallsSmallAndValid) {
  // Hub-biased mutations on a BA graph: uncapped radius-2 balls swallow
  // a hub's whole neighborhood; with the cap the same epochs stay
  // incremental with strictly smaller balls, pin counts reported, and
  // every epoch still verified dominating.
  const graph::graph base = test_graph(400, 13);
  const auto run = [&](std::uint32_t cap) {
    incremental_params params = base_params();
    params.exec.seed = 13;
    params.frontier_cap = cap;
    incremental_engine engine(base, params);
    dyn::workload_params wp;
    wp.seed = 13;
    wp.bias = dyn::workload_bias::hub;
    dyn::workload gen(wp);
    std::size_t ball_total = 0, capped_total = 0;
    for (int epoch = 0; epoch < 6; ++epoch) {
      for (int i = 0; i < 10; ++i)
        engine.network().apply(
            gen.next(engine.network(), engine.network().rebase_point()));
      const dyn::epoch_report rep = engine.commit_and_repair();
      ball_total += rep.ball_nodes;
      capped_total += rep.capped_nodes;
      EXPECT_TRUE(
          verify::is_dominating_set(engine.snapshot(), engine.solution()))
          << "cap " << cap << " epoch " << epoch;
    }
    return std::pair{ball_total, capped_total};
  };

  const auto [uncapped_ball, uncapped_pins] = run(0);
  const auto [capped_ball, capped_pins] = run(8);
  EXPECT_EQ(uncapped_pins, 0U);
  EXPECT_GT(capped_pins, 0U);
  EXPECT_LT(capped_ball, uncapped_ball);
}

TEST(DynIncremental, FrontierCapDigestsStayDeterministicAcrossExecKnobs) {
  // The cap changes which nodes re-decide, so digests differ from the
  // uncapped run -- but they must still be a pure function of (graph,
  // params, seed), identical across delivery modes and thread counts.
  const graph::graph base = test_graph(300, 9);
  std::vector<std::vector<std::uint64_t>> histories;
  for (const sim::delivery_mode delivery :
       {sim::delivery_mode::push, sim::delivery_mode::pull}) {
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      incremental_params params = base_params();
      params.exec.seed = 7;
      params.exec.threads = threads;
      params.exec.delivery = delivery;
      params.frontier_cap = 12;
      incremental_engine engine(base, params);
      dyn::workload_params wp;
      wp.seed = 7;
      wp.bias = dyn::workload_bias::hub;
      dyn::workload gen(wp);
      std::vector<std::uint64_t> digests{engine.digest()};
      for (int epoch = 0; epoch < 4; ++epoch) {
        for (int i = 0; i < 8; ++i)
          engine.network().apply(
              gen.next(engine.network(), engine.network().rebase_point()));
        digests.push_back(engine.commit_and_repair().digest);
      }
      histories.push_back(std::move(digests));
    }
  }
  for (std::size_t i = 1; i < histories.size(); ++i)
    EXPECT_EQ(histories[i], histories[0]) << "configuration " << i;
}

TEST(DynIncremental, FullFractionZeroForcesTheEscapeHatch) {
  incremental_params params = base_params();
  params.full_fraction = 0.0;
  incremental_engine engine(test_graph(120, 3), params);
  const std::vector<mutation> batch = dyn::parse_mutation_list("del=0-1");
  const dyn::epoch_report rep = engine.step(batch);
  EXPECT_TRUE(rep.full_resolve);
  EXPECT_GT(rep.ball_nodes, 0U);  // the ball was measured, then rejected
  EXPECT_EQ(rep.interior_nodes, 0U);
  EXPECT_TRUE(
      verify::is_dominating_set(engine.snapshot(), engine.solution()));
}

TEST(DynIncremental, EmptyBatchChangesNothing) {
  incremental_params params = base_params();
  incremental_engine engine(test_graph(120, 3), params);
  const std::uint64_t before = engine.digest();
  const dyn::epoch_report rep = engine.commit_and_repair();
  EXPECT_EQ(rep.mutations, 0U);
  EXPECT_EQ(rep.ball_nodes, 0U);
  EXPECT_FALSE(rep.full_resolve);
  EXPECT_EQ(rep.changed, 0U);
  EXPECT_EQ(rep.digest, before);
}

TEST(DynIncremental, GrowthReachesNewNodes) {
  // addnode + attachment edges must extend the incumbent and keep it
  // dominating (new nodes start out of the set; the ball covers them).
  incremental_params params = base_params();
  incremental_engine engine(test_graph(100, 11), params);
  const std::size_t n0 = engine.network().node_count();
  std::vector<mutation> batch;
  batch.push_back({dyn::mutation_kind::add_node,
                   static_cast<graph::node_id>(n0),
                   static_cast<graph::node_id>(n0)});
  batch.push_back({dyn::mutation_kind::add_edge, 0,
                   static_cast<graph::node_id>(n0)});
  (void)engine.step(batch);
  EXPECT_EQ(engine.network().node_count(), n0 + 1);
  EXPECT_EQ(engine.solution().size(), n0 + 1);
  EXPECT_TRUE(
      verify::is_dominating_set(engine.snapshot(), engine.solution()));
}

TEST(DynIncremental, ParameterErrorPaths) {
  const graph::graph g = test_graph(50, 1);
  incremental_params params = base_params();
  params.radius = 0;
  EXPECT_THROW(incremental_engine(g, params), std::invalid_argument);
  params = base_params();
  params.full_fraction = -0.5;
  EXPECT_THROW(incremental_engine(g, params), std::invalid_argument);
  params = base_params();
  params.solver = "alg2";  // fractional-only: nothing to splice
  EXPECT_THROW(incremental_engine(g, params), std::invalid_argument);
}

}  // namespace
}  // namespace domset
