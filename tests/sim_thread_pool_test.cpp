// Lifecycle coverage for the persistent worker pool and its engine
// integration: one pool reused across many dispatches and across
// consecutive engine runs, oversubscription (more workers than nodes),
// and hardware-concurrency autodetect must all produce output
// bit-identical to serial execution.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"

namespace domset {
namespace {

using graph::node_id;

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  sim::thread_pool pool(4);
  EXPECT_EQ(pool.size(), 4U);
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](std::size_t w) { hits[w].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, CallerParticipatesAsWorkerZero) {
  sim::thread_pool pool(3);
  std::thread::id worker0;
  pool.run(3, [&](std::size_t w) {
    if (w == 0) worker0 = std::this_thread::get_id();
  });
  EXPECT_EQ(worker0, std::this_thread::get_id());
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  // The whole point of the pool: one creation, thousands of barrier
  // crossings.  Each dispatch must see every active worker exactly once.
  sim::thread_pool pool(4);
  std::vector<std::atomic<std::uint64_t>> sums(4);
  constexpr std::size_t rounds = 2000;
  for (std::size_t r = 0; r < rounds; ++r)
    pool.run(4, [&](std::size_t w) { sums[w].fetch_add(r); });
  const std::uint64_t expected = rounds * (rounds - 1) / 2;
  for (const auto& s : sums) EXPECT_EQ(s.load(), expected);
}

TEST(ThreadPool, PartialDispatchUsesPrefixOfWorkers) {
  sim::thread_pool pool(8);
  std::vector<std::atomic<int>> hits(8);
  pool.run(3, [&](std::size_t w) { hits[w].fetch_add(1); });
  for (std::size_t w = 0; w < 8; ++w) EXPECT_EQ(hits[w].load(), w < 3 ? 1 : 0);
}

TEST(ThreadPool, OversizedWorkerRequestIsClamped) {
  sim::thread_pool pool(2);
  std::vector<std::atomic<int>> hits(2);
  pool.run(64, [&](std::size_t w) { hits.at(w).fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPool, RunChunkedCoversWholeRangeEvenOversubscribed) {
  // Chunking must clamp to the pool size first: partitioning [0, n) by an
  // unclamped worker count would leave trailing ranges undispatched.
  sim::thread_pool pool(2);
  std::vector<std::atomic<int>> visits(100);
  pool.run_chunked(100, 64, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, PathologicalWorkerCountClampedToCeiling) {
  // A pool-size request far past any hardware must clamp instead of
  // attempting that many OS threads and aborting mid-spawn.
  sim::thread_pool pool(1 << 20);
  EXPECT_EQ(pool.size(), sim::thread_pool::max_workers);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  sim::thread_pool pool(0);
  EXPECT_EQ(pool.size(), sim::thread_pool::hardware_workers());
  std::atomic<int> ran{0};
  pool.run(pool.size(), [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), static_cast<int>(pool.size()));
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  sim::thread_pool pool(4);
  EXPECT_THROW(pool.run(4,
                        [](std::size_t w) {
                          if (w == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The barrier still drained cleanly: the pool keeps working and the
  // stored exception does not leak into later dispatches.
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](std::size_t w) { hits[w].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  sim::thread_pool pool(1);
  EXPECT_EQ(pool.size(), 1U);
  int runs = 0;
  pool.run(1, [&](std::size_t w) {
    EXPECT_EQ(w, 0U);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

// ---------------------------------------------------------- engine reuse

/// Counts messages seen; broadcast-heavy so the parallel delivery phase
/// (broadcast-lane retirement) runs every round.
class echo_program final : public sim::node_program {
 public:
  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) override {
    digest_ = digest_ * 31 + inbox.size();
    if (ctx.round() >= 6) {
      done_ = true;
      return;
    }
    ctx.broadcast(1, digest_, 8);
  }
  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

 private:
  bool done_ = false;
  std::uint64_t digest_ = 7;
};

std::vector<std::uint64_t> run_echo(const graph::graph& g,
                                    sim::engine_config cfg) {
  sim::engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<echo_program>(); });
  eng.run();
  std::vector<std::uint64_t> digests;
  for (node_id v = 0; v < g.node_count(); ++v)
    digests.push_back(eng.program_as<echo_program>(v).digest());
  return digests;
}

TEST(ThreadPoolEngine, InjectedPoolReusedAcrossConsecutiveRuns) {
  common::rng gen(91);
  const graph::graph g1 = graph::gnp_random(200, 0.05, gen);
  const graph::graph g2 = graph::grid_graph(14, 14);

  const auto serial1 = run_echo(g1, {});
  const auto serial2 = run_echo(g2, {});

  const auto pool = std::make_shared<sim::thread_pool>(4);
  sim::engine_config cfg;
  cfg.threads = 4;
  cfg.pool = pool;
  // Same pool, back-to-back runs on different graphs, repeated: nothing
  // may bleed from one run into the next.
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(run_echo(g1, cfg), serial1) << "rep=" << rep;
    EXPECT_EQ(run_echo(g2, cfg), serial2) << "rep=" << rep;
  }
}

TEST(ThreadPoolEngine, InjectedPoolSharedAcrossPipelineStages) {
  common::rng gen(92);
  const graph::graph g = graph::gnp_random(250, 0.04, gen);
  core::pipeline_params params;
  params.k = 2;
  params.exec.seed = 5;
  const auto serial = core::compute_dominating_set(g, params);

  params.exec.threads = 4;
  params.exec.pool = std::make_shared<sim::thread_pool>(4);
  const auto pooled = core::compute_dominating_set(g, params);
  EXPECT_EQ(pooled.in_set, serial.in_set);
  EXPECT_EQ(pooled.total_rounds, serial.total_rounds);
  EXPECT_EQ(pooled.total_messages, serial.total_messages);
}

TEST(ThreadPoolEngine, OversubscriptionMatchesSerial) {
  // More workers than nodes: the engine must clamp to n and still agree
  // with the serial run bit for bit.
  const graph::graph g = graph::cycle_graph(5);
  const auto serial = run_echo(g, {});

  sim::engine_config cfg;
  cfg.threads = 16;
  EXPECT_EQ(run_echo(g, cfg), serial);

  cfg.pool = std::make_shared<sim::thread_pool>(16);
  EXPECT_EQ(run_echo(g, cfg), serial);
}

TEST(ThreadPoolEngine, AutodetectMatchesSerial) {
  common::rng gen(93);
  const graph::graph g = graph::gnp_random(150, 0.06, gen);
  const auto serial = run_echo(g, {});

  sim::engine_config cfg;
  cfg.threads = 0;  // one worker per hardware thread
  EXPECT_EQ(run_echo(g, cfg), serial);

  // threads = 0 with an injected pool means "the whole pool".
  cfg.pool = std::make_shared<sim::thread_pool>(3);
  EXPECT_EQ(run_echo(g, cfg), serial);
}

TEST(ThreadPoolEngine, Alg2OnInjectedPoolMatchesSerial) {
  common::rng gen(94);
  const graph::graph g = graph::barabasi_albert(180, 3, gen);
  core::lp_approx_params params;
  params.k = 3;
  params.exec.seed = 17;
  const auto serial = core::approximate_lp_known_delta(g, params);

  const auto pool = std::make_shared<sim::thread_pool>(8);
  params.exec.threads = 8;
  params.exec.pool = pool;
  for (int rep = 0; rep < 2; ++rep) {
    const auto run = core::approximate_lp_known_delta(g, params);
    ASSERT_EQ(run.x.size(), serial.x.size());
    for (std::size_t v = 0; v < run.x.size(); ++v)
      EXPECT_EQ(run.x[v], serial.x[v]) << "rep=" << rep << " v=" << v;
    EXPECT_EQ(run.metrics.messages_sent, serial.metrics.messages_sent);
  }
}

}  // namespace
}  // namespace domset
