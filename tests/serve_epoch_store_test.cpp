// The epoch store's reader/writer contract: pins never observe a torn or
// reclaimed epoch under concurrent publishes, pinned snapshots survive
// arbitrary overlay rebases, and retired slots are reclaimed only after
// their pin count drains.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/mutation.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "serve/epoch_store.hpp"

namespace domset {
namespace {

using serve::epoch_state;
using serve::epoch_store;
using serve::pinned_epoch;

std::uint64_t expected_digest(std::uint64_t epoch) {
  // Any injective-enough stamp works; readers check digest against epoch.
  return epoch * 0x9e3779b97f4a7c15ull + 1;
}

epoch_state make_state(std::uint64_t epoch) {
  epoch_state state;
  state.epoch = epoch;
  state.digest = expected_digest(epoch);
  state.size = static_cast<std::size_t>(epoch % 7);
  state.solution.assign(state.size, 1);
  return state;
}

TEST(ServeEpochStore, EmptyBeforeFirstPublishThenServesCurrent) {
  epoch_store store(4);
  EXPECT_FALSE(static_cast<bool>(store.pin()));
  EXPECT_EQ(store.resident(), 0u);

  store.publish(make_state(0));
  const pinned_epoch pin = store.pin();
  ASSERT_TRUE(static_cast<bool>(pin));
  EXPECT_EQ(pin->epoch, 0u);
  EXPECT_EQ(pin->digest, expected_digest(0));
  EXPECT_EQ(store.published(), 1u);
}

TEST(ServeEpochStore, ReclaimWaitsForPinsToDrain) {
  epoch_store store(4);
  store.publish(make_state(0));
  pinned_epoch old = store.pin();
  ASSERT_TRUE(static_cast<bool>(old));

  store.publish(make_state(1));
  // Epoch 0 is retired but pinned: both states stay resident and no
  // amount of reclaiming may free the pinned one.
  EXPECT_EQ(store.resident(), 2u);
  EXPECT_EQ(store.reclaim(), 0u);
  EXPECT_EQ(old->epoch, 0u);
  EXPECT_EQ(old->digest, expected_digest(0));

  old.release();
  EXPECT_EQ(store.reclaim(), 1u);
  EXPECT_EQ(store.resident(), 1u);
  EXPECT_EQ(store.reclaimed(), 1u);
  EXPECT_EQ(store.pin()->epoch, 1u);
}

TEST(ServeEpochStore, PublishReclaimsDrainedSlotsItself) {
  epoch_store store(2);
  // With a 2-slot wheel and no pins, every publish must reclaim the
  // previous epoch -- otherwise the third publish would spin forever.
  for (std::uint64_t e = 0; e < 16; ++e) store.publish(make_state(e));
  EXPECT_EQ(store.pin()->epoch, 15u);
  // Reclamation runs at the *top* of publish, so the epoch the last
  // publish retired is still resident until the next reclaim.
  EXPECT_EQ(store.resident(), 2u);
  EXPECT_EQ(store.published(), 16u);
  EXPECT_EQ(store.reclaimed(), 14u);
  EXPECT_EQ(store.reclaim(), 1u);
  EXPECT_EQ(store.resident(), 1u);
}

TEST(ServeEpochStore, PinnedSnapshotSurvivesOverlayRebase) {
  common::rng gen(11);
  dyn::dynamic_graph dg(graph::barabasi_albert(200, 3, gen));

  epoch_store store(8);
  epoch_state first;
  first.epoch = 0;
  first.snapshot = dg.snapshot();
  store.publish(std::move(first));

  const pinned_epoch pin = store.pin();
  const std::string digest_before = graph::graph_digest_hex(pin->snapshot);
  const std::size_t edges_before = pin->snapshot.edge_count();

  // Every commit+snapshot rebases the overlay under the pinned epoch.
  for (std::uint64_t e = 1; e <= 6; ++e) {
    const auto fresh = static_cast<graph::node_id>(dg.live_node_count());
    dg.apply({dyn::mutation_kind::add_node, fresh, fresh});
    dg.apply({dyn::mutation_kind::add_edge, 0, fresh});
    (void)dg.commit();
    epoch_state next;
    next.epoch = e;
    next.snapshot = dg.snapshot();
    store.publish(std::move(next));
  }

  EXPECT_EQ(pin->epoch, 0u);
  EXPECT_EQ(pin->snapshot.edge_count(), edges_before);
  EXPECT_EQ(graph::graph_digest_hex(pin->snapshot), digest_before);
  EXPECT_EQ(store.pin()->snapshot.node_count(), dg.node_count());
}

TEST(ServeEpochStore, ConcurrentPinsNeverObserveTornOrReclaimedEpochs) {
  epoch_store store(8);
  store.publish(make_state(0));

  constexpr std::uint64_t kEpochs = 400;
  constexpr std::size_t kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> observations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const pinned_epoch pin = store.pin();
        if (!pin) continue;
        // A torn epoch would pair one epoch's number with another's
        // payload; a reclaimed one would crash / read freed memory
        // (which TSan/ASan CI builds of this test would flag).
        if (pin->digest != expected_digest(pin->epoch) ||
            pin->solution.size() != pin->size)
          torn.fetch_add(1);
        observations.fetch_add(1);
      }
    });
  }

  for (std::uint64_t e = 1; e <= kEpochs; ++e) {
    store.publish(make_state(e));
    if (e % 16 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(store.published(), kEpochs + 1);
  EXPECT_EQ(store.pin()->epoch, kEpochs);
  // Quiesced: everything but the current epoch must now reclaim.
  store.reclaim();
  EXPECT_EQ(store.resident(), 1u);
}

}  // namespace
}  // namespace domset
