#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace domset::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  running_stats rs;
  EXPECT_EQ(rs.count(), 0U);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  running_stats rs;
  rs.add(4.5);
  EXPECT_EQ(rs.count(), 1U);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
  EXPECT_DOUBLE_EQ(rs.min(), 4.5);
  EXPECT_DOUBLE_EQ(rs.max(), 4.5);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  running_stats rs;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.sum(), 40.0, 1e-12);
}

TEST(RunningStats, CiShrinksWithSamples) {
  running_stats small;
  running_stats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);  // interpolated
}

TEST(Median, DoesNotReorderInput) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  (void)median(v);
  EXPECT_EQ(v[0], 9.0);
  EXPECT_EQ(v[1], 1.0);
  EXPECT_EQ(v[2], 5.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, ClampsOutOfRange) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 2.0);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
}

TEST(Summarize, ConsistentFields) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const summary s = summarize(v);
  EXPECT_EQ(s.count, 5U);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

}  // namespace
}  // namespace domset::common
