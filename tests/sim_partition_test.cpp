// The degree-aware partitioner must (a) be a well-formed contiguous
// partition for every input shape, and (b) actually balance by weight --
// the whole point is that a hub node costs its worker the same edge
// budget as thousands of leaves cost theirs.  Determinism (pure function
// of graph x parts) is implicit in the assertions being exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sim/partition.hpp"

namespace domset::sim {
namespace {

/// Structural invariants every partition must satisfy.
void expect_well_formed(const std::vector<std::size_t>& bounds, std::size_t n,
                        std::size_t parts) {
  ASSERT_EQ(bounds.size(), parts + 1);
  EXPECT_EQ(bounds.front(), 0U);
  EXPECT_EQ(bounds.back(), n);
  for (std::size_t w = 0; w + 1 < bounds.size(); ++w)
    EXPECT_LE(bounds[w], bounds[w + 1]) << "w=" << w;
}

std::uint64_t range_weight(const std::vector<std::uint64_t>& weights,
                           std::size_t lo, std::size_t hi) {
  std::uint64_t sum = 0;
  for (std::size_t i = lo; i < hi; ++i) sum += weights[i];
  return sum;
}

std::vector<std::uint64_t> node_weights(const graph::graph& g) {
  std::vector<std::uint64_t> w(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v) w[v] = g.degree(v) + 1;
  return w;
}

/// Every range's weight is within one item of the ideal share: the
/// guarantee balanced_ranges documents.
void expect_balanced(const std::vector<std::uint64_t>& weights,
                     const std::vector<std::size_t>& bounds,
                     std::size_t parts) {
  const std::uint64_t total =
      std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});
  const std::uint64_t max_item =
      weights.empty() ? 0 : *std::max_element(weights.begin(), weights.end());
  const double ideal = static_cast<double>(total) / static_cast<double>(parts);
  for (std::size_t w = 0; w < parts; ++w) {
    const std::uint64_t got = range_weight(weights, bounds[w], bounds[w + 1]);
    EXPECT_LE(static_cast<double>(got),
              ideal + static_cast<double>(max_item) + 1.0)
        << "part " << w << " overloaded";
  }
}

TEST(Partition, PathGraphSplitsEvenly) {
  // Path: all interior weights equal (degree 2 + 1), so the partition must
  // be near count-uniform.
  const graph::graph g = graph::path_graph(100);
  for (const std::size_t parts : {1U, 2U, 3U, 8U}) {
    const auto bounds = degree_weighted_ranges(g, parts);
    expect_well_formed(bounds, 100, parts);
    expect_balanced(node_weights(g), bounds, parts);
    for (std::size_t w = 0; w < parts; ++w) {
      const std::size_t len = bounds[w + 1] - bounds[w];
      EXPECT_NEAR(static_cast<double>(len), 100.0 / parts, 2.0) << "w=" << w;
    }
  }
}

TEST(Partition, StarHubIsWeightedLikeItsDegree) {
  // Star on 1001 nodes: the hub (node 0, weight 1001) weighs as much as
  // ~500 leaves (weight 2 each).  With two workers, a count split would
  // cut at node 500 and hand worker 0 the hub *plus* 500 leaves (~2/3 of
  // the weight); the weighted split must cut around node 250 so both
  // halves carry ~1500.
  const graph::graph g = graph::star_graph(1001);
  const auto weights = node_weights(g);
  const auto bounds = degree_weighted_ranges(g, 2);
  expect_well_formed(bounds, 1001, 2);
  EXPECT_NEAR(static_cast<double>(bounds[1]), 251.0, 2.0);
  expect_balanced(weights, bounds, 2);

  // With eight workers the hub's weight exceeds the ideal share, so it
  // must sit alone in its range (it even absorbs the next boundary: a
  // single item cannot be split, so a trailing empty range is correct).
  const auto bounds8 = degree_weighted_ranges(g, 8);
  expect_well_formed(bounds8, 1001, 8);
  EXPECT_EQ(bounds8[1], 1U) << "hub should be alone in the first range";
  expect_balanced(weights, bounds8, 8);
}

TEST(Partition, PowerLawIsWeightBalanced) {
  common::rng gen(99);
  const graph::graph g = graph::barabasi_albert(2000, 3, gen);
  const auto weights = node_weights(g);
  for (const std::size_t parts : {2U, 4U, 16U}) {
    const auto bounds = degree_weighted_ranges(g, parts);
    expect_well_formed(bounds, 2000, parts);
    expect_balanced(weights, bounds, parts);
  }
}

TEST(Partition, FewerNodesThanParts) {
  // n < parts: every node can sit in its own range, the surplus ranges
  // are empty, and nothing reads out of bounds.
  const graph::graph g = graph::complete_graph(3);
  const auto bounds = degree_weighted_ranges(g, 8);
  expect_well_formed(bounds, 3, 8);
  std::size_t nonempty = 0;
  for (std::size_t w = 0; w < 8; ++w) nonempty += bounds[w + 1] > bounds[w];
  EXPECT_EQ(nonempty, 3U);
}

TEST(Partition, AllIsolatedNodesFallBackToCountSplit) {
  // Isolated nodes all weigh 1 (degree 0 + 1): the split is a count
  // split.  Also covers the all-zero-weight fallback of balanced_ranges
  // directly.
  const graph::graph g = graph::empty_graph(10);
  const auto bounds = degree_weighted_ranges(g, 4);
  expect_well_formed(bounds, 10, 4);
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_NEAR(static_cast<double>(bounds[w + 1] - bounds[w]), 2.5, 1.0);

  const std::vector<std::uint64_t> zeros(10, 0);
  const auto zbounds = balanced_ranges(zeros, 4);
  expect_well_formed(zbounds, 10, 4);
  EXPECT_EQ(zbounds[1] - zbounds[0], 3U);  // equal-count chunks of ceil(10/4)
}

TEST(Partition, DegenerateInputs) {
  // Zero parts is treated as one; an empty graph partitions into empty
  // ranges.
  const auto empty = balanced_ranges({}, 0);
  expect_well_formed(empty, 0, 1);
  const graph::graph g = graph::empty_graph(0);
  const auto bounds = degree_weighted_ranges(g, 3);
  expect_well_formed(bounds, 0, 3);
}

}  // namespace
}  // namespace domset::sim
