#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.hpp"

namespace domset::sim {
namespace {

using graph::node_id;

/// Broadcasts its id once in round 0, records everything it ever receives,
/// and finishes after `lifetime` rounds.
class echo_program final : public node_program {
 public:
  explicit echo_program(std::size_t lifetime) : lifetime_(lifetime) {}

  void on_round(round_context& ctx, std::span<const message> inbox) override {
    for (const message& msg : inbox) received_.push_back(msg);
    if (ctx.round() == 0) ctx.broadcast(7, ctx.id(), 16);
    if (ctx.round() + 1 >= lifetime_) done_ = true;
  }

  [[nodiscard]] bool finished() const override { return done_; }
  [[nodiscard]] const std::vector<message>& received() const {
    return received_;
  }

 private:
  std::size_t lifetime_;
  bool done_ = false;
  std::vector<message> received_;
};

/// Sends one direct message to a fixed target in round 0.
class direct_sender final : public node_program {
 public:
  direct_sender(node_id target, bool misbehave)
      : target_(target), misbehave_(misbehave) {}

  void on_round(round_context& ctx, std::span<const message>) override {
    if (ctx.round() == 0 && (misbehave_ || ctx.id() == 0))
      ctx.send(target_, 1, 99, 8);
    done_ = true;
  }
  [[nodiscard]] bool finished() const override { return done_; }

 private:
  node_id target_;
  bool misbehave_;
  bool done_ = false;
};

TEST(Engine, MessagesArriveNextRound) {
  const graph::graph g = graph::path_graph(3);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<echo_program>(3); });
  const run_metrics metrics = eng.run();

  // Node 1 hears both ends; ends hear node 1.
  const auto& mid = eng.program_as<echo_program>(1).received();
  ASSERT_EQ(mid.size(), 2U);
  EXPECT_EQ(mid[0].from, 0U);
  EXPECT_EQ(mid[1].from, 2U);
  EXPECT_EQ(mid[0].payload, 0U);
  EXPECT_EQ(mid[1].payload, 2U);
  const auto& left = eng.program_as<echo_program>(0).received();
  ASSERT_EQ(left.size(), 1U);
  EXPECT_EQ(left[0].from, 1U);
  EXPECT_EQ(metrics.rounds, 3U);
  EXPECT_FALSE(metrics.hit_round_limit);
}

TEST(Engine, InboxSortedBySender) {
  const graph::graph g = graph::star_graph(6);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<echo_program>(2); });
  (void)eng.run();
  const auto& hub = eng.program_as<echo_program>(0).received();
  ASSERT_EQ(hub.size(), 5U);
  for (std::size_t i = 0; i + 1 < hub.size(); ++i)
    EXPECT_LT(hub[i].from, hub[i + 1].from);
}

TEST(Engine, MetricsCountBroadcastPerNeighbor) {
  const graph::graph g = graph::complete_graph(4);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<echo_program>(2); });
  const run_metrics metrics = eng.run();
  // 4 nodes broadcast to 3 neighbors each.
  EXPECT_EQ(metrics.messages_sent, 12U);
  EXPECT_EQ(metrics.bits_sent, 12U * 16U);
  EXPECT_EQ(metrics.max_message_bits, 16U);
  EXPECT_EQ(metrics.max_messages_per_node, 3U);
}

TEST(Engine, SendToNonNeighborThrows) {
  const graph::graph g = graph::path_graph(3);  // 0-1-2: 0 and 2 not adjacent
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<direct_sender>(2, true); });
  EXPECT_THROW((void)eng.run(), std::logic_error);
}

TEST(Engine, DirectSendReachesTarget) {
  const graph::graph g = graph::path_graph(2);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<direct_sender>(1, false); });
  (void)eng.run();  // node 0 sends to neighbor 1; must not throw
}

TEST(Engine, RoundLimitFlagged) {
  /// A program that never finishes.
  class immortal final : public node_program {
   public:
    void on_round(round_context&, std::span<const message>) override {}
    [[nodiscard]] bool finished() const override { return false; }
  };
  const graph::graph g = graph::path_graph(2);
  engine_config cfg;
  cfg.max_rounds = 10;
  engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<immortal>(); });
  const run_metrics metrics = eng.run();
  EXPECT_TRUE(metrics.hit_round_limit);
  EXPECT_EQ(metrics.rounds, 10U);
}

TEST(Engine, ZeroRoundsWhenAllStartFinished) {
  class instant final : public node_program {
   public:
    void on_round(round_context&, std::span<const message>) override {}
    [[nodiscard]] bool finished() const override { return true; }
  };
  const graph::graph g = graph::path_graph(2);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<instant>(); });
  const run_metrics metrics = eng.run();
  EXPECT_EQ(metrics.rounds, 0U);
  EXPECT_FALSE(metrics.hit_round_limit);
}

TEST(Engine, CongestViolationDetected) {
  const graph::graph g = graph::path_graph(2);
  engine_config cfg;
  cfg.congest_bit_limit = 8;
  engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<echo_program>(2); });
  const run_metrics metrics = eng.run();  // echo sends 16-bit messages
  EXPECT_TRUE(metrics.congest_violation);
}

TEST(Engine, CongestWithinLimitClean) {
  const graph::graph g = graph::path_graph(2);
  engine_config cfg;
  cfg.congest_bit_limit = 16;
  engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<echo_program>(2); });
  EXPECT_FALSE(eng.run().congest_violation);
}

TEST(Engine, DropAdversaryRemovesMessages) {
  const graph::graph g = graph::complete_graph(20);
  engine_config cfg;
  cfg.seed = 5;
  cfg.drop_probability = 0.5;
  engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<echo_program>(2); });
  const run_metrics metrics = eng.run();
  EXPECT_EQ(metrics.messages_sent, 380U);  // sends are counted pre-drop
  EXPECT_GT(metrics.messages_dropped, 100U);
  EXPECT_LT(metrics.messages_dropped, 280U);
  std::size_t received_total = 0;
  for (node_id v = 0; v < 20; ++v)
    received_total += eng.program_as<echo_program>(v).received().size();
  EXPECT_EQ(received_total, metrics.messages_sent - metrics.messages_dropped);
}

TEST(Engine, DroppedMessagesDoNotInflatePerNodeSendCount) {
  // Regression: the seed engine bumped per_node_sent_ before the drop
  // roll, so a lossy adversary inflated max_messages_per_node.  Drops are
  // now accounted separately: with every message dropped, the per-node
  // delivery maximum must be zero while messages_sent still records the
  // offered load.
  const graph::graph g = graph::complete_graph(20);
  engine_config cfg;
  cfg.seed = 5;
  cfg.drop_probability = 1.0;
  engine eng(g, cfg);
  eng.load([](node_id) { return std::make_unique<echo_program>(2); });
  const run_metrics metrics = eng.run();
  EXPECT_EQ(metrics.messages_sent, 380U);
  EXPECT_EQ(metrics.messages_dropped, 380U);
  EXPECT_EQ(metrics.max_messages_per_node, 0U);
  for (node_id v = 0; v < 20; ++v)
    EXPECT_TRUE(eng.program_as<echo_program>(v).received().empty());
}

TEST(Engine, MultipleMessagesPerEdgeStayInSendOrder) {
  // Overflow path: three messages down one edge in one round must arrive
  // contiguously, sorted by sender, in send order.
  class burst final : public node_program {
   public:
    void on_round(round_context& ctx, std::span<const message> inbox) override {
      for (const message& msg : inbox) received_.push_back(msg);
      if (ctx.round() == 0 && ctx.id() != 1) {
        for (std::uint64_t i = 0; i < 3; ++i) ctx.send(1, 4, 10 * ctx.id() + i, 8);
      }
      if (ctx.round() >= 1) done_ = true;
    }
    [[nodiscard]] bool finished() const override { return done_; }
    std::vector<message> received_;

   private:
    bool done_ = false;
  };
  // Path 0-1-2: node 1 receives two three-message bursts.
  const graph::graph g = graph::path_graph(3);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<burst>(); });
  (void)eng.run();
  const auto& mid = eng.program_as<burst>(1).received_;
  ASSERT_EQ(mid.size(), 6U);
  const std::uint64_t expected[] = {0, 1, 2, 20, 21, 22};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(mid[i].payload, expected[i]);
    EXPECT_EQ(mid[i].from, i < 3 ? 0U : 2U);
  }
}

TEST(Engine, HubBurstsKeepPerSenderOrderAndStaySubcubic) {
  // Star hub sending several messages down every edge exercises the
  // overflow grouping (entries are binary-searched per receiver, not
  // rescanned): each leaf must see the hub's burst contiguously in send
  // order, and the hub must see every leaf's burst sorted by sender.
  constexpr std::uint64_t burst = 3;
  class burster final : public node_program {
   public:
    void on_round(round_context& ctx, std::span<const message> inbox) override {
      for (const message& msg : inbox) received_.push_back(msg);
      if (ctx.round() == 0)
        for (std::uint64_t i = 0; i < burst; ++i)
          ctx.broadcast(2, 100 * ctx.id() + i, 8);
      if (ctx.round() >= 1) done_ = true;
    }
    [[nodiscard]] bool finished() const override { return done_; }
    std::vector<message> received_;

   private:
    bool done_ = false;
  };
  const graph::graph g = graph::star_graph(40);  // hub 0, leaves 1..39
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<burster>(); });
  (void)eng.run();

  const auto& hub = eng.program_as<burster>(0).received_;
  ASSERT_EQ(hub.size(), 39U * burst);
  for (std::size_t i = 0; i < hub.size(); ++i) {
    const node_id sender = static_cast<node_id>(1 + i / burst);
    EXPECT_EQ(hub[i].from, sender);
    EXPECT_EQ(hub[i].payload, 100ULL * sender + i % burst);
  }
  for (node_id leaf = 1; leaf < 40; ++leaf) {
    const auto& rec = eng.program_as<burster>(leaf).received_;
    ASSERT_EQ(rec.size(), burst);
    for (std::uint64_t i = 0; i < burst; ++i) {
      EXPECT_EQ(rec[i].from, 0U);
      EXPECT_EQ(rec[i].payload, i);
    }
  }
}

TEST(Engine, DeterministicPerSeed) {
  const graph::graph g = graph::complete_graph(10);
  const auto run_once = [&](std::uint64_t seed) {
    engine_config cfg;
    cfg.seed = seed;
    cfg.drop_probability = 0.3;
    engine eng(g, cfg);
    eng.load([](node_id) { return std::make_unique<echo_program>(2); });
    return eng.run().messages_dropped;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));  // overwhelmingly likely
}

TEST(Engine, RoundObserverFiresEachRound) {
  const graph::graph g = graph::path_graph(3);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<echo_program>(4); });
  std::vector<std::size_t> observed;
  eng.set_round_observer([&](std::size_t r) { observed.push_back(r); });
  (void)eng.run();
  ASSERT_EQ(observed.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(observed[i], i);
}

TEST(Engine, LoadTwiceThrows) {
  const graph::graph g = graph::path_graph(2);
  engine eng(g, {});
  const auto factory = [](node_id) { return std::make_unique<echo_program>(1); };
  eng.load(factory);
  EXPECT_THROW(eng.load(factory), std::logic_error);
}

TEST(Engine, RunWithoutLoadThrows) {
  const graph::graph g = graph::path_graph(2);
  engine eng(g, {});
  EXPECT_THROW((void)eng.run(), std::logic_error);
}

TEST(Engine, NodeRandomStreamsDiffer) {
  class roller final : public node_program {
   public:
    void on_round(round_context& ctx, std::span<const message>) override {
      value_ = ctx.random()();
      done_ = true;
    }
    [[nodiscard]] bool finished() const override { return done_; }
    std::uint64_t value_ = 0;

   private:
    bool done_ = false;
  };
  const graph::graph g = graph::empty_graph(8);
  engine eng(g, {});
  eng.load([](node_id) { return std::make_unique<roller>(); });
  (void)eng.run();
  for (node_id a = 0; a < 8; ++a)
    for (node_id b = a + 1; b < 8; ++b)
      EXPECT_NE(eng.program_as<roller>(a).value_,
                eng.program_as<roller>(b).value_);
}

TEST(BitsForValues, Widths) {
  EXPECT_EQ(bits_for_values(1), 1U);
  EXPECT_EQ(bits_for_values(2), 1U);
  EXPECT_EQ(bits_for_values(3), 2U);
  EXPECT_EQ(bits_for_values(4), 2U);
  EXPECT_EQ(bits_for_values(5), 3U);
  EXPECT_EQ(bits_for_values(256), 8U);
  EXPECT_EQ(bits_for_values(257), 9U);
}

}  // namespace
}  // namespace domset::sim
