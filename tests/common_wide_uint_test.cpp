#include "common/wide_uint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace domset::common {
namespace {

TEST(WideUint, ZeroProperties) {
  wide_uint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_width(), 0U);
  EXPECT_EQ(z, wide_uint(0));
  EXPECT_EQ(z.to_hex(), "0x0");
}

TEST(WideUint, ConstructionAndComparison) {
  EXPECT_LT(wide_uint(3), wide_uint(5));
  EXPECT_GT(wide_uint(7), wide_uint(5));
  EXPECT_EQ(wide_uint(9), wide_uint(9));
  EXPECT_LT(wide_uint(0), wide_uint(1));
}

TEST(WideUint, BitWidth) {
  EXPECT_EQ(wide_uint(1).bit_width(), 1U);
  EXPECT_EQ(wide_uint(2).bit_width(), 2U);
  EXPECT_EQ(wide_uint(255).bit_width(), 8U);
  EXPECT_EQ(wide_uint(256).bit_width(), 9U);
  EXPECT_EQ(wide_uint(~0ULL).bit_width(), 64U);
}

TEST(WideUint, SmallMultiplication) {
  EXPECT_EQ(wide_uint(6) * wide_uint(7), wide_uint(42));
  EXPECT_EQ(wide_uint(0) * wide_uint(12345), wide_uint(0));
  EXPECT_EQ(wide_uint(1) * wide_uint(12345), wide_uint(12345));
}

TEST(WideUint, MultiLimbMultiplication) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const wide_uint max64(~0ULL);
  const wide_uint sq = max64 * max64;
  EXPECT_EQ(sq.bit_width(), 128U);
  EXPECT_EQ(sq.to_hex(), "0xfffffffffffffffe0000000000000001");
}

TEST(WideUint, PowMatchesRepeatedMultiplication) {
  wide_uint acc(1);
  for (std::uint32_t e = 0; e <= 20; ++e) {
    EXPECT_EQ(wide_uint::pow(3, e), acc) << "exponent " << e;
    acc *= wide_uint(3);
  }
}

TEST(WideUint, PowEdgeCases) {
  EXPECT_EQ(wide_uint::pow(0, 0), wide_uint(1));  // convention
  EXPECT_EQ(wide_uint::pow(0, 5), wide_uint(0));
  EXPECT_EQ(wide_uint::pow(5, 0), wide_uint(1));
  EXPECT_EQ(wide_uint::pow(1, 1000), wide_uint(1));
}

TEST(WideUint, LargePowBitWidth) {
  // 2^100 has exactly 101 bits.
  EXPECT_EQ(wide_uint::pow(2, 100).bit_width(), 101U);
}

TEST(ComparePow, ExactBoundaryCases) {
  // 4^4 == 16^2: the boundary that floating point must not get wrong.
  EXPECT_EQ(compare_pow(4, 4, 16, 2), std::strong_ordering::equal);
  // 3^4 = 81 < 16^2 = 256.
  EXPECT_EQ(compare_pow(3, 4, 16, 2), std::strong_ordering::less);
  // 5^4 = 625 > 256.
  EXPECT_EQ(compare_pow(5, 4, 16, 2), std::strong_ordering::greater);
}

TEST(ComparePow, ZeroExponents) {
  EXPECT_EQ(compare_pow(7, 0, 9, 0), std::strong_ordering::equal);  // 1 vs 1
  EXPECT_EQ(compare_pow(7, 0, 9, 1), std::strong_ordering::less);
  EXPECT_EQ(compare_pow(7, 1, 9, 0), std::strong_ordering::greater);
}

TEST(ComparePow, ZeroBases) {
  EXPECT_EQ(compare_pow(0, 3, 0, 5), std::strong_ordering::equal);
  EXPECT_EQ(compare_pow(0, 3, 2, 1), std::strong_ordering::less);
  EXPECT_EQ(compare_pow(0, 0, 0, 1), std::strong_ordering::greater);  // 1 > 0
}

TEST(ComparePow, AgreesWithDoubleAwayFromBoundaries) {
  rng gen(21);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto a = 1 + gen.next_below(1000);
    const auto b = 1 + gen.next_below(1000);
    const auto p = static_cast<std::uint32_t>(1 + gen.next_below(12));
    const auto q = static_cast<std::uint32_t>(1 + gen.next_below(12));
    const double la = p * std::log(static_cast<double>(a));
    const double lb = q * std::log(static_cast<double>(b));
    if (std::abs(la - lb) < 1e-6) continue;  // too close for double oracle
    const auto expected =
        la < lb ? std::strong_ordering::less : std::strong_ordering::greater;
    EXPECT_EQ(compare_pow(a, p, b, q), expected)
        << a << "^" << p << " vs " << b << "^" << q;
  }
}

TEST(GeqRationalPower, MatchesDefinition) {
  // a >= b^{num/den}  <=>  a^den >= b^num.
  // 4 >= 16^{2/4} (= 4): true at equality.
  EXPECT_TRUE(geq_rational_power(4, 16, 2, 4));
  EXPECT_FALSE(geq_rational_power(3, 16, 2, 4));
  EXPECT_TRUE(geq_rational_power(5, 16, 2, 4));
}

TEST(GeqRationalPower, ZeroExponentMeansThresholdOne) {
  // b^{0/k} = 1: every a >= 1 passes, a = 0 fails.
  EXPECT_TRUE(geq_rational_power(1, 1000, 0, 4));
  EXPECT_FALSE(geq_rational_power(0, 1000, 0, 4));
}

TEST(GeqRationalPower, AlgorithmicThresholdSweep) {
  // Cross-check the exact comparison against careful long-double math on
  // the exact parameter shapes Algorithm 2 uses: dyn >= (Delta+1)^{l/k}.
  for (std::uint64_t delta_plus_1 : {2ULL, 5ULL, 16ULL, 17ULL, 100ULL}) {
    for (std::uint32_t k = 1; k <= 6; ++k) {
      for (std::uint32_t ell = 0; ell < k; ++ell) {
        const double threshold =
            std::pow(static_cast<double>(delta_plus_1),
                     static_cast<double>(ell) / static_cast<double>(k));
        for (std::uint64_t dyn = 0; dyn <= delta_plus_1; ++dyn) {
          const bool exact = geq_rational_power(dyn, delta_plus_1, ell, k);
          const double gap =
              static_cast<double>(dyn) - threshold;
          if (std::abs(gap) > 1e-6) {
            EXPECT_EQ(exact, gap > 0)
                << "dyn=" << dyn << " D+1=" << delta_plus_1 << " l=" << ell
                << " k=" << k;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace domset::common
