#include "exact/exact_mds.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset::exact {
namespace {

void expect_optimal(const graph::graph& g, std::size_t expected) {
  const auto res = solve_mds(g);
  ASSERT_TRUE(res.has_value()) << g.summary();
  EXPECT_EQ(res->size, expected) << g.summary();
  EXPECT_TRUE(verify::is_dominating_set(g, res->in_set)) << g.summary();
  EXPECT_EQ(verify::set_size(res->in_set), res->size);
}

TEST(ExactMds, ClosedFormFamilies) {
  expect_optimal(graph::complete_graph(1), 1);
  expect_optimal(graph::complete_graph(7), 1);
  expect_optimal(graph::star_graph(9), 1);
  expect_optimal(graph::empty_graph(5), 5);
  // Paths and cycles: ceil(n/3).
  expect_optimal(graph::path_graph(3), 1);
  expect_optimal(graph::path_graph(7), 3);
  expect_optimal(graph::path_graph(9), 3);
  expect_optimal(graph::path_graph(10), 4);
  expect_optimal(graph::cycle_graph(3), 1);
  expect_optimal(graph::cycle_graph(8), 3);
  expect_optimal(graph::cycle_graph(9), 3);
  expect_optimal(graph::cycle_graph(10), 4);
}

TEST(ExactMds, BipartiteAndCaterpillar) {
  expect_optimal(graph::complete_bipartite(3, 4), 2);
  expect_optimal(graph::complete_bipartite(1, 6), 1);
  // Caterpillar: one dominator per spine node.
  expect_optimal(graph::caterpillar(4, 2), 4);
  expect_optimal(graph::caterpillar(1, 5), 1);
}

TEST(ExactMds, GreedyAdversarialOptimumIsTwo) {
  expect_optimal(graph::greedy_adversarial(3), 2);
  expect_optimal(graph::greedy_adversarial(4), 2);
}

TEST(ExactMds, SmallGrids) {
  expect_optimal(graph::grid_graph(2, 2), 2);  // C_4: one node covers only 3
  expect_optimal(graph::grid_graph(3, 3), 3);
  expect_optimal(graph::grid_graph(4, 4), 4);
}

TEST(ExactMds, EmptyGraphInput) {
  const auto res = solve_mds(graph::graph{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->size, 0U);
}

TEST(ExactMds, BudgetExhaustionReturnsNullopt) {
  common::rng gen(61);
  const graph::graph g = graph::gnp_random(40, 0.1, gen);
  exact_options opts;
  opts.node_budget = 1;
  EXPECT_FALSE(solve_mds(g, opts).has_value());
}

TEST(BruteForce, MatchesBranchAndBoundOnRandomGraphs) {
  common::rng gen(62);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + gen.next_below(11);  // 4..14
    const double p = 0.1 + gen.next_double() * 0.5;
    const graph::graph g = graph::gnp_random(n, p, gen);
    const exact_result brute = brute_force_mds(g);
    const auto bb = solve_mds(g);
    ASSERT_TRUE(bb.has_value());
    EXPECT_EQ(bb->size, brute.size) << g.summary() << " trial " << trial;
    EXPECT_TRUE(verify::is_dominating_set(g, brute.in_set));
  }
}

TEST(BruteForce, RejectsLargeInputs) {
  EXPECT_THROW((void)brute_force_mds(graph::empty_graph(25)),
               std::invalid_argument);
}

TEST(ExactMds, OptimaAreMinimalDominatingSets) {
  common::rng gen(63);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::graph g = graph::gnp_random(18, 0.2, gen);
    const auto res = solve_mds(g);
    ASSERT_TRUE(res.has_value());
    // An optimal DS is necessarily minimal (dropping any member would give
    // a smaller dominating set).
    EXPECT_TRUE(verify::is_minimal_dominating_set(g, res->in_set));
  }
}

TEST(ExactMds, HandlesDisconnectedGraphs) {
  // Two disjoint triangles plus an isolated node: optimum 3.
  graph::graph_builder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  expect_optimal(std::move(b).build(), 3);
}

TEST(ExactMds, ModeratelyLargeStructured) {
  // 6x5 grid: known gamma(G) for grids; verify via consistency with brute
  // force on a coarser statement: solution is dominating and within the
  // dual lower bound sandwich.
  const graph::graph g = graph::grid_graph(6, 5);
  const auto res = solve_mds(g);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(verify::is_dominating_set(g, res->in_set));
  // gamma(P6 x P5) = 8 (Jacobson-Kinch tables).
  EXPECT_EQ(res->size, 8U);
}

}  // namespace
}  // namespace domset::exact
