#include "core/alg2.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/wide_uint.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "lp/lp_mds.hpp"

namespace domset::core {
namespace {

using common::compare_pow;

std::vector<graph::graph> test_graphs() {
  common::rng gen(101);
  std::vector<graph::graph> graphs;
  graphs.push_back(graph::star_graph(20));
  graphs.push_back(graph::cycle_graph(12));
  graphs.push_back(graph::path_graph(10));
  graphs.push_back(graph::grid_graph(4, 4));
  graphs.push_back(graph::complete_graph(8));
  graphs.push_back(graph::gnp_random(25, 0.2, gen));
  graphs.push_back(graph::barabasi_albert(25, 2, gen));
  graphs.push_back(graph::caterpillar(5, 3));
  return graphs;
}

/// True white count of v's closed neighborhood under `gray`.
std::uint32_t true_dyn_degree(const graph::graph& g, graph::node_id v,
                              const std::vector<std::uint8_t>& gray) {
  std::uint32_t whites = 0;
  g.for_closed_neighborhood(v, [&](graph::node_id u) {
    if (!gray[u]) ++whites;
  });
  return whites;
}

TEST(Alg2, ProducesFeasibleLpSolution) {
  for (const auto& g : test_graphs()) {
    for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
      const auto res = approximate_lp_known_delta(g, {.k = k});
      EXPECT_TRUE(lp::is_primal_feasible(g, res.x))
          << g.summary() << " k=" << k;
    }
  }
}

TEST(Alg2, RoundCountIsExactly2KSquared) {
  for (const auto& g : test_graphs()) {
    for (std::uint32_t k : {1U, 2U, 3U, 5U}) {
      const auto res = approximate_lp_known_delta(g, {.k = k});
      EXPECT_EQ(res.metrics.rounds, alg2_round_count(k))
          << g.summary() << " k=" << k;
      EXPECT_FALSE(res.metrics.hit_round_limit);
    }
  }
}

TEST(Alg2, ObjectiveWithinTheorem4Bound) {
  for (const auto& g : test_graphs()) {
    const auto lp_opt = lp::solve_lp_mds(g);
    ASSERT_TRUE(lp_opt.has_value());
    for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
      const auto res = approximate_lp_known_delta(g, {.k = k});
      EXPECT_LE(res.objective, res.ratio_bound * lp_opt->value + 1e-6)
          << g.summary() << " k=" << k;
      EXPECT_NEAR(res.ratio_bound, alg2_ratio_bound(g.max_degree(), k), 1e-12);
    }
  }
}

TEST(Alg2, Lemma2InvariantHoldsExactly) {
  // At the start of outer iteration ell, the *true* dynamic degree of every
  // node is at most (Delta+1)^{(ell+1)/k}:  count^k <= (Delta+1)^{ell+1}.
  for (const auto& g : test_graphs()) {
    const std::uint64_t dp1 = g.max_degree() + 1;
    for (std::uint32_t k : {2U, 3U, 4U}) {
      alg2_observer obs = [&](const alg2_iteration_view& view) {
        if (view.m != k - 1) return;  // only outer-iteration starts
        for (graph::node_id v = 0; v < g.node_count(); ++v) {
          const std::uint32_t count = true_dyn_degree(g, v, view.gray);
          EXPECT_TRUE(compare_pow(count, k, dp1, view.ell + 1) <= 0)
              << g.summary() << " k=" << k << " ell=" << view.ell
              << " node=" << v << " count=" << count;
        }
      };
      (void)approximate_lp_known_delta(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg2, Lemma3InvariantHoldsExactly) {
  // For every white node, the number of active nodes in its closed
  // neighborhood is at most (Delta+1)^{(m+1)/k}.
  for (const auto& g : test_graphs()) {
    const std::uint64_t dp1 = g.max_degree() + 1;
    for (std::uint32_t k : {2U, 3U, 4U}) {
      alg2_observer obs = [&](const alg2_iteration_view& view) {
        for (graph::node_id v = 0; v < g.node_count(); ++v) {
          if (view.gray[v]) continue;
          std::uint32_t actives = 0;
          g.for_closed_neighborhood(v, [&](graph::node_id u) {
            if (view.active[u]) ++actives;
          });
          EXPECT_TRUE(compare_pow(actives, k, dp1, view.m + 1) <= 0)
              << g.summary() << " k=" << k << " ell=" << view.ell
              << " m=" << view.m << " node=" << v << " a=" << actives;
        }
      };
      (void)approximate_lp_known_delta(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg2, Lemma4ZBoundWithScheduleSlack) {
  // z-accounting over true whites.  As documented in alg2.hpp, the 2-round
  // schedule makes the dynamic degree lag one iteration, so the paper's
  // per-outer-iteration z-bound 1/(Delta+1)^{(ell-1)/k} is asserted with a
  // 2x allowance.
  for (const auto& g : test_graphs()) {
    const std::size_t n = g.node_count();
    const double dp1 = static_cast<double>(g.max_degree()) + 1.0;
    for (std::uint32_t k : {2U, 3U}) {
      std::vector<double> z(n, 0.0);
      std::vector<double> prev_x(n, 0.0);
      alg2_observer obs = [&](const alg2_iteration_view& view) {
        if (view.m == k - 1) std::fill(z.begin(), z.end(), 0.0);  // line 3
        for (graph::node_id j = 0; j < n; ++j) {
          const double inc = view.x[j] - prev_x[j];
          if (inc <= 1e-15) continue;
          std::vector<graph::node_id> whites;
          g.for_closed_neighborhood(j, [&](graph::node_id u) {
            if (!view.gray[u]) whites.push_back(u);
          });
          for (const graph::node_id u : whites)
            z[u] += inc / static_cast<double>(whites.size());
        }
        prev_x = view.x;
        if (view.m == 0) {  // line 14: end of the outer iteration
          const double bound =
              2.0 * std::pow(dp1, -(static_cast<double>(view.ell) - 1.0) /
                                      static_cast<double>(k));
          for (graph::node_id v = 0; v < n; ++v)
            EXPECT_LE(z[v], bound + 1e-9)
                << g.summary() << " k=" << k << " ell=" << view.ell
                << " node=" << v;
        }
      };
      (void)approximate_lp_known_delta(g, {.k = k}, &obs);
    }
  }
}

TEST(Alg2, SumOfZEqualsSumOfXIncreases) {
  // The z-device redistributes weight: within each outer iteration the
  // total z mass must equal the total x increase (when every increase has
  // a white recipient, which the final-iteration x:=1 raises may violate
  // for already-covered nodes -- those are tracked separately).
  common::rng gen(102);
  const graph::graph g = graph::gnp_random(30, 0.15, gen);
  const std::uint32_t k = 3;
  double total_z = 0.0;
  double total_x_increase = 0.0;
  double undistributed = 0.0;
  std::vector<double> prev_x(g.node_count(), 0.0);
  alg2_observer obs = [&](const alg2_iteration_view& view) {
    for (graph::node_id j = 0; j < g.node_count(); ++j) {
      const double inc = view.x[j] - prev_x[j];
      if (inc <= 1e-15) continue;
      total_x_increase += inc;
      bool has_white = false;
      g.for_closed_neighborhood(j, [&](graph::node_id u) {
        if (!view.gray[u]) has_white = true;
      });
      if (has_white)
        total_z += inc;
      else
        undistributed += inc;
    }
    prev_x = view.x;
  };
  const auto res = approximate_lp_known_delta(g, {.k = k}, &obs);
  EXPECT_NEAR(total_z + undistributed, total_x_increase, 1e-9);
  EXPECT_NEAR(total_x_increase, res.objective, 1e-9);
}

TEST(Alg2, MessageSizesAreLogarithmic) {
  for (const auto& g : test_graphs()) {
    for (std::uint32_t k : {2U, 4U}) {
      const auto res = approximate_lp_known_delta(g, {.k = k});
      // Colors are 1 bit; x-exponents need ceil(log2(k+1)) bits.
      const std::uint32_t expected =
          std::max<std::uint32_t>(1, std::bit_width(k));
      EXPECT_LE(res.metrics.max_message_bits, expected) << g.summary();
    }
  }
}

TEST(Alg2, MessageCountPerNodeWithinPaperBound) {
  // Each node broadcasts twice per inner iteration: 2k^2 * degree.
  for (const auto& g : test_graphs()) {
    const std::uint32_t k = 3;
    const auto res = approximate_lp_known_delta(g, {.k = k});
    EXPECT_LE(res.metrics.max_messages_per_node,
              2ULL * k * k * g.max_degree())
        << g.summary();
  }
}

TEST(Alg2, DeterministicAcrossRuns) {
  common::rng gen(103);
  const graph::graph g = graph::gnp_random(40, 0.1, gen);
  const auto a = approximate_lp_known_delta(g, {.k = 3});
  const auto b = approximate_lp_known_delta(g, {.k = 3});
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
}

TEST(Alg2, KOneSelectsEverythingWithPositiveDegreeNeighborhood) {
  // k = 1 runs a single iteration (ell = m = 0): every node with a white
  // node in its closed neighborhood (initially: every node) sets x = 1.
  const graph::graph g = graph::cycle_graph(6);
  const auto res = approximate_lp_known_delta(g, {.k = 1});
  for (const double xi : res.x) EXPECT_DOUBLE_EQ(xi, 1.0);
  EXPECT_EQ(res.metrics.rounds, 2U);
}

TEST(Alg2, LargerKImprovesStarSolution) {
  // On a star, the LP optimum is 1 (hub).  k = 1 charges every node;
  // larger k should concentrate weight near the hub.
  const graph::graph g = graph::star_graph(30);
  const auto k1 = approximate_lp_known_delta(g, {.k = 1});
  const auto k4 = approximate_lp_known_delta(g, {.k = 4});
  EXPECT_LT(k4.objective, k1.objective);
}

TEST(Alg2, EmptyAndTrivialInputs) {
  const auto empty = approximate_lp_known_delta(graph::graph{}, {.k = 2});
  EXPECT_TRUE(empty.x.empty());
  EXPECT_EQ(empty.objective, 0.0);

  const auto single = approximate_lp_known_delta(graph::empty_graph(1), {.k = 2});
  ASSERT_EQ(single.x.size(), 1U);
  EXPECT_DOUBLE_EQ(single.x[0], 1.0);  // must dominate itself
}

TEST(Alg2, RejectsInvalidK) {
  EXPECT_THROW((void)approximate_lp_known_delta(graph::path_graph(3), {.k = 0}),
               std::invalid_argument);
}

TEST(Alg2, ViewSequenceCoversAllIterations) {
  const graph::graph g = graph::cycle_graph(9);
  const std::uint32_t k = 3;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seen;
  alg2_observer obs = [&](const alg2_iteration_view& view) {
    seen.emplace_back(view.ell, view.m);
  };
  (void)approximate_lp_known_delta(g, {.k = k}, &obs);
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(k) * k);
  std::size_t idx = 0;
  for (std::uint32_t ell = k; ell-- > 0;)
    for (std::uint32_t m = k; m-- > 0;) {
      EXPECT_EQ(seen[idx].first, ell);
      EXPECT_EQ(seen[idx].second, m);
      ++idx;
    }
}

}  // namespace
}  // namespace domset::core
