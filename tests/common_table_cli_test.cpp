#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace domset::common {
namespace {

TEST(TextTable, AlignsColumns) {
  text_table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  text_table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1U);
  std::ostringstream out;
  t.print(out);  // must not crash on the short row
  EXPECT_FALSE(out.str().empty());
}

TEST(TextTable, CsvEscaping) {
  text_table t({"x", "y"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "multi\nline"});
  std::ostringstream out;
  t.print_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_int(-42), "-42");
}

TEST(Formatting, VsBound) {
  EXPECT_EQ(fmt_vs_bound(1.5, 4.0, 1), "1.5 (<= 4.0)");
}

TEST(CliParser, ParsesFlagsAndSwitches) {
  cli_parser cli("test tool");
  cli.add_flag("n", "100", "node count");
  cli.add_flag("p", "0.5", "probability");
  cli.add_switch("verbose", "chatty output");
  const char* argv[] = {"prog", "--n", "250", "--p=0.25", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), 250);
  EXPECT_DOUBLE_EQ(cli.get_double("p"), 0.25);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, DefaultsApply) {
  cli_parser cli("test tool");
  cli.add_flag("k", "3", "parameter");
  cli.add_switch("quiet", "silence");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("k"), 3);
  EXPECT_FALSE(cli.get_bool("quiet"));
}

TEST(CliParser, RejectsUnknownFlag) {
  cli_parser cli("test tool");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--typo", "5"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliParser, RejectsMissingValue) {
  cli_parser cli("test tool");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, ThreadsFlagParsesAndDefaultsToSerial) {
  cli_parser cli("test tool");
  cli.add_threads_flag();
  const char* serial[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, serial));
  EXPECT_EQ(cli.threads(), 1U);

  cli_parser cli2("test tool");
  cli2.add_threads_flag();
  const char* argv[] = {"prog", "--threads", "4"};
  ASSERT_TRUE(cli2.parse(3, argv));
  EXPECT_EQ(cli2.threads(), 4U);

  cli_parser cli3("test tool");
  cli3.add_threads_flag();
  const char* autodetect[] = {"prog", "--threads=0"};
  ASSERT_TRUE(cli3.parse(2, autodetect));
  EXPECT_EQ(cli3.threads(), 0U);
}

TEST(CliParser, NegativeThreadsRejectedAtParse) {
  cli_parser cli("test tool");
  cli.add_threads_flag();
  const char* argv[] = {"prog", "--threads=-2"};
  EXPECT_FALSE(cli.parse(2, argv));  // usage-and-exit path, no exception
}

TEST(CliParser, NonNumericThreadsRejectedAtParse) {
  // strtoll would map the typos to 0 (= all cores) and saturate the
  // overflow to LLONG_MAX; parse must reject them all.
  for (const char* bad : {"eight", "4x", "", "99999999999999999999"}) {
    cli_parser cli("test tool");
    cli.add_threads_flag();
    const std::string arg = std::string("--threads=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    EXPECT_FALSE(cli.parse(2, argv)) << arg;
  }
}

TEST(CliParser, RejectsPositional) {
  cli_parser cli("test tool");
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, UsageListsFlags) {
  cli_parser cli("my description");
  cli.add_flag("alpha", "1.0", "the alpha value");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha value"), std::string::npos);
}

}  // namespace
}  // namespace domset::common
