#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace domset::common {
namespace {

TEST(TextTable, AlignsColumns) {
  text_table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  text_table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1U);
  std::ostringstream out;
  t.print(out);  // must not crash on the short row
  EXPECT_FALSE(out.str().empty());
}

TEST(TextTable, CsvEscaping) {
  text_table t({"x", "y"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "multi\nline"});
  std::ostringstream out;
  t.print_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_int(-42), "-42");
}

TEST(Formatting, VsBound) {
  EXPECT_EQ(fmt_vs_bound(1.5, 4.0, 1), "1.5 (<= 4.0)");
}

TEST(CliParser, ParsesFlagsAndSwitches) {
  cli_parser cli("test tool");
  cli.add_flag("n", "100", "node count");
  cli.add_flag("p", "0.5", "probability");
  cli.add_switch("verbose", "chatty output");
  const char* argv[] = {"prog", "--n", "250", "--p=0.25", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), 250);
  EXPECT_DOUBLE_EQ(cli.get_double("p"), 0.25);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, DefaultsApply) {
  cli_parser cli("test tool");
  cli.add_flag("k", "3", "parameter");
  cli.add_switch("quiet", "silence");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("k"), 3);
  EXPECT_FALSE(cli.get_bool("quiet"));
}

TEST(CliParser, RejectsUnknownFlag) {
  cli_parser cli("test tool");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--typo", "5"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliParser, RejectsMissingValue) {
  cli_parser cli("test tool");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, ExecFlagsDefaultToSerialReliableContext) {
  cli_parser cli("test tool");
  cli.add_exec_flags(17);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  const domset::exec::context ctx = cli.exec();
  EXPECT_EQ(ctx.seed, 17U);
  EXPECT_EQ(ctx.threads, 1U);
  EXPECT_EQ(ctx.drop_probability, 0.0);
  EXPECT_EQ(ctx.congest_bit_limit, 0U);
  EXPECT_EQ(ctx.delivery, domset::sim::delivery_mode::automatic);
  EXPECT_EQ(ctx.pool, nullptr);
}

TEST(CliParser, ExecFlagsParseEveryKnob) {
  cli_parser cli("test tool");
  cli.add_exec_flags();
  const char* argv[] = {"prog",        "--seed", "9",      "--threads", "4",
                        "--delivery",  "pull",   "--drop", "0.25",
                        "--congest-bits", "12"};
  ASSERT_TRUE(cli.parse(11, argv));
  const domset::exec::context ctx = cli.exec();
  EXPECT_EQ(ctx.seed, 9U);
  EXPECT_EQ(ctx.threads, 4U);
  EXPECT_EQ(ctx.delivery, domset::sim::delivery_mode::pull);
  EXPECT_DOUBLE_EQ(ctx.drop_probability, 0.25);
  EXPECT_EQ(ctx.congest_bit_limit, 12U);

  cli_parser autodetect_cli("test tool");
  autodetect_cli.add_exec_flags();
  const char* autodetect[] = {"prog", "--threads=0"};
  ASSERT_TRUE(autodetect_cli.parse(2, autodetect));
  EXPECT_EQ(autodetect_cli.exec().threads, 0U);
}

TEST(CliParser, NegativeThreadsRejectedAtParse) {
  cli_parser cli("test tool");
  cli.add_exec_flags();
  const char* argv[] = {"prog", "--threads=-2"};
  EXPECT_FALSE(cli.parse(2, argv));  // usage-and-exit path, no exception
}

TEST(CliParser, NonNumericThreadsRejectedAtParse) {
  // strtoll would map the typos to 0 (= all cores) and saturate the
  // overflow to LLONG_MAX; parse must reject them all.
  for (const char* bad : {"eight", "4x", "", "99999999999999999999"}) {
    cli_parser cli("test tool");
    cli.add_exec_flags();
    const std::string arg = std::string("--threads=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    EXPECT_FALSE(cli.parse(2, argv)) << arg;
  }
}

TEST(CliParser, BadDeliveryAndDropRejectedAtParse) {
  for (const char* bad : {"--delivery=teleport", "--drop=1.5", "--drop=-0.1",
                          "--drop=lossy"}) {
    cli_parser cli("test tool");
    cli.add_exec_flags();
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(cli.parse(2, argv)) << bad;
  }
}

TEST(CliParser, RejectsPositional) {
  cli_parser cli("test tool");
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, UsageListsFlags) {
  cli_parser cli("my description");
  cli.add_flag("alpha", "1.0", "the alpha value");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha value"), std::string::npos);
}

}  // namespace
}  // namespace domset::common
