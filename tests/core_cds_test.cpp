#include "core/cds.hpp"

#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace domset::core {
namespace {

void expect_valid_cds(const graph::graph& g,
                      const std::vector<std::uint8_t>& ds) {
  const auto res = connect_dominating_set(g, ds);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << g.summary();
  EXPECT_TRUE(is_connected_within_components(g, res.in_set)) << g.summary();
  EXPECT_EQ(res.size, verify::set_size(res.in_set));
  EXPECT_LE(res.size, 3 * verify::set_size(ds)) << g.summary();
  // The input is preserved (augmentation only).
  for (std::size_t v = 0; v < ds.size(); ++v) {
    if (ds[v]) {
      EXPECT_TRUE(res.in_set[v]);
    }
  }
}

TEST(Cds, PathWithSpreadDominators) {
  // P_9 with dominators {1, 4, 7}: pairwise distance 3, so two connectors
  // per gap are needed.
  const graph::graph g = graph::path_graph(9);
  std::vector<std::uint8_t> ds(9, 0);
  ds[1] = ds[4] = ds[7] = 1;
  const auto res = connect_dominating_set(g, ds);
  EXPECT_TRUE(is_connected_within_components(g, res.in_set));
  EXPECT_EQ(res.connectors_added, 4U);  // {2,3} and {5,6}
  EXPECT_EQ(res.size, 7U);
}

TEST(Cds, AlreadyConnectedIsUntouched) {
  const graph::graph g = graph::star_graph(8);
  std::vector<std::uint8_t> hub(8, 0);
  hub[0] = 1;
  const auto res = connect_dominating_set(g, hub);
  EXPECT_EQ(res.connectors_added, 0U);
  EXPECT_EQ(res.size, 1U);
}

TEST(Cds, GreedyInputAcrossFamilies) {
  common::rng gen(1101);
  const graph::graph graphs[] = {
      graph::cycle_graph(20), graph::grid_graph(6, 6),
      graph::gnp_random(50, 0.1, gen), graph::balanced_tree(2, 4),
      graph::caterpillar(6, 2)};
  for (const auto& g : graphs) {
    const auto ds = baselines::greedy_mds(g);
    expect_valid_cds(g, ds.in_set);
  }
}

TEST(Cds, PipelineOutputAcrossSeeds) {
  common::rng gen(1102);
  const graph::graph g = graph::random_geometric(80, 0.2, gen).g;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    pipeline_params params;
    params.k = 2;
    params.exec.seed = seed;
    const auto ds = compute_dominating_set(g, params);
    expect_valid_cds(g, ds.in_set);
  }
}

TEST(Cds, DisconnectedGraphConnectsPerComponent) {
  // Two disjoint paths.
  graph::graph_builder b(12);
  for (graph::node_id v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
  for (graph::node_id v = 6; v + 1 < 12; ++v) b.add_edge(v, v + 1);
  const graph::graph g = std::move(b).build();
  std::vector<std::uint8_t> ds(12, 0);
  ds[1] = ds[4] = ds[7] = ds[10] = 1;
  const auto res = connect_dominating_set(g, ds);
  EXPECT_TRUE(is_connected_within_components(g, res.in_set));
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
}

TEST(Cds, IsolatedNodesAreFine) {
  const graph::graph g = graph::empty_graph(4);
  std::vector<std::uint8_t> all(4, 1);
  const auto res = connect_dominating_set(g, all);
  EXPECT_EQ(res.connectors_added, 0U);
  EXPECT_TRUE(is_connected_within_components(g, res.in_set));
}

TEST(Cds, RejectsNonDominatingInput) {
  const graph::graph g = graph::path_graph(5);
  std::vector<std::uint8_t> bad(5, 0);
  bad[0] = 1;
  EXPECT_THROW((void)connect_dominating_set(g, bad), std::invalid_argument);
}

TEST(ConnectivityChecker, DetectsDisconnectedSelection) {
  const graph::graph g = graph::path_graph(5);
  std::vector<std::uint8_t> split(5, 0);
  split[0] = split[4] = 1;
  EXPECT_FALSE(is_connected_within_components(g, split));
  std::vector<std::uint8_t> contiguous(5, 0);
  contiguous[1] = contiguous[2] = 1;
  EXPECT_TRUE(is_connected_within_components(g, contiguous));
}

TEST(ConnectivityChecker, SingletonAndEmptySelections) {
  const graph::graph g = graph::path_graph(4);
  EXPECT_TRUE(is_connected_within_components(
      g, std::vector<std::uint8_t>{0, 1, 0, 0}));
  EXPECT_TRUE(is_connected_within_components(
      g, std::vector<std::uint8_t>{0, 0, 0, 0}));
}

}  // namespace
}  // namespace domset::core
