#include "baselines/wu_li.hpp"

#include <gtest/gtest.h>

#include "baselines/simple.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace domset::baselines {
namespace {

TEST(WuLi, AlwaysDominates) {
  common::rng gen(801);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::graph g = graph::gnp_random(60, 0.04 + 0.02 * trial, gen);
    const auto res = wu_li_mds(g);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "trial " << trial;
    EXPECT_EQ(res.size, verify::set_size(res.in_set));
  }
}

TEST(WuLi, StructuredFamilies) {
  const graph::graph graphs[] = {
      graph::star_graph(15),    graph::cycle_graph(12),
      graph::path_graph(9),     graph::grid_graph(5, 5),
      graph::complete_graph(8), graph::empty_graph(4),
      graph::complete_bipartite(3, 5)};
  for (const auto& g : graphs) {
    const auto res = wu_li_mds(g);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << g.summary();
  }
}

TEST(WuLi, CompleteGraphUsesOrphanRule) {
  // No node of K_n has two non-adjacent neighbors, so nothing is marked;
  // the orphan rule selects exactly the max-id node.
  const auto res = wu_li_mds(graph::complete_graph(10));
  EXPECT_EQ(res.marked_initially, 0U);
  EXPECT_EQ(res.size, 1U);
  EXPECT_EQ(res.orphan_joins, 1U);
  EXPECT_TRUE(res.in_set[9]);
}

TEST(WuLi, PathMarksInteriorOnly) {
  // On a path, every interior node has two non-adjacent neighbors.
  const auto res = wu_li_mds(graph::path_graph(6));
  EXPECT_TRUE(verify::is_dominating_set(graph::path_graph(6), res.in_set));
  EXPECT_EQ(res.marked_initially, 4U);  // nodes 1..4
}

TEST(WuLi, StarKeepsHubOnly) {
  const graph::graph g = graph::star_graph(10);
  const auto res = wu_li_mds(g);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  EXPECT_EQ(res.size, 1U);
  EXPECT_TRUE(res.in_set[0]);  // only the hub is marked
}

TEST(WuLi, PruningReducesCliqueChains) {
  // Two overlapping cliques: marking selects the overlap region; rule 1
  // should prune redundant dominators with dominated neighborhoods.
  common::rng gen(802);
  const graph::graph g = graph::cluster_graph(4, 6, 3, gen);
  const auto res = wu_li_mds(g);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  EXPECT_LE(res.size, res.marked_initially + res.orphan_joins);
}

TEST(WuLi, RoundsAreConstant) {
  common::rng gen(803);
  const graph::graph g = graph::gnp_random(50, 0.1, gen);
  const auto res = wu_li_mds(g);
  EXPECT_LE(res.metrics.rounds, 6U);
}

TEST(WuLi, NoGuaranteeOnAdversarialFamilies) {
  // On a cycle, Wu-Li marks *every* node (each has two non-adjacent
  // neighbors) and pruning cannot remove many: the output is Theta(n)
  // while the optimum is n/3.  This documents the "no non-trivial
  // approximation ratio" claim of the paper's related-work section.
  const graph::graph g = graph::cycle_graph(30);
  const auto res = wu_li_mds(g);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
  EXPECT_GE(res.size, 10U);  // optimum is 10; Wu-Li stays well above
}

TEST(Trivial, AllNodesDominate) {
  const graph::graph g = graph::path_graph(7);
  const auto all = trivial_all_nodes(g);
  EXPECT_TRUE(verify::is_dominating_set(g, all));
  EXPECT_EQ(verify::set_size(all), 7U);
}

TEST(CentralizedLpRounding, ProducesDominatingSets) {
  common::rng gen(804);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::graph g = graph::gnp_random(30, 0.15, gen);
    const auto res = centralized_lp_rounding(g, 100 + trial);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "trial " << trial;
    EXPECT_GE(static_cast<double>(res.size), res.lp_value - 1e-9);
    EXPECT_GE(res.lp_value, graph::dual_lower_bound(g) - 1e-9);
  }
}

}  // namespace
}  // namespace domset::baselines
