// Robustness extension: the paper assumes reliable links; these tests
// document how the algorithms degrade under i.i.d. message loss.
//
// Key structural property: in Algorithms 2/3, losing messages can only
// keep nodes *white* longer (coverage sums under-count), and every white
// node still self-assigns x = 1 in the final iteration -- so the
// fractional output stays primal feasible under arbitrary loss.  Likewise
// Algorithm 1's fix-up self-selects any node that did not hear a
// dominator, so the rounded set stays dominating.
#include <gtest/gtest.h>

#include "baselines/lrg.hpp"
#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

TEST(FailureInjection, Alg2StaysFeasibleUnderLoss) {
  common::rng gen(901);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  for (const double drop : {0.05, 0.2, 0.5, 0.9}) {
    core::lp_approx_params params;
    params.k = 3;
    params.exec.seed = 77;
    params.exec.drop_probability = drop;
    const auto res = core::approximate_lp_known_delta(g, params);
    EXPECT_TRUE(lp::is_primal_feasible(g, res.x)) << "drop=" << drop;
    EXPECT_GT(res.metrics.messages_dropped, 0U);
    // Rounds are schedule-driven, never extended by loss.
    EXPECT_EQ(res.metrics.rounds, core::alg2_round_count(3));
  }
}

TEST(FailureInjection, Alg3StaysFeasibleUnderLoss) {
  common::rng gen(902);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  for (const double drop : {0.05, 0.2, 0.5, 0.9}) {
    core::lp_approx_params params;
    params.k = 2;
    params.exec.seed = 78;
    params.exec.drop_probability = drop;
    const auto res = core::approximate_lp(g, params);
    EXPECT_TRUE(lp::is_primal_feasible(g, res.x)) << "drop=" << drop;
    EXPECT_EQ(res.metrics.rounds, core::alg3_round_count(2));
  }
}

TEST(FailureInjection, LossInflatesObjectiveGracefully) {
  // Dropped coverage reports keep nodes white, so more nodes raise x; the
  // objective should grow monotonically-ish with the drop rate but stay
  // bounded by n (every x <= 1).
  common::rng gen(903);
  const graph::graph g = graph::gnp_random(60, 0.1, gen);
  core::lp_approx_params clean;
  clean.k = 3;
  const double base = core::approximate_lp(g, clean).objective;
  core::lp_approx_params lossy = clean;
  lossy.exec.drop_probability = 0.8;
  lossy.exec.seed = 5;
  const double degraded = core::approximate_lp(g, lossy).objective;
  EXPECT_GE(degraded, base - 1e-9);
  EXPECT_LE(degraded, static_cast<double>(g.node_count()) + 1e-9);
}

TEST(FailureInjection, PipelineStillDominatesUnderLoss) {
  common::rng gen(904);
  const graph::graph g = graph::gnp_random(50, 0.12, gen);
  for (const double drop : {0.1, 0.3, 0.6}) {
    core::pipeline_params params;
    params.k = 2;
    params.exec.seed = 40;
    params.exec.drop_probability = drop;
    const auto res = core::compute_dominating_set(g, params);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "drop=" << drop;
  }
}

TEST(FailureInjection, LossOnlyGrowsTheRoundedSet) {
  // With the same seeds, loss can only move nodes into the set (missed
  // announcements trigger the fix-up), never out of it... on average.
  common::rng gen(905);
  const graph::graph g = graph::gnp_random(50, 0.12, gen);
  std::size_t clean_total = 0;
  std::size_t lossy_total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    core::pipeline_params params;
    params.k = 2;
    params.exec.seed = seed;
    clean_total += core::compute_dominating_set(g, params).size;
    params.exec.drop_probability = 0.5;
    lossy_total += core::compute_dominating_set(g, params).size;
  }
  // Averaged over seeds; a small slack absorbs coin-flip noise (loss also
  // shrinks the delta^(2) estimates, which lowers selection probabilities).
  EXPECT_GE(lossy_total + 5, clean_total);
}

TEST(FailureInjection, LrgTerminatesAndDominatesUnderModerateLoss) {
  common::rng gen(906);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  baselines::lrg_params params;
  params.exec.seed = 3;
  params.exec.drop_probability = 0.1;
  const auto res = baselines::lrg_mds(g, params);
  EXPECT_FALSE(res.metrics.hit_round_limit);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
}

}  // namespace
}  // namespace domset
