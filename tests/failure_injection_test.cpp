// Robustness extension: the paper assumes reliable links; these tests
// document how the algorithms degrade under i.i.d. message loss.
//
// Key structural property: in Algorithms 2/3, losing messages can only
// keep nodes *white* longer (coverage sums under-count), and every white
// node still self-assigns x = 1 in the final iteration -- so the
// fractional output stays primal feasible under arbitrary loss.  Likewise
// Algorithm 1's fix-up self-selects any node that did not hear a
// dominator, so the rounded set stays dominating.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "baselines/lrg.hpp"
#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"
#include "sim/fault.hpp"
#include "verify/verify.hpp"

namespace domset {
namespace {

TEST(FailureInjection, Alg2StaysFeasibleUnderLoss) {
  common::rng gen(901);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  for (const double drop : {0.05, 0.2, 0.5, 0.9}) {
    core::lp_approx_params params;
    params.k = 3;
    params.exec.seed = 77;
    params.exec.drop_probability = drop;
    const auto res = core::approximate_lp_known_delta(g, params);
    EXPECT_TRUE(lp::is_primal_feasible(g, res.x)) << "drop=" << drop;
    EXPECT_GT(res.metrics.messages_dropped, 0U);
    // Rounds are schedule-driven, never extended by loss.
    EXPECT_EQ(res.metrics.rounds, core::alg2_round_count(3));
  }
}

TEST(FailureInjection, Alg3StaysFeasibleUnderLoss) {
  common::rng gen(902);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  for (const double drop : {0.05, 0.2, 0.5, 0.9}) {
    core::lp_approx_params params;
    params.k = 2;
    params.exec.seed = 78;
    params.exec.drop_probability = drop;
    const auto res = core::approximate_lp(g, params);
    EXPECT_TRUE(lp::is_primal_feasible(g, res.x)) << "drop=" << drop;
    EXPECT_EQ(res.metrics.rounds, core::alg3_round_count(2));
  }
}

TEST(FailureInjection, LossInflatesObjectiveGracefully) {
  // Dropped coverage reports keep nodes white, so more nodes raise x; the
  // objective should grow monotonically-ish with the drop rate but stay
  // bounded by n (every x <= 1).
  common::rng gen(903);
  const graph::graph g = graph::gnp_random(60, 0.1, gen);
  core::lp_approx_params clean;
  clean.k = 3;
  const double base = core::approximate_lp(g, clean).objective;
  core::lp_approx_params lossy = clean;
  lossy.exec.drop_probability = 0.8;
  lossy.exec.seed = 5;
  const double degraded = core::approximate_lp(g, lossy).objective;
  EXPECT_GE(degraded, base - 1e-9);
  EXPECT_LE(degraded, static_cast<double>(g.node_count()) + 1e-9);
}

TEST(FailureInjection, PipelineStillDominatesUnderLoss) {
  common::rng gen(904);
  const graph::graph g = graph::gnp_random(50, 0.12, gen);
  for (const double drop : {0.1, 0.3, 0.6}) {
    core::pipeline_params params;
    params.k = 2;
    params.exec.seed = 40;
    params.exec.drop_probability = drop;
    const auto res = core::compute_dominating_set(g, params);
    EXPECT_TRUE(verify::is_dominating_set(g, res.in_set)) << "drop=" << drop;
  }
}

TEST(FailureInjection, LossOnlyGrowsTheRoundedSet) {
  // With the same seeds, loss can only move nodes into the set (missed
  // announcements trigger the fix-up), never out of it... on average.
  common::rng gen(905);
  const graph::graph g = graph::gnp_random(50, 0.12, gen);
  std::size_t clean_total = 0;
  std::size_t lossy_total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    core::pipeline_params params;
    params.k = 2;
    params.exec.seed = seed;
    clean_total += core::compute_dominating_set(g, params).size;
    params.exec.drop_probability = 0.5;
    lossy_total += core::compute_dominating_set(g, params).size;
  }
  // Averaged over seeds; a small slack absorbs coin-flip noise (loss also
  // shrinks the delta^(2) estimates, which lowers selection probabilities).
  EXPECT_GE(lossy_total + 5, clean_total);
}

TEST(FailureInjection, FaultPlanBitIdenticalAcrossDeliveryAndThreads) {
  // The acceptance criterion of the fault plane: a run with every fault
  // kind scheduled at once -- crash-stop, crash-recover, a flapping link,
  // a loss burst stacked on base drop, duplication -- produces the same
  // set, the same objective, and the same fault counters for every
  // delivery mode and thread count.
  common::rng gen(907);
  const graph::graph g = graph::gnp_random(60, 0.1, gen);
  auto plan = std::make_shared<const sim::fault_plan>(sim::parse_fault_plan(
      "crash=3@2+crash=8@1-4+link=0-1@0-9:flap=1/2+burst@2-4:p=0.3+"
      "dup@1-6:p=0.25"));
  core::pipeline_params params;
  params.k = 2;
  params.exec.seed = 19;
  params.exec.drop_probability = 0.1;
  params.exec.delivery = sim::delivery_mode::push;
  params.exec.faults = plan;
  const auto serial = core::compute_dominating_set(g, params);
  // Exact fault bookkeeping on the reference run: both scheduled crashes
  // fired in both engine runs (the plan's rounds are run-relative, so the
  // rounding stage replays the schedule) and each fault meter is active.
  for (const sim::run_metrics* m :
       {&serial.fractional.metrics, &serial.rounding.metrics}) {
    EXPECT_EQ(m->nodes_crashed, 2U);
    EXPECT_GT(m->node_rounds_down, 0U);
    EXPECT_GT(m->messages_lost_to_faults, 0U);
    EXPECT_GT(m->messages_duplicated, 0U);
    EXPECT_GT(m->messages_dropped, 0U);
  }
  for (const sim::delivery_mode mode :
       {sim::delivery_mode::push, sim::delivery_mode::pull,
        sim::delivery_mode::automatic}) {
    for (const std::size_t threads :
         std::array<std::size_t, 3>{1, 2, 8}) {
      params.exec.delivery = mode;
      params.exec.threads = threads;
      const auto run = core::compute_dominating_set(g, params);
      EXPECT_EQ(run.in_set, serial.in_set)
          << "threads=" << threads << " delivery=" << to_string(mode);
      EXPECT_EQ(run.size, serial.size);
      EXPECT_EQ(run.total_rounds, serial.total_rounds);
      EXPECT_EQ(run.total_messages, serial.total_messages);
      const auto pairs = {
          std::make_pair(&run.fractional.metrics, &serial.fractional.metrics),
          std::make_pair(&run.rounding.metrics, &serial.rounding.metrics)};
      for (const auto& [a, b] : pairs) {
        EXPECT_EQ(a->messages_dropped, b->messages_dropped);
        EXPECT_EQ(a->messages_lost_to_faults, b->messages_lost_to_faults);
        EXPECT_EQ(a->messages_duplicated, b->messages_duplicated);
        EXPECT_EQ(a->node_rounds_down, b->node_rounds_down);
        EXPECT_EQ(a->nodes_crashed, b->nodes_crashed);
      }
    }
  }
}

TEST(FailureInjection, CrashClusterLeavesHolesAlg1CannotFix) {
  // "Join if in doubt" heals every loss-shaped failure, so a guaranteed
  // hole needs a crashed node whose whole closed neighborhood crashed
  // with it: nobody inside the hole can self-select.  A 5-node plus-sign
  // cluster on the grid does exactly that.
  const graph::graph g = graph::grid_graph(10, 10);
  auto plan = std::make_shared<const sim::fault_plan>(sim::parse_fault_plan(
      "crash=55@0+crash=45@0+crash=54@0+crash=56@0+crash=65@0"));
  core::pipeline_params params;
  params.k = 2;
  params.exec.seed = 2;
  params.exec.faults = plan;
  const auto res = core::compute_dominating_set(g, params);
  EXPECT_FALSE(verify::is_dominating_set(g, res.in_set));
  const auto holes = verify::undominated_nodes(g, res.in_set);
  ASSERT_FALSE(holes.empty());
  // The damage is confined to the crashed cluster.
  for (const graph::node_id v : holes) {
    const bool in_cluster =
        v == 55 || v == 45 || v == 54 || v == 56 || v == 65;
    EXPECT_TRUE(in_cluster) << "hole outside the crash cluster: " << v;
  }
}

TEST(FailureInjection, LrgTerminatesAndDominatesUnderModerateLoss) {
  common::rng gen(906);
  const graph::graph g = graph::gnp_random(40, 0.15, gen);
  baselines::lrg_params params;
  params.exec.seed = 3;
  params.exec.drop_probability = 0.1;
  const auto res = baselines::lrg_mds(g, params);
  EXPECT_FALSE(res.metrics.hit_round_limit);
  EXPECT_TRUE(verify::is_dominating_set(g, res.in_set));
}

}  // namespace
}  // namespace domset
