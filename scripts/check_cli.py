#!/usr/bin/env python3
"""CLI contract test for the `domset` driver binary.

Usage:
    check_cli.py --bin PATH/TO/domset

Drives the real binary end to end (registered as the DomsetCli.ExitCodes
ctest) and checks the documented exit-code contract:

    0  success (solution verified dominating)
    1  invalid solution
    2  usage errors -- unknown subcommand, unknown solver or family name,
       malformed parameter values

plus a few output-shape facts the docs promise: `domset list` names the
portfolio solvers, and an `--alg auto --json` run carries the
`selection` block recording the dispatch.
"""
from __future__ import annotations

import argparse
import json
import subprocess
import sys


def run(bin_path: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [bin_path, *args], capture_output=True, text=True, timeout=300
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", required=True, help="path to the domset binary")
    bin_path = parser.parse_args().bin

    failures: list[str] = []

    def check(name: str, proc: subprocess.CompletedProcess,
              expect_exit: int) -> subprocess.CompletedProcess:
        if proc.returncode != expect_exit:
            failures.append(
                f"{name}: exit {proc.returncode}, expected {expect_exit}\n"
                f"  stdout: {proc.stdout[:300]!r}\n"
                f"  stderr: {proc.stderr[:300]!r}"
            )
        return proc

    # `list` succeeds and teaches the vocabulary, portfolio included.
    listing = check("list", run(bin_path, "list"), 0)
    for solver in ("pipeline", "arboricity", "auto", "greedy"):
        if solver not in listing.stdout:
            failures.append(f"list: solver '{solver}' missing from output")

    # Unknown names are usage errors (exit 2) with a teaching message.
    unknown_alg = check(
        "unknown --alg",
        run(bin_path, "run", "--alg", "nosuch", "--graph", "gnp", "--n", "30"),
        2,
    )
    if "nosuch" not in unknown_alg.stderr:
        failures.append("unknown --alg: error does not name the bad solver")
    check(
        "unknown --graph",
        run(bin_path, "run", "--alg", "pipeline", "--graph", "nosuch",
            "--n", "30"),
        2,
    )
    check("unknown subcommand", run(bin_path, "frobnicate"), 2)

    # Malformed parameter values are usage errors too.
    check(
        "bad epsilon",
        run(bin_path, "run", "--alg", "arboricity", "--graph", "star",
            "--n", "40", "--epsilon", "-1"),
        2,
    )
    # A solver rejects params it does not accept (arboricity has no k).
    check(
        "foreign param",
        run(bin_path, "run", "--alg", "arboricity", "--graph", "star",
            "--n", "40", "--k", "3"),
        2,
    )

    # Plain valid runs exit 0.
    check(
        "valid arboricity run",
        run(bin_path, "run", "--alg", "arboricity", "--graph", "tree",
            "--n", "40", "--seed", "2"),
        0,
    )

    # An auto run records its dispatch in the JSON record.
    auto = check(
        "auto --json",
        run(bin_path, "run", "--alg", "auto", "--graph", "ba", "--n", "60",
            "--seed", "3", "--json"),
        0,
    )
    if auto.returncode == 0:
        record = json.loads(auto.stdout)
        selection = record.get("result", {}).get("selection")
        if not isinstance(selection, dict):
            failures.append("auto --json: no result.selection block")
        elif not selection.get("selected_solver"):
            failures.append("auto --json: selection.selected_solver empty")

    if failures:
        print("check_cli: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("check_cli: OK (8 cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
