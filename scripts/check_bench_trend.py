#!/usr/bin/env python3
"""CI trend gate over `domset bench` documents (schema domset-bench/1).

Usage:
    check_bench_trend.py CURRENT.json --baseline BASELINE.json
                         [--tolerance 0.40] [--min-ms 2.0]
                         [--allow-missing]
    check_bench_trend.py CURRENT.json --write-baseline OUT.json
    check_bench_trend.py --self-test

Compares the current sweep against a committed baseline cell by cell
(key: alg / graph / n / seed / delivery / threads) and FAILS when

  * a cell's solution digest differs from the baseline's -- the solver
    output changed for the same seed, which is either a determinism
    regression or an intentional algorithm change that must ship with a
    refreshed baseline;
  * a cell's median wall-time regressed beyond --tolerance (default
    40%: generous, because CI runs on shared runners) AND by more than
    --min-ms absolute (sub-millisecond cells flap on timer noise);
  * a baseline cell is absent from the current document (the sweep
    silently shrank), unless --allow-missing.

New cells (present now, absent from the baseline) are reported but do
not fail; they start being gated once the baseline is refreshed.

A per-cell delta table is printed to stdout and, when the
GITHUB_STEP_SUMMARY environment variable is set, appended there as a
Markdown job summary.

--write-baseline strips CURRENT.json down to the committed baseline form
(schema domset-bench-baseline/1: cell keys, digests, median timings) --
the way bench/baselines/ci_baseline.json is produced and refreshed.
Refresh it whenever the sweep spec, an algorithm, or the runner class
changes:

    ./build/domset bench ... --out current.json
    python3 scripts/check_bench_trend.py current.json \
        --write-baseline bench/baselines/ci_baseline.json

--self-test exercises the gate on synthetic documents (pass, injected
digest mismatch, injected slowdown, shrunk sweep) and exits nonzero if
any expectation fails; CI runs it before the real comparison so the gate
itself is tested.

Stdlib only.  Exits 0 when the gate passes, 1 on regressions or invalid
input.
"""

import json
import os
import sys

BENCH_SCHEMA = "domset-bench/1"
BASELINE_SCHEMA = "domset-bench-baseline/1"
KEY_FIELDS = ("alg", "graph", "n", "seed", "delivery", "threads",
              "drop", "faults")


def cell_key(cell):
    """Cell identity including the degradation axes.  Baselines written
    before those axes existed have no drop/faults keys; they normalize to
    the reliable values (0, "none") so old baselines keep gating new
    sweeps cell for cell."""
    key = []
    for field in KEY_FIELDS:
        value = cell.get(field)
        if field == "drop":
            value = float(value) if isinstance(value, (int, float)) else 0.0
        elif field == "faults":
            value = value if isinstance(value, str) and value else "none"
        key.append(value)
    return tuple(key)


def key_label(key):
    alg, graph, n, seed, delivery, threads, drop, faults = key
    label = f"{alg}/{graph}/n={n}/seed={seed}/{delivery}/t={threads}"
    if drop:
        label += f"/drop={drop:g}"
    if faults != "none":
        label += f"/faults={faults}"
    return label


def load_cells(path, expect_schemas):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"check_bench_trend: {path}: {e}")
    if not isinstance(doc, dict) or doc.get("schema") not in expect_schemas:
        raise SystemExit(
            f"check_bench_trend: {path}: schema is "
            f"{doc.get('schema') if isinstance(doc, dict) else None!r}, "
            f"want one of {expect_schemas}"
        )
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise SystemExit(f"check_bench_trend: {path}: no cells")
    return {cell_key(c): c for c in cells}


def compare(current, baseline, tolerance, min_ms, allow_missing):
    """Returns (failures, rows): failure strings + delta-table rows."""
    failures = []
    rows = []
    for key in sorted(baseline, key=key_label):
        base = baseline[key]
        cur = current.get(key)
        label = key_label(key)
        if cur is None:
            rows.append((label, base.get("median_ms"), None, None, "MISSING"))
            if not allow_missing:
                failures.append(
                    f"{label}: present in the baseline but missing from the "
                    "current sweep (did the CI spec shrink?)"
                )
            continue
        base_ms = base.get("median_ms")
        cur_ms = cur.get("median_ms")
        delta = None
        status = "ok"
        if isinstance(base_ms, (int, float)) and isinstance(
                cur_ms, (int, float)) and base_ms > 0:
            delta = (cur_ms - base_ms) / base_ms
            if delta > tolerance and (cur_ms - base_ms) > min_ms:
                status = "SLOW"
                failures.append(
                    f"{label}: median {cur_ms:.2f} ms vs baseline "
                    f"{base_ms:.2f} ms (+{delta * 100.0:.0f}% > "
                    f"{tolerance * 100.0:.0f}% tolerance)"
                )
        if base.get("digest") != cur.get("digest"):
            status = "DIGEST"
            failures.append(
                f"{label}: solution digest {cur.get('digest')} != baseline "
                f"{base.get('digest')} (same seed must reproduce the same "
                "solution; refresh the baseline only for intentional "
                "algorithm changes)"
            )
        rows.append((label, base_ms, cur_ms, delta, status))
    for key in sorted(set(current) - set(baseline), key=key_label):
        rows.append(
            (key_label(key), None, current[key].get("median_ms"), None, "new")
        )
    return failures, rows


def fmt_ms(value):
    return f"{value:.2f}" if isinstance(value, (int, float)) else "-"


def fmt_delta(delta):
    return f"{delta * +100.0:+.0f}%" if isinstance(delta, float) else "-"


def render_table(rows):
    lines = ["| cell | baseline ms | current ms | delta | status |",
             "|---|---|---|---|---|"]
    for label, base_ms, cur_ms, delta, status in rows:
        lines.append(
            f"| {label} | {fmt_ms(base_ms)} | {fmt_ms(cur_ms)} | "
            f"{fmt_delta(delta)} | {status} |"
        )
    return "\n".join(lines)


def write_baseline(current, out_path, source):
    cells = []
    for key in sorted(current, key=key_label):
        cell = current[key]
        # Write the normalized key values so refreshed baselines carry the
        # degradation axes explicitly.
        slim = dict(zip(KEY_FIELDS, key))
        slim["median_ms"] = cell.get("median_ms")
        slim["digest"] = cell.get("digest")
        slim["rounds"] = cell.get("rounds")
        cells.append(slim)
    doc = {"schema": BASELINE_SCHEMA, "source": source, "cells": cells}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"baseline with {len(cells)} cells written to {out_path}")


def self_test():
    def doc(ms_scale=1.0, digest="00000000000000aa", drop_last=False):
        cells = [
            {"alg": "pipeline", "graph": "gnp", "n": 1000, "seed": 1,
             "delivery": "push", "threads": t,
             "median_ms": 10.0 * t * ms_scale, "digest": digest}
            for t in (1, 2)
        ]
        if drop_last:
            cells.pop()
        return {cell_key(c): c for c in cells}

    failed = []

    def expect(name, failures, want_fail):
        if bool(failures) != want_fail:
            failed.append(f"{name}: failures={failures} want_fail={want_fail}")

    base = doc()
    expect("identical docs pass", compare(base, doc(), 0.40, 2.0, False)[0],
           False)
    expect("small drift passes",
           compare(doc(ms_scale=1.2), base, 0.40, 2.0, False)[0], False)
    expect("2x slowdown fails",
           compare(doc(ms_scale=2.0), base, 0.40, 2.0, False)[0], True)
    expect("tiny absolute drift passes the --min-ms floor",
           compare(doc(ms_scale=0.1), doc(ms_scale=0.001), 0.40, 2.0,
                   False)[0], False)
    expect("injected digest mismatch fails",
           compare(doc(digest="00000000000000bb"), base, 0.40, 2.0,
                   False)[0], True)
    expect("shrunk sweep fails",
           compare(doc(drop_last=True), base, 0.40, 2.0, False)[0], True)
    expect("shrunk sweep passes with --allow-missing",
           compare(doc(drop_last=True), base, 0.40, 2.0, True)[0], False)
    expect("speedup passes", compare(doc(ms_scale=0.2), base, 0.40, 2.0,
                                     False)[0], False)

    # Degradation-axis compatibility: a baseline written before the
    # drop/faults axes existed (no such keys) must match a current sweep
    # that emits the reliable values explicitly.
    def cells_with(extra, digest="00000000000000aa"):
        cell = {"alg": "pipeline", "graph": "gnp", "n": 1000, "seed": 1,
                "delivery": "push", "threads": 1,
                "median_ms": 10.0, "digest": digest}
        cell.update(extra)
        return {cell_key(cell): cell}

    expect("pre-fault baseline matches explicit reliable axes",
           compare(cells_with({"drop": 0, "faults": "none"}),
                   cells_with({}), 0.40, 2.0, False)[0], False)
    expect("faulty cell is keyed separately from the reliable cell",
           compare(cells_with({"faults": "crash=1@0"}),
                   cells_with({}), 0.40, 2.0, False)[0], True)
    expect("faulty cells gate on digests too",
           compare(cells_with({"faults": "crash=1@0"},
                              digest="00000000000000bb"),
                   cells_with({"faults": "crash=1@0"}), 0.40, 2.0,
                   False)[0], True)

    if failed:
        for line in failed:
            print(f"self-test FAILED: {line}")
        return 1
    print("self-test OK: 11 gate expectations hold")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()

    def take_option(name, default=None):
        if name in argv:
            index = argv.index(name)
            argv.pop(index)
            if index >= len(argv):
                raise SystemExit(f"check_bench_trend: {name} needs a value")
            return argv.pop(index)
        return default

    baseline_path = take_option("--baseline")
    write_path = take_option("--write-baseline")
    tolerance = float(take_option("--tolerance", "0.40"))
    min_ms = float(take_option("--min-ms", "2.0"))
    allow_missing = "--allow-missing" in argv
    files = [a for a in argv if a != "--allow-missing"]
    if len(files) != 1:
        print(__doc__.strip())
        return 1

    current = load_cells(files[0], (BENCH_SCHEMA,))
    if write_path:
        write_baseline(current, write_path, os.path.basename(files[0]))
        return 0
    if not baseline_path:
        print(__doc__.strip())
        return 1
    baseline = load_cells(baseline_path, (BASELINE_SCHEMA, BENCH_SCHEMA))

    failures, rows = compare(current, baseline, tolerance, min_ms,
                             allow_missing)
    table = render_table(rows)
    heading = (
        f"### domset bench trend gate\n\n"
        f"{len(rows)} cell(s), tolerance {tolerance * 100.0:.0f}%, "
        f"floor {min_ms:g} ms, baseline `{os.path.basename(baseline_path)}`"
        f"\n\n"
    )
    print(heading + table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write(heading + table + "\n\n")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"\nOK: {len(rows)} cell(s) within tolerance, digests match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
