#!/usr/bin/env python3
"""CI trend gate over `domset bench` documents (schema domset-bench/1).

Usage:
    check_bench_trend.py CURRENT.json --baseline BASELINE.json
                         [--tolerance 0.40] [--min-ms 2.0]
                         [--allow-missing]
    check_bench_trend.py CURRENT.json --write-baseline OUT.json
    check_bench_trend.py --self-test

Compares the current sweep against a committed baseline cell by cell
(key: alg / graph / n / seed / delivery / threads) and FAILS when

  * a cell's solution digest differs from the baseline's -- the solver
    output changed for the same seed, which is either a determinism
    regression or an intentional algorithm change that must ship with a
    refreshed baseline;
  * a cell's median wall-time regressed beyond --tolerance (default
    40%: generous, because CI runs on shared runners) AND by more than
    --min-ms absolute (sub-millisecond cells flap on timer noise);
  * a baseline cell is absent from the current document (the sweep
    silently shrank), unless --allow-missing.

New cells (present now, absent from the baseline) are reported but do
not fail; they start being gated once the baseline is refreshed.

A per-cell delta table is printed to stdout and, when the
GITHUB_STEP_SUMMARY environment variable is set, appended there as a
Markdown job summary.

--write-baseline strips CURRENT.json down to the committed baseline form
(schema domset-bench-baseline/1: cell keys, digests, median timings) --
the way bench/baselines/ci_baseline.json is produced and refreshed.
Refresh it whenever the sweep spec, an algorithm, or the runner class
changes:

    ./build/domset bench ... --out current.json
    python3 scripts/check_bench_trend.py current.json \
        --write-baseline bench/baselines/ci_baseline.json

--self-test exercises the gate on synthetic documents (pass, injected
digest mismatch, injected slowdown, shrunk sweep) and exits nonzero if
any expectation fails; CI runs it before the real comparison so the gate
itself is tested.

The same gate covers the ingestion bench: a domset-ingest/1 document
(bench_p5_ingest --out) compared against an ingest baseline
(domset-ingest-baseline/1, committed as
bench/baselines/ingest_baseline.json) keys cells by
op / format / edges / threads and applies identical semantics -- graph
digests must match exactly, medians must stay within tolerance.  The
schema family is detected from the documents; comparing a bench
document against an ingest baseline is an error.

The dynamic-replay bench (bench_p6_dynamic --out, schema
domset-dynamic-bench/1, baseline domset-dynamic-bench-baseline/1
committed as bench/baselines/dynamic_baseline.json) joins the same
gate: cells are keyed graph / n / batch / mode ("repair" = incremental
median, "full" = sampled re-solve median, "capped" = incremental with
the degree-capped frontier `domset serve` uses) and the per-run final
digest must reproduce exactly -- the replay is a pure function of its
seed.

So does the serve load report (`domset load --json`, schema
domset-serve/1, baseline domset-serve-baseline/1): the document has no
"cells" array, so the gate synthesizes one cell per latency block
(op in {query, query_during_repair, commit}), keyed
graph / n / clients / batch / op, with median_ms = that block's p50 and
every cell carrying final.digest -- a digest mismatch means the served
mutation stream stopped reproducing the offline replay.  Latency cells
are timing-noisy by nature; gate them with a generous --tolerance.

Stdlib only.  Exits 0 when the gate passes, 1 on regressions or invalid
input.
"""

import json
import os
import sys

BENCH_SCHEMA = "domset-bench/1"
BASELINE_SCHEMA = "domset-bench-baseline/1"
INGEST_SCHEMA = "domset-ingest/1"
INGEST_BASELINE_SCHEMA = "domset-ingest-baseline/1"
DYNAMIC_SCHEMA = "domset-dynamic-bench/1"
DYNAMIC_BASELINE_SCHEMA = "domset-dynamic-bench-baseline/1"
SERVE_SCHEMA = "domset-serve/1"
SERVE_BASELINE_SCHEMA = "domset-serve-baseline/1"

# Cell-identity fields per schema family.  The first entry is the solver
# sweep; "ingest" keys the ingestion bench's cells; "dynamic" keys the
# replay bench's repair-vs-full cells (bench_p6_dynamic); "serve" keys
# the cells synthesized from a `domset load --json` report's latency
# blocks (see serve_cells).
KEY_FIELDS_BY_FAMILY = {
    "bench": ("alg", "graph", "n", "seed", "delivery", "threads",
              "drop", "faults"),
    "ingest": ("op", "format", "edges", "threads"),
    "dynamic": ("graph", "n", "batch", "mode"),
    "serve": ("graph", "n", "clients", "batch", "op"),
}
FAMILY_BY_SCHEMA = {
    BENCH_SCHEMA: "bench",
    BASELINE_SCHEMA: "bench",
    INGEST_SCHEMA: "ingest",
    INGEST_BASELINE_SCHEMA: "ingest",
    DYNAMIC_SCHEMA: "dynamic",
    DYNAMIC_BASELINE_SCHEMA: "dynamic",
    SERVE_SCHEMA: "serve",
    SERVE_BASELINE_SCHEMA: "serve",
}
BASELINE_SCHEMA_BY_FAMILY = {
    "bench": BASELINE_SCHEMA,
    "ingest": INGEST_BASELINE_SCHEMA,
    "dynamic": DYNAMIC_BASELINE_SCHEMA,
    "serve": SERVE_BASELINE_SCHEMA,
}
SERVE_LATENCY_OPS = ("query", "query_during_repair", "commit")
# Back-compat alias: the bench family's fields under the historical name.
KEY_FIELDS = KEY_FIELDS_BY_FAMILY["bench"]


def cell_key(cell, key_fields=KEY_FIELDS):
    """Cell identity including the degradation axes.  Baselines written
    before those axes existed have no drop/faults keys; they normalize to
    the reliable values (0, "none") so old baselines keep gating new
    sweeps cell for cell."""
    key = []
    for field in key_fields:
        value = cell.get(field)
        if field == "drop":
            value = float(value) if isinstance(value, (int, float)) else 0.0
        elif field == "faults":
            value = value if isinstance(value, str) and value else "none"
        key.append(value)
    return tuple(key)


def key_label(key, key_fields=KEY_FIELDS):
    if key_fields is not KEY_FIELDS:
        return "/".join(f"{f}={v}" for f, v in zip(key_fields, key))
    alg, graph, n, seed, delivery, threads, drop, faults = key
    label = f"{alg}/{graph}/n={n}/seed={seed}/{delivery}/t={threads}"
    if drop:
        label += f"/drop={drop:g}"
    if faults != "none":
        label += f"/faults={faults}"
    return label


def serve_cells(doc):
    """Synthesizes gate cells from a domset-serve/1 load report: one per
    latency block, median_ms = that block's p50, all carrying the final
    digest (the determinism join with the offline replay)."""
    graph = doc.get("graph", {})
    params = doc.get("serve", {})
    latency = doc.get("latency", {})
    digest = doc.get("final", {}).get("digest")
    cells = []
    for op in SERVE_LATENCY_OPS:
        block = latency.get(op, {})
        cells.append({
            "graph": graph.get("family"), "n": graph.get("nodes"),
            "clients": params.get("clients"), "batch": params.get("batch"),
            "op": op, "median_ms": block.get("p50_ms"),
            "count": block.get("count"), "digest": digest,
        })
    return cells


def load_cells(path, expect_family=None):
    """Returns ({key: cell}, family) for a bench or ingest document."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"check_bench_trend: {path}: {e}")
    schema = doc.get("schema") if isinstance(doc, dict) else None
    family = FAMILY_BY_SCHEMA.get(schema)
    if family is None or (expect_family and family != expect_family):
        raise SystemExit(
            f"check_bench_trend: {path}: schema is {schema!r}, want "
            + (f"a {expect_family} document"
               if expect_family else f"one of {sorted(FAMILY_BY_SCHEMA)}")
        )
    cells = serve_cells(doc) if schema == SERVE_SCHEMA else doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise SystemExit(f"check_bench_trend: {path}: no cells")
    key_fields = KEY_FIELDS_BY_FAMILY[family]
    return {cell_key(c, key_fields): c for c in cells}, family


def compare(current, baseline, tolerance, min_ms, allow_missing,
            key_fields=KEY_FIELDS):
    """Returns (failures, rows): failure strings + delta-table rows."""
    def label_of(key):
        return key_label(key, key_fields)

    failures = []
    rows = []
    for key in sorted(baseline, key=label_of):
        base = baseline[key]
        cur = current.get(key)
        label = label_of(key)
        if cur is None:
            rows.append((label, base.get("median_ms"), None, None, "MISSING"))
            if not allow_missing:
                failures.append(
                    f"{label}: present in the baseline but missing from the "
                    "current sweep (did the CI spec shrink?)"
                )
            continue
        base_ms = base.get("median_ms")
        cur_ms = cur.get("median_ms")
        delta = None
        status = "ok"
        if isinstance(base_ms, (int, float)) and isinstance(
                cur_ms, (int, float)) and base_ms > 0:
            delta = (cur_ms - base_ms) / base_ms
            if delta > tolerance and (cur_ms - base_ms) > min_ms:
                status = "SLOW"
                failures.append(
                    f"{label}: median {cur_ms:.2f} ms vs baseline "
                    f"{base_ms:.2f} ms (+{delta * 100.0:.0f}% > "
                    f"{tolerance * 100.0:.0f}% tolerance)"
                )
        if base.get("digest") != cur.get("digest"):
            status = "DIGEST"
            failures.append(
                f"{label}: solution digest {cur.get('digest')} != baseline "
                f"{base.get('digest')} (same seed must reproduce the same "
                "solution; refresh the baseline only for intentional "
                "algorithm changes)"
            )
        rows.append((label, base_ms, cur_ms, delta, status))
    for key in sorted(set(current) - set(baseline), key=label_of):
        rows.append(
            (label_of(key), None, current[key].get("median_ms"), None, "new")
        )
    return failures, rows


def fmt_ms(value):
    return f"{value:.2f}" if isinstance(value, (int, float)) else "-"


def fmt_delta(delta):
    return f"{delta * +100.0:+.0f}%" if isinstance(delta, float) else "-"


def render_table(rows):
    lines = ["| cell | baseline ms | current ms | delta | status |",
             "|---|---|---|---|---|"]
    for label, base_ms, cur_ms, delta, status in rows:
        lines.append(
            f"| {label} | {fmt_ms(base_ms)} | {fmt_ms(cur_ms)} | "
            f"{fmt_delta(delta)} | {status} |"
        )
    return "\n".join(lines)


def write_baseline(current, out_path, source, family="bench"):
    key_fields = KEY_FIELDS_BY_FAMILY[family]
    cells = []
    for key in sorted(current, key=lambda k: key_label(k, key_fields)):
        cell = current[key]
        # Write the normalized key values so refreshed baselines carry the
        # degradation axes explicitly.
        slim = dict(zip(key_fields, key))
        slim["median_ms"] = cell.get("median_ms")
        slim["digest"] = cell.get("digest")
        if family == "bench":
            slim["rounds"] = cell.get("rounds")
        cells.append(slim)
    doc = {"schema": BASELINE_SCHEMA_BY_FAMILY[family], "source": source,
           "cells": cells}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"baseline with {len(cells)} cells written to {out_path}")


def self_test():
    def doc(ms_scale=1.0, digest="00000000000000aa", drop_last=False):
        cells = [
            {"alg": "pipeline", "graph": "gnp", "n": 1000, "seed": 1,
             "delivery": "push", "threads": t,
             "median_ms": 10.0 * t * ms_scale, "digest": digest}
            for t in (1, 2)
        ]
        if drop_last:
            cells.pop()
        return {cell_key(c): c for c in cells}

    failed = []

    def expect(name, failures, want_fail):
        if bool(failures) != want_fail:
            failed.append(f"{name}: failures={failures} want_fail={want_fail}")

    base = doc()
    expect("identical docs pass", compare(base, doc(), 0.40, 2.0, False)[0],
           False)
    expect("small drift passes",
           compare(doc(ms_scale=1.2), base, 0.40, 2.0, False)[0], False)
    expect("2x slowdown fails",
           compare(doc(ms_scale=2.0), base, 0.40, 2.0, False)[0], True)
    expect("tiny absolute drift passes the --min-ms floor",
           compare(doc(ms_scale=0.1), doc(ms_scale=0.001), 0.40, 2.0,
                   False)[0], False)
    expect("injected digest mismatch fails",
           compare(doc(digest="00000000000000bb"), base, 0.40, 2.0,
                   False)[0], True)
    expect("shrunk sweep fails",
           compare(doc(drop_last=True), base, 0.40, 2.0, False)[0], True)
    expect("shrunk sweep passes with --allow-missing",
           compare(doc(drop_last=True), base, 0.40, 2.0, True)[0], False)
    expect("speedup passes", compare(doc(ms_scale=0.2), base, 0.40, 2.0,
                                     False)[0], False)

    # Degradation-axis compatibility: a baseline written before the
    # drop/faults axes existed (no such keys) must match a current sweep
    # that emits the reliable values explicitly.
    def cells_with(extra, digest="00000000000000aa"):
        cell = {"alg": "pipeline", "graph": "gnp", "n": 1000, "seed": 1,
                "delivery": "push", "threads": 1,
                "median_ms": 10.0, "digest": digest}
        cell.update(extra)
        return {cell_key(cell): cell}

    expect("pre-fault baseline matches explicit reliable axes",
           compare(cells_with({"drop": 0, "faults": "none"}),
                   cells_with({}), 0.40, 2.0, False)[0], False)
    expect("faulty cell is keyed separately from the reliable cell",
           compare(cells_with({"faults": "crash=1@0"}),
                   cells_with({}), 0.40, 2.0, False)[0], True)
    expect("faulty cells gate on digests too",
           compare(cells_with({"faults": "crash=1@0"},
                              digest="00000000000000bb"),
                   cells_with({"faults": "crash=1@0"}), 0.40, 2.0,
                   False)[0], True)

    # Ingest-schema cells: keyed by op/format/edges/threads, same gate
    # semantics (digest equality always, medians within tolerance).
    ingest_fields = KEY_FIELDS_BY_FAMILY["ingest"]

    def ingest_doc(ms_scale=1.0, digest="00000000000000aa"):
        cells = [
            {"op": op, "format": fmt, "edges": 1000000, "threads": 1,
             "median_ms": ms * ms_scale, "digest": digest}
            for op, fmt, ms in (("parse", "text", 300.0),
                                ("load", "binary", 3.0),
                                ("load", "compressed", 11.0))
        ]
        return {cell_key(c, ingest_fields): c for c in cells}

    def ingest_compare(cur, base, **kwargs):
        return compare(cur, base, kwargs.get("tolerance", 0.40),
                       kwargs.get("min_ms", 2.0),
                       kwargs.get("allow_missing", False),
                       key_fields=ingest_fields)[0]

    expect("identical ingest docs pass",
           ingest_compare(ingest_doc(), ingest_doc()), False)
    expect("ingest 2x slowdown fails",
           ingest_compare(ingest_doc(ms_scale=2.0), ingest_doc()), True)
    expect("ingest digest mismatch fails",
           ingest_compare(ingest_doc(digest="00000000000000bb"),
                          ingest_doc()), True)
    expect("ingest cells key on format (binary != compressed)",
           ingest_compare(
               {k: c for k, c in ingest_doc().items()
                if c["format"] != "compressed"}, ingest_doc()), True)
    expect("ingest speedup passes",
           ingest_compare(ingest_doc(ms_scale=0.2), ingest_doc()), False)

    # Dynamic-replay cells: keyed by graph/n/batch/mode, same gate
    # semantics (the per-run final digest is the determinism check).
    dynamic_fields = KEY_FIELDS_BY_FAMILY["dynamic"]

    def dynamic_doc(ms_scale=1.0, digest="00000000000000aa"):
        cells = [
            {"graph": gr, "n": 20000, "batch": b, "mode": mode,
             "median_ms": ms * ms_scale, "digest": digest}
            for gr, b, mode, ms in (("ba", 8, "repair", 5.0),
                                    ("ba", 8, "full", 40.0),
                                    ("gnp", 8, "repair", 30.0))
        ]
        return {cell_key(c, dynamic_fields): c for c in cells}

    def dynamic_compare(cur, base):
        return compare(cur, base, 0.40, 2.0, False,
                       key_fields=dynamic_fields)[0]

    expect("identical dynamic docs pass",
           dynamic_compare(dynamic_doc(), dynamic_doc()), False)
    expect("dynamic 2x slowdown fails",
           dynamic_compare(dynamic_doc(ms_scale=2.0), dynamic_doc()), True)
    expect("dynamic digest mismatch fails",
           dynamic_compare(dynamic_doc(digest="00000000000000bb"),
                           dynamic_doc()), True)
    expect("dynamic cells key on mode (repair != full)",
           dynamic_compare(
               {k: c for k, c in dynamic_doc().items()
                if c["mode"] != "full"}, dynamic_doc()), True)
    expect("dynamic capped mode is keyed separately from repair",
           dynamic_compare(
               {cell_key(dict(c, mode="capped"), dynamic_fields):
                dict(c, mode="capped")
                for c in dynamic_doc().values()}, dynamic_doc()), True)

    # Serve load reports: cells are synthesized from the latency blocks
    # (no "cells" array in the document), keyed graph/n/clients/batch/op,
    # and every cell carries the final digest.
    serve_fields = KEY_FIELDS_BY_FAMILY["serve"]

    def serve_doc(query_scale=1.0, commit_scale=1.0,
                  digest="00000000000000aa"):
        doc = {
            "schema": SERVE_SCHEMA,
            "graph": {"family": "ba", "nodes": 2000},
            "serve": {"clients": 8, "batch": 32},
            "latency": {
                "query": {"count": 800, "p50_ms": 0.02 * query_scale,
                          "p99_ms": 2.4},
                "query_during_repair": {"count": 568,
                                        "p50_ms": 0.01 * query_scale,
                                        "p99_ms": 2.7},
                "commit": {"count": 8, "p50_ms": 5.0 * commit_scale,
                           "p99_ms": 11.4},
            },
            "final": {"digest": digest},
        }
        return {cell_key(c, serve_fields): c for c in serve_cells(doc)}

    def serve_compare(cur, base):
        return compare(cur, base, 0.40, 2.0, False,
                       key_fields=serve_fields)[0]

    expect("identical serve reports pass",
           serve_compare(serve_doc(), serve_doc()), False)
    expect("serve commit slowdown fails",
           serve_compare(serve_doc(commit_scale=3.0), serve_doc()), True)
    expect("sub-ms serve query jitter passes the --min-ms floor",
           serve_compare(serve_doc(query_scale=10.0), serve_doc()), False)
    expect("serve final-digest mismatch fails every synthesized cell",
           serve_compare(serve_doc(digest="00000000000000bb"),
                         serve_doc()), True)

    if failed:
        for line in failed:
            print(f"self-test FAILED: {line}")
        return 1
    print("self-test OK: 25 gate expectations hold")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()

    def take_option(name, default=None):
        if name in argv:
            index = argv.index(name)
            argv.pop(index)
            if index >= len(argv):
                raise SystemExit(f"check_bench_trend: {name} needs a value")
            return argv.pop(index)
        return default

    baseline_path = take_option("--baseline")
    write_path = take_option("--write-baseline")
    tolerance = float(take_option("--tolerance", "0.40"))
    min_ms = float(take_option("--min-ms", "2.0"))
    allow_missing = "--allow-missing" in argv
    files = [a for a in argv if a != "--allow-missing"]
    if len(files) != 1:
        print(__doc__.strip())
        return 1

    current, family = load_cells(files[0])
    if write_path:
        write_baseline(current, write_path, os.path.basename(files[0]),
                       family)
        return 0
    if not baseline_path:
        print(__doc__.strip())
        return 1
    baseline, _ = load_cells(baseline_path, expect_family=family)

    failures, rows = compare(current, baseline, tolerance, min_ms,
                             allow_missing,
                             key_fields=KEY_FIELDS_BY_FAMILY[family])
    table = render_table(rows)
    heading = (
        f"### domset bench trend gate\n\n"
        f"{len(rows)} cell(s), tolerance {tolerance * 100.0:.0f}%, "
        f"floor {min_ms:g} ms, baseline `{os.path.basename(baseline_path)}`"
        f"\n\n"
    )
    print(heading + table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write(heading + table + "\n\n")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"\nOK: {len(rows)} cell(s) within tolerance, digests match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
