#!/usr/bin/env python3
"""Schema check for the `domset` driver's JSON outputs.

Usage:
    validate_result_json.py FILE.json [MORE.json ...] [--expect-identical]

Each file must carry one of the three schemas emitted by the driver:

  * ``domset-run/1`` -- one run record (``domset run --json``,
    src/api/result_json.cpp).
  * ``domset-bench/1`` -- one sweep document (``domset bench``,
    src/api/bench_runner.cpp): per-cell key, repeat timings, median, and
    an embedded domset-run/1 record, which is validated with the same
    rules as a standalone record.
  * ``domset-dynamic/1`` -- one replay document (``domset replay
    --json``, src/dyn/replay.cpp): one record per epoch (numbered
    contiguously from 1, each carrying a 16-hex solution digest and
    valid == true; full_resolve_ms / full_size present exactly when
    the epoch is marked sampled) plus a latency summary.
  * ``domset-serve/1`` -- one load-generator document (``domset load
    --json``, src/serve/load.cpp): op counts, query latency summaries
    (overall / during commit windows / commit round-trips), the served
    final epoch+size+digest, and epoch_digest_conflicts == 0 (an epoch
    is immutable once published).

With --expect-identical, additionally asserts that all domset-run/1
records (standalone files only) carry the same solution digest -- the CI
hook that proves push/pull/auto delivery (and any thread count) produce
bit-identical solutions without shipping the solutions themselves.  The
real-graph CI job reuses it to prove the text, binary, and compressed
loaders feed the solver the same graph.  domset-dynamic/1 records join
the comparison through their summary.final_digest, proving replay runs
are bit-identical across delivery modes and thread counts; domset-serve/1
records join through final.digest, proving the served state agrees with
an offline replay of the admitted mutation stream.

Records whose graph came from a file (family "file") must carry a
graph.source block (path, format in text|binary|compressed, load_ms);
generated families must not.

Exits 0 when every check passes, 1 otherwise, printing one line per
problem.  Stdlib only, so the CI job needs nothing beyond python3.
"""

import json
import sys

RUN_SCHEMA = "domset-run/1"
BENCH_SCHEMA = "domset-bench/1"
DYNAMIC_SCHEMA = "domset-dynamic/1"
SERVE_SCHEMA = "domset-serve/1"
DELIVERY_MODES = ("push", "pull", "auto")

# (path, type) pairs; bool is checked before int because bool is an int
# subclass in Python.
RUN_REQUIRED = [
    (("schema",), str),
    (("alg",), str),
    (("graph", "family"), str),
    (("graph", "nodes"), int),
    (("graph", "edges"), int),
    (("graph", "max_degree"), int),
    (("exec", "seed"), int),
    (("exec", "threads"), int),
    (("exec", "delivery"), str),
    (("exec", "drop_probability"), (int, float)),
    (("exec", "faults"), str),
    (("exec", "congest_bit_limit"), int),
    (("params",), dict),
    (("result", "integral"), bool),
    (("result", "size"), int),
    (("result", "objective"), (int, float)),
    (("result", "ratio_bound"), (int, float)),
    (("result", "valid"), bool),
    (("result", "digest"), str),
    (("metrics", "rounds"), int),
    (("metrics", "messages_sent"), int),
    (("metrics", "bits_sent"), int),
    (("metrics", "max_message_bits"), int),
    (("metrics", "max_messages_per_node"), int),
    (("metrics", "messages_dropped"), int),
    (("metrics", "messages_lost_to_faults"), int),
    (("metrics", "messages_duplicated"), int),
    (("metrics", "node_rounds_down"), int),
    (("metrics", "nodes_crashed"), int),
    (("metrics", "congest_violation"), bool),
    (("metrics", "hit_round_limit"), bool),
    (("elapsed_ms",), (int, float)),
]

# graph.source block: required on records whose graph came from a file
# (family "file"), forbidden on generated families.
SOURCE_REQUIRED = [
    (("path",), str),
    (("format",), str),
    (("load_ms",), (int, float)),
]
SOURCE_FORMATS = ("text", "binary", "compressed")

# Optional result.repair block (present when a repair pass ran).
REPAIR_REQUIRED = [
    (("mode",), str),
    (("radius",), int),
    (("holes_before",), int),
    (("holes_after",), int),
    (("added",), int),
    (("touched_nodes",), int),
]

# Optional result.selection block (present on `--alg auto` runs: the
# probe evidence the meta-solver dispatched on, src/graph/probe.hpp).
SELECTION_REQUIRED = [
    (("selected_solver",), str),
    (("degeneracy",), int),
    (("arboricity_lower",), (int, float)),
    (("triangle_density",), (int, float)),
    (("degree_skew",), (int, float)),
    (("avg_degree",), (int, float)),
]

# Optional top-level coverage block (present on degraded runs).
COVERAGE_REQUIRED = [
    (("nodes",), int),
    (("holes",), int),
    (("covered_fraction",), (int, float)),
    (("max_hole_radius",), int),
    (("fully_covered",), bool),
    (("attribution",), list),
]

# One epoch record of a domset-dynamic/1 document (src/dyn/replay.cpp).
# full_resolve_ms / full_size / sampled are conditional: present exactly
# when the epoch sampled a from-scratch re-solve.
DYNAMIC_EPOCH_REQUIRED = [
    (("epoch",), int),
    (("mutations",), int),
    (("touched",), int),
    (("ball_nodes",), int),
    (("capped_nodes",), int),
    (("interior_nodes",), int),
    (("full_resolve",), bool),
    (("holes_patched",), int),
    (("changed",), int),
    (("size",), int),
    (("nodes",), int),
    (("edges",), int),
    (("digest",), str),
    (("apply_ms",), (int, float)),
    (("repair_ms",), (int, float)),
    (("verify_ms",), (int, float)),
    (("valid",), bool),
]

DYNAMIC_REQUIRED = [
    (("schema",), str),
    (("alg",), str),
    (("graph", "family"), str),
    (("graph", "nodes"), int),
    (("graph", "edges"), int),
    (("graph", "max_degree"), int),
    (("exec", "seed"), int),
    (("exec", "threads"), int),
    (("exec", "delivery"), str),
    (("params",), dict),
    (("replay", "mutations"), str),
    (("replay", "batch"), int),
    (("replay", "radius"), int),
    (("replay", "full_fraction"), (int, float)),
    (("replay", "frontier_cap"), int),
    (("replay", "sample_full"), int),
    (("replay", "epochs"), int),
    (("epochs",), list),
    (("summary", "epochs"), int),
    (("summary", "full_resolves"), int),
    (("summary", "initial_size"), int),
    (("summary", "final_size"), int),
    (("summary", "final_digest"), str),
    (("summary", "initial_solve_ms"), (int, float)),
    (("summary", "median_repair_ms"), (int, float)),
    (("summary", "p99_repair_ms"), (int, float)),
    (("summary", "median_full_resolve_ms"), (int, float)),
    (("summary", "speedup"), (int, float)),
]

# A latency summary of a domset-serve/1 document ({count, p50_ms, p99_ms}).
SERVE_LATENCY_REQUIRED = [
    (("count",), int),
    (("p50_ms",), (int, float)),
    (("p99_ms",), (int, float)),
]

SERVE_REQUIRED = [
    (("schema",), str),
    (("alg",), str),
    (("graph", "family"), str),
    (("graph", "nodes"), int),
    (("graph", "edges"), int),
    (("graph", "max_degree"), int),
    (("exec", "seed"), int),
    (("exec", "threads"), int),
    (("exec", "delivery"), str),
    (("params",), dict),
    (("serve", "socket"), str),
    (("serve", "bias"), str),
    (("serve", "clients"), int),
    (("serve", "queries_per_client"), int),
    (("serve", "mutations"), int),
    (("serve", "batch"), int),
    (("ops", "mutate"), int),
    (("ops", "commit"), int),
    (("ops", "member"), int),
    (("ops", "stats"), int),
    (("ops", "digest"), int),
    (("ops", "set"), int),
    (("latency", "query"), dict),
    (("latency", "query_during_repair"), dict),
    (("latency", "commit"), dict),
    (("final", "epoch"), int),
    (("final", "size"), int),
    (("final", "digest"), str),
    (("epoch_digest_conflicts",), int),
]

# Cell keys of a domset-bench/1 document, next to the embedded record.
CELL_REQUIRED = [
    (("alg",), str),
    (("graph",), str),
    (("n",), int),
    (("seed",), int),
    (("delivery",), str),
    (("threads",), int),
    (("drop",), (int, float)),
    (("faults",), str),
    (("median_ms",), (int, float)),
    (("times_ms",), list),
    (("rounds",), int),
    (("digest",), str),
    (("run",), dict),
]


def lookup(record, path):
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None, False
        node = node[key]
    return node, True


def check_required(record, required, label):
    problems = []
    for key_path, expected in required:
        value, found = lookup(record, key_path)
        dotted = ".".join(key_path)
        if not found:
            problems.append(f"{label}: missing required key '{dotted}'")
            continue
        if expected is not bool and isinstance(value, bool):
            problems.append(f"{label}: key '{dotted}' must not be a boolean")
        elif not isinstance(value, expected):
            problems.append(
                f"{label}: key '{dotted}' has type {type(value).__name__}"
            )
    return problems


def is_digest(value):
    return (isinstance(value, str) and len(value) == 16
            and all(c in "0123456789abcdef" for c in value))


def is_degraded(record):
    """True when the record's exec injects unreliability (loss or faults):
    only such runs may legitimately carry result.valid == false."""
    exec_block = record.get("exec", {})
    drop = exec_block.get("drop_probability", 0)
    if isinstance(drop, (int, float)) and not isinstance(drop, bool) and \
            drop > 0:
        return True
    return exec_block.get("faults", "none") != "none"


def validate_run_record(record, label):
    """Problems with one domset-run/1 record (standalone or embedded)."""
    problems = check_required(record, RUN_REQUIRED, label)
    if record.get("schema") != RUN_SCHEMA:
        problems.append(
            f"{label}: schema is {record.get('schema')!r}, want {RUN_SCHEMA!r}"
        )
    if not is_digest(record.get("result", {}).get("digest", "")):
        problems.append(f"{label}: digest must be 16 lowercase hex chars")
    delivery = record.get("exec", {}).get("delivery")
    if delivery not in DELIVERY_MODES:
        problems.append(f"{label}: exec.delivery is {delivery!r}")
    if record.get("result", {}).get("valid") is not True \
            and not is_degraded(record):
        problems.append(
            f"{label}: result.valid is not true on a reliable run"
        )
    for key, value in record.get("params", {}).items():
        if not isinstance(value, str):
            problems.append(f"{label}: param '{key}' must be a string echo")
    graph = record.get("graph", {})
    source = graph.get("source") if isinstance(graph, dict) else None
    family = graph.get("family") if isinstance(graph, dict) else None
    if family == "file" and source is None:
        problems.append(
            f"{label}: file-loaded graphs must carry a graph.source block"
        )
    if source is not None:
        if isinstance(source, dict):
            problems.extend(
                check_required(source, SOURCE_REQUIRED,
                               f"{label}.graph.source")
            )
            if family != "file":
                problems.append(
                    f"{label}: graph.source on a generated family "
                    f"({family!r})"
                )
            if not source.get("path"):
                problems.append(
                    f"{label}.graph.source: path must be non-empty"
                )
            if source.get("format") not in SOURCE_FORMATS:
                problems.append(
                    f"{label}.graph.source: format is "
                    f"{source.get('format')!r}, want one of {SOURCE_FORMATS}"
                )
            load_ms = source.get("load_ms")
            if isinstance(load_ms, (int, float)) \
                    and not isinstance(load_ms, bool) and load_ms < 0:
                problems.append(
                    f"{label}.graph.source: load_ms must be >= 0"
                )
        else:
            problems.append(f"{label}: graph.source must be an object")
    repair = record.get("result", {}).get("repair")
    if repair is not None:
        if isinstance(repair, dict):
            problems.extend(
                check_required(repair, REPAIR_REQUIRED, f"{label}.repair")
            )
            if repair.get("mode") not in ("radius", "greedy"):
                problems.append(
                    f"{label}.repair: mode is {repair.get('mode')!r}"
                )
            if repair.get("holes_after") != 0:
                problems.append(
                    f"{label}.repair: holes_after must be 0 (repair "
                    "enforces validity)"
                )
        else:
            problems.append(f"{label}: result.repair must be an object")
    selection = record.get("result", {}).get("selection")
    if selection is not None:
        if isinstance(selection, dict):
            problems.extend(
                check_required(selection, SELECTION_REQUIRED,
                               f"{label}.selection")
            )
            if not selection.get("selected_solver"):
                problems.append(
                    f"{label}.selection: selected_solver must be non-empty"
                )
            for key in ("arboricity_lower", "triangle_density",
                        "degree_skew", "avg_degree"):
                value = selection.get(key)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool) and value < 0:
                    problems.append(
                        f"{label}.selection: {key} must be >= 0"
                    )
        else:
            problems.append(f"{label}: result.selection must be an object")
    coverage = record.get("coverage")
    if coverage is not None:
        if isinstance(coverage, dict):
            problems.extend(
                check_required(coverage, COVERAGE_REQUIRED,
                               f"{label}.coverage")
            )
            for i, entry in enumerate(coverage.get("attribution") or []):
                if not isinstance(entry, dict) \
                        or not isinstance(entry.get("fault"), str) \
                        or isinstance(entry.get("holes"), bool) \
                        or not isinstance(entry.get("holes"), int):
                    problems.append(
                        f"{label}.coverage: attribution[{i}] must be "
                        "{{fault: str, holes: int}}"
                    )
            if not is_degraded(record):
                problems.append(
                    f"{label}: coverage block on a reliable run"
                )
        else:
            problems.append(f"{label}: coverage must be an object")
    return problems


def validate_bench_document(doc, label):
    """Problems with one domset-bench/1 document, cells included."""
    problems = []
    repeats = doc.get("repeats")
    if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
        problems.append(f"{label}: repeats must be a positive integer")
        repeats = None
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append(f"{label}: cells must be a non-empty list")
        return problems
    if doc.get("cell_count") != len(cells):
        problems.append(
            f"{label}: cell_count is {doc.get('cell_count')!r}, "
            f"want {len(cells)}"
        )
    seen_keys = set()
    for index, cell in enumerate(cells):
        cell_label = f"{label}: cell[{index}]"
        if not isinstance(cell, dict):
            problems.append(f"{cell_label}: not an object")
            continue
        problems.extend(check_required(cell, CELL_REQUIRED, cell_label))
        if not is_digest(cell.get("digest", "")):
            problems.append(
                f"{cell_label}: digest must be 16 lowercase hex chars"
            )
        if cell.get("delivery") not in DELIVERY_MODES:
            problems.append(
                f"{cell_label}: delivery is {cell.get('delivery')!r}"
            )
        times = cell.get("times_ms", [])
        if isinstance(times, list):
            if repeats is not None and len(times) != repeats:
                problems.append(
                    f"{cell_label}: {len(times)} timings for "
                    f"{repeats} repeats"
                )
            for t in times:
                if isinstance(t, bool) or not isinstance(t, (int, float)):
                    problems.append(
                        f"{cell_label}: times_ms entries must be numbers"
                    )
                    break
        run = cell.get("run")
        if isinstance(run, dict):
            problems.extend(validate_run_record(run, f"{cell_label}.run"))
            run_digest = run.get("result", {}).get("digest")
            if is_digest(cell.get("digest", "")) and run_digest is not None \
                    and cell.get("digest") != run_digest:
                problems.append(
                    f"{cell_label}: cell digest {cell.get('digest')} != "
                    f"embedded record digest {run_digest}"
                )
        key = tuple(cell.get(k) for k in
                    ("alg", "graph", "n", "seed", "delivery", "threads",
                     "drop", "faults"))
        if key in seen_keys:
            problems.append(f"{cell_label}: duplicate cell key {key}")
        seen_keys.add(key)
    return problems


def validate_dynamic_document(doc, label):
    """Problems with one domset-dynamic/1 replay document."""
    problems = check_required(doc, DYNAMIC_REQUIRED, label)
    if doc.get("exec", {}).get("delivery") not in DELIVERY_MODES:
        problems.append(
            f"{label}: exec.delivery is {doc.get('exec', {}).get('delivery')!r}"
        )
    for key, value in doc.get("params", {}).items():
        if not isinstance(value, str):
            problems.append(f"{label}: param '{key}' must be a string echo")
    epochs = doc.get("epochs")
    if not isinstance(epochs, list):
        return problems
    for index, ep in enumerate(epochs):
        ep_label = f"{label}: epochs[{index}]"
        if not isinstance(ep, dict):
            problems.append(f"{ep_label}: not an object")
            continue
        problems.extend(check_required(ep, DYNAMIC_EPOCH_REQUIRED, ep_label))
        # Epoch 0 is the initial solve; replay records start at 1 and
        # advance by exactly one per batch.
        if ep.get("epoch") != index + 1:
            problems.append(
                f"{ep_label}: epoch is {ep.get('epoch')!r}, want {index + 1} "
                "(contiguous from 1)"
            )
        if not is_digest(ep.get("digest", "")):
            problems.append(
                f"{ep_label}: digest must be 16 lowercase hex chars"
            )
        if ep.get("valid") is not True:
            problems.append(
                f"{ep_label}: valid must be true (the runner throws on a "
                "failed verification; a false here is a corrupt document)"
            )
        sampled = ep.get("sampled", False)
        has_full = "full_resolve_ms" in ep or "full_size" in ep
        if sampled:
            if not isinstance(ep.get("full_resolve_ms"), (int, float)) \
                    or isinstance(ep.get("full_resolve_ms"), bool):
                problems.append(
                    f"{ep_label}: sampled epoch must carry numeric "
                    "full_resolve_ms"
                )
            if not isinstance(ep.get("full_size"), int) \
                    or isinstance(ep.get("full_size"), bool):
                problems.append(
                    f"{ep_label}: sampled epoch must carry integer full_size"
                )
        elif has_full:
            problems.append(
                f"{ep_label}: full_resolve_ms/full_size on an unsampled epoch"
            )
    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        if isinstance(summary.get("epochs"), int) \
                and summary.get("epochs") != len(epochs):
            problems.append(
                f"{label}: summary.epochs is {summary.get('epochs')!r}, "
                f"want {len(epochs)}"
            )
        if not is_digest(summary.get("final_digest", "")):
            problems.append(
                f"{label}: summary.final_digest must be 16 lowercase hex "
                "chars"
            )
        elif epochs and isinstance(epochs[-1], dict) \
                and is_digest(epochs[-1].get("digest", "")) \
                and summary.get("final_digest") != epochs[-1].get("digest"):
            problems.append(
                f"{label}: summary.final_digest "
                f"{summary.get('final_digest')} != last epoch digest "
                f"{epochs[-1].get('digest')}"
            )
    return problems


def validate_serve_document(doc, label):
    """Problems with one domset-serve/1 load-generator document."""
    problems = check_required(doc, SERVE_REQUIRED, label)
    if doc.get("exec", {}).get("delivery") not in DELIVERY_MODES:
        problems.append(
            f"{label}: exec.delivery is {doc.get('exec', {}).get('delivery')!r}"
        )
    for key, value in doc.get("params", {}).items():
        if not isinstance(value, str):
            problems.append(f"{label}: param '{key}' must be a string echo")
    for which in ("query", "query_during_repair", "commit"):
        block = doc.get("latency", {}).get(which)
        if isinstance(block, dict):
            problems.extend(
                check_required(block, SERVE_LATENCY_REQUIRED,
                               f"{label}.latency.{which}")
            )
    if not is_digest(doc.get("final", {}).get("digest", "")):
        problems.append(
            f"{label}: final.digest must be 16 lowercase hex chars"
        )
    if doc.get("epoch_digest_conflicts") != 0:
        problems.append(
            f"{label}: epoch_digest_conflicts is "
            f"{doc.get('epoch_digest_conflicts')!r} -- an epoch is "
            "immutable once published, any conflict is a consistency bug"
        )
    ops = doc.get("ops", {})
    query_count = doc.get("latency", {}).get("query", {}).get("count")
    op_total = sum(
        v for k, v in ops.items()
        if k in ("member", "stats", "digest", "set")
        and isinstance(v, int) and not isinstance(v, bool)
    )
    if isinstance(query_count, int) and not isinstance(query_count, bool) \
            and query_count != op_total:
        problems.append(
            f"{label}: latency.query.count is {query_count}, but the "
            f"query op counts sum to {op_total}"
        )
    return problems


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: unreadable or invalid JSON: {e}"]

    schema = record.get("schema") if isinstance(record, dict) else None
    if schema == BENCH_SCHEMA:
        return record, validate_bench_document(record, path)
    if schema == DYNAMIC_SCHEMA:
        return record, validate_dynamic_document(record, path)
    if schema == SERVE_SCHEMA:
        return record, validate_serve_document(record, path)
    return record, validate_run_record(record, path)


def main(argv):
    expect_identical = "--expect-identical" in argv
    files = [a for a in argv if a != "--expect-identical"]
    if not files:
        print(__doc__.strip())
        return 1

    all_problems = []
    digests = {}
    for path in files:
        record, problems = validate(path)
        all_problems.extend(problems)
        if record is None:
            continue
        if record.get("schema") == DYNAMIC_SCHEMA:
            digests[path] = record.get("summary", {}).get("final_digest")
        elif record.get("schema") == SERVE_SCHEMA:
            digests[path] = record.get("final", {}).get("digest")
        elif record.get("schema") != BENCH_SCHEMA:
            digests[path] = record.get("result", {}).get("digest")

    if expect_identical and len(set(digests.values())) > 1:
        all_problems.append(
            "solution digests differ across records (delivery/thread knobs "
            "must be bit-identical): "
            + ", ".join(f"{p}={d}" for p, d in sorted(digests.items()))
        )

    for problem in all_problems:
        print(problem)
    if not all_problems:
        suffix = " (identical digests)" if expect_identical else ""
        print(f"OK: {len(files)} file(s) valid{suffix}")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
