#!/usr/bin/env python3
"""Schema check for the `domset run --json` record (schema domset-run/1).

Usage:
    validate_result_json.py RECORD.json [MORE.json ...] [--expect-identical]

Validates every file against the required keys and types of the
domset-run/1 schema emitted by src/api/result_json.cpp.  With
--expect-identical, additionally asserts that all records carry the same
solution digest -- the CI hook that proves push/pull/auto delivery (and
any thread count) produce bit-identical solutions without shipping the
solutions themselves.

Exits 0 when every check passes, 1 otherwise, printing one line per
problem.  Stdlib only, so the CI job needs nothing beyond python3.
"""

import json
import sys

SCHEMA_NAME = "domset-run/1"

# (path, type) pairs; bool is checked before int because bool is an int
# subclass in Python.
REQUIRED = [
    (("schema",), str),
    (("alg",), str),
    (("graph", "family"), str),
    (("graph", "nodes"), int),
    (("graph", "edges"), int),
    (("graph", "max_degree"), int),
    (("exec", "seed"), int),
    (("exec", "threads"), int),
    (("exec", "delivery"), str),
    (("exec", "drop_probability"), (int, float)),
    (("exec", "congest_bit_limit"), int),
    (("params",), dict),
    (("result", "integral"), bool),
    (("result", "size"), int),
    (("result", "objective"), (int, float)),
    (("result", "ratio_bound"), (int, float)),
    (("result", "valid"), bool),
    (("result", "digest"), str),
    (("metrics", "rounds"), int),
    (("metrics", "messages_sent"), int),
    (("metrics", "bits_sent"), int),
    (("metrics", "max_message_bits"), int),
    (("metrics", "max_messages_per_node"), int),
    (("metrics", "messages_dropped"), int),
    (("metrics", "congest_violation"), bool),
    (("metrics", "hit_round_limit"), bool),
    (("elapsed_ms",), (int, float)),
]


def lookup(record, path):
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None, False
        node = node[key]
    return node, True


def validate(path):
    problems = []
    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: unreadable or invalid JSON: {e}"]

    for key_path, expected in REQUIRED:
        value, found = lookup(record, key_path)
        dotted = ".".join(key_path)
        if not found:
            problems.append(f"{path}: missing required key '{dotted}'")
            continue
        if expected is not bool and isinstance(value, bool):
            problems.append(f"{path}: key '{dotted}' must not be a boolean")
        elif not isinstance(value, expected):
            problems.append(
                f"{path}: key '{dotted}' has type {type(value).__name__}"
            )

    if record.get("schema") != SCHEMA_NAME:
        problems.append(
            f"{path}: schema is {record.get('schema')!r}, want {SCHEMA_NAME!r}"
        )
    digest = record.get("result", {}).get("digest", "")
    if not (isinstance(digest, str) and len(digest) == 16
            and all(c in "0123456789abcdef" for c in digest)):
        problems.append(f"{path}: digest must be 16 lowercase hex chars")
    delivery = record.get("exec", {}).get("delivery")
    if delivery not in ("push", "pull", "auto"):
        problems.append(f"{path}: exec.delivery is {delivery!r}")
    if record.get("result", {}).get("valid") is not True:
        problems.append(f"{path}: result.valid is not true")
    for key, value in record.get("params", {}).items():
        if not isinstance(value, str):
            problems.append(f"{path}: param '{key}' must be a string echo")
    return record, problems


def main(argv):
    expect_identical = "--expect-identical" in argv
    files = [a for a in argv if a != "--expect-identical"]
    if not files:
        print(__doc__.strip())
        return 1

    all_problems = []
    digests = {}
    for path in files:
        record, problems = validate(path)
        all_problems.extend(problems)
        if record is not None:
            digests[path] = record.get("result", {}).get("digest")

    if expect_identical and len(set(digests.values())) > 1:
        all_problems.append(
            "solution digests differ across records (delivery/thread knobs "
            "must be bit-identical): "
            + ", ".join(f"{p}={d}" for p, d in sorted(digests.items()))
        )

    for problem in all_problems:
        print(problem)
    if not all_problems:
        suffix = " (identical digests)" if expect_identical else ""
        print(f"OK: {len(files)} record(s) valid{suffix}")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
