// Experiment C1 -- the complexity claims of Sect. 1/5:
//   * Algorithm 2: exactly 2k^2 rounds; Algorithm 3: 4k^2 + O(k) rounds,
//     independent of n and diam(G);
//   * each node sends O(k^2 * Delta) messages;
//   * every message is O(log Delta) bits.
// Measured on the large instance set (up to n = 2025) to make the
// n-independence visible.
#include <bit>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace domset;
  std::cout << "C1: round/message/bit complexity vs the paper's formulas\n";

  common::text_table table({"instance", "n", "Delta", "diam", "k",
                            "alg2 rounds (=2k^2)", "alg3 rounds (=4k^2+2k+2)",
                            "max msgs/node", "<= 4k^2*D+O(kD)",
                            "max bits", "ceil(log2((D+2)k))"});
  for (const auto& instance : bench::large_instances()) {
    const auto diam = graph::diameter(instance.g);
    const std::string diam_str =
        diam == static_cast<std::uint32_t>(-1) ? "inf" : std::to_string(diam);
    for (std::uint32_t k : {2U, 4U}) {
      const auto r2 = core::approximate_lp_known_delta(instance.g, {.k = k});
      const auto r3 = core::approximate_lp(instance.g, {.k = k});
      const std::uint64_t delta = instance.g.max_degree();
      const std::uint64_t msg_bound = 4ULL * k * k * delta +
                                      2ULL * k * delta + 3ULL * delta;
      const auto bit_bound = static_cast<std::uint32_t>(
          std::bit_width((delta + 2) * k));
      table.add_row(
          {instance.name, common::fmt_int(static_cast<long long>(instance.g.node_count())),
           common::fmt_int(static_cast<long long>(delta)), diam_str,
           common::fmt_int(k),
           common::fmt_int(static_cast<long long>(r2.metrics.rounds)),
           common::fmt_int(static_cast<long long>(r3.metrics.rounds)),
           common::fmt_int(static_cast<long long>(r3.metrics.max_messages_per_node)),
           common::fmt_int(static_cast<long long>(msg_bound)),
           common::fmt_int(r3.metrics.max_message_bits),
           common::fmt_int(bit_bound)});
    }
  }
  bench::print_table(
      "Complexity: rounds are independent of n and diameter; messages are "
      "O(k^2 Delta) per node; message size is O(log Delta) bits",
      "Shape to verify: round columns depend only on k; msgs/node and bits "
      "stay below their bounds.  Note rounds << diameter on the grid: the "
      "algorithm is strictly local.",
      table);
  return 0;
}
