// Experiment P4 -- push vs pull delivery on skewed graphs
// (google-benchmark).
//
// Push delivery scatters each message into the receiver-side CSR slot:
// ideal when degrees are balanced, but on hub-dominated graphs every
// sender stores into the same hub row -- a cross-thread invalidation
// hotspot in parallel runs and a scatter-store pattern even serially.
// Pull delivery writes sender-local outbox lanes and lets each receiver
// gather through the mirror index, turning all cross-thread traffic into
// loads (sim/delivery.hpp).  This bench measures both modes on the graph
// families that bracket the trade-off:
//
//   gnp  -- G(n, 8/n): balanced degrees, push's home turf.  Pull must not
//           lose here (the `auto` heuristic keeps push anyway).
//   star -- maximal skew (skew ~ n/2): every round funnels through one
//           hub row.  Pull's target case.
//   ba   -- Barabasi-Albert power law: realistic heavy tail, the regime
//           the Deurer-Kuhn-Maus and bounded-arboricity lines live in.
//   geo  -- random unit-disk graph: the paper's motivating topology,
//           mildly irregular.
//
// The workload is a mixed round (broadcast + one targeted send), which
// demotes the broadcast lane into per-edge slots -- the honest worst case
// where delivery layout matters; lane-only rounds are mode-independent by
// design.  Degree stats come from graph::degree_stats, the same helper
// the `auto` heuristic consults, and are exported as counters so the JSON
// artifact records the skew next to the throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/engine.hpp"

namespace {

using namespace domset;
using graph::node_id;

enum family : std::int64_t { fam_gnp = 0, fam_star = 1, fam_ba = 2, fam_geo = 3 };

const char* family_name(std::int64_t f) {
  switch (f) {
    case fam_gnp:  return "gnp";
    case fam_star: return "star";
    case fam_ba:   return "ba";
    case fam_geo:  return "geo";
  }
  return "?";
}

graph::graph make_graph(std::int64_t f, std::size_t n) {
  common::rng gen(4242);
  switch (f) {
    case fam_star:
      return graph::star_graph(n);
    case fam_ba:
      return graph::barabasi_albert(n, 8, gen);
    case fam_geo:
      // Radius chosen for expected average degree ~8, matching the gnp row.
      return graph::random_geometric(
                 n, std::sqrt(8.0 / (3.14159265358979 * static_cast<double>(n))),
                 gen)
          .g;
    case fam_gnp:
    default:
      return graph::gnp_random(n, 8.0 / static_cast<double>(n), gen);
  }
}

/// Mixed-round traffic: broadcast a digest, then send one targeted
/// message down the first edge.  The targeted send demotes the broadcast
/// lane, so every edge goes through a per-edge slot deposit -- the path
/// whose memory layout differs between push and pull.
struct exchange_program {
  std::size_t lifetime = 0;
  std::uint64_t digest = 0;
  std::size_t rounds_done = 0;
  bool done = false;

  void on_round(sim::round_context& ctx, std::span<const sim::message> inbox) {
    if (done) return;
    std::uint64_t acc = digest;
    for (const sim::message& msg : inbox) acc += msg.payload + msg.from;
    digest = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto nbrs = ctx.neighbors();
    if (!nbrs.empty()) {
      ctx.broadcast(1, digest >> 32, 16);
      ctx.send(nbrs[0], 2, digest & 0xFFFF, 16);
    }
    if (++rounds_done >= lifetime) done = true;
  }
  [[nodiscard]] bool finished() const { return done; }
};

// Args: {family, n, rounds, delivery (0 = push, 1 = pull), threads}.
void BM_GatherDelivery(benchmark::State& state) {
  const std::int64_t fam = state.range(0);
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto rounds = static_cast<std::size_t>(state.range(2));
  const graph::graph g = make_graph(fam, n);

  sim::engine_config cfg;
  cfg.delivery =
      state.range(3) == 0 ? sim::delivery_mode::push : sim::delivery_mode::pull;
  cfg.threads = static_cast<std::size_t>(state.range(4));
  cfg.max_rounds = rounds + 1;

  for (auto _ : state) {
    state.PauseTiming();
    sim::typed_engine<exchange_program> eng(g, cfg);
    eng.load([rounds](node_id) { return exchange_program{rounds}; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.run());
  }

  const graph::degree_stats_result stats = graph::degree_stats(g);
  state.counters["rounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rounds),
      benchmark::Counter::kIsRate);
  state.counters["max_deg"] = static_cast<double>(stats.max_degree);
  state.counters["skew"] = stats.skew;
  state.SetLabel(family_name(fam));
}

// Grid: both delivery modes on every family.  The small n = 10k rows are
// the CI smoke slice; the n >= 100k rows are the acceptance measurements
// (star/power-law skew only bites once a hub row outgrows the caches).
#define DOMSET_P4_GRID(fam, n, rounds)       \
  ->Args({fam, n, rounds, 0, 1})             \
  ->Args({fam, n, rounds, 1, 1})             \
  ->Args({fam, n, rounds, 0, 2})             \
  ->Args({fam, n, rounds, 1, 2})             \
  ->Args({fam, n, rounds, 0, 4})             \
  ->Args({fam, n, rounds, 1, 4})

BENCHMARK(BM_GatherDelivery)
    ->ArgNames({"family", "n", "rounds", "delivery", "threads"})
    ->UseRealTime()
    DOMSET_P4_GRID(fam_gnp, 10'000, 20)
    DOMSET_P4_GRID(fam_star, 10'000, 20)
    DOMSET_P4_GRID(fam_ba, 10'000, 20)
    DOMSET_P4_GRID(fam_geo, 10'000, 20)
    DOMSET_P4_GRID(fam_gnp, 100'000, 10)
    DOMSET_P4_GRID(fam_star, 100'000, 10)
    DOMSET_P4_GRID(fam_ba, 100'000, 10)
    DOMSET_P4_GRID(fam_gnp, 300'000, 5)
    DOMSET_P4_GRID(fam_ba, 300'000, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
