// Ablation A2 -- why ln(delta^(2)+1) is the right rounding scale.
//
// Algorithm 1 inflates x_i by ln(delta^(2)_i + 1) before flipping coins.
// Scaling by c * ln(...) for c < 1 under-selects (the fix-up of lines 5-6
// then adds many nodes: E[Y] blows past |DS_OPT|); c > 1 over-selects
// (E[X] grows linearly in c).  The theorem's choice c = 1 balances the
// two.  We sweep c and report the two components of the expected size --
// the empirical version of the E[X] + E[Y] decomposition in the proof of
// Theorem 3.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace {

using namespace domset;

constexpr std::uint64_t kSeeds = 200;

/// Central re-implementation of Algorithm 1 with a scale multiplier on the
/// ln factor (the distributed version fixes c = 1; this is analysis-only).
struct scaled_outcome {
  double random_selected = 0.0;  // E[X]
  double fixups = 0.0;           // E[Y]
  double total = 0.0;
};

scaled_outcome run_scaled(const graph::graph& g, const std::vector<double>& x,
                          double c) {
  const auto d2 = graph::max_degree_2hop(g);
  common::running_stats randoms;
  common::running_stats fixups;
  common::running_stats totals;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    common::rng gen(seed * 31 + 7);
    std::vector<std::uint8_t> in_set(g.node_count(), 0);
    std::size_t selected = 0;
    for (graph::node_id v = 0; v < g.node_count(); ++v) {
      const double p = std::min(
          1.0, c * x[v] * std::log(static_cast<double>(d2[v]) + 1.0));
      if (gen.next_bernoulli(p)) {
        in_set[v] = 1;
        ++selected;
      }
    }
    std::size_t fixed = 0;
    for (graph::node_id v = 0; v < g.node_count(); ++v) {
      bool covered = in_set[v] != 0;
      if (!covered) {
        for (const graph::node_id u : g.neighbors(v)) {
          if (in_set[u]) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) ++fixed;  // line 6 would add v
    }
    randoms.add(static_cast<double>(selected));
    fixups.add(static_cast<double>(fixed));
    totals.add(static_cast<double>(selected + fixed));
  }
  return {randoms.mean(), fixups.mean(), totals.mean()};
}

}  // namespace

int main() {
  std::cout << "A2: rounding scale sweep p = min(1, c*x*ln(d2+1))\n";

  common::text_table table({"instance", "OPT", "c", "E[X] random",
                            "E[Y] fixup", "E[total]", "ratio"});
  common::rng inst_gen(55);
  const bench::named_graph instances[] = {
      {"gnp_60_.12", graph::gnp_random(60, 0.12, inst_gen)},
      {"udg_70_.2", graph::random_geometric(70, 0.2, inst_gen).g},
      {"bipart_12_12", graph::complete_bipartite(12, 12)},
  };
  for (const auto& instance : instances) {
    const std::size_t opt = bench::exact_optimum(instance.g);
    const auto lp = lp::solve_lp_mds(instance.g);
    if (!lp.has_value()) return 1;
    for (const double c : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
      const auto out = run_scaled(instance.g, lp->x, c);
      table.add_row(
          {instance.name, common::fmt_int(static_cast<long long>(opt)),
           common::fmt_double(c, 2), common::fmt_double(out.random_selected, 1),
           common::fmt_double(out.fixups, 1), common::fmt_double(out.total, 1),
           common::fmt_double(out.total / static_cast<double>(opt), 2)});
    }
  }
  bench::print_table(
      "Ablation: the ln scaling of Theorem 3 (" + std::to_string(kSeeds) +
          " seeds, LP* input)",
      "Shape to verify: E[X] grows ~linearly in c while E[Y] decays "
      "~exponentially; the total is minimized near c = 1 (the theorem's "
      "choice), +- one binary step.",
      table);
  return 0;
}
