// Experiment T5 -- Theorem 5: Algorithm 3 (no knowledge of Delta) computes
// a k((Delta+1)^{1/k} + (Delta+1)^{2/k}) approximation of LP_MDS in
// 4k^2 + O(k) rounds.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "lp/lp_mds.hpp"

int main() {
  using namespace domset;
  std::cout << "T5: Algorithm 3 fractional approximation vs Theorem 5\n";

  common::text_table table({"instance", "Delta", "LP_OPT", "k", "sum(x)",
                            "ratio", "bound", "rounds", "alg2 sum(x)"});
  for (const auto& instance : bench::standard_instances()) {
    const double lp_opt = bench::lp_optimum(instance.g);
    for (std::uint32_t k = 1; k <= 5; ++k) {
      const auto res = core::approximate_lp(instance.g, {.k = k});
      const auto res2 = core::approximate_lp_known_delta(instance.g, {.k = k});
      const double ratio = lp_opt > 0 ? res.objective / lp_opt : 1.0;
      table.add_row(
          {instance.name, common::fmt_int(instance.g.max_degree()),
           common::fmt_double(lp_opt, 2), common::fmt_int(k),
           common::fmt_double(res.objective, 2), common::fmt_double(ratio, 3),
           common::fmt_double(res.ratio_bound, 2),
           common::fmt_int(static_cast<long long>(res.metrics.rounds)),
           common::fmt_double(res2.objective, 2)});
    }
  }
  bench::print_table(
      "Theorem 5: LP approximation ratio of Algorithm 3 (uniform)",
      "Shape to verify: ratio <= bound; rounds = 4k^2 + 2k + 2; the uniform "
      "algorithm tracks Algorithm 2's quality without knowing Delta.",
      table);
  return 0;
}
