// Experiment B1 -- the related-work comparison (Sect. 1/2 of the paper):
// Kuhn-Wattenhofer pipeline (k = 2, 3) vs LRG [11] vs sequential greedy vs
// Wu-Li [22] vs trivial, with the exact optimum as the yardstick.
//
// Expected shape: greedy (centralized, ln Delta) is the quality reference;
// LRG matches it within a constant at polylog rounds; the KW pipeline is
// somewhat worse in quality but needs only O(k^2) rounds -- the trade the
// paper is about.  Wu-Li is fast but unbounded (see cycle_48).
#include <iostream>

#include "bench_common.hpp"
#include "baselines/greedy.hpp"
#include "baselines/lrg.hpp"
#include "baselines/simple.hpp"
#include "baselines/wu_li.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 30;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "B1: dominating set quality and round cost across algorithms\n";

  common::text_table table({"instance", "OPT", "KW k=2", "KW k=3", "LRG [11]",
                            "greedy", "wu-li [22]", "LP*+round", "trivial",
                            "KW3 rnds", "LRG rnds"});
  for (const auto& instance : bench::standard_instances()) {
    const std::size_t opt = bench::exact_optimum(instance.g);

    common::running_stats kw2;
    common::running_stats kw3;
    common::running_stats lrg_sizes;
    common::running_stats central;
    std::size_t kw3_rounds = 0;
    common::running_stats lrg_rounds;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      core::pipeline_params p2;
      p2.k = 2;
      p2.exec.seed = seed;
      kw2.add(static_cast<double>(
          core::compute_dominating_set(instance.g, p2).size));
      core::pipeline_params p3;
      p3.k = 3;
      p3.exec.seed = seed;
      const auto res3 = core::compute_dominating_set(instance.g, p3);
      kw3.add(static_cast<double>(res3.size));
      kw3_rounds = res3.total_rounds;

      baselines::lrg_params lp;
      lp.exec.seed = seed;
      const auto lrg_res = baselines::lrg_mds(instance.g, lp);
      lrg_sizes.add(static_cast<double>(lrg_res.size));
      lrg_rounds.add(static_cast<double>(lrg_res.metrics.rounds));

      central.add(static_cast<double>(
          baselines::centralized_lp_rounding(instance.g, seed).size));
    }
    const auto greedy_res = baselines::greedy_mds(instance.g);
    const auto wu_li_res = baselines::wu_li_mds(instance.g);

    table.add_row({instance.name, common::fmt_int(opt),
                   common::fmt_double(kw2.mean(), 1),
                   common::fmt_double(kw3.mean(), 1),
                   common::fmt_double(lrg_sizes.mean(), 1),
                   common::fmt_int(static_cast<long long>(greedy_res.size)),
                   common::fmt_int(static_cast<long long>(wu_li_res.size)),
                   common::fmt_double(central.mean(), 1),
                   common::fmt_int(static_cast<long long>(instance.g.node_count())),
                   common::fmt_int(static_cast<long long>(kw3_rounds)),
                   common::fmt_double(lrg_rounds.mean(), 0)});
  }
  bench::print_table(
      "Baselines: mean |DS| over " + std::to_string(kSeeds) +
          " seeds (greedy and Wu-Li are deterministic)",
      "Shape to verify: greedy <= LRG <= KW <= trivial in quality (roughly); "
      "KW rounds are constant while LRG rounds grow with the instance; "
      "Wu-Li collapses on cycles/regular graphs.",
      table);
  return 0;
}
