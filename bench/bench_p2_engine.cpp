// Experiment P2 -- round-throughput of the flat CSR mailbox engine
// (google-benchmark).  Compares, on identical workloads:
//
//   Legacy  -- a faithful copy of the seed mailbox design (one
//              vector<vector<message>> pair, per-message push_back,
//              per-round stable_sort by sender, heap-allocated virtual
//              programs, O(n) all-finished scan per round);
//   Flat    -- the flat engine behind the virtual node_program adapter;
//   Typed   -- typed_engine<Program>: flat mailboxes + by-value programs
//              with static dispatch;
//   TypedPar-- Typed with a parallel compute phase (threads > 1); output
//              is bit-identical to the serial runs.
//
// Workload: an Alg2-shaped gossip program (broadcast one small message per
// round, fold the inbox) for a fixed number of rounds on G(n, 8/n) and
// random geometric graphs up to n = 1M.  Items processed = messages
// delivered, so the items/s column reads directly as message throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace {

using namespace domset;
using graph::node_id;

constexpr std::size_t gossip_rounds = 16;

// ---------------------------------------------------------------- legacy
// Reference copy of the seed engine (PR 0 state of src/sim/engine.cpp),
// kept here so the speedup claim stays measurable after the rewrite.
namespace legacy {

class engine;

class round_context {
 public:
  [[nodiscard]] node_id id() const noexcept { return id_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] std::span<const node_id> neighbors() const noexcept;
  void broadcast(std::uint16_t tag, std::uint64_t payload, std::uint32_t bits);

 private:
  friend class engine;
  round_context(engine& eng, node_id id, std::size_t round) noexcept
      : engine_(&eng), id_(id), round_(round) {}
  engine* engine_;
  node_id id_;
  std::size_t round_;
};

class node_program {
 public:
  virtual ~node_program() = default;
  virtual void on_round(round_context& ctx,
                        std::span<const sim::message> inbox) = 0;
  [[nodiscard]] virtual bool finished() const = 0;
};

class engine {
 public:
  explicit engine(const graph::graph& g) : graph_(&g), adversary_rng_(1) {
    const std::size_t n = g.node_count();
    inboxes_.resize(n);
    outboxes_.resize(n);
    per_node_sent_.assign(n, 0);
  }

  template <typename Factory>
  void load(Factory&& factory) {
    const std::size_t n = graph_->node_count();
    programs_.reserve(n);
    for (node_id v = 0; v < n; ++v) programs_.push_back(factory(v));
  }

  std::uint64_t run(std::size_t max_rounds) {
    const std::size_t n = graph_->node_count();
    const auto all_finished = [&]() {
      for (node_id v = 0; v < n; ++v)
        if (!programs_[v]->finished()) return false;
      return true;
    };
    bool completed = all_finished();
    for (std::size_t round = 0; !completed && round < max_rounds; ++round) {
      for (node_id v = 0; v < n; ++v) {
        round_context ctx(*this, v, round);
        programs_[v]->on_round(ctx, std::span<const sim::message>(inboxes_[v]));
      }
      for (node_id v = 0; v < n; ++v) {
        inboxes_[v].clear();
        std::swap(inboxes_[v], outboxes_[v]);
        std::stable_sort(
            inboxes_[v].begin(), inboxes_[v].end(),
            [](const sim::message& a, const sim::message& b) {
              return a.from < b.from;
            });
      }
      completed = all_finished();
    }
    std::uint64_t max_per_node = 0;
    for (const std::uint64_t sent : per_node_sent_)
      max_per_node = std::max(max_per_node, sent);
    return messages_sent_ + max_per_node;
  }

 private:
  friend class round_context;
  // Verbatim seed accounting: metrics and per-node counters bump before
  // the (never-taken here) drop roll.
  void enqueue(node_id from, node_id to, std::uint16_t tag,
               std::uint64_t payload, std::uint32_t bits) {
    messages_sent_ += 1;
    bits_sent_ += bits;
    max_message_bits_ = std::max(max_message_bits_, bits);
    per_node_sent_[from] += 1;
    if (drop_probability_ > 0.0 &&
        adversary_rng_.next_bernoulli(drop_probability_))
      return;
    outboxes_[to].push_back(
        sim::message{payload, from, static_cast<std::uint16_t>(bits), tag});
  }

  const graph::graph* graph_;
  std::vector<std::unique_ptr<node_program>> programs_;
  std::vector<std::vector<sim::message>> inboxes_;
  std::vector<std::vector<sim::message>> outboxes_;
  std::vector<std::uint64_t> per_node_sent_;
  common::rng adversary_rng_;
  double drop_probability_ = 0.0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bits_sent_ = 0;
  std::uint32_t max_message_bits_ = 0;
};

std::span<const node_id> round_context::neighbors() const noexcept {
  return engine_->graph_->neighbors(id_);
}

void round_context::broadcast(std::uint16_t tag, std::uint64_t payload,
                              std::uint32_t bits) {
  for (const node_id to : neighbors())
    engine_->enqueue(id_, to, tag, payload, bits);
}

}  // namespace legacy

// -------------------------------------------------------------- workload
/// Alg2-shaped gossip: every round, fold the inbox into a digest and
/// broadcast a small message.  Templated on the context type so the exact
/// same program body runs in all engines.
template <typename Context>
struct gossip_state {
  std::uint64_t digest = 0;
  std::size_t rounds_done = 0;
  bool done = false;

  void step(Context& ctx, std::span<const sim::message> inbox) {
    if (done) return;
    std::uint64_t acc = digest;
    for (const sim::message& msg : inbox) acc += msg.payload + msg.from;
    digest = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    ctx.broadcast(1, digest >> 32, 16);
    if (++rounds_done >= gossip_rounds) done = true;
  }
};

struct typed_gossip {
  gossip_state<sim::round_context> state;
  void on_round(sim::round_context& ctx, std::span<const sim::message> inbox) {
    state.step(ctx, inbox);
  }
  [[nodiscard]] bool finished() const { return state.done; }
};

class virtual_gossip final : public sim::node_program {
 public:
  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) override {
    state_.step(ctx, inbox);
  }
  [[nodiscard]] bool finished() const override { return state_.done; }

 private:
  gossip_state<sim::round_context> state_;
};

class legacy_gossip final : public legacy::node_program {
 public:
  void on_round(legacy::round_context& ctx,
                std::span<const sim::message> inbox) override {
    state_.step(ctx, inbox);
  }
  [[nodiscard]] bool finished() const override { return state_.done; }

 private:
  gossip_state<legacy::round_context> state_;
};

graph::graph make_graph(const benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::rng gen(42);
  if (state.range(1) == 0)
    return graph::gnp_random(n, 8.0 / static_cast<double>(n), gen);
  return graph::random_geometric(n, 1.5 / std::sqrt(static_cast<double>(n)),
                                 gen)
      .g;
}

void set_throughput(benchmark::State& state, const graph::graph& g) {
  // One broadcast per node per round: 2m messages per round.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gossip_rounds) *
                          static_cast<std::int64_t>(2 * g.edge_count()));
  state.counters["rounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(gossip_rounds),
      benchmark::Counter::kIsRate);
}

// ------------------------------------------------------------ benchmarks
// Setup (engine construction + program load) is excluded from timing in
// every variant: the claim under measurement is round throughput, and the
// flat engines front-load their mailbox allocation at construction while
// the legacy design allocates on the data path (which is timed, as that
// IS its round execution).
void BM_LegacyEngine(benchmark::State& state) {
  const graph::graph g = make_graph(state);
  for (auto _ : state) {
    state.PauseTiming();
    legacy::engine eng(g);
    eng.load([](node_id) { return std::make_unique<legacy_gossip>(); });
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.run(gossip_rounds + 1));
  }
  set_throughput(state, g);
}

void BM_FlatEngineVirtual(benchmark::State& state) {
  const graph::graph g = make_graph(state);
  for (auto _ : state) {
    state.PauseTiming();
    sim::engine eng(g, {});
    eng.load([](node_id) { return std::make_unique<virtual_gossip>(); });
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.run());
  }
  set_throughput(state, g);
}

void BM_TypedEngine(benchmark::State& state) {
  const graph::graph g = make_graph(state);
  for (auto _ : state) {
    state.PauseTiming();
    sim::typed_engine<typed_gossip> eng(g, {});
    eng.load([](node_id) { return typed_gossip{}; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.run());
  }
  set_throughput(state, g);
}

void BM_TypedEngineParallel(benchmark::State& state) {
  const graph::graph g = make_graph(state);
  sim::engine_config cfg;
  cfg.threads = static_cast<std::size_t>(state.range(2));
  for (auto _ : state) {
    state.PauseTiming();
    sim::typed_engine<typed_gossip> eng(g, cfg);
    eng.load([](node_id) { return typed_gossip{}; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.run());
  }
  set_throughput(state, g);
}

// Args: {n, family (0 = gnp 8/n, 1 = geometric), [threads]}.
#define DOMSET_P2_SIZES(bench)              \
  bench->ArgNames({"n", "geo"})             \
      ->Args({10'000, 0})                   \
      ->Args({100'000, 0})                  \
      ->Args({1'000'000, 0})                \
      ->Args({100'000, 1})                  \
      ->Args({1'000'000, 1})                \
      ->Unit(benchmark::kMillisecond)

DOMSET_P2_SIZES(BENCHMARK(BM_LegacyEngine));
DOMSET_P2_SIZES(BENCHMARK(BM_FlatEngineVirtual));
DOMSET_P2_SIZES(BENCHMARK(BM_TypedEngine));

BENCHMARK(BM_TypedEngineParallel)
    ->UseRealTime()  // workers run off the main thread; wall time is the claim
    ->ArgNames({"n", "geo", "threads"})
    ->Args({10'000, 0, 2})
    ->Args({10'000, 0, 4})
    ->Args({100'000, 0, 2})
    ->Args({100'000, 0, 4})
    ->Args({100'000, 0, 8})
    ->Args({1'000'000, 0, 4})
    ->Args({1'000'000, 0, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
