// Experiment T4 -- Theorem 4: Algorithm 2 computes a k(Delta+1)^{2/k}
// approximation of LP_MDS in exactly 2k^2 rounds.
//
// For every standard instance and k in {1..5}: measured ratio
// sum(x)/LP_OPT vs the bound, plus the exact round count.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/alg2.hpp"
#include "lp/lp_mds.hpp"

int main() {
  using namespace domset;
  std::cout << "T4: Algorithm 2 fractional approximation vs Theorem 4\n";

  common::text_table table({"instance", "Delta", "LP_OPT", "k", "sum(x)",
                            "ratio", "bound k(D+1)^{2/k}", "rounds",
                            "feasible"});
  for (const auto& instance : bench::standard_instances()) {
    const double lp_opt = bench::lp_optimum(instance.g);
    for (std::uint32_t k = 1; k <= 5; ++k) {
      const auto res = core::approximate_lp_known_delta(instance.g, {.k = k});
      const double ratio = lp_opt > 0 ? res.objective / lp_opt : 1.0;
      table.add_row(
          {instance.name, common::fmt_int(instance.g.max_degree()),
           common::fmt_double(lp_opt, 2), common::fmt_int(k),
           common::fmt_double(res.objective, 2), common::fmt_double(ratio, 3),
           common::fmt_double(res.ratio_bound, 2),
           common::fmt_int(static_cast<long long>(res.metrics.rounds)),
           lp::is_primal_feasible(instance.g, res.x) ? "yes" : "NO"});
    }
  }
  bench::print_table(
      "Theorem 4: LP approximation ratio of Algorithm 2 (Delta known)",
      "Shape to verify: ratio <= bound always; ratio improves (falls) as k "
      "grows; rounds = 2k^2 exactly.",
      table);
  return 0;
}
