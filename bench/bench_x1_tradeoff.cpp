// Experiment X1 -- the time/quality trade-off frontier of Sect. 1, with
// the Omega(Delta^{1/k}/k) locality lower bound of [14] (Kuhn, Moscibroda,
// Wattenhofer, PODC 2004) as context.  The paper's headline: the first
// non-trivial approximation in a *constant* number of rounds, with the
// trade-off ratio ~ k*Delta^{2/k}*log(Delta) vs rounds ~ k^2.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 40;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "X1: time vs quality trade-off frontier\n";

  common::rng gen(4242);
  const graph::graph g = graph::random_geometric(400, 0.08, gen).g;
  const std::uint32_t delta = g.max_degree();
  const double lower_bound_ref = 1.0;  // recomputed per k below

  common::text_table table({"k", "rounds", "E[|DS|]", "ratio vs dual-LB",
                            "Thm6 upper bound", "[14] lower bound ref",
                            "msgs/node"});
  const double dual_lb = graph::dual_lower_bound(g);
  for (std::uint32_t k = 1; k <= 8; ++k) {
    common::running_stats sizes;
    std::size_t rounds = 0;
    std::uint64_t msgs = 0;
    double bound = 0.0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      core::pipeline_params params;
      params.k = k;
      params.exec.seed = seed;
      const auto res = core::compute_dominating_set(g, params);
      if (!verify::is_dominating_set(g, res.in_set)) return 1;
      sizes.add(static_cast<double>(res.size));
      rounds = res.total_rounds;
      msgs = std::max(msgs, res.fractional.metrics.max_messages_per_node);
      bound = res.expected_ratio_bound;
    }
    // Omega(Delta^{1/k}/k): no k-round algorithm can beat this ratio [14].
    const double lb14 =
        std::pow(static_cast<double>(delta), 1.0 / static_cast<double>(k)) /
        static_cast<double>(k);
    table.add_row({common::fmt_int(k),
                   common::fmt_int(static_cast<long long>(rounds)),
                   common::fmt_double(sizes.mean(), 1),
                   common::fmt_double(sizes.mean() / dual_lb, 2),
                   common::fmt_double(bound, 1),
                   common::fmt_double(std::max(lb14, lower_bound_ref), 2),
                   common::fmt_int(static_cast<long long>(msgs))});
  }
  bench::print_table(
      "Trade-off on " + g.summary() + " (unit-disk, " +
          std::to_string(kSeeds) + " seeds); certified dual lower bound = " +
          common::fmt_double(dual_lb, 1),
      "Shape to verify: quality improves with k while rounds grow "
      "quadratically; measured ratios sit between the [14] locality lower "
      "bound (for k-round algorithms) and the Theorem 6 guarantee.",
      table);
  return 0;
}
