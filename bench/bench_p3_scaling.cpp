// Experiment P3 -- round-dispatch scaling: persistent worker pool vs
// spawn-per-round threading (google-benchmark).
//
// LOCAL algorithms run many cheap rounds: in the Kuhn-Wattenhofer
// constant-round regime and the CONGEST follow-ups we benchmark against,
// a round on a small graph is microseconds of compute.  PR 1's parallel
// phase spawned and joined std::threads every round, so per-round clone/
// exit cost dominated exactly there.  This bench pins the claim from both
// ends:
//
//   SpawnPerRound -- a faithful replica of the removed per-round
//                    spawn/join dispatch (engine.hpp pre-pool), driving a
//                    compute-phase-shaped kernel;
//   PersistentPool -- the same kernel dispatched per round on one
//                    sim::thread_pool (sense-reversing barrier, workers
//                    created once);
//   EngineRounds  -- the real typed_engine end to end on a many-round
//                    gossip workload across a rounds x n x threads grid.
//
// The kernel is the compute phase in miniature: each node folds its
// neighbors' published values through the CSR rows and publishes a new
// value (double-buffered, contiguous node chunks per worker) -- the same
// read/write footprint and partitioning the engine uses, with no
// engine-specific logic to muddy the dispatch comparison.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace domset;
using graph::node_id;

graph::graph make_graph(std::size_t n) {
  common::rng gen(42);
  return graph::gnp_random(n, 8.0 / static_cast<double>(n), gen);
}

// -------------------------------------------------------------- kernel
/// One compute-phase-shaped round: nodes [lo, hi) fold their neighbors'
/// current values and publish the mix into `next`.
void gossip_round(const graph::graph& g, const std::vector<std::uint64_t>& cur,
                  std::vector<std::uint64_t>& next, node_id lo, node_id hi) {
  for (node_id v = lo; v < hi; ++v) {
    std::uint64_t acc = cur[v];
    for (const node_id u : g.neighbors(v)) acc += cur[u];
    next[v] = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}

struct kernel_state {
  explicit kernel_state(const graph::graph& graph)
      : g(&graph), cur(graph.node_count(), 1), next(graph.node_count(), 0) {}

  void flip() { cur.swap(next); }

  const graph::graph* g;
  std::vector<std::uint64_t> cur;
  std::vector<std::uint64_t> next;
};

// -------------------------------------------------------- dispatch models
/// The removed engine dispatch, verbatim in shape: per round, spawn
/// workers - 1 threads, run chunk 0 on the caller, join all.
void run_spawn_model(kernel_state& ks, std::size_t rounds,
                     std::size_t workers) {
  const std::size_t n = ks.cur.size();
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    const auto work = [&](std::size_t w) {
      const auto lo = static_cast<node_id>(std::min(w * chunk, n));
      const auto hi = static_cast<node_id>(std::min(lo + chunk, n));
      gossip_round(*ks.g, ks.cur, ks.next, lo, hi);
    };
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
    work(0);
    for (auto& t : pool) t.join();
    ks.flip();
  }
}

/// The same per-round work dispatched on a persistent pool.
void run_pool_model(kernel_state& ks, std::size_t rounds, std::size_t workers,
                    sim::thread_pool& pool) {
  const std::size_t n = ks.cur.size();
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t r = 0; r < rounds; ++r) {
    pool.run(workers, [&](std::size_t w) {
      const auto lo = static_cast<node_id>(std::min(w * chunk, n));
      const auto hi = static_cast<node_id>(std::min(lo + chunk, n));
      gossip_round(*ks.g, ks.cur, ks.next, lo, hi);
    });
    ks.flip();
  }
}

void set_round_rate(benchmark::State& state, std::size_t rounds) {
  state.counters["rounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rounds),
      benchmark::Counter::kIsRate);
}

// Args: {n, rounds, threads}.
void BM_SpawnPerRound(benchmark::State& state) {
  const graph::graph g = make_graph(static_cast<std::size_t>(state.range(0)));
  const auto rounds = static_cast<std::size_t>(state.range(1));
  const auto workers = static_cast<std::size_t>(state.range(2));
  kernel_state ks(g);
  for (auto _ : state) run_spawn_model(ks, rounds, workers);
  benchmark::DoNotOptimize(ks.cur.data());
  set_round_rate(state, rounds);
}

void BM_PersistentPool(benchmark::State& state) {
  const graph::graph g = make_graph(static_cast<std::size_t>(state.range(0)));
  const auto rounds = static_cast<std::size_t>(state.range(1));
  const auto workers = static_cast<std::size_t>(state.range(2));
  kernel_state ks(g);
  sim::thread_pool pool(workers);  // created once, outside the round loop
  for (auto _ : state) run_pool_model(ks, rounds, workers, pool);
  benchmark::DoNotOptimize(ks.cur.data());
  set_round_rate(state, rounds);
}

// ------------------------------------------------------- engine end to end
/// Broadcast-every-round gossip that terminates after a configurable
/// number of rounds, so the rounds axis of the grid drives the real
/// engine's round loop.
struct timed_gossip {
  std::size_t lifetime = 0;
  std::uint64_t digest = 0;
  std::size_t rounds_done = 0;
  bool done = false;

  void on_round(sim::round_context& ctx, std::span<const sim::message> inbox) {
    if (done) return;
    std::uint64_t acc = digest;
    for (const sim::message& msg : inbox) acc += msg.payload + msg.from;
    digest = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    ctx.broadcast(1, digest >> 32, 16);
    if (++rounds_done >= lifetime) done = true;
  }
  [[nodiscard]] bool finished() const { return done; }
};

// Args: {n, rounds, threads}.
void BM_EngineRounds(benchmark::State& state) {
  const graph::graph g = make_graph(static_cast<std::size_t>(state.range(0)));
  const auto rounds = static_cast<std::size_t>(state.range(1));
  sim::engine_config cfg;
  cfg.threads = static_cast<std::size_t>(state.range(2));
  cfg.max_rounds = rounds + 1;
  for (auto _ : state) {
    state.PauseTiming();
    sim::typed_engine<timed_gossip> eng(g, cfg);
    eng.load([rounds](node_id) { return timed_gossip{rounds}; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.run());
  }
  set_round_rate(state, rounds);
}

// The acceptance workload (n = 1k, 500 rounds) plus enough of the
// rounds x n x threads grid to read scaling trends: dispatch models on
// the small-graph many-round regime, the real engine across sizes.
#define DOMSET_P3_DISPATCH_GRID(bench)       \
  bench->ArgNames({"n", "rounds", "threads"}) \
      ->UseRealTime()                         \
      ->Args({1'000, 500, 2})                 \
      ->Args({1'000, 500, 4})                 \
      ->Args({1'000, 500, 8})                 \
      ->Args({10'000, 500, 4})                \
      ->Args({100'000, 100, 4})               \
      ->Unit(benchmark::kMillisecond)

DOMSET_P3_DISPATCH_GRID(BENCHMARK(BM_SpawnPerRound));
DOMSET_P3_DISPATCH_GRID(BENCHMARK(BM_PersistentPool));

BENCHMARK(BM_EngineRounds)
    ->ArgNames({"n", "rounds", "threads"})
    ->UseRealTime()
    ->Args({1'000, 500, 1})
    ->Args({1'000, 500, 4})
    ->Args({10'000, 100, 1})
    ->Args({10'000, 100, 2})
    ->Args({10'000, 100, 4})
    ->Args({10'000, 100, 8})
    ->Args({100'000, 32, 1})
    ->Args({100'000, 32, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
