// Experiment P1 -- engineering micro-benchmarks (google-benchmark):
// simulator round throughput, generator speed, simplex and exact-solver
// latency.  These document the substrate's performance envelope, not a
// paper claim.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/alg3.hpp"
#include "core/pipeline.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"

namespace {

using namespace domset;

void BM_GeneratorGnp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::rng gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::gnp_random(n, 8.0 / static_cast<double>(n), gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GeneratorGnp)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GeneratorGeometric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::rng gen(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::random_geometric(n, 0.5 / std::sqrt(static_cast<double>(n)), gen));
  }
}
BENCHMARK(BM_GeneratorGeometric)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Alg3FullRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  common::rng gen(3);
  const graph::graph g = graph::gnp_random(n, 8.0 / static_cast<double>(n), gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::approximate_lp(g, {.k = k}));
  }
  // Message throughput: the engine's core cost driver.
  const auto res = core::approximate_lp(g, {.k = k});
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(res.metrics.messages_sent));
  state.counters["rounds"] = static_cast<double>(res.metrics.rounds);
}
BENCHMARK(BM_Alg3FullRun)->Args({1000, 2})->Args({1000, 4})->Args({10000, 2});

void BM_PipelineEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::rng gen(4);
  const graph::graph g =
      graph::random_geometric(n, 1.5 / std::sqrt(static_cast<double>(n)), gen).g;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::pipeline_params params;
    params.k = 2;
    params.exec.seed = ++seed;
    benchmark::DoNotOptimize(core::compute_dominating_set(g, params));
  }
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(1000)->Arg(5000);

void BM_SimplexLpMds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::rng gen(5);
  const graph::graph g = graph::gnp_random(n, 6.0 / static_cast<double>(n), gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp_mds(g));
  }
}
BENCHMARK(BM_SimplexLpMds)->Arg(30)->Arg(60)->Arg(120);

void BM_ExactMds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::rng gen(6);
  const graph::graph g = graph::gnp_random(n, 8.0 / static_cast<double>(n), gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_mds(g));
  }
}
BENCHMARK(BM_ExactMds)->Arg(20)->Arg(35)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
