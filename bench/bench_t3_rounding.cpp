// Experiment T3 -- Theorem 3: given an alpha-approximate fractional
// solution, Algorithm 1 rounds it to a dominating set of expected size
// (1 + alpha*ln(Delta+1)) * |DS_OPT|.
//
// We feed the rounding the *exact* LP optimum (alpha = 1) and the
// Algorithm 3 output (alpha = measured ratio) and average over seeds.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/alg3.hpp"
#include "core/rounding.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 100;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "T3: randomized rounding quality vs Theorem 3\n";

  common::text_table table({"instance", "OPT", "input", "alpha", "E[|DS|]",
                            "+-ci95", "ratio", "bound (1+a*ln(D+1))",
                            "fixup%"});
  for (const auto& instance : bench::standard_instances()) {
    const std::size_t opt = bench::exact_optimum(instance.g);
    const double lp_opt = bench::lp_optimum(instance.g);
    const auto lp_exact = lp::solve_lp_mds(instance.g);
    const auto frac = core::approximate_lp(instance.g, {.k = 3});

    struct input_spec {
      std::string name;
      const std::vector<double>* x;
      double alpha;
    };
    const input_spec inputs[] = {
        {"LP*", &lp_exact->x, 1.0},
        {"alg3_k3", &frac.x, lp_opt > 0 ? frac.objective / lp_opt : 1.0},
    };

    for (const auto& input : inputs) {
      common::running_stats sizes;
      common::running_stats fixups;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        core::rounding_params params;
        params.exec.seed = seed;
        const auto res =
            core::round_to_dominating_set(instance.g, *input.x, params);
        if (!verify::is_dominating_set(instance.g, res.in_set)) {
          std::cerr << "BUG: not dominating on " << instance.name << "\n";
          return 1;
        }
        sizes.add(static_cast<double>(res.size));
        fixups.add(100.0 * static_cast<double>(res.selected_by_fixup) /
                   static_cast<double>(instance.g.node_count()));
      }
      const double bound =
          core::rounding_ratio_bound(instance.g.max_degree(), input.alpha);
      table.add_row({instance.name, common::fmt_int(opt), input.name,
                     common::fmt_double(input.alpha, 2),
                     common::fmt_double(sizes.mean(), 2),
                     common::fmt_double(sizes.ci95_halfwidth(), 2),
                     common::fmt_double(sizes.mean() / static_cast<double>(opt), 3),
                     common::fmt_double(bound, 2),
                     common::fmt_double(fixups.mean(), 1)});
    }
  }
  bench::print_table(
      "Theorem 3: expected dominating set size from randomized rounding (" +
          std::to_string(kSeeds) + " seeds)",
      "Shape to verify: measured ratio E[|DS|]/OPT <= bound; the LP* input "
      "(alpha = 1) gives the smaller sets.",
      table);
  return 0;
}
