/// \file bench_p6_dynamic.cpp
/// \brief P6: incremental repair vs from-scratch re-solve under churn.
///
/// Replays seeded mutation streams (dyn::workload, hub-biased) against a
/// resident instance for {gnp, ba} x --batches batch sizes, timing every
/// epoch's frontier-restricted repair and sampling full re-solves of the
/// same snapshots for comparison (dyn::run_replay).  Reports p50/p99
/// repair latency, the sampled full-re-solve median, and the speedup; the
/// per-run final digest doubles as a determinism check -- the replay is a
/// pure function of the seed.
///
/// Output: a human table plus, with --out, a machine-readable
/// domset-dynamic-bench/1 document gated in CI by
/// scripts/check_bench_trend.py against
/// bench/baselines/dynamic_baseline.json (digest equality always;
/// medians within tolerance).  Cells are keyed graph/n/batch/mode with
/// mode "repair" (incremental median), "full" (sampled re-solve
/// median), and "capped" (incremental with --frontier-cap, the
/// degree-capped dirty-ball path `domset serve` runs on hub-heavy
/// graphs; carries its own p50/p99 latency percentiles and digest).
///
///   bench_p6_dynamic --n 20000 --epochs 16 --batches 8,64
///       --frontier-cap 32 --out bench_p6_ci.json [--min-speedup 5]
///
/// --min-speedup N exits nonzero unless every cell pair's
/// full-median / repair-median is at least N (the subsystem's reason to
/// exist; 0 = report only).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/graphs.hpp"
#include "api/result_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "dyn/replay.hpp"
#include "dyn/workload.hpp"

namespace {

using namespace domset;

struct cell {
  std::string graph;
  std::size_t n = 0;
  std::size_t batch = 0;
  std::string mode;  // "repair" | "full" | "capped"
  double median_ms = 0.0;
  double p99_ms = 0.0;    // repair/capped rows only
  double speedup = 0.0;   // repair/capped rows only
  std::size_t size = 0;   // final solution size
  std::string digest;     // per-run final digest (determinism gate)
};

std::vector<std::size_t> parse_batches(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    out.push_back(std::stoul(spec.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::cli_parser cli(
      "P6: incremental repair vs full re-solve under mutation replay");
  cli.add_flag("n", "20000", "nodes in the initial graph");
  cli.require_nonnegative_int("n");
  cli.add_flag("epochs", "16", "epochs per replay");
  cli.require_nonnegative_int("epochs");
  cli.add_flag("batches", "8,64", "comma-separated mutations per epoch");
  cli.add_flag("sample-full", "4", "full re-solve every k-th epoch");
  cli.require_nonnegative_int("sample-full");
  cli.add_flag("alg", "pipeline", "incumbent registry solver");
  cli.add_flag("frontier-cap", "32",
               "degree cap for the extra \"capped\" cells (0 = skip them)");
  cli.require_nonnegative_int("frontier-cap");
  cli.add_flag("out", "", "write the domset-dynamic-bench/1 document here");
  cli.add_flag("min-speedup", "0",
               "fail unless full/repair median ratio is at least this in "
               "every configuration (0 = report only)");
  cli.require_nonnegative_int("min-speedup");
  cli.add_exec_flags(1);
  if (!cli.parse(argc, argv)) return 2;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  const auto sample_full =
      static_cast<std::size_t>(cli.get_int("sample-full"));
  const auto min_speedup =
      static_cast<double>(cli.get_int("min-speedup"));
  const auto frontier_cap =
      static_cast<std::uint32_t>(cli.get_int("frontier-cap"));
  const std::vector<std::size_t> batches =
      parse_batches(cli.get_string("batches"));
  exec::context exec = cli.exec();
  exec.ensure_shared_pool();

  std::vector<cell> cells;
  bool speedup_ok = true;
  for (const char* family : {"gnp", "ba"}) {
    const graph::graph g = api::make_graph(family, n, exec.seed, {});
    for (const std::size_t batch : batches) {
      dyn::replay_spec spec;
      spec.inc.solver = cli.get_string("alg");
      spec.inc.exec = exec;
      spec.batch = batch;
      spec.epochs = epochs;
      spec.sample_full = sample_full;
      spec.gen.bias = dyn::workload_bias::hub;
      spec.gen.seed = exec.seed;
      spec.mutations_label = "gen:hub";
      const dyn::replay_result r = dyn::run_replay(g, family, spec);

      cells.push_back({family, n, batch, "repair",
                       r.summary.median_repair_ms, r.summary.p99_repair_ms,
                       r.summary.speedup, r.summary.final_size,
                       r.summary.final_digest});
      cells.push_back({family, n, batch, "full",
                       r.summary.median_full_resolve_ms, 0.0, 0.0,
                       r.summary.final_size, r.summary.final_digest});
      if (min_speedup > 0.0 && r.summary.speedup < min_speedup)
        speedup_ok = false;

      if (frontier_cap > 0) {
        // The serve-path variant: same stream, hubs pinned to the
        // boundary shell.  Digests differ from the uncapped run (a
        // different re-decide set) but are equally deterministic, so
        // the cell gets its own digest gate.
        dyn::replay_spec capped = spec;
        capped.inc.frontier_cap = frontier_cap;
        const dyn::replay_result rc = dyn::run_replay(g, family, capped);
        cells.push_back({family, n, batch, "capped",
                         rc.summary.median_repair_ms,
                         rc.summary.p99_repair_ms, rc.summary.speedup,
                         rc.summary.final_size, rc.summary.final_digest});
      }
    }
  }

  common::text_table table({"graph", "batch", "mode", "median ms", "p99 ms",
                            "speedup", "size", "digest"});
  for (const cell& c : cells) {
    table.add_row({c.graph, common::fmt_int(static_cast<long long>(c.batch)),
                   c.mode, common::fmt_double(c.median_ms, 2),
                   c.mode != "full" ? common::fmt_double(c.p99_ms, 2) : "-",
                   c.mode != "full" ? common::fmt_double(c.speedup, 1) : "-",
                   common::fmt_int(static_cast<long long>(c.size)),
                   c.digest});
  }
  table.print(std::cout);
  std::printf("\nn=%zu, %zu epochs per replay, full re-solve sampled every "
              "%zu epochs, seed %llu\n",
              n, epochs, sample_full,
              static_cast<unsigned long long>(exec.seed));

  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) {
    char buf[64];
    std::string json;
    json += "{\n  \"schema\": \"domset-dynamic-bench/1\",\n";
    json += "  \"alg\": \"" + api::json_escape(cli.get_string("alg")) +
            "\",\n";
    json += "  \"epochs\": " + std::to_string(epochs) + ",\n";
    json += "  \"seed\": " + std::to_string(exec.seed) + ",\n";
    json += "  \"cells\": [";
    bool first = true;
    for (const cell& c : cells) {
      json += first ? "\n" : ",\n";
      first = false;
      json += "    {\n";
      json += "      \"graph\": \"" + api::json_escape(c.graph) + "\",\n";
      json += "      \"n\": " + std::to_string(c.n) + ",\n";
      json += "      \"batch\": " + std::to_string(c.batch) + ",\n";
      json += "      \"mode\": \"" + c.mode + "\",\n";
      std::snprintf(buf, sizeof buf, "%.17g", c.median_ms);
      json += "      \"median_ms\": " + std::string(buf) + ",\n";
      std::snprintf(buf, sizeof buf, "%.17g", c.p99_ms);
      json += "      \"p99_ms\": " + std::string(buf) + ",\n";
      std::snprintf(buf, sizeof buf, "%.17g", c.speedup);
      json += "      \"speedup\": " + std::string(buf) + ",\n";
      json += "      \"size\": " + std::to_string(c.size) + ",\n";
      json += "      \"digest\": \"" + c.digest + "\"\n";
      json += "    }";
    }
    json += "\n  ]\n}\n";
    std::ofstream out(out_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "bench_p6_dynamic: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "bench_p6_dynamic: wrote %s\n", out_path.c_str());
  }

  if (!speedup_ok) {
    std::fprintf(stderr,
                 "bench_p6_dynamic: FAIL: a configuration's full/repair "
                 "median ratio fell below %.1fx\n",
                 min_speedup);
    return 1;
  }
  return 0;
}
