// Experiment R3 -- the remark after Theorem 3: scaling the rounding
// probabilities by ln(d) - ln(ln(d)) instead of ln(d) trades the additive
// "+1" for a factor-2 bound: 2*alpha*(ln(Delta+1) - ln ln(Delta+1)).
//
// We compare both variants on the exact LP optimum (alpha = 1).
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/rounding.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 150;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "R3: plain vs ln-ln rounding variants\n";

  common::text_table table({"instance", "Delta", "OPT", "plain E[|DS|]",
                            "plain bound", "lnln E[|DS|]", "lnln bound",
                            "lnln random%", "plain random%"});
  for (const auto& instance : bench::standard_instances()) {
    const std::size_t opt = bench::exact_optimum(instance.g);
    const auto lp_exact = lp::solve_lp_mds(instance.g);
    if (!lp_exact.has_value()) return 1;

    common::running_stats plain_sizes;
    common::running_stats lnln_sizes;
    common::running_stats plain_random;
    common::running_stats lnln_random;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      core::rounding_params plain;
      plain.exec.seed = seed;
      const auto res_p =
          core::round_to_dominating_set(instance.g, lp_exact->x, plain);
      if (!verify::is_dominating_set(instance.g, res_p.in_set)) return 1;
      plain_sizes.add(static_cast<double>(res_p.size));
      plain_random.add(static_cast<double>(res_p.selected_randomly));

      core::rounding_params lnln;
      lnln.exec.seed = seed;
      lnln.variant = core::rounding_variant::log_log;
      const auto res_l =
          core::round_to_dominating_set(instance.g, lp_exact->x, lnln);
      if (!verify::is_dominating_set(instance.g, res_l.in_set)) return 1;
      lnln_sizes.add(static_cast<double>(res_l.size));
      lnln_random.add(static_cast<double>(res_l.selected_randomly));
    }
    const double d_opt = static_cast<double>(opt);
    table.add_row(
        {instance.name, common::fmt_int(instance.g.max_degree()),
         common::fmt_int(static_cast<long long>(opt)),
         common::fmt_double(plain_sizes.mean(), 2),
         common::fmt_double(
             core::rounding_ratio_bound(instance.g.max_degree(), 1.0) * d_opt, 1),
         common::fmt_double(lnln_sizes.mean(), 2),
         common::fmt_double(
             core::rounding_ratio_bound_log_log(instance.g.max_degree(), 1.0) *
                 d_opt, 1),
         common::fmt_double(lnln_random.mean(), 1),
         common::fmt_double(plain_random.mean(), 1)});
  }
  bench::print_table(
      "Remark after Theorem 3: ln vs (ln - ln ln) scaling (" +
          std::to_string(kSeeds) + " seeds, LP* input)",
      "Shape to verify: both variants respect their bounds; the ln-ln "
      "variant selects fewer nodes in the random phase on high-degree "
      "instances (larger Delta => bigger gap).",
      table);
  return 0;
}
