// Experiment T6 -- Theorem 6 (the headline result): Algorithm 3 composed
// with Algorithm 1 yields an expected O(k * Delta^{2/k} * log Delta)
// approximation of MDS in O(k^2) rounds.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 60;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "T6: end-to-end distributed dominating set vs Theorem 6\n";

  common::text_table table({"instance", "OPT", "k", "E[|DS|]", "+-ci95",
                            "ratio", "bound", "rounds", "msgs/node"});
  for (const auto& instance : bench::standard_instances()) {
    const std::size_t opt = bench::exact_optimum(instance.g);
    for (std::uint32_t k : {1U, 2U, 3U, 4U}) {
      common::running_stats sizes;
      std::size_t rounds = 0;
      std::uint64_t max_msgs = 0;
      double bound = 0.0;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        core::pipeline_params params;
        params.k = k;
        params.exec.seed = seed;
        const auto res = core::compute_dominating_set(instance.g, params);
        if (!verify::is_dominating_set(instance.g, res.in_set)) {
          std::cerr << "BUG: not dominating on " << instance.name << "\n";
          return 1;
        }
        sizes.add(static_cast<double>(res.size));
        rounds = res.total_rounds;
        max_msgs = std::max(max_msgs,
                            res.fractional.metrics.max_messages_per_node);
        bound = res.expected_ratio_bound;
      }
      table.add_row(
          {instance.name, common::fmt_int(opt), common::fmt_int(k),
           common::fmt_double(sizes.mean(), 2),
           common::fmt_double(sizes.ci95_halfwidth(), 2),
           common::fmt_double(sizes.mean() / static_cast<double>(opt), 3),
           common::fmt_double(bound, 1),
           common::fmt_int(static_cast<long long>(rounds)),
           common::fmt_int(static_cast<long long>(max_msgs))});
    }
  }
  bench::print_table(
      "Theorem 6: expected |DS| / |DS_OPT| of the full pipeline (" +
          std::to_string(kSeeds) + " seeds)",
      "Shape to verify: measured ratio <= bound everywhere; constant rounds "
      "independent of n; quality improves with k at quadratic round cost.",
      table);
  return 0;
}
