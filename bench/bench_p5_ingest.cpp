/// \file bench_p5_ingest.cpp
/// \brief P5: graph ingestion throughput -- text parse (serial and
/// parallel) vs binary .dcsr load (mmap) vs compressed load.
///
/// Generates one deterministic power-law graph (Barabasi-Albert, fixed
/// seed), writes it in every on-disk format, then times each ingestion
/// path end to end (open -> validated graph) over --repeats repetitions,
/// reporting medians.  Every loaded graph's format-independent digest
/// (graph/csr_file.hpp) must agree -- the bench doubles as a
/// cross-format agreement check.
///
/// Output: a human table plus, with --out, a machine-readable
/// domset-ingest/1 document gated in CI by scripts/check_bench_trend.py
/// against bench/baselines/ingest_baseline.json (same semantics as the
/// solver sweep gate: digest equality always; wall-time within
/// tolerance).
///
///   bench_p5_ingest --edges 1000000 --repeats 3 --out bench_p5_ci.json
///       [--min-speedup 10]
///
/// --min-speedup N exits nonzero unless the mmap binary load is at least
/// N times faster than the serial text parse (the subsystem's reason to
/// exist; 0 = report only).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "api/graphs.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/csr_file.hpp"
#include "graph/io.hpp"

namespace {

using namespace domset;

double time_ms(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct cell {
  std::string op;      // "parse" | "load" | "write"
  std::string format;  // "text" | "binary" | "compressed"
  std::size_t threads = 1;
  std::vector<double> times_ms;
  double median_ms = 0.0;
  std::string digest;
};

std::string json_escape_free(const std::string& s) { return s; }  // ids only

}  // namespace

int main(int argc, char** argv) {
  common::cli_parser cli(
      "P5: ingestion throughput -- text parse vs mmap .dcsr load");
  cli.add_flag("edges", "1000000", "approximate undirected edge count");
  cli.require_nonnegative_int("edges");
  cli.add_flag("repeats", "3", "timed repetitions per cell (median reported)");
  cli.require_nonnegative_int("repeats");
  cli.add_flag("parse-threads", "4",
               "worker count for the parallel text-parse cell");
  cli.require_nonnegative_int("parse-threads");
  cli.add_flag("out", "", "write the domset-ingest/1 JSON document here");
  cli.add_flag("dir", "",
               "directory for the on-disk fixtures (default: a fresh "
               "directory under the system temp dir, removed afterwards)");
  cli.add_flag("min-speedup", "0",
               "fail unless mmap load is at least this many times faster "
               "than the serial text parse (0 = report only)");
  cli.require_nonnegative_int("min-speedup");
  if (!cli.parse(argc, argv)) return 2;

  const auto edges = static_cast<std::size_t>(cli.get_int("edges"));
  const auto repeats =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("repeats")));
  const auto parse_threads =
      static_cast<std::size_t>(cli.get_int("parse-threads"));
  const auto min_speedup = static_cast<std::size_t>(cli.get_int("min-speedup"));

  // Deterministic power-law fixture: BA with 10 attachments per node has
  // ~10n edges, heavy-tailed degrees (the shape real graphs ingest).
  constexpr std::size_t k_attach = 10;
  const std::size_t n = std::max<std::size_t>(100, edges / k_attach);
  api::param_map ba_params;
  ba_params.set("m", std::to_string(k_attach));
  const graph::graph g = api::make_graph("ba", n, /*seed=*/1, ba_params);
  const std::string expected_digest = graph::graph_digest_hex(g);

  std::filesystem::path dir = cli.get_string("dir");
  const bool own_dir = dir.empty();
  if (own_dir) {
    dir = std::filesystem::temp_directory_path() /
          ("domset_ingest_p5_" +
           std::to_string(std::chrono::steady_clock::now()
                              .time_since_epoch()
                              .count()));
  }
  std::filesystem::create_directories(dir);
  const std::string text_path = (dir / "p5.txt").string();
  const std::string binary_path = (dir / "p5.dcsr").string();
  const std::string compressed_path = (dir / "p5z.dcsr").string();

  {
    std::ofstream out(text_path, std::ios::binary | std::ios::trunc);
    graph::write_edge_list(g, out);
  }
  graph::write_csr(g, binary_path, /*compress=*/false);
  graph::write_csr(g, compressed_path, /*compress=*/true);

  std::vector<cell> cells;
  const auto run_cell = [&](const std::string& op, const std::string& format,
                            std::size_t threads, auto&& load) {
    cell c{op, format, threads, {}, 0.0, {}};
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      graph::graph loaded;
      c.times_ms.push_back(time_ms([&] { loaded = load(); }));
      if (rep == 0) c.digest = graph::graph_digest_hex(loaded);
    }
    c.median_ms = common::median(c.times_ms);
    cells.push_back(std::move(c));
  };

  run_cell("parse", "text", 1, [&] {
    return graph::read_edge_list_file(text_path, {.threads = 1});
  });
  run_cell("parse", "text", parse_threads, [&] {
    return graph::read_edge_list_file(text_path, {.threads = parse_threads});
  });
  run_cell("load", "binary", 1, [&] { return graph::load_csr(binary_path); });
  run_cell("load", "compressed", 1,
           [&] { return graph::load_csr(compressed_path); });

  if (own_dir) std::filesystem::remove_all(dir);

  bool digests_ok = true;
  for (const cell& c : cells) digests_ok &= c.digest == expected_digest;

  const auto median_of = [&](const char* op, const char* format,
                             std::size_t threads) {
    for (const cell& c : cells)
      if (c.op == op && c.format == format && c.threads == threads)
        return c.median_ms;
    return 0.0;
  };
  const double text_ms = median_of("parse", "text", 1);
  const double mmap_ms = median_of("load", "binary", 1);
  const double speedup = mmap_ms > 0.0 ? text_ms / mmap_ms : 0.0;

  common::text_table table(
      {"op", "format", "threads", "median ms", "Medges/s", "digest"});
  for (const cell& c : cells) {
    table.add_row({c.op, c.format,
                   common::fmt_int(static_cast<long long>(c.threads)),
                   common::fmt_double(c.median_ms, 2),
                   common::fmt_double(c.median_ms > 0.0
                                          ? static_cast<double>(g.edge_count()) /
                                                (c.median_ms * 1e3)
                                          : 0.0,
                                      1),
                   c.digest});
  }
  table.print(std::cout);
  std::printf("\n%s, %zu repeats; mmap binary load is %.1fx the serial text "
              "parse; digests %s\n",
              g.summary().c_str(), repeats, speedup,
              digests_ok ? "agree" : "DISAGREE");

  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) {
    std::string json;
    json += "{\n  \"schema\": \"domset-ingest/1\",\n";
    json += "  \"nodes\": " + std::to_string(g.node_count()) + ",\n";
    json += "  \"edges\": " + std::to_string(g.edge_count()) + ",\n";
    json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", speedup);
    json += "  \"speedup_mmap_vs_text\": " + std::string(buf) + ",\n";
    json += "  \"cells\": [";
    bool first = true;
    for (const cell& c : cells) {
      json += first ? "\n" : ",\n";
      first = false;
      json += "    {\n";
      json += "      \"op\": \"" + json_escape_free(c.op) + "\",\n";
      json += "      \"format\": \"" + json_escape_free(c.format) + "\",\n";
      json += "      \"edges\": " + std::to_string(g.edge_count()) + ",\n";
      json += "      \"threads\": " + std::to_string(c.threads) + ",\n";
      std::snprintf(buf, sizeof buf, "%.17g", c.median_ms);
      json += "      \"median_ms\": " + std::string(buf) + ",\n";
      json += "      \"times_ms\": [";
      for (std::size_t i = 0; i < c.times_ms.size(); ++i) {
        if (i != 0) json += ", ";
        std::snprintf(buf, sizeof buf, "%.17g", c.times_ms[i]);
        json += buf;
      }
      json += "],\n";
      json += "      \"digest\": \"" + c.digest + "\"\n";
      json += "    }";
    }
    json += "\n  ]\n}\n";
    std::ofstream out(out_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "bench_p5_ingest: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "bench_p5_ingest: wrote %s\n", out_path.c_str());
  }

  if (!digests_ok) {
    std::fprintf(stderr,
                 "bench_p5_ingest: FAIL: loaded digests disagree with the "
                 "generated graph (%s)\n",
                 expected_digest.c_str());
    return 1;
  }
  if (min_speedup > 0 && speedup < static_cast<double>(min_speedup)) {
    std::fprintf(stderr,
                 "bench_p5_ingest: FAIL: mmap load is only %.1fx the serial "
                 "text parse (want >= %zux)\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
