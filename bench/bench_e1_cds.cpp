// Extension E1 -- connected dominating set backbones.
//
// The ad-hoc routing motivation needs a *connected* backbone.  This bench
// upgrades each algorithm's dominating set to a CDS via the 3x connector
// augmentation and compares backbone sizes: the |CDS| <= 3|DS| guarantee,
// and how the KW pipeline's redundancy (randomized rounding overshoot)
// actually pays off by needing fewer connectors.  Luby's MIS is included
// as the classical independent-set backbone seed.
#include <iostream>

#include "bench_common.hpp"
#include "baselines/greedy.hpp"
#include "baselines/luby_mis.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cds.hpp"
#include "core/pipeline.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 20;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "E1: connected dominating set backbones\n";

  common::text_table table({"instance", "algo", "|DS|", "connectors",
                            "|CDS|", "3|DS| bound", "connected"});
  common::rng gen(606);
  // Random samples are restricted to their largest component: the CDS size
  // guarantee is per component and a connected comparison is cleaner.
  bench::named_graph instances[] = {
      {"udg_150_.14",
       graph::largest_component(graph::random_geometric(150, 0.14, gen).g).g},
      {"gnp_120_.05",
       graph::largest_component(graph::gnp_random(120, 0.05, gen)).g},
      {"grid_10x10", graph::grid_graph(10, 10)},
  };
  for (const auto& instance : instances) {
    // KW pipeline (mean over seeds).
    common::running_stats ds_sizes;
    common::running_stats cds_sizes;
    common::running_stats connectors;
    bool all_connected = true;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      core::pipeline_params params;
      params.k = 3;
      params.exec.seed = seed;
      const auto ds = core::compute_dominating_set(instance.g, params);
      const auto cds = core::connect_dominating_set(instance.g, ds.in_set);
      ds_sizes.add(static_cast<double>(ds.size));
      cds_sizes.add(static_cast<double>(cds.size));
      connectors.add(static_cast<double>(cds.connectors_added));
      all_connected &=
          core::is_connected_within_components(instance.g, cds.in_set);
    }
    table.add_row({instance.name, "KW k=3",
                   common::fmt_double(ds_sizes.mean(), 1),
                   common::fmt_double(connectors.mean(), 1),
                   common::fmt_double(cds_sizes.mean(), 1),
                   common::fmt_double(3.0 * ds_sizes.mean(), 1),
                   all_connected ? "yes" : "NO"});

    // Greedy.
    const auto greedy = baselines::greedy_mds(instance.g);
    const auto greedy_cds =
        core::connect_dominating_set(instance.g, greedy.in_set);
    table.add_row(
        {instance.name, "greedy",
         common::fmt_int(static_cast<long long>(greedy.size)),
         common::fmt_int(static_cast<long long>(greedy_cds.connectors_added)),
         common::fmt_int(static_cast<long long>(greedy_cds.size)),
         common::fmt_int(static_cast<long long>(3 * greedy.size)),
         core::is_connected_within_components(instance.g, greedy_cds.in_set)
             ? "yes"
             : "NO"});

    // Luby MIS backbone.
    baselines::luby_params lparams;
    lparams.exec.seed = 3;
    const auto mis = baselines::luby_mis(instance.g, lparams);
    const auto mis_cds = core::connect_dominating_set(instance.g, mis.in_set);
    table.add_row(
        {instance.name, "luby-MIS",
         common::fmt_int(static_cast<long long>(mis.size)),
         common::fmt_int(static_cast<long long>(mis_cds.connectors_added)),
         common::fmt_int(static_cast<long long>(mis_cds.size)),
         common::fmt_int(static_cast<long long>(3 * mis.size)),
         core::is_connected_within_components(instance.g, mis_cds.in_set)
             ? "yes"
             : "NO"});
  }
  bench::print_table(
      "Extension: DS -> CDS augmentation (|CDS| <= 3|DS|)",
      "Shape to verify: every backbone is connected and within the 3x "
      "bound; denser dominating sets need proportionally fewer connectors.",
      table);
  return 0;
}
