// Experiment F1 -- reproduces Figure 1 of the paper.
//
// The figure illustrates the inner-loop cascade for k = 4: nodes with
// a(v) >= (Delta+1)^{3/4} active neighbors are covered first, then those
// with a(v) >= (Delta+1)^{2/4}, and so on, which is exactly the Lemma 3
// invariant.  We run Algorithm 2 with k = 4, record max_v a(v) at every
// inner iteration, and print it against the invariant bound
// (Delta+1)^{(m+1)/k}.  The "shape" to verify: within every outer
// iteration the measured maximum steps down with m and never exceeds the
// bound.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/alg2.hpp"

namespace {

using namespace domset;

void run_cascade(const bench::named_graph& instance, std::uint32_t k) {
  const graph::graph& g = instance.g;
  const double dp1 = static_cast<double>(g.max_degree()) + 1.0;

  common::text_table table(
      {"ell", "m", "max a(v) white", "bound (D+1)^{(m+1)/k}", "covered %"});
  core::alg2_observer obs = [&](const core::alg2_iteration_view& view) {
    std::uint32_t max_a = 0;
    std::size_t gray_count = 0;
    for (graph::node_id v = 0; v < g.node_count(); ++v) {
      if (view.gray[v]) {
        ++gray_count;
        continue;
      }
      std::uint32_t a = 0;
      g.for_closed_neighborhood(v, [&](graph::node_id u) {
        if (view.active[u]) ++a;
      });
      max_a = std::max(max_a, a);
    }
    const double bound = std::pow(
        dp1, (static_cast<double>(view.m) + 1.0) / static_cast<double>(k));
    table.add_row({common::fmt_int(view.ell), common::fmt_int(view.m),
                   common::fmt_int(max_a), common::fmt_double(bound, 2),
                   common::fmt_double(100.0 * static_cast<double>(gray_count) /
                                          static_cast<double>(g.node_count()),
                                      1)});
  };
  (void)core::approximate_lp_known_delta(g, {.k = k}, &obs);

  bench::print_table(
      "Figure 1 cascade: " + instance.name + " (" + g.summary() +
          "), k=" + std::to_string(k),
      "Lemma 3 invariant: the white-node maximum of a(v) stays at or below "
      "the bound and cascades down within each outer iteration.",
      table);
}

}  // namespace

int main() {
  std::cout << "F1: active-neighbor cascade (Figure 1 of the paper)\n";
  common::rng gen(77);
  const bench::named_graph dense{"gnp_120_.12",
                                 graph::gnp_random(120, 0.12, gen)};
  run_cascade(dense, 4);

  const bench::named_graph star{"star_81", graph::star_graph(81)};
  run_cascade(star, 4);
  return 0;
}
