// Ablation A1 -- schedule freshness in Algorithm 2.
//
// The paper's literal loop body tests activity (lines 6-8) *before* the
// color exchange (lines 9-10), so the dynamic degree lags one iteration.
// Reordering the exchange first makes the degree fresh at identical round
// cost.  This bench measures, for both schedules:
//   * the objective (fresh prunes spurious late activations),
//   * the worst observed Lemma 4 slack  max_i z_i / paper-bound,
// demonstrating that the literal schedule can exceed the paper constant
// while the reordered one never does.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/alg2.hpp"
#include "core/alg2_fresh.hpp"

namespace {

using namespace domset;

/// Runs one schedule and returns {objective, worst z/bound ratio}.
struct slack_result {
  double objective = 0.0;
  double worst_slack = 0.0;
};

template <typename RunFn>
slack_result measure(const graph::graph& g, std::uint32_t k, RunFn&& run) {
  const std::size_t n = g.node_count();
  const double dp1 = static_cast<double>(g.max_degree()) + 1.0;
  std::vector<double> z(n, 0.0);
  std::vector<double> prev_x(n, 0.0);
  slack_result out;
  core::alg2_observer obs = [&](const core::alg2_iteration_view& view) {
    if (view.m == k - 1) std::fill(z.begin(), z.end(), 0.0);
    for (graph::node_id j = 0; j < n; ++j) {
      const double inc = view.x[j] - prev_x[j];
      if (inc <= 1e-15) continue;
      std::vector<graph::node_id> whites;
      g.for_closed_neighborhood(j, [&](graph::node_id u) {
        if (!view.gray[u]) whites.push_back(u);
      });
      for (const graph::node_id u : whites)
        z[u] += inc / static_cast<double>(whites.size());
    }
    prev_x = view.x;
    if (view.m == 0) {
      const double bound = std::pow(
          dp1,
          -(static_cast<double>(view.ell) - 1.0) / static_cast<double>(k));
      for (graph::node_id v = 0; v < n; ++v)
        out.worst_slack = std::max(out.worst_slack, z[v] / bound);
    }
  };
  const auto res = run(g, core::lp_approx_params{.k = k}, &obs);
  out.objective = res.objective;
  return out;
}

}  // namespace

int main() {
  std::cout << "A1: literal vs reordered (fresh-degree) Algorithm 2\n";

  common::text_table table({"instance", "k", "literal sum(x)", "fresh sum(x)",
                            "literal max z/bound", "fresh max z/bound",
                            "rounds (both)"});
  for (const auto& instance : bench::standard_instances()) {
    for (std::uint32_t k : {2U, 3U, 4U}) {
      const auto literal =
          measure(instance.g, k, [](const graph::graph& g,
                                    const core::lp_approx_params& p,
                                    const core::alg2_observer* o) {
            return core::approximate_lp_known_delta(g, p, o);
          });
      const auto fresh =
          measure(instance.g, k, [](const graph::graph& g,
                                    const core::lp_approx_params& p,
                                    const core::alg2_observer* o) {
            return core::approximate_lp_known_delta_fresh(g, p, o);
          });
      table.add_row({instance.name, common::fmt_int(k),
                     common::fmt_double(literal.objective, 2),
                     common::fmt_double(fresh.objective, 2),
                     common::fmt_double(literal.worst_slack, 3),
                     common::fmt_double(fresh.worst_slack, 3),
                     common::fmt_int(static_cast<long long>(
                         core::alg2_round_count(k)))});
    }
  }
  bench::print_table(
      "Ablation: dynamic-degree freshness in Algorithm 2's schedule",
      "Shape to verify: fresh max z/bound <= 1 always (Lemma 4 exact); the "
      "literal schedule may exceed 1 (but <= 2 here); objectives are "
      "comparable and round counts identical.",
      table);
  return 0;
}
