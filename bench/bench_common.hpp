// Shared instance sets and helpers for the experiment benches.
//
// Every bench prints a table whose rows are recorded in EXPERIMENTS.md;
// instance sets are deterministic (fixed seeds) so reruns reproduce the
// documented numbers exactly.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "exact/exact_mds.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "lp/lp_mds.hpp"

namespace domset::bench {

struct named_graph {
  std::string name;
  graph::graph g;
};

/// The standard instance set used across experiment tables: one
/// representative per family, sized so that exact LP (simplex) and exact
/// MDS (branch and bound) both succeed in seconds.
inline std::vector<named_graph> standard_instances() {
  common::rng gen(20030909);  // PODC 2003 submission date
  std::vector<named_graph> out;
  out.push_back({"star_50", graph::star_graph(50)});
  out.push_back({"cycle_48", graph::cycle_graph(48)});
  out.push_back({"grid_7x7", graph::grid_graph(7, 7)});
  out.push_back({"tree_3_3", graph::balanced_tree(3, 3)});
  out.push_back({"caterp_8x3", graph::caterpillar(8, 3)});
  out.push_back({"gnp_60_.08", graph::gnp_random(60, 0.08, gen)});
  out.push_back({"gnp_50_.2", graph::gnp_random(50, 0.2, gen)});
  out.push_back({"udg_70_.18", graph::random_geometric(70, 0.18, gen).g});
  out.push_back({"ba_60_2", graph::barabasi_albert(60, 2, gen)});
  out.push_back({"reg_48_4", graph::random_regular(48, 4, gen)});
  out.push_back({"cluster_6x8", graph::cluster_graph(6, 8, 6, gen)});
  out.push_back({"advers_5", graph::greedy_adversarial(5)});
  return out;
}

/// Larger instances for the complexity/scaling tables (no exact solving).
inline std::vector<named_graph> large_instances() {
  common::rng gen(17);
  std::vector<named_graph> out;
  out.push_back({"gnp_2k_.004", graph::gnp_random(2000, 0.004, gen)});
  out.push_back({"udg_2k_.035", graph::random_geometric(2000, 0.035, gen).g});
  out.push_back({"ba_2k_3", graph::barabasi_albert(2000, 3, gen)});
  out.push_back({"grid_45x45", graph::grid_graph(45, 45)});
  return out;
}

/// |DS_OPT| via branch and bound (the standard instances are sized so this
/// always succeeds).
inline std::size_t exact_optimum(const graph::graph& g) {
  exact::exact_options opts;
  opts.node_budget = 200'000'000;
  const auto res = exact::solve_mds(g, opts);
  if (!res.has_value())
    throw std::runtime_error("exact optimum: budget exhausted");
  return res->size;
}

/// LP_MDS optimum via simplex.
inline double lp_optimum(const graph::graph& g) {
  const auto res = lp::solve_lp_mds(g);
  if (!res.has_value()) throw std::runtime_error("lp optimum: did not solve");
  return res->value;
}

/// Prints the table with a title banner, in both aligned-text form.
inline void print_table(const std::string& title, const std::string& note,
                        const common::text_table& table) {
  std::cout << "\n=== " << title << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
  table.print(std::cout);
  std::cout << std::flush;
}

}  // namespace domset::bench
