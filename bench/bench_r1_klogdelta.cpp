// Experiment R1 -- the remark after Theorem 6: choosing k = Theta(log
// Delta) yields an O(log^2 Delta) approximation in O(log^2 Delta) rounds.
//
// We grow Delta through a family of complete bipartite graphs (Delta+1
// doubles each step), set k = ceil(log2(Delta+1)), and report the measured
// end-to-end ratio against log2^2(Delta+1) and against the Theorem 6 bound
// evaluated at that k.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

namespace {

constexpr std::uint64_t kSeeds = 40;

}  // namespace

int main() {
  using namespace domset;
  std::cout << "R1: k = Theta(log Delta) scaling of the full pipeline\n";

  common::text_table table({"Delta", "k=ceil(log2(D+1))", "n", "OPT",
                            "E[|DS|]", "ratio", "log2^2(D+1)",
                            "Thm6 bound", "rounds"});
  for (std::uint32_t half : {4U, 8U, 16U, 32U, 64U}) {
    // K_{half,half}: Delta = half, OPT = 2.
    const graph::graph g = graph::complete_bipartite(half, half);
    const std::uint32_t delta = g.max_degree();
    const auto k = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(delta) + 1.0)));
    const std::size_t opt = 2;

    common::running_stats sizes;
    std::size_t rounds = 0;
    double bound = 0.0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      core::pipeline_params params;
      params.k = k;
      params.exec.seed = seed;
      const auto res = core::compute_dominating_set(g, params);
      if (!verify::is_dominating_set(g, res.in_set)) return 1;
      sizes.add(static_cast<double>(res.size));
      rounds = res.total_rounds;
      bound = res.expected_ratio_bound;
    }
    const double log_d = std::log2(static_cast<double>(delta) + 1.0);
    table.add_row(
        {common::fmt_int(delta), common::fmt_int(k),
         common::fmt_int(static_cast<long long>(g.node_count())),
         common::fmt_int(static_cast<long long>(opt)),
         common::fmt_double(sizes.mean(), 2),
         common::fmt_double(sizes.mean() / static_cast<double>(opt), 2),
         common::fmt_double(log_d * log_d, 1), common::fmt_double(bound, 1),
         common::fmt_int(static_cast<long long>(rounds))});
  }
  bench::print_table(
      "Remark after Theorem 6: k = Theta(log Delta) gives polylog quality in "
      "polylog rounds (" + std::to_string(kSeeds) + " seeds)",
      "Shape to verify: measured ratio grows (at most) polylogarithmically "
      "with Delta and stays far below the Theorem 6 bound; rounds grow as "
      "Theta(k^2) = Theta(log^2 Delta).",
      table);
  return 0;
}
