// Experiment R2 -- the remark after Theorem 4: the weighted variant of
// Algorithm 2 approximates the weighted fractional dominating set within
// k * (Delta+1)^{1/k} * [c_max*(Delta+1)]^{1/k}.
#include <iostream>

#include "bench_common.hpp"
#include "baselines/greedy.hpp"
#include "common/table.hpp"
#include "core/weighted.hpp"
#include "graph/generators.hpp"
#include "lp/lp_mds.hpp"
#include "verify/verify.hpp"

int main() {
  using namespace domset;
  std::cout << "R2: weighted fractional dominating set variant\n";

  common::text_table table({"instance", "c_max", "wLP_OPT", "k", "c^T x",
                            "ratio", "bound", "feasible", "w-greedy"});
  common::rng cost_gen(8899);
  for (const auto& instance : bench::standard_instances()) {
    for (const double c_max : {2.0, 8.0}) {
      const auto costs =
          graph::uniform_costs(instance.g.node_count(), c_max, cost_gen);
      const auto wlp = lp::solve_weighted_lp_mds(instance.g, costs);
      if (!wlp.has_value()) return 1;
      const auto wgreedy = baselines::greedy_weighted_mds(instance.g, costs);
      for (std::uint32_t k : {2U, 4U}) {
        const auto res =
            core::approximate_weighted_lp(instance.g, costs, {.k = k});
        const double ratio =
            wlp->value > 0 ? res.objective / wlp->value : 1.0;
        table.add_row(
            {instance.name, common::fmt_double(res.c_max, 1),
             common::fmt_double(wlp->value, 2), common::fmt_int(k),
             common::fmt_double(res.objective, 2),
             common::fmt_double(ratio, 3),
             common::fmt_double(res.ratio_bound, 1),
             lp::is_primal_feasible(instance.g, res.x) ? "yes" : "NO",
             common::fmt_double(
                 verify::set_cost(wgreedy.in_set, costs), 1)});
      }
    }
  }
  bench::print_table(
      "Remark after Theorem 4: weighted variant (costs uniform in [1, c_max])",
      "Shape to verify: ratio <= bound; the bound degrades by the extra "
      "[c_max(D+1)]^{1/k} factor; weighted greedy is the centralized "
      "quality reference.",
      table);
  return 0;
}
