// Quickstart: build a network, run the Kuhn-Wattenhofer distributed
// dominating set pipeline (Theorem 6), and verify the result.
//
//   ./quickstart [--n 300] [--radius 0.1] [--k 3] [--seed 1]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "exec/context.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace domset;

  common::cli_parser cli(
      "Quickstart: distributed dominating set on a random unit-disk network");
  cli.add_flag("n", "300", "number of wireless nodes");
  cli.add_flag("radius", "0.1", "radio range in the unit square");
  cli.add_flag("k", "3", "trade-off parameter (quality vs rounds)");
  cli.add_exec_flags();
  if (!cli.parse(argc, argv)) return 1;
  const exec::context exec = cli.exec();

  // 1. Build the network: n devices in the unit square, links within range.
  common::rng gen(exec.seed);
  const auto geo = graph::random_geometric(
      static_cast<std::size_t>(cli.get_int("n")), cli.get_double("radius"),
      gen);
  const graph::graph& g = geo.g;
  std::printf("network: %s\n", g.summary().c_str());

  // 2. Run the distributed algorithm (Algorithm 3 + Algorithm 1).
  core::pipeline_params params;
  params.k = static_cast<std::uint32_t>(cli.get_int("k"));
  params.exec = exec;
  const auto result = core::compute_dominating_set(g, params);

  // 3. Verify and report.
  const bool valid = verify::is_dominating_set(g, result.in_set);
  std::printf("dominating set size : %zu (valid: %s)\n", result.size,
              valid ? "yes" : "NO");
  std::printf("fractional objective: %.2f\n", result.fractional.objective);
  std::printf("certified lower bnd : %.2f (Lemma 1 dual bound)\n",
              graph::dual_lower_bound(g));
  std::printf("rounds              : %zu (independent of n!)\n",
              result.total_rounds);
  std::printf("messages            : %llu total, max %llu per node\n",
              static_cast<unsigned long long>(result.total_messages),
              static_cast<unsigned long long>(
                  result.fractional.metrics.max_messages_per_node));
  std::printf("max message size    : %u bits (CONGEST-friendly)\n",
              result.fractional.metrics.max_message_bits);
  std::printf("expected-size bound : %.1f x |DS_OPT| (Theorem 6)\n",
              result.expected_ratio_bound);
  return valid ? 0 : 1;
}
