// Battery-aware cluster heads: the weighted dominating set variant.
//
// In a sensor network, serving as cluster head drains the battery, so
// nodes with low charge should be picked reluctantly.  We model cost =
// c_max / battery_level and run the weighted Algorithm 2 variant (Remark
// after Theorem 4) followed by randomized rounding, then compare the total
// cost against the unweighted pipeline and the weighted greedy.
//
//   ./weighted_cover [--n 300] [--radius 0.1] [--cmax 6] [--k 3] [--seed 5]
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/greedy.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/rounding.hpp"
#include "core/weighted.hpp"
#include "exec/context.hpp"
#include "graph/generators.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace domset;

  common::cli_parser cli("Battery-aware (weighted) cluster-head election");
  cli.add_flag("n", "300", "number of sensor nodes");
  cli.add_flag("radius", "0.1", "radio range");
  cli.add_flag("cmax", "6", "maximum cost ratio (full vs depleted battery)");
  cli.add_flag("k", "3", "trade-off parameter");
  cli.add_exec_flags(5);
  if (!cli.parse(argc, argv)) return 1;
  // One worker pool serves all three engine-driven stages below.
  exec::context exec = cli.exec();
  exec.ensure_shared_pool();
  common::rng gen(exec.seed);
  const auto geo = graph::random_geometric(
      static_cast<std::size_t>(cli.get_int("n")), cli.get_double("radius"),
      gen);
  const graph::graph& g = geo.g;

  // Node costs: inverse battery level, in [1, c_max].
  const auto costs =
      graph::uniform_costs(g.node_count(), cli.get_double("cmax"), gen);

  std::printf("network: %s, costs in [1, %.1f]\n", g.summary().c_str(),
              cli.get_double("cmax"));

  // Weighted fractional solution + rounding.
  core::lp_approx_params lp_params;
  lp_params.k = static_cast<std::uint32_t>(cli.get_int("k"));
  lp_params.exec = exec;
  const auto frac = core::approximate_weighted_lp(g, costs, lp_params);
  core::rounding_params r_params;
  r_params.exec = exec;
  const auto weighted_ds = core::round_to_dominating_set(g, frac.x, r_params);
  if (!verify::is_dominating_set(g, weighted_ds.in_set)) return 1;

  // Unweighted pipeline for comparison (ignores batteries).
  core::pipeline_params u_params;
  u_params.k = lp_params.k;
  u_params.exec = exec;
  const auto unweighted = core::compute_dominating_set(g, u_params);

  // Centralized weighted greedy as the quality reference.
  const auto wgreedy = baselines::greedy_weighted_mds(g, costs);

  const double w_cost = verify::set_cost(weighted_ds.in_set, costs);
  const double u_cost = verify::set_cost(unweighted.in_set, costs);
  const double g_cost = verify::set_cost(wgreedy.in_set, costs);

  std::printf("\n%-28s %8s %12s\n", "algorithm", "heads", "battery cost");
  std::printf("%-28s %8zu %12.1f\n", "weighted KW (distributed)",
              weighted_ds.size, w_cost);
  std::printf("%-28s %8zu %12.1f\n", "unweighted KW (distributed)",
              unweighted.size, u_cost);
  std::printf("%-28s %8zu %12.1f\n", "weighted greedy (central)",
              wgreedy.size, g_cost);
  std::printf("\nweighted LP objective %.1f; remark bound %.1f x wLP_OPT\n",
              frac.objective, frac.ratio_bound);
  std::printf("battery saving vs unweighted: %.1f%%\n",
              100.0 * (u_cost - w_cost) / u_cost);
  return 0;
}
