// Mobile topology churn: why constant-time matters.
//
// The paper's introduction argues that ad-hoc networks change so often
// that recomputing a dominating set must be cheap.  This example simulates
// epochs of node movement (random waypoint-ish jitter) and re-runs the
// constant-round pipeline after each epoch, tracking how the head set and
// its quality evolve.  The cost per epoch is O(k^2) rounds regardless of
// network size -- the property that makes per-epoch recomputation viable.
//
//   ./dynamic_network [--n 300] [--radius 0.1] [--epochs 8] [--step 0.02]
//                     [--k 2] [--seed 11]
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "exec/context.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace {

using namespace domset;

/// Rebuilds the unit-disk graph from positions.
graph::graph build_udg(const std::vector<double>& x,
                       const std::vector<double>& y, double radius) {
  graph::graph_builder b(x.size());
  const double r2 = radius * radius;
  for (graph::node_id i = 0; i < x.size(); ++i) {
    for (graph::node_id j = i + 1; j < x.size(); ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
    }
  }
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  common::cli_parser cli("Recompute cluster heads under topology churn");
  cli.add_flag("n", "300", "number of mobile nodes");
  cli.add_flag("radius", "0.1", "radio range");
  cli.add_flag("epochs", "8", "movement epochs to simulate");
  cli.add_flag("step", "0.02", "max movement per epoch");
  cli.add_flag("k", "2", "trade-off parameter");
  cli.add_exec_flags(11);
  if (!cli.parse(argc, argv)) return 1;
  // One worker pool serves every epoch; recomputation under churn is
  // exactly the many-consecutive-runs shape the shared pool exists for.
  exec::context exec = cli.exec();
  exec.ensure_shared_pool();

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const double radius = cli.get_double("radius");
  const double step = cli.get_double("step");
  common::rng gen(exec.seed);

  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = gen.next_double();
    y[i] = gen.next_double();
  }

  std::printf("%6s %10s %8s %8s %10s %10s %9s\n", "epoch", "edges", "Delta",
              "heads", "churn", "dual LB", "rounds");
  std::vector<std::uint8_t> previous_heads;
  for (int epoch = 0; epoch < cli.get_int("epochs"); ++epoch) {
    const graph::graph g = build_udg(x, y, radius);

    core::pipeline_params params;
    params.k = static_cast<std::uint32_t>(cli.get_int("k"));
    params.exec = exec.with_seed(static_cast<std::uint64_t>(epoch) + 100);
    const auto res = core::compute_dominating_set(g, params);
    if (!verify::is_dominating_set(g, res.in_set)) {
      std::fprintf(stderr, "BUG: invalid head set at epoch %d\n", epoch);
      return 1;
    }

    // Churn: heads that changed since the previous epoch.
    std::size_t churn = 0;
    if (!previous_heads.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        if (res.in_set[i] != previous_heads[i]) ++churn;
    }
    previous_heads = res.in_set;

    std::printf("%6d %10zu %8u %8zu %10zu %10.1f %9zu\n", epoch,
                g.edge_count(), g.max_degree(), res.size, churn,
                graph::dual_lower_bound(g), res.total_rounds);

    // Move nodes (reflecting at the borders).
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = std::fabs(x[i] + (gen.next_double() * 2.0 - 1.0) * step);
      y[i] = std::fabs(y[i] + (gen.next_double() * 2.0 - 1.0) * step);
      if (x[i] > 1.0) x[i] = 2.0 - x[i];
      if (y[i] > 1.0) y[i] = 2.0 - y[i];
    }
  }
  std::puts("\nrounds per epoch are constant in n -- recomputation stays "
            "affordable at any scale (the paper's motivation).");
  return 0;
}
