// Mobile topology churn: why constant-time matters.
//
// The paper's introduction argues that ad-hoc networks change so often
// that recomputing a dominating set must be cheap.  This example simulates
// epochs of node movement (random waypoint-ish jitter) over a unit-disk
// graph, but instead of re-solving from scratch it feeds the per-epoch
// edge diff to the dyn:: subsystem: dyn::incremental_engine commits each
// batch of `add=`/`del=` mutations and repairs only the dirty ball around
// the moved links, falling back to a full re-solve when movement dirties
// too much of the graph.  The per-epoch cost tracks how much the topology
// changed, not how large it is -- the dynamic-network motivation from the
// paper, now with the re-solve itself incremental (docs/dynamic.md).
//
//   ./dynamic_network [--n 300] [--radius 0.1] [--epochs 8] [--step 0.02]
//                     [--movers 0.02] [--k 2] [--ball-radius 2]
//                     [--full-fraction 0.5] [--seed 11]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "dyn/incremental.hpp"
#include "dyn/mutation.hpp"
#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace {

using namespace domset;

/// Builds the unit-disk graph from positions (initial epoch only; later
/// epochs are expressed as mutation batches against the resident graph).
graph::graph build_udg(const std::vector<double>& x,
                       const std::vector<double>& y, double radius) {
  graph::graph_builder b(x.size());
  const double r2 = radius * radius;
  for (graph::node_id i = 0; i < x.size(); ++i) {
    for (graph::node_id j = i + 1; j < x.size(); ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
    }
  }
  return std::move(b).build();
}

/// Diffs the geometric adjacency against the committed graph and returns
/// the mutation batch that carries one epoch of movement.
std::vector<dyn::mutation> movement_batch(const dyn::dynamic_graph& g,
                                          const std::vector<double>& x,
                                          const std::vector<double>& y,
                                          double radius) {
  std::vector<dyn::mutation> batch;
  const double r2 = radius * radius;
  for (graph::node_id i = 0; i < x.size(); ++i) {
    for (graph::node_id j = i + 1; j < x.size(); ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const bool now = dx * dx + dy * dy <= r2;
      const bool before = g.has_edge(i, j);
      if (now == before) continue;
      batch.push_back({now ? dyn::mutation_kind::add_edge
                           : dyn::mutation_kind::del_edge,
                       i, j});
    }
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  common::cli_parser cli("Repair cluster heads under topology churn");
  cli.add_flag("n", "300", "number of mobile nodes");
  cli.add_flag("radius", "0.1", "radio range");
  cli.add_flag("epochs", "8", "movement epochs to simulate");
  cli.add_flag("step", "0.02", "max movement per epoch");
  cli.add_flag("movers", "0.02",
               "fraction of nodes that move each epoch (1 = everyone)");
  cli.add_flag("k", "2", "trade-off parameter");
  cli.add_flag("ball-radius", "2", "dirty-ball repair radius (hops)");
  // Dense little demo graphs dirty a large fraction per batch; a higher
  // threshold than the production default keeps the demo incremental.
  cli.add_flag("full-fraction", "0.5",
               "full re-solve when the ball exceeds this graph fraction");
  cli.add_exec_flags(11);
  if (!cli.parse(argc, argv)) return 1;
  // One worker pool serves every epoch; repair under churn is exactly the
  // many-consecutive-runs shape the shared pool exists for.
  exec::context exec = cli.exec();
  exec.ensure_shared_pool();

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const double radius = cli.get_double("radius");
  const double step = cli.get_double("step");
  const double movers = cli.get_double("movers");
  common::rng gen(exec.seed);

  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = gen.next_double();
    y[i] = gen.next_double();
  }

  dyn::incremental_params params;
  params.solver = "pipeline";
  params.solver_params.set("k", std::to_string(cli.get_int("k")));
  params.exec = exec;
  params.radius = static_cast<std::uint32_t>(cli.get_int("ball-radius"));
  params.full_fraction = cli.get_double("full-fraction");
  dyn::incremental_engine engine(build_udg(x, y, radius), params);

  std::printf("%6s %10s %6s %8s %8s %6s %8s %10s\n", "epoch", "edges",
              "muts", "ball", "mode", "heads", "churn", "dual LB");
  for (int epoch = 0; epoch < cli.get_int("epochs"); ++epoch) {
    // Move a `movers` fraction of the nodes (reflecting at the borders);
    // epoch 0 keeps the initial placement so the first row shows the
    // from-scratch solve's graph.  Partial movement is the realistic
    // mobility shape -- and the regime where the dirty ball stays small
    // enough for incremental repair to win over the escape hatch.
    if (epoch > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (gen.next_double() >= movers) continue;
        x[i] = std::fabs(x[i] + (gen.next_double() * 2.0 - 1.0) * step);
        y[i] = std::fabs(y[i] + (gen.next_double() * 2.0 - 1.0) * step);
        if (x[i] > 1.0) x[i] = 2.0 - x[i];
        if (y[i] > 1.0) y[i] = 2.0 - y[i];
      }
    }

    const std::vector<dyn::mutation> batch =
        movement_batch(engine.network(), x, y, radius);
    const dyn::epoch_report rep = engine.step(batch);

    const graph::graph g = engine.snapshot();
    if (!verify::is_dominating_set(g, engine.solution())) {
      std::fprintf(stderr, "BUG: invalid head set at epoch %d\n", epoch);
      return 1;
    }

    std::printf("%6d %10zu %6zu %8zu %8s %6zu %8zu %10.1f\n", epoch,
                rep.edges, rep.mutations, rep.ball_nodes,
                rep.full_resolve ? "full" : "repair", rep.size, rep.changed,
                graph::dual_lower_bound(g));
  }
  std::puts("\nrepair cost tracks the movement diff, not the network size "
            "-- churn stays affordable at any scale (the paper's "
            "motivation, served incrementally).");
  return 0;
}
