// Ad-hoc network clustering -- the motivating application from the paper's
// introduction: the dominating set members act as cluster heads / routers,
// every other node attaches to an adjacent head.
//
// This example runs the pipeline with final-membership announcement, forms
// clusters, and reports the statistics a protocol designer would care
// about: head count vs optimum proxy, head load (cluster sizes), and how
// much of the network the backbone's 2-hop reach covers.
//
//   ./adhoc_clustering [--n 400] [--radius 0.09] [--k 3] [--seed 7]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/greedy.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "exec/context.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace domset;

  common::cli_parser cli("Cluster-head election in a mobile ad-hoc network");
  cli.add_flag("n", "400", "number of wireless nodes");
  cli.add_flag("radius", "0.09", "radio range");
  cli.add_flag("k", "3", "trade-off parameter");
  cli.add_exec_flags(7);
  if (!cli.parse(argc, argv)) return 1;
  const exec::context exec = cli.exec();

  common::rng gen(exec.seed);
  const auto geo = graph::random_geometric(
      static_cast<std::size_t>(cli.get_int("n")), cli.get_double("radius"),
      gen);
  const graph::graph& g = geo.g;
  std::printf("network: %s, %zu connected component(s)\n", g.summary().c_str(),
              graph::connected_components(g).count);

  // Elect cluster heads; announce_final so every device learns its head.
  core::pipeline_params params;
  params.k = static_cast<std::uint32_t>(cli.get_int("k"));
  params.announce_final = true;
  params.exec = exec;
  const auto result = core::compute_dominating_set(g, params);
  if (!verify::is_dominating_set(g, result.in_set)) {
    std::fprintf(stderr, "BUG: head set is not dominating\n");
    return 1;
  }

  // Attach each node to its announced head; measure cluster sizes.
  std::vector<std::size_t> cluster_size(g.node_count(), 0);
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    const graph::node_id head = result.rounding.dominator[v];
    if (head != graph::invalid_node) ++cluster_size[head];
  }
  std::vector<double> sizes;
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    if (result.in_set[v]) sizes.push_back(static_cast<double>(cluster_size[v]));
  const auto stats = common::summarize(sizes);

  const auto greedy = baselines::greedy_mds(g);
  std::printf("\ncluster heads       : %zu (centralized greedy: %zu, dual LB: %.1f)\n",
              result.size, greedy.size, graph::dual_lower_bound(g));
  std::printf("election rounds     : %zu (constant-time, Theorem 6)\n",
              result.total_rounds);
  std::printf("cluster size        : mean %.1f, median %.0f, max %.0f\n",
              stats.mean, stats.median, stats.max);
  std::printf("head fraction       : %.1f%% of nodes\n",
              100.0 * static_cast<double>(result.size) /
                  static_cast<double>(g.node_count()));

  // Backbone sanity: every node is at most 1 hop from a head, so any
  // head-to-head relay path costs at most 3x the flat-routing hop count.
  std::size_t attached = 0;
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    const graph::node_id head = result.rounding.dominator[v];
    if (head == v || (head != graph::invalid_node && g.has_edge(v, head)))
      ++attached;
  }
  std::printf("attachment          : %zu/%zu nodes adjacent to their head\n",
              attached, g.node_count());
  return 0;
}
