// Parameter sweep: the k trade-off on a workload of your choice.
// Reproduces the paper's central tension -- approximation quality vs
// round count -- interactively.
//
//   ./parameter_sweep [--family udg|gnp|grid|ba|star] [--n 400]
//                     [--kmax 8] [--seeds 20] [--seed 3]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "api/bench_runner.hpp"
#include "api/graphs.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "graph/properties.hpp"
#include "sim/delivery.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace domset;

  common::cli_parser cli("Sweep the k parameter: quality vs rounds");
  cli.add_flag("family", "udg", "graph family: udg|gnp|grid|ba|star");
  cli.add_flag("n", "400", "approximate node count");
  cli.add_flag("kmax", "8", "largest k to try");
  cli.add_flag("seeds", "20", "seeds to average the randomized rounding over");
  cli.add_exec_flags(3);
  if (!cli.parse(argc, argv)) return 1;
  // All sweep runs share one worker pool (created only when parallelism
  // is requested).
  exec::context exec = cli.exec();
  exec.ensure_shared_pool();

  const std::string family = cli.get_string("family");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  // The same named-family builder the `domset` driver uses, so this graph
  // is identical to the one the bench sweep below constructs from
  // (family, n, seed).
  const graph::graph g = api::make_graph(family, n, exec.seed);
  const double lb = graph::dual_lower_bound(g);
  std::printf("graph: %s, certified dual lower bound %.1f\n",
              g.summary().c_str(), lb);

  common::text_table table({"k", "rounds", "msgs/node", "E[|DS|]",
                            "ratio vs LB", "Thm6 bound"});
  const auto kmax = static_cast<std::uint32_t>(cli.get_int("kmax"));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));
  for (std::uint32_t k = 1; k <= kmax; ++k) {
    common::running_stats sizes;
    std::size_t rounds = 0;
    std::uint64_t msgs = 0;
    double bound = 0.0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      core::pipeline_params params;
      params.k = k;
      params.exec = exec.with_seed(s + 1);
      const auto res = core::compute_dominating_set(g, params);
      if (!verify::is_dominating_set(g, res.in_set)) return 1;
      sizes.add(static_cast<double>(res.size));
      rounds = res.total_rounds;
      msgs = std::max(msgs, res.fractional.metrics.max_messages_per_node);
      bound = res.expected_ratio_bound;
    }
    table.add_row({common::fmt_int(k),
                   common::fmt_int(static_cast<long long>(rounds)),
                   common::fmt_int(static_cast<long long>(msgs)),
                   common::fmt_double(sizes.mean(), 1),
                   common::fmt_double(sizes.mean() / lb, 2),
                   common::fmt_double(bound, 1)});
  }
  table.print(std::cout);
  std::puts("\nRead the table bottom-up to choose k: the smallest k whose "
            "quality you can accept costs the fewest rounds.");

  // Second axis of the scenario space: sweep *across algorithms* -- no
  // hand-rolled loop, the same api::run_bench substrate `domset bench`
  // and the CI trend gate execute (same graph as above, same shared
  // pool, k filtered to the solvers that accept it).
  api::bench_spec spec;
  spec.algs = {"alg2", "alg3", "pipeline", "lrg", "luby", "wu_li"};
  spec.graphs = {family};
  spec.ns = {n};
  spec.seeds = {exec.seed};
  spec.deliveries = {exec.delivery};
  spec.threads = {exec.threads};
  spec.repeats = 1;
  spec.solver_params.set("k", "3");
  spec.base_exec = exec;
  const api::bench_document doc = api::run_bench(spec);

  common::text_table algs({"algorithm", "rounds", "msgs total", "objective",
                           "ratio vs LB"});
  for (const api::bench_cell& cell : doc.cells) {
    const api::solve_result& res = cell.record.result;
    algs.add_row(
        {cell.record.alg + (res.integral() ? "" : " (LP)"),
         common::fmt_int(static_cast<long long>(res.metrics.rounds)),
         common::fmt_int(static_cast<long long>(res.metrics.messages_sent)),
         common::fmt_double(res.objective, 1),
         common::fmt_double(res.objective / lb, 2)});
  }
  std::puts("");
  algs.print(std::cout);
  std::puts("\nOne harness, many algorithms: every solver above ran through "
            "the bench runner (api/bench_runner.hpp) on the same exec "
            "context and worker pool -- the path `domset bench` and the CI "
            "trend gate exercise.");
  return 0;
}
