/// \file domset_main.cpp
/// \brief The `domset` driver binary: run any registered dominating-set
/// solver on any named graph family from one command line.
///
///   domset list
///       enumerate registered solvers and graph families
///   domset run --alg pipeline --graph gnp --n 100000 --k 3 --json
///       build the graph, run the solver under the shared exec flags
///       (--seed --threads --delivery --drop --congest-bits), verify the
///       output, and print a human summary or the stable domset-run/1
///       JSON record (see api/result_json.hpp)
///   domset bench --alg pipeline,greedy --graph gnp,star --n 5000
///                --seeds 1,2 --delivery push,pull --threads 1,2 --json
///       declarative sweep over the comma-listed axes through the bench
///       runner (api/bench_runner.hpp): every cell on one shared worker
///       pool, repeat-interleaved timings, one domset-bench/1 document
///   domset replay --graph ba --n 100000 --mutations gen --batch 32 --json
///       solve once, keep the instance resident, and stream mutation
///       epochs through the frontier-restricted incremental engine
///       (src/dyn): dirty-ball re-solve + splice per epoch, sampled
///       full-re-solve comparisons, one domset-dynamic/1 document
///   domset serve --socket /tmp/domset.sock --graph ba --n 100000
///       keep the solved instance resident behind an AF_UNIX line
///       protocol: mutations admitted into the incremental engine,
///       lock-free epoch-pinned queries (src/serve, docs/serve.md)
///   domset load --socket /tmp/domset.sock --graph ba --n 100000
///               --clients 8 --json
///       closed-loop load generator against a running server: seeded
///       mutator + concurrent query clients, p50/p99 latency under
///       repair, one domset-serve/1 document
///   domset gen --graph ba --n 100000 --seed 1 --out graph.txt
///       write a generated family as a text edge list (CI fixtures,
///       reproducible by seed)
///   domset convert --in graph.txt --out graph.dcsr [--compress] [--verify]
///       convert between the text edge-list format and the binary .dcsr
///       container (graph/csr_file.hpp); --verify round-trips the output
///       and asserts digest equality
///
/// Exit status: 0 on success (integral outputs additionally verified
/// dominating), 1 on an invalid solution, 2 on usage errors.  With
/// `--allow-partial`, a run degraded by --faults/--drop exits 0 and the
/// record carries a quantitative coverage report instead.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/bench_runner.hpp"
#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "dyn/mutation.hpp"
#include "dyn/replay.hpp"
#include "dyn/workload.hpp"
#include "exec/context.hpp"
#include "graph/csr_file.hpp"
#include "graph/io.hpp"
#include "serve/load.hpp"
#include "serve/server.hpp"
#include "sim/delivery.hpp"
#include "verify/verify.hpp"

namespace {

using namespace domset;

int cmd_list() {
  std::printf("registered solvers (domset run --alg <name>):\n");
  for (const api::solver* s : api::solver_registry::instance().list()) {
    std::printf("  %-12s %s\n", std::string(s->name()).c_str(),
                std::string(s->description()).c_str());
    std::string keys;
    for (const std::string_view k : s->param_keys()) {
      if (!keys.empty()) keys += ", ";
      keys += "--";
      keys += k;
    }
    if (!keys.empty()) std::printf("  %-12s   params: %s\n", "", keys.c_str());
  }
  std::printf("\ngraph families (domset run --graph <name>):\n");
  for (const api::graph_family& f : api::graph_families()) {
    std::printf("  %-12s %s\n", std::string(f.name).c_str(),
                std::string(f.description).c_str());
    if (!f.params.empty())
      std::printf("  %-12s   params: %s\n", "", std::string(f.params).c_str());
  }
  return 0;
}

/// One param flag shared by `run` and `bench`: a single table row drives
/// both CLI registration and forwarding into the param_map, so the two
/// can never fall out of sync (a registered-but-unforwarded flag would
/// be a silent no-op -- the exact bug class require_known exists for).
struct param_flag {
  const char* name;
  const char* default_value;  // ignored for switches
  const char* help;
  bool is_switch = false;
  bool nonnegative_int = false;
};

/// Algorithm params, forwarded into the solver param_map only when
/// explicitly set.
constexpr param_flag solver_param_flags[] = {
    {"k", "2", "paper trade-off parameter (LP/pipeline solvers)"},
    {"variant", "plain",
     "rounding variant: plain | log_log (rounding/pipeline)"},
    {"known-delta", "", "pipeline: use Algorithm 2 (global Delta known)",
     true},
    {"announce-final", "",
     "rounding/pipeline: members announce final membership", true},
    {"max-rounds", "0", "round cap override (lrg/luby)", false, true},
    {"epsilon", "0.5",
     "arboricity/auto: threshold decay rate (tau <- tau/(1+epsilon))"},
    {"costs", "uniform",
     "weighted: cost vector -- uniform | degree | file:<path>"},
    {"cmax", "4", "weighted: cost ceiling for costs=uniform"},
    {"base", "pipeline",
     "cds: integral base solver to connect (base=<name>)"},
    {"repair", "off",
     "self-healing pass on any integral solver: off | radius (re-run the "
     "solver on the dirty subgraph) | greedy (local patch)"},
    {"repair-radius", "2",
     "repair=radius: dirty-region radius in hops around each hole", false,
     true},
};

/// Graph-family params.
constexpr param_flag graph_param_flags[] = {
    {"p", "0", "gnp: edge probability (default 8/n)"},
    {"radius", "0", "udg: radio range (default 1.6/sqrt(n))"},
    {"m", "3", "ba: attachments per node", false, true},
    {"d", "4", "regular: node degree", false, true},
    {"arity", "3", "tree: children per node", false, true},
    {"path", "", "file: graph file to load (--graph file)"},
    {"format", "auto",
     "file: how to read --path -- auto | text | binary (auto sniffs the "
     ".dcsr magic)"},
    {"parse-threads", "1",
     "file: text parser worker count (0 = one per hardware thread)", false,
     true},
};

template <std::size_t N>
void add_param_flags(common::cli_parser& cli, const param_flag (&flags)[N]) {
  for (const param_flag& flag : flags) {
    if (flag.is_switch) {
      cli.add_switch(flag.name, flag.help);
    } else {
      cli.add_flag(flag.name, flag.default_value, flag.help);
      if (flag.nonnegative_int) cli.require_nonnegative_int(flag.name);
    }
  }
}

/// Copies the flags the user explicitly set into a param_map (switches
/// arrive as "true").
template <std::size_t N>
void forward_set_flags(const common::cli_parser& cli,
                       const param_flag (&flags)[N], api::param_map& out) {
  for (const param_flag& flag : flags)
    if (cli.is_set(flag.name)) out.set(flag.name, cli.get_string(flag.name));
}

int write_output(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "domset: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Run a registered dominating-set solver on a generated graph");
  cli.add_flag("alg", "pipeline",
               "solver name (see `domset list` for the registry)");
  cli.add_flag("graph", "gnp", "graph family (see `domset list`)");
  cli.add_flag("n", "1000", "approximate node count");
  cli.require_nonnegative_int("n");
  cli.add_exec_flags();
  add_param_flags(cli, solver_param_flags);
  add_param_flags(cli, graph_param_flags);
  // Output.
  cli.add_switch("json", "emit the domset-run/1 JSON record");
  cli.add_flag("out", "", "write the record to this file instead of stdout");
  cli.add_switch("allow-partial",
                 "faulty runs (--faults/--drop) whose output degraded exit 0 "
                 "with a machine-readable coverage report instead of failing");
  if (!cli.parse(argc, argv)) return 2;

  const exec::context exec = cli.exec();
  const std::string alg = cli.get_string("alg");
  const std::string family = cli.get_string("graph");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  api::param_map solver_params;
  forward_set_flags(cli, solver_param_flags, solver_params);
  api::param_map graph_params;
  forward_set_flags(cli, graph_param_flags, graph_params);

  api::graph_source source;
  const graph::graph g =
      api::make_graph(family, n, exec.seed, graph_params, &source);
  const api::solver& solver = api::solver_registry::instance().find(alg);

  const auto start = std::chrono::steady_clock::now();
  api::run_record record;
  record.result = solver.solve(g, exec, solver_params);
  record.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  record.alg = alg;
  record.graph_family = family;
  record.nodes = g.node_count();
  record.edges = g.edge_count();
  record.max_degree = g.max_degree();
  if (!source.path.empty()) record.source = source;
  record.exec = exec;
  record.params = solver_params;
  record.valid = record.result.integral()
                     ? verify::is_dominating_set(g, record.result.in_set)
                     : true;
  if (exec.faulty() && record.result.integral())
    record.coverage =
        verify::coverage(g, record.result.in_set, exec.faults.get());

  if (cli.get_bool("json") || cli.is_set("out")) {
    const int status = write_output(api::to_json(record), cli.get_string("out"));
    if (status != 0) return status;
  } else {
    std::printf("graph   : %s (%s)\n", g.summary().c_str(), family.c_str());
    if (record.source.has_value())
      std::printf("loaded  : %s (%s, %.1f ms)\n", record.source->path.c_str(),
                  record.source->format.c_str(), record.source->load_ms);
    std::printf("solver  : %s\n", alg.c_str());
    if (record.result.integral())
      std::printf("|DS|    : %zu (valid: %s)\n", record.result.size,
                  record.valid ? "yes" : "NO");
    std::printf("objective: %.3f", record.result.objective);
    if (record.result.ratio_bound > 0.0)
      std::printf("  (guarantee %.2f x OPT)", record.result.ratio_bound);
    std::printf("\nrounds  : %zu, messages %llu, max %u-bit\n",
                record.result.metrics.rounds,
                static_cast<unsigned long long>(
                    record.result.metrics.messages_sent),
                record.result.metrics.max_message_bits);
    if (exec.faulty()) {
      const sim::run_metrics& m = record.result.metrics;
      std::printf("faults  : dropped %llu, lost-to-faults %llu, duplicated "
                  "%llu, node-rounds down %llu, crashed %llu\n",
                  static_cast<unsigned long long>(m.messages_dropped),
                  static_cast<unsigned long long>(m.messages_lost_to_faults),
                  static_cast<unsigned long long>(m.messages_duplicated),
                  static_cast<unsigned long long>(m.node_rounds_down),
                  static_cast<unsigned long long>(m.nodes_crashed));
    }
    if (record.coverage.has_value())
      std::printf("coverage: %zu/%zu holes (%.4f covered, worst hole %zu "
                  "hops from a dominator)\n",
                  record.coverage->holes(), record.coverage->nodes,
                  record.coverage->covered_fraction,
                  record.coverage->max_hole_radius);
    if (record.result.repair.attempted)
      std::printf("repair  : %s healed %zu hole(s), added %zu node(s), "
                  "touched %zu\n",
                  record.result.repair.mode.c_str(),
                  record.result.repair.holes_before,
                  record.result.repair.added,
                  record.result.repair.touched_nodes);
    std::printf("elapsed : %.1f ms\n", record.elapsed_ms);
  }
  // --allow-partial only forgives fault-induced degradation; an invalid
  // set on a reliable run is a bug and still fails.
  if (!record.valid && cli.get_bool("allow-partial") && exec.faulty())
    return 0;
  return record.valid ? 0 : 1;
}

/// Splits a comma-separated flag value ("push,pull" -> {"push", "pull"}).
/// Empty items (a trailing or doubled comma) are rejected -- a sweep axis
/// with a silent hole would skew the cross product.
std::vector<std::string> split_list(const std::string& value,
                                    const char* flag) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string item =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (item.empty())
      throw std::invalid_argument(std::string("flag '--") + flag +
                                  "': empty item in list '" + value + "'");
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::uint64_t parse_uint(const std::string& value, const char* flag) {
  std::size_t used = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty() || value[0] == '-')
    throw std::invalid_argument(std::string("flag '--") + flag +
                                "': '" + value +
                                "' is not a non-negative integer");
  return parsed;
}

int cmd_bench(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Sweep registered solvers over graph families (one shared worker "
      "pool, repeat-interleaved timings, domset-bench/1 output)");
  cli.add_flag("alg", "pipeline", "comma list of solver names");
  cli.add_flag("graph", "gnp", "comma list of graph families");
  cli.add_flag("n", "1000", "comma list of approximate node counts");
  cli.add_flag("seeds", "1", "comma list of seeds (graph + run seed)");
  cli.add_flag("delivery", "auto",
               "comma list of delivery modes: push | pull | auto");
  cli.add_flag("threads", "1",
               "comma list of worker counts (0 = one per hardware thread)");
  cli.add_flag("repeats", "3", "timed repetitions per cell (median reported)");
  cli.require_nonnegative_int("repeats");
  cli.add_flag("drop", "0",
               "comma list of message-loss probabilities in [0, 1)");
  cli.add_flag("faults", "none",
               "comma list of fault schedules (atoms within one schedule "
               "join with '+', e.g. crash=7@10+burst@5-6:p=0.5)");
  cli.add_flag("congest-bits", "0",
               "flag messages wider than this many bits (0 = unchecked)");
  cli.require_nonnegative_int("congest-bits");
  add_param_flags(cli, solver_param_flags);
  add_param_flags(cli, graph_param_flags);
  cli.add_switch("json",
                 "emit the domset-bench/1 JSON document instead of the "
                 "summary table");
  cli.add_flag("out", "",
               "write the JSON document to this file instead of stdout");
  if (!cli.parse(argc, argv)) return 2;

  api::bench_spec spec;
  spec.algs = split_list(cli.get_string("alg"), "alg");
  spec.graphs = split_list(cli.get_string("graph"), "graph");
  spec.ns.clear();
  for (const std::string& item : split_list(cli.get_string("n"), "n"))
    spec.ns.push_back(static_cast<std::size_t>(parse_uint(item, "n")));
  spec.seeds.clear();
  for (const std::string& item : split_list(cli.get_string("seeds"), "seeds"))
    spec.seeds.push_back(parse_uint(item, "seeds"));
  spec.deliveries.clear();
  for (const std::string& item :
       split_list(cli.get_string("delivery"), "delivery"))
    spec.deliveries.push_back(sim::parse_delivery_mode(item));
  spec.threads.clear();
  for (const std::string& item :
       split_list(cli.get_string("threads"), "threads"))
    spec.threads.push_back(
        static_cast<std::size_t>(parse_uint(item, "threads")));
  spec.repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  for (const std::string& item : split_list(cli.get_string("drop"), "drop")) {
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    if (item.empty() || end != item.c_str() + item.size() ||
        !(parsed >= 0.0 && parsed < 1.0))
      throw std::invalid_argument(
          "flag '--drop': '" + item + "' is not a probability in [0, 1)");
    spec.drops.push_back(parsed);
  }
  spec.faults = split_list(cli.get_string("faults"), "faults");
  spec.base_exec.congest_bit_limit =
      static_cast<std::uint32_t>(cli.get_int("congest-bits"));
  forward_set_flags(cli, solver_param_flags, spec.solver_params);
  forward_set_flags(cli, graph_param_flags, spec.graph_params);

  const api::bench_document doc = api::run_bench(spec);
  if (cli.get_bool("json") || cli.is_set("out")) {
    const int status = write_output(api::to_json(doc), cli.get_string("out"));
    if (status != 0) return status;
    if (!cli.get_string("out").empty())
      std::fprintf(stderr, "domset bench: %zu cells x %zu repeats -> %s\n",
                   doc.cells.size(), doc.repeats,
                   cli.get_string("out").c_str());
    return 0;
  }
  common::text_table table({"alg", "graph", "n", "seed", "delivery",
                            "threads", "drop", "faults", "median ms",
                            "rounds", "dropped", "digest"});
  for (const api::bench_cell& cell : doc.cells) {
    const api::run_record& r = cell.record;
    table.add_row(
        {r.alg, r.graph_family, common::fmt_int(static_cast<long long>(r.nodes)),
         common::fmt_int(static_cast<long long>(r.exec.seed)),
         sim::to_string(r.exec.delivery),
         common::fmt_int(static_cast<long long>(r.exec.threads)),
         common::fmt_double(r.exec.drop_probability, 2),
         r.exec.faults ? sim::to_string(*r.exec.faults) : "none",
         common::fmt_double(cell.median_ms, 2),
         common::fmt_int(static_cast<long long>(r.result.metrics.rounds)),
         common::fmt_int(
             static_cast<long long>(r.result.metrics.messages_dropped)),
         api::digest_hex(r.result)});
  }
  table.print(std::cout);
  std::printf("\n%zu cells x %zu repeats (medians over interleaved repeats; "
              "--json/--out for the domset-bench/1 document)\n",
              doc.cells.size(), doc.repeats);
  return 0;
}

/// `domset replay`: hold a solved instance resident and drive a mutation
/// stream through the frontier-restricted incremental engine (src/dyn),
/// one epoch per --batch mutations, emitting the domset-dynamic/1
/// document with per-epoch digests and repair-vs-full timings.
int cmd_replay(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Replay a mutation stream against a resident solved instance with "
      "frontier-restricted incremental re-solve");
  cli.add_flag("alg", "pipeline",
               "incumbent solver (must produce an integral set)");
  cli.add_flag("graph", "gnp", "graph family (see `domset list`)");
  cli.add_flag("n", "1000", "approximate node count");
  cli.require_nonnegative_int("n");
  cli.add_exec_flags();
  add_param_flags(cli, solver_param_flags);
  add_param_flags(cli, graph_param_flags);
  cli.add_flag("mutations", "gen",
               "mutation source: gen (seeded dyn::workload stream) or a "
               "mutation-log file path (one atom per line, '#' comments)");
  cli.add_flag("bias", "uniform",
               "generator endpoint bias: uniform | hub (degree-biased)");
  cli.add_flag("batch", "32", "mutations per epoch");
  cli.require_nonnegative_int("batch");
  cli.add_flag("epochs", "64",
               "epoch count for generated streams (file streams run "
               "ceil(lines / batch))");
  cli.require_nonnegative_int("epochs");
  cli.add_flag("ball-radius", "2",
               "dirty-ball radius in hops around the touched nodes (>= 1)");
  cli.require_nonnegative_int("ball-radius");
  cli.add_flag("full-fraction", "0.25",
               "fall back to a full re-solve when the dirty ball exceeds "
               "this fraction of the graph (0 = always full)");
  cli.add_flag("frontier-cap", "0",
               "pin nodes with degree above this cap to the dirty-ball "
               "boundary instead of expanding them (0 = off; keeps "
               "radius 2 usable on hub-heavy graphs)");
  cli.require_nonnegative_int("frontier-cap");
  cli.add_flag("sample-full", "8",
               "every k-th epoch also times a from-scratch re-solve for "
               "the comparison columns (0 = never)");
  cli.require_nonnegative_int("sample-full");
  cli.add_switch("json", "emit the domset-dynamic/1 JSON document");
  cli.add_flag("out", "", "write the document to this file instead of stdout");
  if (!cli.parse(argc, argv)) return 2;

  dyn::replay_spec spec;
  spec.inc.solver = cli.get_string("alg");
  spec.inc.exec = cli.exec();
  forward_set_flags(cli, solver_param_flags, spec.inc.solver_params);
  if (spec.inc.solver_params.contains("repair") ||
      spec.inc.solver_params.contains("repair-radius")) {
    std::fprintf(stderr,
                 "domset replay: --repair/--repair-radius do not compose "
                 "here -- the replay engine is the repair pass\n");
    return 2;
  }
  spec.inc.radius = static_cast<std::uint32_t>(cli.get_int("ball-radius"));
  spec.inc.full_fraction = cli.get_double("full-fraction");
  spec.inc.frontier_cap =
      static_cast<std::uint32_t>(cli.get_int("frontier-cap"));
  spec.batch = static_cast<std::size_t>(cli.get_int("batch"));
  spec.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  spec.sample_full = static_cast<std::size_t>(cli.get_int("sample-full"));

  const std::string mutations = cli.get_string("mutations");
  if (mutations == "gen") {
    spec.gen.bias = dyn::parse_workload_bias(cli.get_string("bias"));
    spec.gen.seed = spec.inc.exec.seed;
    spec.mutations_label = "gen:" + cli.get_string("bias");
  } else {
    spec.log = dyn::load_mutation_log(mutations);
    spec.mutations_label = "file:" + mutations;
  }

  api::param_map graph_params;
  forward_set_flags(cli, graph_param_flags, graph_params);
  const std::string family = cli.get_string("graph");
  const graph::graph g =
      api::make_graph(family, static_cast<std::size_t>(cli.get_int("n")),
                      spec.inc.exec.seed, graph_params);

  const dyn::replay_result result = dyn::run_replay(g, family, spec);

  if (cli.get_bool("json") || cli.is_set("out")) {
    const int status =
        write_output(dyn::to_json(result), cli.get_string("out"));
    if (status != 0) return status;
    if (!cli.get_string("out").empty())
      std::fprintf(stderr, "domset replay: %zu epochs -> %s\n",
                   result.summary.epochs, cli.get_string("out").c_str());
    return 0;
  }

  common::text_table table({"epoch", "muts", "touched", "ball", "mode",
                            "holes", "size", "repair ms", "full ms"});
  for (const dyn::replay_epoch& ep : result.epochs) {
    table.add_row(
        {common::fmt_int(static_cast<long long>(ep.report.epoch)),
         common::fmt_int(static_cast<long long>(ep.report.mutations)),
         common::fmt_int(static_cast<long long>(ep.report.touched)),
         common::fmt_int(static_cast<long long>(ep.report.ball_nodes)),
         ep.report.full_resolve ? "full" : "inc",
         common::fmt_int(static_cast<long long>(ep.report.holes_patched)),
         common::fmt_int(static_cast<long long>(ep.report.size)),
         common::fmt_double(ep.repair_ms, 2),
         ep.sampled ? common::fmt_double(ep.full_resolve_ms, 2) : "-"});
  }
  table.print(std::cout);
  std::printf(
      "\n%zu epochs (%zu full re-solves), size %zu -> %zu, digest %s\n",
      result.summary.epochs, result.summary.full_resolves,
      result.summary.initial_size, result.summary.final_size,
      result.summary.final_digest.c_str());
  std::printf(
      "repair p50 %.2f ms, p99 %.2f ms; sampled full re-solve p50 %.2f ms "
      "(speedup %.1fx); every epoch verified dominating\n",
      result.summary.median_repair_ms, result.summary.p99_repair_ms,
      result.summary.median_full_resolve_ms, result.summary.speedup);
  return 0;
}

/// `domset serve`: keep a solved instance resident behind an AF_UNIX
/// line-protocol socket -- mutations are admitted into the incremental
/// engine's pending batch, commits seal epochs (explicit `commit`
/// requests, --batch, or --interval-ms), and queries answer lock-free
/// from pinned epochs.  See docs/serve.md for the protocol and the
/// reader/writer contract.
int cmd_serve(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Serve a resident solved instance over an AF_UNIX line protocol "
      "(lock-free epoch-pinned queries, single-writer commits)");
  cli.add_flag("socket", "", "AF_UNIX socket path to bind (required)");
  cli.add_flag("alg", "pipeline",
               "incumbent solver (must produce an integral set)");
  cli.add_flag("graph", "gnp", "graph family (see `domset list`)");
  cli.add_flag("n", "1000", "approximate node count");
  cli.require_nonnegative_int("n");
  cli.add_exec_flags();
  add_param_flags(cli, solver_param_flags);
  add_param_flags(cli, graph_param_flags);
  cli.add_flag("ball-radius", "2",
               "dirty-ball radius in hops around the touched nodes (>= 1)");
  cli.require_nonnegative_int("ball-radius");
  cli.add_flag("full-fraction", "0.25",
               "fall back to a full re-solve when the dirty ball exceeds "
               "this fraction of the graph (0 = always full)");
  cli.add_flag("frontier-cap", "0",
               "pin nodes with degree above this cap to the dirty-ball "
               "boundary instead of expanding them (0 = off)");
  cli.require_nonnegative_int("frontier-cap");
  cli.add_flag("batch", "0",
               "auto-commit once this many mutations are pending (0 = only "
               "explicit `commit` requests seal epochs -- the reproducible "
               "configuration)");
  cli.require_nonnegative_int("batch");
  cli.add_flag("interval-ms", "0",
               "auto-commit a non-empty pending batch after this many "
               "milliseconds (0 = off)");
  cli.add_flag("epoch-slots", "64",
               "epoch-store wheel size (resident epochs: current + "
               "pinned-retired)");
  cli.require_nonnegative_int("epoch-slots");
  if (!cli.parse(argc, argv)) return 2;
  if (cli.get_string("socket").empty()) {
    std::fprintf(stderr, "domset serve: --socket is required\n");
    return 2;
  }

  serve::server_params params;
  params.socket_path = cli.get_string("socket");
  params.inc.solver = cli.get_string("alg");
  params.inc.exec = cli.exec();
  forward_set_flags(cli, solver_param_flags, params.inc.solver_params);
  if (params.inc.solver_params.contains("repair") ||
      params.inc.solver_params.contains("repair-radius")) {
    std::fprintf(stderr,
                 "domset serve: --repair/--repair-radius do not compose "
                 "here -- the serve engine is the repair pass\n");
    return 2;
  }
  params.inc.radius = static_cast<std::uint32_t>(cli.get_int("ball-radius"));
  params.inc.full_fraction = cli.get_double("full-fraction");
  params.inc.frontier_cap =
      static_cast<std::uint32_t>(cli.get_int("frontier-cap"));
  params.batch_max = static_cast<std::size_t>(cli.get_int("batch"));
  params.interval_ms = cli.get_double("interval-ms");
  params.epoch_slots = static_cast<std::size_t>(cli.get_int("epoch-slots"));

  api::param_map graph_params;
  forward_set_flags(cli, graph_param_flags, graph_params);
  graph::graph g =
      api::make_graph(cli.get_string("graph"),
                      static_cast<std::size_t>(cli.get_int("n")),
                      params.inc.exec.seed, graph_params);

  serve::server srv(std::move(g), params);
  srv.run();
  const serve::server_stats stats = srv.stats();
  std::fprintf(stderr,
               "domset serve: %llu connections, %llu requests, %llu "
               "mutations, %llu commits, %llu epochs published (%llu "
               "reclaimed)\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.mutations_admitted),
               static_cast<unsigned long long>(stats.commits),
               static_cast<unsigned long long>(stats.epochs_published),
               static_cast<unsigned long long>(stats.epochs_reclaimed));
  return 0;
}

/// `domset load`: closed-loop load generator against a running `domset
/// serve` -- one mutator client (seeded workload mirror, explicit commit
/// every --batch) plus --clients concurrent query clients, reporting
/// query p50/p99 overall and during commit windows as one domset-serve/1
/// document.  The graph flags must repeat the server's so the mutator's
/// mirror matches.
int cmd_load(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Drive a running `domset serve` with a seeded concurrent client mix "
      "and measure query latency under repair (domset-serve/1 output)");
  cli.add_flag("socket", "",
               "AF_UNIX socket path of the running server (required)");
  cli.add_flag("alg", "pipeline",
               "the server's incumbent solver, echoed into the record");
  cli.add_flag("graph", "gnp",
               "graph family -- must match the server's flags");
  cli.add_flag("n", "1000", "approximate node count (must match the server)");
  cli.require_nonnegative_int("n");
  cli.add_flag("seed", "1",
               "graph + workload seed (graph part must match the server)");
  cli.require_nonnegative_int("seed");
  add_param_flags(cli, graph_param_flags);
  cli.add_flag("clients", "8", "concurrent query clients");
  cli.require_nonnegative_int("clients");
  cli.add_flag("queries", "200", "queries per client");
  cli.require_nonnegative_int("queries");
  cli.add_flag("mutations", "256", "total mutations the mutator streams");
  cli.require_nonnegative_int("mutations");
  cli.add_flag("batch", "32", "explicit `commit` every this many mutations");
  cli.require_nonnegative_int("batch");
  cli.add_flag("bias", "uniform",
               "generator endpoint bias: uniform | hub (degree-biased)");
  cli.add_flag("log-out", "",
               "write the admitted mutation stream to this file (replayable "
               "offline: domset replay --mutations <file> --batch <batch>)");
  cli.add_switch("shutdown", "send `shutdown` after the run (CI teardown)");
  cli.add_switch("json", "emit the domset-serve/1 JSON document");
  cli.add_flag("out", "", "write the document to this file instead of stdout");
  if (!cli.parse(argc, argv)) return 2;
  if (cli.get_string("socket").empty()) {
    std::fprintf(stderr, "domset load: --socket is required\n");
    return 2;
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  serve::load_params params;
  params.socket_path = cli.get_string("socket");
  params.clients = static_cast<std::size_t>(cli.get_int("clients"));
  params.queries_per_client =
      static_cast<std::size_t>(cli.get_int("queries"));
  params.mutations = static_cast<std::size_t>(cli.get_int("mutations"));
  params.batch = static_cast<std::size_t>(cli.get_int("batch"));
  params.gen.bias = dyn::parse_workload_bias(cli.get_string("bias"));
  params.gen.seed = seed;
  params.query_seed = seed;
  params.shutdown_server = cli.get_bool("shutdown");

  api::param_map graph_params;
  forward_set_flags(cli, graph_param_flags, graph_params);
  const std::string family = cli.get_string("graph");
  const graph::graph mirror_base =
      api::make_graph(family, static_cast<std::size_t>(cli.get_int("n")),
                      seed, graph_params);

  const serve::load_report report = serve::run_load(mirror_base, params);

  const std::string log_path = cli.get_string("log-out");
  if (!log_path.empty()) {
    std::ofstream log(log_path, std::ios::trunc);
    if (!log) {
      std::fprintf(stderr, "domset load: cannot write '%s'\n",
                   log_path.c_str());
      return 2;
    }
    log << "# admitted mutation stream (domset load --seed " << seed
        << " --bias " << cli.get_string("bias") << " --batch "
        << params.batch << ")\n";
    for (const std::string& atom : report.admitted) log << atom << '\n';
    log.flush();
    if (!log) {
      std::fprintf(stderr, "domset load: write to '%s' failed\n",
                   log_path.c_str());
      return 2;
    }
  }

  if (cli.get_bool("json") || cli.is_set("out")) {
    serve::load_document doc;
    doc.alg = cli.get_string("alg");
    doc.params = graph_params;
    doc.exec.seed = seed;
    doc.graph_family = family;
    doc.nodes = mirror_base.node_count();
    doc.edges = mirror_base.edge_count();
    doc.max_degree = mirror_base.max_degree();
    doc.socket = params.socket_path;
    doc.bias = cli.get_string("bias");
    doc.clients = params.clients;
    doc.queries_per_client = params.queries_per_client;
    doc.mutations = params.mutations;
    doc.batch = params.batch;
    doc.report = report;
    const int status =
        write_output(serve::to_json(doc), cli.get_string("out"));
    if (status != 0) return status;
    if (!cli.get_string("out").empty())
      std::fprintf(stderr, "domset load: %zu queries over %zu clients -> %s\n",
                   report.query.count, report.clients,
                   cli.get_string("out").c_str());
  } else {
    std::printf("clients : %zu (+1 mutator), %zu queries total\n",
                report.clients, report.query.count);
    std::printf("ops     : mutate %zu, commit %zu, member %zu, stats %zu, "
                "digest %zu, set %zu\n",
                report.mutations_sent, report.commits, report.member_ops,
                report.stats_ops, report.digest_ops, report.set_ops);
    std::printf("query   : p50 %.3f ms, p99 %.3f ms\n", report.query.p50_ms,
                report.query.p99_ms);
    std::printf("under repair: %zu queries, p50 %.3f ms, p99 %.3f ms\n",
                report.query_during_repair.count,
                report.query_during_repair.p50_ms,
                report.query_during_repair.p99_ms);
    std::printf("commit  : p50 %.3f ms, p99 %.3f ms\n", report.commit.p50_ms,
                report.commit.p99_ms);
    std::printf("final   : epoch %llu, size %zu, digest %s\n",
                static_cast<unsigned long long>(report.final_epoch),
                report.final_size, report.final_digest.c_str());
    std::printf("epoch digest conflicts: %zu\n",
                report.epoch_digest_conflicts);
  }
  // An epoch observed with two digests breaks the immutable-epoch
  // contract -- fail the run so CI catches it.
  return report.epoch_digest_conflicts == 0 ? 0 : 1;
}

/// `domset gen`: write a generated graph family as a text edge list --
/// the reproducible-fixture producer the real-graph CI job feeds into
/// `domset convert`.
int cmd_gen(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Write a generated graph family as a text edge list");
  cli.add_flag("graph", "gnp", "graph family (see `domset list`)");
  cli.add_flag("n", "1000", "approximate node count");
  cli.require_nonnegative_int("n");
  cli.add_flag("seed", "1", "generator seed");
  cli.require_nonnegative_int("seed");
  add_param_flags(cli, graph_param_flags);
  cli.add_flag("out", "", "output path (required)");
  if (!cli.parse(argc, argv)) return 2;
  const std::string out_path = cli.get_string("out");
  if (out_path.empty()) {
    std::fprintf(stderr, "domset gen: --out is required\n");
    return 2;
  }

  api::param_map graph_params;
  forward_set_flags(cli, graph_param_flags, graph_params);
  const std::string family = cli.get_string("graph");
  const graph::graph g =
      api::make_graph(family, static_cast<std::size_t>(cli.get_int("n")),
                      static_cast<std::uint64_t>(cli.get_int("seed")),
                      graph_params);

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "domset gen: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  graph::write_edge_list(g, out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "domset gen: write to '%s' failed\n",
                 out_path.c_str());
    return 2;
  }
  std::fprintf(stderr, "domset gen: %s (%s) -> %s, digest %s\n",
               g.summary().c_str(), family.c_str(), out_path.c_str(),
               graph::graph_digest_hex(g).c_str());
  return 0;
}

/// `domset convert`: text edge list <-> binary .dcsr container.  The
/// input format is sniffed (a .dcsr input re-encodes, e.g. to toggle
/// compression); `--verify` reloads the output and asserts the
/// format-independent graph digest survived the round trip.
int cmd_convert(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Convert a graph file between the text edge-list format and the "
      "binary .dcsr container");
  cli.add_flag("in", "", "input graph file, text or .dcsr (required)");
  cli.add_flag("out", "", "output path (required)");
  cli.add_switch("compress",
                 "write the varint-delta compressed adjacency encoding");
  cli.add_switch("text", "write a text edge list instead of .dcsr");
  cli.add_switch("verify",
                 "reload the output and assert the graph digest matches");
  cli.add_flag("parse-threads", "0",
               "text parser worker count (0 = one per hardware thread)");
  cli.require_nonnegative_int("parse-threads");
  if (!cli.parse(argc, argv)) return 2;
  const std::string in_path = cli.get_string("in");
  const std::string out_path = cli.get_string("out");
  if (in_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "domset convert: --in and --out are required\n");
    return 2;
  }
  if (cli.get_bool("text") && cli.get_bool("compress")) {
    std::fprintf(stderr,
                 "domset convert: --text and --compress are exclusive "
                 "(compression is a .dcsr encoding)\n");
    return 2;
  }
  const graph::parse_options parse_opts{
      .threads = static_cast<std::size_t>(cli.get_int("parse-threads"))};

  const bool in_binary = graph::is_csr_file(in_path);
  const graph::graph g = in_binary
                             ? graph::load_csr(in_path)
                             : graph::read_edge_list_file(in_path, parse_opts);
  const std::string digest = graph::graph_digest_hex(g);
  std::fprintf(stderr, "domset convert: read %s (%s), digest %s\n",
               in_path.c_str(), in_binary ? "binary" : "text", digest.c_str());

  std::string wrote;
  if (cli.get_bool("text")) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "domset convert: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    graph::write_edge_list(g, out);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "domset convert: write to '%s' failed\n",
                   out_path.c_str());
      return 2;
    }
    wrote = "text";
  } else {
    const graph::csr_file_info info =
        graph::write_csr(g, out_path, cli.get_bool("compress"));
    wrote = info.compressed ? "compressed" : "binary";
    std::fprintf(stderr,
                 "domset convert: wrote %s (%s, %llu bytes, n=%llu m=%llu)\n",
                 out_path.c_str(), wrote.c_str(),
                 static_cast<unsigned long long>(info.bytes),
                 static_cast<unsigned long long>(info.nodes),
                 static_cast<unsigned long long>(info.edges));
  }

  if (cli.get_bool("verify")) {
    const graph::graph back =
        cli.get_bool("text") ? graph::read_edge_list_file(out_path, parse_opts)
                             : graph::load_csr(out_path);
    const std::string back_digest = graph::graph_digest_hex(back);
    if (back_digest != digest) {
      std::fprintf(stderr,
                   "domset convert: round-trip digest mismatch: wrote %s, "
                   "reloaded %s\n",
                   digest.c_str(), back_digest.c_str());
      return 1;
    }
    std::fprintf(stderr, "domset convert: verify ok (%s round-trip)\n",
                 wrote.c_str());
  }
  // The one stdout line: machine-readable for CI digest-agreement checks.
  std::printf("digest %s\n", digest.c_str());
  return 0;
}

void print_usage() {
  std::fputs(
      "usage: domset <command> [flags]\n"
      "  list   enumerate registered solvers and graph families\n"
      "  run    run a solver: domset run --alg pipeline --graph gnp "
      "--n 1000 --k 3 [--json]\n"
      "  bench  sweep solvers x graphs x seeds x delivery x threads x drop "
      "x faults:\n"
      "         domset bench --alg pipeline,greedy --graph gnp,star "
      "--n 5000 --repeats 3 --out bench.json\n"
      "  replay stream mutations through the incremental engine: domset "
      "replay --graph ba --n 100000 --mutations gen --batch 32 --json\n"
      "  serve  keep a solved instance resident behind an AF_UNIX socket: "
      "domset serve --socket /tmp/domset.sock --graph ba --n 100000\n"
      "  load   drive a running server with a seeded client mix: domset "
      "load --socket /tmp/domset.sock --graph ba --n 100000 --clients 8 "
      "--json\n"
      "  gen    write a generated family as a text edge list: domset gen "
      "--graph ba --n 100000 --out g.txt\n"
      "  convert  text edge list <-> binary .dcsr: domset convert --in "
      "g.txt --out g.dcsr [--compress] [--verify]\n"
      "run `domset <command> --help` for the full flag lists\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const char* command = argv[1];
  try {
    if (std::strcmp(command, "list") == 0) return cmd_list();
    if (std::strcmp(command, "run") == 0)
      return cmd_run(argc - 1, argv + 1);
    if (std::strcmp(command, "bench") == 0)
      return cmd_bench(argc - 1, argv + 1);
    if (std::strcmp(command, "replay") == 0)
      return cmd_replay(argc - 1, argv + 1);
    if (std::strcmp(command, "serve") == 0)
      return cmd_serve(argc - 1, argv + 1);
    if (std::strcmp(command, "load") == 0)
      return cmd_load(argc - 1, argv + 1);
    if (std::strcmp(command, "gen") == 0) return cmd_gen(argc - 1, argv + 1);
    if (std::strcmp(command, "convert") == 0)
      return cmd_convert(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "domset: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "domset: unknown command '%s'\n", command);
  print_usage();
  return 2;
}
