/// \file domset_main.cpp
/// \brief The `domset` driver binary: run any registered dominating-set
/// solver on any named graph family from one command line.
///
///   domset list
///       enumerate registered solvers and graph families
///   domset run --alg pipeline --graph gnp --n 100000 --k 3 --json
///       build the graph, run the solver under the shared exec flags
///       (--seed --threads --delivery --drop --congest-bits), verify the
///       output, and print a human summary or the stable domset-run/1
///       JSON record (see api/result_json.hpp)
///
/// Exit status: 0 on success (integral outputs additionally verified
/// dominating), 1 on an invalid solution, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "common/cli.hpp"
#include "exec/context.hpp"
#include "verify/verify.hpp"

namespace {

using namespace domset;

int cmd_list() {
  std::printf("registered solvers (domset run --alg <name>):\n");
  for (const api::solver* s : api::solver_registry::instance().list()) {
    std::printf("  %-12s %s\n", std::string(s->name()).c_str(),
                std::string(s->description()).c_str());
    std::string keys;
    for (const std::string_view k : s->param_keys()) {
      if (!keys.empty()) keys += ", ";
      keys += "--";
      keys += k;
    }
    if (!keys.empty()) std::printf("  %-12s   params: %s\n", "", keys.c_str());
  }
  std::printf("\ngraph families (domset run --graph <name>):\n");
  for (const api::graph_family& f : api::graph_families()) {
    std::printf("  %-12s %s\n", std::string(f.name).c_str(),
                std::string(f.description).c_str());
    if (!f.params.empty())
      std::printf("  %-12s   params: %s\n", "", std::string(f.params).c_str());
  }
  return 0;
}

/// Copies the flags the user explicitly set into a param_map, stripping
/// the value of switches down to "true".
void forward_set_flags(const common::cli_parser& cli,
                       std::initializer_list<const char*> names,
                       api::param_map& out) {
  for (const char* name : names)
    if (cli.is_set(name)) out.set(name, cli.get_string(name));
}

int cmd_run(int argc, const char* const* argv) {
  common::cli_parser cli(
      "Run a registered dominating-set solver on a generated graph");
  cli.add_flag("alg", "pipeline",
               "solver name (see `domset list` for the registry)");
  cli.add_flag("graph", "gnp", "graph family (see `domset list`)");
  cli.add_flag("n", "1000", "approximate node count");
  cli.require_nonnegative_int("n");
  cli.add_exec_flags();
  // Algorithm params -- forwarded into the solver's param_map only when
  // explicitly set, so a solver that does not accept one rejects it.
  cli.add_flag("k", "2", "paper trade-off parameter (LP/pipeline solvers)");
  cli.add_flag("variant", "plain",
               "rounding variant: plain | log_log (rounding/pipeline)");
  cli.add_switch("known-delta",
                 "pipeline: use Algorithm 2 (global Delta known)");
  cli.add_switch("announce-final",
                 "rounding/pipeline: members announce final membership");
  cli.add_flag("max-rounds", "0", "round cap override (lrg/luby)");
  cli.require_nonnegative_int("max-rounds");
  // Graph params.
  cli.add_flag("p", "0", "gnp: edge probability (default 8/n)");
  cli.add_flag("radius", "0", "udg: radio range (default 1.6/sqrt(n))");
  cli.add_flag("m", "3", "ba: attachments per node");
  cli.require_nonnegative_int("m");
  cli.add_flag("d", "4", "regular: node degree");
  cli.require_nonnegative_int("d");
  cli.add_flag("arity", "3", "tree: children per node");
  cli.require_nonnegative_int("arity");
  // Output.
  cli.add_switch("json", "emit the domset-run/1 JSON record");
  cli.add_flag("out", "", "write the record to this file instead of stdout");
  if (!cli.parse(argc, argv)) return 2;

  const exec::context exec = cli.exec();
  const std::string alg = cli.get_string("alg");
  const std::string family = cli.get_string("graph");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  api::param_map solver_params;
  forward_set_flags(
      cli, {"k", "variant", "known-delta", "announce-final", "max-rounds"},
      solver_params);
  api::param_map graph_params;
  forward_set_flags(cli, {"p", "radius", "m", "d", "arity"}, graph_params);

  const graph::graph g = api::make_graph(family, n, exec.seed, graph_params);
  const api::solver& solver = api::solver_registry::instance().find(alg);

  const auto start = std::chrono::steady_clock::now();
  api::run_record record;
  record.result = solver.solve(g, exec, solver_params);
  record.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  record.alg = alg;
  record.graph_family = family;
  record.nodes = g.node_count();
  record.edges = g.edge_count();
  record.max_degree = g.max_degree();
  record.exec = exec;
  record.params = solver_params;
  record.valid = record.result.integral()
                     ? verify::is_dominating_set(g, record.result.in_set)
                     : true;

  if (cli.get_bool("json") || cli.is_set("out")) {
    const std::string json = api::to_json(record);
    const std::string out_path = cli.get_string("out");
    if (out_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "domset: cannot write '%s'\n", out_path.c_str());
        return 2;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  } else {
    std::printf("graph   : %s (%s)\n", g.summary().c_str(), family.c_str());
    std::printf("solver  : %s\n", alg.c_str());
    if (record.result.integral())
      std::printf("|DS|    : %zu (valid: %s)\n", record.result.size,
                  record.valid ? "yes" : "NO");
    std::printf("objective: %.3f", record.result.objective);
    if (record.result.ratio_bound > 0.0)
      std::printf("  (guarantee %.2f x OPT)", record.result.ratio_bound);
    std::printf("\nrounds  : %zu, messages %llu, max %u-bit\n",
                record.result.metrics.rounds,
                static_cast<unsigned long long>(
                    record.result.metrics.messages_sent),
                record.result.metrics.max_message_bits);
    std::printf("elapsed : %.1f ms\n", record.elapsed_ms);
  }
  return record.valid ? 0 : 1;
}

void print_usage() {
  std::fputs(
      "usage: domset <command> [flags]\n"
      "  list   enumerate registered solvers and graph families\n"
      "  run    run a solver: domset run --alg pipeline --graph gnp "
      "--n 1000 --k 3 [--json]\n"
      "run `domset run --help` for the full flag list\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const char* command = argv[1];
  try {
    if (std::strcmp(command, "list") == 0) return cmd_list();
    if (std::strcmp(command, "run") == 0)
      return cmd_run(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "domset: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "domset: unknown command '%s'\n", command);
  print_usage();
  return 2;
}
