#include "api/graphs.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace domset::api {

namespace {

std::size_t side_of(std::size_t n) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
}

void require_keys(const param_map& params,
                  std::initializer_list<std::string_view> known) {
  std::vector<std::string_view> keys(known);
  params.require_known(keys);
}

}  // namespace

const std::vector<graph_family>& graph_families() {
  static const std::vector<graph_family> families = {
      {"ba", "Barabasi-Albert preferential attachment (heavy-tailed hubs)",
       "m (attachments per node, default 3)", {"m"}},
      {"complete", "complete graph K_n (MDS = 1)", "", {}},
      {"cycle", "cycle C_n (MDS = ceil(n/3))", "", {}},
      {"file",
       "graph file: text edge list or binary .dcsr (n is taken from the file)",
       "path (required), format (auto|text|binary, default auto), "
       "parse-threads (text parser workers, default 1, 0 = hardware; see "
       "docs/ingestion.md)",
       {"path", "format", "parse-threads"}},
      {"gnp", "Erdos-Renyi G(n, p)", "p (edge probability, default 8/n)",
       {"p"}},
      {"grid", "sqrt(n) x sqrt(n) grid, 4-neighborhood", "", {}},
      {"path", "path P_n (MDS = ceil(n/3))", "", {}},
      {"regular", "random d-regular graph (configuration model)",
       "d (degree, default 4)", {"d"}},
      {"star", "star S_n: one hub, n-1 leaves (MDS = 1)", "", {}},
      {"torus", "sqrt(n) x sqrt(n) torus (4-regular for side >= 3)", "", {}},
      {"tree", "complete arity-ary tree grown to ~n nodes",
       "arity (default 3, >= 2)", {"arity"}},
      {"udg", "random geometric / unit-disk graph in the unit square",
       "radius (default 1.6/sqrt(n))", {"radius"}},
  };
  return families;
}

const graph_family* find_graph_family(std::string_view family) {
  for (const graph_family& f : graph_families())
    if (f.name == family) return &f;
  return nullptr;
}

graph::graph make_graph(std::string_view family, std::size_t n,
                        std::uint64_t seed, const param_map& params,
                        graph_source* source) {
  if (n == 0 && family != "file")
    throw std::invalid_argument("make_graph: n must be >= 1");
  common::rng gen(seed);
  if (family == "gnp") {
    require_keys(params, {"p"});
    const double p =
        params.get_double("p", 8.0 / static_cast<double>(n));
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument("param 'p': must lie in [0, 1]");
    return graph::gnp_random(n, p, gen);
  }
  if (family == "udg") {
    require_keys(params, {"radius"});
    const double radius = params.get_double(
        "radius", 1.6 / std::sqrt(static_cast<double>(n)));
    if (!(radius >= 0.0))
      throw std::invalid_argument("param 'radius': must be >= 0");
    return graph::random_geometric(n, radius, gen).g;
  }
  if (family == "ba") {
    require_keys(params, {"m"});
    const std::size_t m = static_cast<std::size_t>(params.get_uint("m", 3));
    return graph::barabasi_albert(n, m, gen);
  }
  if (family == "regular") {
    require_keys(params, {"d"});
    const std::size_t d = static_cast<std::size_t>(params.get_uint("d", 4));
    return graph::random_regular(n, d, gen);
  }
  if (family == "grid") {
    require_keys(params, {});
    const std::size_t side = side_of(n);
    return graph::grid_graph(side, side);
  }
  if (family == "torus") {
    require_keys(params, {});
    const std::size_t side = side_of(n);
    return graph::torus_graph(side, side);
  }
  if (family == "tree") {
    require_keys(params, {"arity"});
    const std::size_t arity =
        static_cast<std::size_t>(params.get_uint("arity", 3));
    // arity 1 could never reach a useful n under the depth cap below (it
    // grows one node per level), so it is rejected rather than silently
    // truncated.
    if (arity < 2)
      throw std::invalid_argument("param 'arity': must be >= 2");
    // Smallest depth whose complete arity-ary tree reaches ~n nodes.
    std::size_t depth = 0;
    std::size_t nodes = 1;
    std::size_t layer = 1;
    while (nodes < n && depth < 60) {
      layer *= arity;
      nodes += layer;
      ++depth;
    }
    return graph::balanced_tree(arity, depth);
  }
  if (family == "star") {
    require_keys(params, {});
    return graph::star_graph(n);
  }
  if (family == "path") {
    require_keys(params, {});
    return graph::path_graph(n);
  }
  if (family == "cycle") {
    require_keys(params, {});
    if (n < 3)
      throw std::invalid_argument("family 'cycle': n must be >= 3");
    return graph::cycle_graph(n);
  }
  if (family == "complete") {
    require_keys(params, {});
    return graph::complete_graph(n);
  }
  if (family == "file") {
    require_keys(params, {"path", "format", "parse-threads"});
    const std::string path = params.get_string("path", "");
    if (path.empty())
      throw std::invalid_argument(
          "family 'file': param 'path' is required (the graph file to "
          "load); n is ignored");
    const std::string format = params.get_string("format", "auto");
    if (format != "auto" && format != "text" && format != "binary")
      throw std::invalid_argument(
          "family 'file': param 'format': must be auto, text, or binary");
    const std::size_t threads =
        static_cast<std::size_t>(params.get_uint("parse-threads", 1));
    try {
      const auto start = std::chrono::steady_clock::now();
      const bool binary =
          format == "binary" ||
          (format == "auto" && graph::is_csr_file(path));
      graph::graph g;
      std::string loaded_as;
      if (binary) {
        graph::csr_file_info info;
        g = graph::load_csr(path, &info);
        loaded_as = info.compressed ? "compressed" : "binary";
      } else {
        g = graph::read_edge_list_file(path, {.threads = threads});
        loaded_as = "text";
      }
      if (source != nullptr) {
        source->path = path;
        source->format = std::move(loaded_as);
        source->load_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      }
      return g;
    } catch (const std::runtime_error& e) {
      // The loaders report what is malformed and name the path; prepend
      // which family asked.
      throw std::runtime_error("family 'file': " + std::string(e.what()));
    }
  }
  std::string message =
      "unknown graph family '" + std::string(family) + "'; families:";
  for (const graph_family& f : graph_families()) {
    message += ' ';
    message += f.name;
  }
  throw std::invalid_argument(message);
}

}  // namespace domset::api
