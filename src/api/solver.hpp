/// \file solver.hpp
/// \brief The type-erased solver interface of the API layer: any
/// dominating-set algorithm, behind one uniform `solve()` shape.
///
/// The algorithm-specific entry points (core/alg2.hpp, core/pipeline.hpp,
/// the baselines) each have their own params/result structs -- the right
/// interface when the caller knows which algorithm it wants.  The API
/// layer adds the other mode: run "an algorithm" chosen at runtime by
/// name, with algorithm-specific knobs carried in a string-keyed
/// `param_map` and results normalized into one `solve_result`.  The
/// adapters in src/api/solvers.cpp forward to the specific entry points
/// verbatim, so a registry-invoked run is bit-identical to a direct call
/// (enforced by tests/api_registry_test.cpp): the registry is an adapter,
/// not a fork.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace domset::api {

/// String-keyed algorithm parameters (k, variant, max-rounds, ...).
/// Execution knobs are deliberately NOT params: they travel in
/// exec::context, uniformly for every solver.  Typed getters parse on
/// access and throw std::invalid_argument naming the offending key;
/// solvers reject keys they do not understand via require_known(), so a
/// typo fails loudly instead of silently running with defaults.
class param_map {
 public:
  param_map() = default;

  /// Sets (or overwrites) one parameter.
  void set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    return values_.find(key) != values_.end();
  }

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Key/value pairs in key order (stable JSON echo).
  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries()
      const noexcept {
    return values_;
  }

  /// The raw value of `key`, or `fallback` when absent.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::string(fallback) : it->second;
  }

  /// Integer parameter in [0, 2^63); throws std::invalid_argument when
  /// the value is not a complete non-negative decimal integer.
  [[nodiscard]] std::uint64_t get_uint(std::string_view key,
                                       std::uint64_t fallback) const;

  /// Floating-point parameter; throws std::invalid_argument on malformed
  /// input.
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;

  /// Boolean parameter ("true"/"1"/"yes" vs "false"/"0"/"no").
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Throws std::invalid_argument naming every key not in `known` (and
  /// listing the accepted set).  Every solver calls this through
  /// solver::solve before touching the map.
  void require_known(std::span<const std::string_view> known) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

/// What the self-healing pass did to a solver's output (all-zero when
/// repair was off).  Populated by solver::solve when the caller passed
/// `repair=radius` or `repair=greedy`; see core/repair.hpp for the
/// strategies and the validity argument.
struct repair_summary {
  /// True when a repair pass ran (even if the set was already valid).
  bool attempted = false;
  /// "radius" or "greedy" (empty when not attempted).
  std::string mode;
  /// Dirty-region radius in hops (radius mode; 0 for greedy).
  std::uint32_t radius = 0;
  /// Coverage holes before/after the pass (after is always 0: repair
  /// validity is enforced, failures throw).
  std::size_t holes_before = 0;
  std::size_t holes_after = 0;
  /// Members added by the pass.
  std::size_t added = 0;
  /// Nodes in the dirty region the pass examined -- the locality receipt:
  /// repair work proportional to the damage, not the graph.
  std::size_t touched_nodes = 0;
};

/// How the `auto` meta-solver picked its base solver (attempted == false
/// for directly-invoked solvers).  Carries the probe values the selection
/// rule actually saw (graph/probe.hpp), so a recorded run explains its
/// own dispatch; serialized as the optional `result.selection` block of
/// the domset-run/1 record.
struct selection_summary {
  /// True when the run went through the `auto` meta-solver.
  bool attempted = false;
  /// Registry name of the solver `auto` dispatched to.
  std::string selected_solver;
  /// Exact degeneracy from the core peel (arboricity bracket).
  std::uint32_t degeneracy = 0;
  /// (degeneracy + 1) / 2 <= arboricity lower bracket.
  double arboricity_lower = 0.0;
  /// Sampled wedge-closure rate (1.0 on cliques, 0.0 triangle-free).
  double triangle_density = 0.0;
  /// max_degree / avg_degree (graph::degree_stats).
  double degree_skew = 0.0;
  /// Average degree 2m/n.
  double avg_degree = 0.0;
};

/// Uniform result record of a registry-invoked run.  Integral solvers
/// fill `in_set`/`size`; the fractional LP solvers (alg2, alg3,
/// alg2_fresh) fill `x` and leave `in_set` empty; the pipeline fills
/// both (the fractional stage's x plus the rounded set).
struct solve_result {
  /// Indicator vector of the dominating set (empty for fractional-only
  /// solvers).
  std::vector<std::uint8_t> in_set;

  /// Fractional LP solution, one value per node (empty for purely
  /// integral solvers).
  std::vector<double> x;

  /// |in_set| (0 for fractional-only solvers).
  std::size_t size = 0;

  /// The solver's natural objective: |DS| for integral solvers, sum(x)
  /// (or c^T x) for fractional ones.
  double objective = 0.0;

  /// The paper-guaranteed approximation ratio of this run, when the
  /// algorithm has one (0 = no non-trivial guarantee, e.g. wu_li).
  double ratio_bound = 0.0;

  /// Simulator metrics (all-zero for centralized reference solvers).
  sim::run_metrics metrics;

  /// Self-healing pass record (attempted == false when repair was off).
  repair_summary repair;

  /// Portfolio dispatch record (attempted == false unless the run came
  /// through the `auto` meta-solver).
  selection_summary selection;

  /// True when the record carries an integral dominating set.
  [[nodiscard]] bool integral() const noexcept { return !in_set.empty(); }
};

/// A dominating-set algorithm behind a type-erased interface, resolvable
/// by name through api::solver_registry.  Implementations are stateless:
/// one instance serves concurrent callers.
class solver {
 public:
  virtual ~solver() = default;

  /// Registry key, e.g. "pipeline" (stable CLI vocabulary).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// One-line human description for `domset list`.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// The algorithm-specific param keys this solver accepts (possibly
  /// empty).  Everything else is rejected by solve().
  [[nodiscard]] virtual std::span<const std::string_view> param_keys()
      const noexcept {
    return {};
  }

  /// Whether solve() produces an integral dominating set (true for every
  /// solver except the fractional-only LP ones: alg2, alg2_fresh, alg3,
  /// weighted).  Static knowledge, so composers like the cds post-pass
  /// can reject an unusable base before paying for its run.
  [[nodiscard]] virtual bool integral_output() const noexcept { return true; }

  /// Runs the algorithm on `g` under the shared execution context.
  /// Rejects unknown param keys (std::invalid_argument), then forwards to
  /// the algorithm-specific entry point.
  ///
  /// Every integral solver additionally accepts the cross-cutting
  /// self-healing params, stripped here before require_known so the
  /// adapters never see them:
  ///   repair=off|radius|greedy   (default off)
  ///   repair-radius=<hops>       (radius mode only; default 2)
  /// With repair on, the adapter's output is patched back into a verified
  /// dominating set by core::repair -- radius mode re-runs *this* solver
  /// on the dirty subgraph under a fault-free copy of `exec` (recovery
  /// happens on the healed network), greedy patches locally.  The pass is
  /// recorded in solve_result::repair.
  [[nodiscard]] solve_result solve(const graph::graph& g,
                                   const exec::context& exec,
                                   const param_map& params = {}) const;

 protected:
  /// The adapter body; `params` has already been validated.
  [[nodiscard]] virtual solve_result solve_impl(
      const graph::graph& g, const exec::context& exec,
      const param_map& params) const = 0;
};

}  // namespace domset::api
