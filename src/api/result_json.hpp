/// \file result_json.hpp
/// \brief The stable machine-readable run record the `domset` driver
/// emits with `--json`.
///
/// Schema `domset-run/1` (validated in CI by
/// scripts/validate_result_json.py, uploaded next to the bench JSON
/// artifacts): one flat object per run carrying the solver name, the
/// graph provenance, the exec::context knobs, the echoed solver params,
/// the normalized result (size / objective / ratio bound / validity /
/// solution digest) and the full sim::run_metrics.  The digest is a
/// 64-bit FNV-1a over the solution bits, so two runs are bit-identical
/// iff their digests match -- the hook CI uses to assert push/pull/auto
/// delivery agreement without shipping whole solutions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/graphs.hpp"
#include "api/solver.hpp"
#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "verify/coverage.hpp"

namespace domset::api {

/// Everything the JSON record carries about one run.
struct run_record {
  /// Registry name of the solver ("pipeline", "alg2", ...).
  std::string alg;
  /// Graph-family name ("gnp", ...) or "file" for loaded graphs.
  std::string graph_family;
  /// Graph shape as built.
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint32_t max_degree = 0;
  /// Load provenance for file-backed graphs (path, format, load time),
  /// serialized as the "graph.source" block; absent for generated
  /// families.
  std::optional<graph_source> source;
  /// The execution context the run used (pool is process-local state and
  /// is not recorded; threads/delivery are).
  exec::context exec;
  /// Echo of the algorithm-specific params actually supplied.
  param_map params;
  /// Normalized solver output.
  solve_result result;
  /// Whether verify::is_dominating_set accepted the integral output
  /// (reported true for fractional-only records, which have no set to
  /// check here; the LP invariants are asserted by the test suite).
  bool valid = false;
  /// Degradation report for faulty runs (absent on reliable runs): hole
  /// count, worst hole depth, per-fault attribution.  Serialized as the
  /// top-level "coverage" object.
  std::optional<verify::coverage_report> coverage;
  /// Wall-clock of the solve call, in milliseconds.
  double elapsed_ms = 0.0;
};

/// Minimal JSON string escaping, shared by every JSON surface of the
/// repo (run records, bench documents, the dyn replay emitter).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Doubles formatted for JSON: %.17g (value-preserving), with the
/// inf/nan escape hatch rendered as null.
[[nodiscard]] std::string json_number(double value);

/// 64-bit FNV-1a over the solution bits (in_set bytes, then the IEEE-754
/// bit patterns of x).  Bit-identical runs <=> equal digests.
[[nodiscard]] std::uint64_t solution_digest(const solve_result& result);

/// The digest rendered the way every JSON surface spells it: 16 lowercase
/// hex characters.
[[nodiscard]] std::string digest_hex(const solve_result& result);

/// Serializes the record as one pretty-printed JSON object (schema
/// "domset-run/1", stable key order).
[[nodiscard]] std::string to_json(const run_record& record);

/// Appends the record object to `out` with every line prefixed by
/// `indent` and no trailing newline -- the shared body of to_json and of
/// the domset-bench/1 document, which embeds one record per sweep cell
/// (api/bench_runner.hpp).
void append_record_json(std::string& out, const run_record& record,
                        std::string_view indent);

}  // namespace domset::api
