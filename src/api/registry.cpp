#include "api/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace domset::api {

solver_registry& solver_registry::instance() {
  static solver_registry registry;
  // Reference the built-in adapters' translation unit so a static-library
  // link cannot drop it (and with it the self-registrations).
  detail::link_builtin_solvers();
  return registry;
}

void solver_registry::add(factory_fn make) {
  entry e{make, make()};
  const std::string_view name = e.shared->name();
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const entry& lhs, std::string_view key) {
        return lhs.shared->name() < key;
      });
  if (pos != entries_.end() && pos->shared->name() == name)
    throw std::logic_error("solver_registry: duplicate solver name '" +
                           std::string(name) + "'");
  entries_.insert(pos, std::move(e));
}

const solver_registry::entry* solver_registry::lookup(
    std::string_view name) const noexcept {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const entry& lhs, std::string_view key) {
        return lhs.shared->name() < key;
      });
  if (pos == entries_.end() || pos->shared->name() != name) return nullptr;
  return &*pos;
}

void solver_registry::throw_unknown(std::string_view name) const {
  std::string message =
      "unknown solver '" + std::string(name) + "'; registered solvers:";
  for (const std::string_view k : names()) {
    message += ' ';
    message += k;
  }
  throw std::invalid_argument(message);
}

std::unique_ptr<solver> solver_registry::create(std::string_view name) const {
  const entry* e = lookup(name);
  if (e == nullptr) throw_unknown(name);
  return e->make();
}

const solver& solver_registry::find(std::string_view name) const {
  const entry* e = lookup(name);
  if (e == nullptr) throw_unknown(name);
  return *e->shared;
}

std::vector<const solver*> solver_registry::list() const {
  std::vector<const solver*> out;
  out.reserve(entries_.size());
  for (const entry& e : entries_) out.push_back(e.shared.get());
  return out;
}

std::vector<std::string_view> solver_registry::names() const {
  std::vector<std::string_view> out;
  out.reserve(entries_.size());
  for (const entry& e : entries_) out.push_back(e.shared->name());
  return out;
}

}  // namespace domset::api
