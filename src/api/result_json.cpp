#include "api/result_json.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "sim/delivery.hpp"

namespace domset::api {

namespace {

void fold_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;  // FNV-1a prime
  }
}

// escape/fmt_double: terse local names for the public json_escape /
// json_number helpers defined below.
std::string escape(std::string_view s) { return json_escape(s); }
std::string fmt_double(double v) { return json_number(v); }

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // JSON has no inf/nan; the record never should either, but emit null
  // rather than invalid output if an algorithm ever produces one.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr)
    return "null";
  return buf;
}

std::uint64_t solution_digest(const solve_result& result) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  fold_bytes(h, result.in_set.data(), result.in_set.size());
  // Separator so {in_set:[0], x:[]} and {in_set:[], x matching byte 0}
  // cannot collide trivially.
  const unsigned char sep = 0xFF;
  fold_bytes(h, &sep, 1);
  for (const double v : result.x) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    fold_bytes(h, &bits, sizeof bits);
  }
  return h;
}

std::string digest_hex(const solve_result& result) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, solution_digest(result));
  return buf;
}

void append_record_json(std::string& out, const run_record& record,
                        std::string_view indent) {
  char buf[128];
  const auto num = [&buf](auto value) -> std::string {
    std::snprintf(buf, sizeof buf, "%" PRIu64,
                  static_cast<std::uint64_t>(value));
    return buf;
  };
  const std::string in1 = std::string(indent) + "  ";
  const std::string in2 = in1 + "  ";

  out += "{\n" + in1 + "\"schema\": \"domset-run/1\",\n";
  out += in1 + "\"alg\": \"" + escape(record.alg) + "\",\n";
  out += in1 + "\"graph\": {\n";
  out += in2 + "\"family\": \"" + escape(record.graph_family) + "\",\n";
  out += in2 + "\"nodes\": " + num(record.nodes) + ",\n";
  out += in2 + "\"edges\": " + num(record.edges) + ",\n";
  out += in2 + "\"max_degree\": " + num(record.max_degree);
  if (record.source.has_value()) {
    const std::string in3 = in2 + "  ";
    out += ",\n" + in2 + "\"source\": {\n";
    out += in3 + "\"path\": \"" + escape(record.source->path) + "\",\n";
    out += in3 + "\"format\": \"" + escape(record.source->format) + "\",\n";
    out += in3 + "\"load_ms\": " + fmt_double(record.source->load_ms) + "\n" +
           in2 + "}";
  }
  out += "\n" + in1 + "},\n";
  out += in1 + "\"exec\": {\n";
  out += in2 + "\"seed\": " + num(record.exec.seed) + ",\n";
  out += in2 + "\"threads\": " + num(record.exec.threads) + ",\n";
  out += in2 + "\"delivery\": \"" +
         std::string(sim::to_string(record.exec.delivery)) + "\",\n";
  out += in2 + "\"drop_probability\": " +
         fmt_double(record.exec.drop_probability) + ",\n";
  out += in2 + "\"faults\": \"" +
         escape(record.exec.faults ? sim::to_string(*record.exec.faults)
                                   : std::string("none")) +
         "\",\n";
  out += in2 + "\"congest_bit_limit\": " + num(record.exec.congest_bit_limit) +
         "\n" + in1 + "},\n";
  out += in1 + "\"params\": {";
  bool first = true;
  for (const auto& [key, value] : record.params.entries()) {
    out += first ? "\n" : ",\n";
    out += in2 + "\"" + escape(key) + "\": \"" + escape(value) + "\"";
    first = false;
  }
  out += first ? "},\n" : "\n" + in1 + "},\n";
  out += in1 + "\"result\": {\n";
  out += in2 + "\"integral\": ";
  out += record.result.integral() ? "true" : "false";
  out += ",\n";
  out += in2 + "\"size\": " + num(record.result.size) + ",\n";
  out += in2 + "\"objective\": " + fmt_double(record.result.objective) + ",\n";
  out += in2 + "\"ratio_bound\": " + fmt_double(record.result.ratio_bound) +
         ",\n";
  out += in2 + "\"valid\": ";
  out += record.valid ? "true" : "false";
  out += ",\n";
  out += in2 + "\"digest\": \"" + digest_hex(record.result) + "\"";
  if (record.result.repair.attempted) {
    const repair_summary& r = record.result.repair;
    const std::string in3 = in2 + "  ";
    out += ",\n" + in2 + "\"repair\": {\n";
    out += in3 + "\"mode\": \"" + escape(r.mode) + "\",\n";
    out += in3 + "\"radius\": " + num(r.radius) + ",\n";
    out += in3 + "\"holes_before\": " + num(r.holes_before) + ",\n";
    out += in3 + "\"holes_after\": " + num(r.holes_after) + ",\n";
    out += in3 + "\"added\": " + num(r.added) + ",\n";
    out += in3 + "\"touched_nodes\": " + num(r.touched_nodes) + "\n" + in2 +
           "}";
  }
  if (record.result.selection.attempted) {
    const selection_summary& s = record.result.selection;
    const std::string in3 = in2 + "  ";
    out += ",\n" + in2 + "\"selection\": {\n";
    out += in3 + "\"selected_solver\": \"" + escape(s.selected_solver) +
           "\",\n";
    out += in3 + "\"degeneracy\": " + num(s.degeneracy) + ",\n";
    out += in3 + "\"arboricity_lower\": " + fmt_double(s.arboricity_lower) +
           ",\n";
    out += in3 + "\"triangle_density\": " + fmt_double(s.triangle_density) +
           ",\n";
    out += in3 + "\"degree_skew\": " + fmt_double(s.degree_skew) + ",\n";
    out += in3 + "\"avg_degree\": " + fmt_double(s.avg_degree) + "\n" + in2 +
           "}";
  }
  out += "\n" + in1 + "},\n";
  const sim::run_metrics& m = record.result.metrics;
  out += in1 + "\"metrics\": {\n";
  out += in2 + "\"rounds\": " + num(m.rounds) + ",\n";
  out += in2 + "\"messages_sent\": " + num(m.messages_sent) + ",\n";
  out += in2 + "\"bits_sent\": " + num(m.bits_sent) + ",\n";
  out += in2 + "\"max_message_bits\": " + num(m.max_message_bits) + ",\n";
  out += in2 + "\"max_messages_per_node\": " + num(m.max_messages_per_node) +
         ",\n";
  out += in2 + "\"messages_dropped\": " + num(m.messages_dropped) + ",\n";
  out += in2 + "\"messages_lost_to_faults\": " +
         num(m.messages_lost_to_faults) + ",\n";
  out += in2 + "\"messages_duplicated\": " + num(m.messages_duplicated) +
         ",\n";
  out += in2 + "\"node_rounds_down\": " + num(m.node_rounds_down) + ",\n";
  out += in2 + "\"nodes_crashed\": " + num(m.nodes_crashed) + ",\n";
  out += in2 + "\"congest_violation\": ";
  out += m.congest_violation ? "true" : "false";
  out += ",\n" + in2 + "\"hit_round_limit\": ";
  out += m.hit_round_limit ? "true" : "false";
  out += "\n" + in1 + "},\n";
  if (record.coverage.has_value()) {
    const verify::coverage_report& c = *record.coverage;
    const std::string in3 = in2 + "  ";
    out += in1 + "\"coverage\": {\n";
    out += in2 + "\"nodes\": " + num(c.nodes) + ",\n";
    out += in2 + "\"holes\": " + num(c.holes()) + ",\n";
    out += in2 + "\"covered_fraction\": " + fmt_double(c.covered_fraction) +
           ",\n";
    out += in2 + "\"max_hole_radius\": " + num(c.max_hole_radius) + ",\n";
    out += in2 + "\"fully_covered\": ";
    out += c.fully_covered() ? "true" : "false";
    out += ",\n" + in2 + "\"attribution\": [";
    bool first_fault = true;
    for (const verify::fault_attribution& a : c.attribution) {
      out += first_fault ? "\n" : ",\n";
      out += in3 + "{\"fault\": \"" + escape(a.fault) +
             "\", \"holes\": " + num(a.holes) + "}";
      first_fault = false;
    }
    out += first_fault ? "]\n" : "\n" + in2 + "]\n";
    out += in1 + "},\n";
  }
  out += in1 + "\"elapsed_ms\": " + fmt_double(record.elapsed_ms) + "\n" +
         std::string(indent) + "}";
}

std::string to_json(const run_record& record) {
  std::string out;
  out.reserve(1024);
  append_record_json(out, record, "");
  out += '\n';
  return out;
}

}  // namespace domset::api
