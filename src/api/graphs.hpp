/// \file graphs.hpp
/// \brief Named graph-family factory for the API layer: the generator
/// vocabulary of `domset run --graph <family>` and `domset list`.
///
/// Maps a stable family name to the generators in graph/generators.hpp
/// with sensible size-derived defaults (G(n, 8/n), unit-disk radius
/// 1.6/sqrt(n), ...), overridable through the same string-keyed
/// param_map the solvers use.  Unknown family names and unknown params
/// fail with a message listing the accepted vocabulary.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "api/solver.hpp"
#include "graph/graph.hpp"

namespace domset::api {

/// One row of the generator vocabulary (for `domset list` and docs).
struct graph_family {
  std::string_view name;
  std::string_view description;
  /// Param keys this family accepts (e.g. "p" for gnp), comma-joined for
  /// display; empty when the family only takes n.
  std::string_view params;
  /// The same accepted keys, machine-readable -- sweep drivers filter a
  /// shared param_map down to each family's vocabulary through this.
  std::vector<std::string_view> keys;
};

/// All registered families, sorted by name.
[[nodiscard]] const std::vector<graph_family>& graph_families();

/// The vocabulary row of `family`, or nullptr when the name is unknown
/// (make_graph throws the teaching error; this is the non-throwing probe
/// sweep drivers use to filter params up front).
[[nodiscard]] const graph_family* find_graph_family(std::string_view family);

/// Provenance of a graph that came from a file rather than a generator:
/// what `domset run --json` reports as the "graph.source" block so a
/// result can be traced back to its input bytes.  Families that
/// generate their graph leave it unset.
struct graph_source {
  /// The file the graph was loaded from.
  std::string path;
  /// How the bytes were interpreted: "text" (edge list), "binary" (raw
  /// .dcsr, mmap'ed), or "compressed" (varint-delta .dcsr).
  std::string format;
  /// Wall-clock of the load alone, in milliseconds.
  double load_ms = 0.0;
};

/// Builds the named family at size ~n.  `params` may override the
/// family's derived defaults (gnp: p; udg: radius; ba: m; regular: d;
/// tree: arity).  The "file" family loads from disk instead: "path"
/// names the file, "format" picks the loader (auto | text | binary,
/// default auto = sniff the .dcsr magic), "parse-threads" sets the text
/// parser's worker count (0 = hardware).  Randomized families draw from
/// a fresh rng seeded with `seed`.  When `source` is non-null and the
/// family loads from a file, it receives the load provenance.  Throws
/// std::invalid_argument for an unknown family, unknown params, or
/// infeasible sizes.
[[nodiscard]] graph::graph make_graph(std::string_view family, std::size_t n,
                                      std::uint64_t seed,
                                      const param_map& params = {},
                                      graph_source* source = nullptr);

}  // namespace domset::api
