/// \file solvers.cpp
/// \brief Built-in solver adapters: every algorithm entry point of the
/// repo, registered by name.
///
/// Each adapter forwards to the algorithm-specific entry point with
/// params translated 1:1 and results copied field-for-field -- no
/// algorithmic logic lives here, so a registry-invoked run is bit-
/// identical to a direct call (tests/api_registry_test.cpp asserts set
/// digests and run metrics match exactly).  Registering a new solver is
/// one adapter class plus one `solver_registrar` line at the bottom.

#include <algorithm>
#include <array>
#include <memory>
#include <string>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "baselines/greedy.hpp"
#include "baselines/lrg.hpp"
#include "baselines/luby_mis.hpp"
#include "baselines/wu_li.hpp"
#include "core/alg2.hpp"
#include "core/alg2_fresh.hpp"
#include "core/alg3.hpp"
#include "core/pipeline.hpp"
#include "core/rounding.hpp"

namespace domset::api {

namespace {

/// Shared translation of the paper's k param (k >= 1; the specific entry
/// points re-validate, but failing here names the param).
std::uint32_t get_k(const param_map& params) {
  const std::uint64_t k = params.get_uint("k", 2);
  if (k < 1 || k > 0xFFFFFFFFULL)
    throw std::invalid_argument("param 'k': must be an integer >= 1");
  return static_cast<std::uint32_t>(k);
}

core::rounding_variant get_variant(const param_map& params) {
  const std::string v = params.get_string("variant", "plain");
  if (v == "plain") return core::rounding_variant::plain;
  if (v == "log_log") return core::rounding_variant::log_log;
  throw std::invalid_argument(
      "param 'variant': must be 'plain' or 'log_log', got '" + v + "'");
}

/// Folds the two pipeline stages into one metrics record (sums for the
/// totals, maxima for the per-message/per-node peaks, OR for the flags).
/// Deterministic, so the adapter test can reproduce it from a direct call.
sim::run_metrics merge_metrics(const sim::run_metrics& a,
                               const sim::run_metrics& b) {
  sim::run_metrics m;
  m.rounds = a.rounds + b.rounds;
  m.messages_sent = a.messages_sent + b.messages_sent;
  m.bits_sent = a.bits_sent + b.bits_sent;
  m.max_message_bits = std::max(a.max_message_bits, b.max_message_bits);
  m.max_messages_per_node =
      std::max(a.max_messages_per_node, b.max_messages_per_node);
  m.messages_dropped = a.messages_dropped + b.messages_dropped;
  m.congest_violation = a.congest_violation || b.congest_violation;
  m.hit_round_limit = a.hit_round_limit || b.hit_round_limit;
  return m;
}

// ------------------------------------------------------------- pipeline

class pipeline_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "pipeline"; }
  std::string_view description() const noexcept override {
    return "Theorem 6: Algorithm 3 (or 2 with known-delta) + randomized "
           "rounding; the paper's headline dominating set pipeline";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 4> keys = {
        "k", "known-delta", "variant", "announce-final"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    core::pipeline_params p;
    p.k = get_k(params);
    p.assume_known_delta = params.get_bool("known-delta", false);
    p.variant = get_variant(params);
    p.announce_final = params.get_bool("announce-final", false);
    p.exec = exec;
    core::pipeline_result res = core::compute_dominating_set(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.x = std::move(res.fractional.x);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.ratio_bound = res.expected_ratio_bound;
    out.metrics =
        merge_metrics(res.fractional.metrics, res.rounding.metrics);
    return out;
  }
};

// ------------------------------------------------- fractional LP solvers

/// Shared shape of the three fractional LP adapters (alg2, alg2_fresh,
/// alg3): params are {k}, the result is the fractional record.
template <core::lp_approx_result (*Run)(const graph::graph&,
                                        const core::lp_approx_params&,
                                        const core::alg2_observer*)>
solve_result run_lp(const graph::graph& g, const exec::context& exec,
                    const param_map& params) {
  core::lp_approx_params p;
  p.k = get_k(params);
  p.exec = exec;
  core::lp_approx_result res = Run(g, p, nullptr);

  solve_result out;
  out.x = std::move(res.x);
  out.objective = res.objective;
  out.ratio_bound = res.ratio_bound;
  out.metrics = res.metrics;
  return out;
}

class alg2_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "alg2"; }
  std::string_view description() const noexcept override {
    return "Theorem 4: fractional LP k*(Delta+1)^(2/k)-approximation in "
           "2k^2 rounds (every node knows the global Delta)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"k"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    return run_lp<&core::approximate_lp_known_delta>(g, exec, params);
  }
};

class alg2_fresh_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "alg2_fresh"; }
  std::string_view description() const noexcept override {
    return "Algorithm 2 ablation with fresh dynamic degrees: same rounds, "
           "exact Lemma 4 accounting (reproduction finding)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"k"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    return run_lp<&core::approximate_lp_known_delta_fresh>(g, exec, params);
  }
};

/// approximate_lp's observer type differs in name only; wrap to match the
/// template's function-pointer shape.
core::lp_approx_result run_alg3(const graph::graph& g,
                                const core::lp_approx_params& p,
                                const core::alg2_observer*) {
  return core::approximate_lp(g, p, nullptr);
}

class alg3_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "alg3"; }
  std::string_view description() const noexcept override {
    return "Theorem 5: uniform fractional LP approximation, no global "
           "knowledge, 4k^2 + O(k) rounds";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"k"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    return run_lp<&run_alg3>(g, exec, params);
  }
};

// ------------------------------------------------------------- rounding

class rounding_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "rounding"; }
  std::string_view description() const noexcept override {
    return "Theorem 3: randomized rounding of the uniform feasible LP "
           "point x = 1/(min_degree+1) (standalone Algorithm 1 demo)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 2> keys = {"variant",
                                                             "announce-final"};
    return keys;
  }

  /// The trivially feasible uniform point the standalone solver rounds:
  /// for every node v, sum over N[v] of 1/(d_min+1) = (deg(v)+1)/(d_min+1)
  /// >= 1.  (Algorithm 1 accepts any feasible x; callers with a better
  /// fractional solution use core::round_to_dominating_set directly or
  /// the pipeline solver.)
  [[nodiscard]] static std::vector<double> uniform_feasible_x(
      const graph::graph& g) {
    std::uint32_t d_min = ~std::uint32_t{0};
    for (graph::node_id v = 0; v < g.node_count(); ++v)
      d_min = std::min(d_min, g.degree(v));
    if (g.node_count() == 0) d_min = 0;
    return std::vector<double>(g.node_count(),
                               1.0 / (static_cast<double>(d_min) + 1.0));
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    core::rounding_params p;
    p.variant = get_variant(params);
    p.announce_final = params.get_bool("announce-final", false);
    p.exec = exec;
    const std::vector<double> x = uniform_feasible_x(g);
    core::rounding_result res = core::round_to_dominating_set(g, x, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.x = x;
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

// ------------------------------------------------------------ baselines

class lrg_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "lrg"; }
  std::string_view description() const noexcept override {
    return "Jia-Rajaraman-Suel Local Randomized Greedy (PODC 2001): "
           "O(log Delta) approximation in O(log n log Delta) rounds";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"max-rounds"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    baselines::lrg_params p;
    p.max_rounds = params.get_uint("max-rounds", p.max_rounds);
    p.exec = exec;
    baselines::lrg_result res = baselines::lrg_mds(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

class luby_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "luby"; }
  std::string_view description() const noexcept override {
    return "Luby's maximal independent set (1986) as a dominating set: "
           "O(log n) rounds, no approximation guarantee";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"max-rounds"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    baselines::luby_params p;
    p.max_rounds = params.get_uint("max-rounds", p.max_rounds);
    p.exec = exec;
    baselines::luby_result res = baselines::luby_mis(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

class wu_li_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "wu_li"; }
  std::string_view description() const noexcept override {
    return "Wu-Li marking + Dai-Wu pruning (DialM 1999): constant rounds, "
           "no non-trivial guarantee";
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map&) const override {
    baselines::wu_li_params p;
    p.exec = exec;
    baselines::wu_li_result res = baselines::wu_li_mds(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

class greedy_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "greedy"; }
  std::string_view description() const noexcept override {
    return "centralized sequential greedy (quality yardstick; H_(Delta+1) "
           "guarantee, not a distributed algorithm -- metrics are zero)";
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context&,
                          const param_map&) const override {
    baselines::greedy_result res = baselines::greedy_mds(g);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.ratio_bound = baselines::greedy_ratio_bound(g.max_degree());
    return out;
  }
};

// -------------------------------------------------------- registrations

template <typename Solver>
std::unique_ptr<solver> make_solver() {
  return std::make_unique<Solver>();
}

const solver_registrar reg_pipeline{&make_solver<pipeline_solver>};
const solver_registrar reg_alg2{&make_solver<alg2_solver>};
const solver_registrar reg_alg2_fresh{&make_solver<alg2_fresh_solver>};
const solver_registrar reg_alg3{&make_solver<alg3_solver>};
const solver_registrar reg_rounding{&make_solver<rounding_solver>};
const solver_registrar reg_lrg{&make_solver<lrg_solver>};
const solver_registrar reg_luby{&make_solver<luby_solver>};
const solver_registrar reg_wu_li{&make_solver<wu_li_solver>};
const solver_registrar reg_greedy{&make_solver<greedy_solver>};

}  // namespace

namespace detail {
void link_builtin_solvers() {}
}  // namespace detail

}  // namespace domset::api
