/// \file solvers.cpp
/// \brief Built-in solver adapters: every algorithm entry point of the
/// repo, registered by name.
///
/// Each adapter forwards to the algorithm-specific entry point with
/// params translated 1:1 and results copied field-for-field -- no
/// algorithmic logic lives here, so a registry-invoked run is bit-
/// identical to a direct call (tests/api_registry_test.cpp asserts set
/// digests and run metrics match exactly).  Registering a new solver is
/// one adapter class plus one `solver_registrar` line at the bottom.

#include <algorithm>
#include <array>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "baselines/greedy.hpp"
#include "baselines/lrg.hpp"
#include "baselines/luby_mis.hpp"
#include "baselines/wu_li.hpp"
#include "common/rng.hpp"
#include "core/alg2.hpp"
#include "core/alg2_fresh.hpp"
#include "core/alg3.hpp"
#include "core/arboricity.hpp"
#include "core/cds.hpp"
#include "core/pipeline.hpp"
#include "core/rounding.hpp"
#include "core/weighted.hpp"
#include "graph/generators.hpp"
#include "graph/probe.hpp"

namespace domset::api {

namespace {

/// Shared translation of the paper's k param (k >= 1; the specific entry
/// points re-validate, but failing here names the param).
std::uint32_t get_k(const param_map& params) {
  const std::uint64_t k = params.get_uint("k", 2);
  if (k < 1 || k > 0xFFFFFFFFULL)
    throw std::invalid_argument("param 'k': must be an integer >= 1");
  return static_cast<std::uint32_t>(k);
}

core::rounding_variant get_variant(const param_map& params) {
  const std::string v = params.get_string("variant", "plain");
  if (v == "plain") return core::rounding_variant::plain;
  if (v == "log_log") return core::rounding_variant::log_log;
  throw std::invalid_argument(
      "param 'variant': must be 'plain' or 'log_log', got '" + v + "'");
}

/// Folds the two pipeline stages into one metrics record (sums for the
/// totals, maxima for the per-message/per-node peaks, OR for the flags).
/// Deterministic, so the adapter test can reproduce it from a direct call.
sim::run_metrics merge_metrics(const sim::run_metrics& a,
                               const sim::run_metrics& b) {
  sim::run_metrics m;
  m.rounds = a.rounds + b.rounds;
  m.messages_sent = a.messages_sent + b.messages_sent;
  m.bits_sent = a.bits_sent + b.bits_sent;
  m.max_message_bits = std::max(a.max_message_bits, b.max_message_bits);
  m.max_messages_per_node =
      std::max(a.max_messages_per_node, b.max_messages_per_node);
  m.messages_dropped = a.messages_dropped + b.messages_dropped;
  m.messages_lost_to_faults =
      a.messages_lost_to_faults + b.messages_lost_to_faults;
  m.messages_duplicated = a.messages_duplicated + b.messages_duplicated;
  m.node_rounds_down = a.node_rounds_down + b.node_rounds_down;
  // A node crashed in either stage is one crashed node; the stages run the
  // same plan, so the max is the exact union count.
  m.nodes_crashed = std::max(a.nodes_crashed, b.nodes_crashed);
  m.congest_violation = a.congest_violation || b.congest_violation;
  m.hit_round_limit = a.hit_round_limit || b.hit_round_limit;
  return m;
}

// ------------------------------------------------------------- pipeline

class pipeline_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "pipeline"; }
  std::string_view description() const noexcept override {
    return "Theorem 6: Algorithm 3 (or 2 with known-delta) + randomized "
           "rounding; the paper's headline dominating set pipeline";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 4> keys = {
        "k", "known-delta", "variant", "announce-final"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    core::pipeline_params p;
    p.k = get_k(params);
    p.assume_known_delta = params.get_bool("known-delta", false);
    p.variant = get_variant(params);
    p.announce_final = params.get_bool("announce-final", false);
    p.exec = exec;
    core::pipeline_result res = core::compute_dominating_set(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.x = std::move(res.fractional.x);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.ratio_bound = res.expected_ratio_bound;
    out.metrics =
        merge_metrics(res.fractional.metrics, res.rounding.metrics);
    return out;
  }
};

// ------------------------------------------------- fractional LP solvers

/// Shared shape of the three fractional LP adapters (alg2, alg2_fresh,
/// alg3): params are {k}, the result is the fractional record.
template <core::lp_approx_result (*Run)(const graph::graph&,
                                        const core::lp_approx_params&,
                                        const core::alg2_observer*)>
solve_result run_lp(const graph::graph& g, const exec::context& exec,
                    const param_map& params) {
  core::lp_approx_params p;
  p.k = get_k(params);
  p.exec = exec;
  core::lp_approx_result res = Run(g, p, nullptr);

  solve_result out;
  out.x = std::move(res.x);
  out.objective = res.objective;
  out.ratio_bound = res.ratio_bound;
  out.metrics = res.metrics;
  return out;
}

class alg2_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "alg2"; }
  std::string_view description() const noexcept override {
    return "Theorem 4: fractional LP k*(Delta+1)^(2/k)-approximation in "
           "2k^2 rounds (every node knows the global Delta)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"k"};
    return keys;
  }
  bool integral_output() const noexcept override { return false; }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    return run_lp<&core::approximate_lp_known_delta>(g, exec, params);
  }
};

class alg2_fresh_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "alg2_fresh"; }
  std::string_view description() const noexcept override {
    return "Algorithm 2 ablation with fresh dynamic degrees: same rounds, "
           "exact Lemma 4 accounting (reproduction finding)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"k"};
    return keys;
  }
  bool integral_output() const noexcept override { return false; }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    return run_lp<&core::approximate_lp_known_delta_fresh>(g, exec, params);
  }
};

/// approximate_lp's observer type differs in name only; wrap to match the
/// template's function-pointer shape.
core::lp_approx_result run_alg3(const graph::graph& g,
                                const core::lp_approx_params& p,
                                const core::alg2_observer*) {
  return core::approximate_lp(g, p, nullptr);
}

class alg3_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "alg3"; }
  std::string_view description() const noexcept override {
    return "Theorem 5: uniform fractional LP approximation, no global "
           "knowledge, 4k^2 + O(k) rounds";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"k"};
    return keys;
  }
  bool integral_output() const noexcept override { return false; }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    return run_lp<&run_alg3>(g, exec, params);
  }
};

// ------------------------------------------------------------- rounding

class rounding_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "rounding"; }
  std::string_view description() const noexcept override {
    return "Theorem 3: randomized rounding of the uniform feasible LP "
           "point x = 1/(min_degree+1) (standalone Algorithm 1 demo)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 2> keys = {"variant",
                                                             "announce-final"};
    return keys;
  }

  /// The trivially feasible uniform point the standalone solver rounds:
  /// for every node v, sum over N[v] of 1/(d_min+1) = (deg(v)+1)/(d_min+1)
  /// >= 1.  (Algorithm 1 accepts any feasible x; callers with a better
  /// fractional solution use core::round_to_dominating_set directly or
  /// the pipeline solver.)
  [[nodiscard]] static std::vector<double> uniform_feasible_x(
      const graph::graph& g) {
    std::uint32_t d_min = ~std::uint32_t{0};
    for (graph::node_id v = 0; v < g.node_count(); ++v)
      d_min = std::min(d_min, g.degree(v));
    if (g.node_count() == 0) d_min = 0;
    return std::vector<double>(g.node_count(),
                               1.0 / (static_cast<double>(d_min) + 1.0));
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    core::rounding_params p;
    p.variant = get_variant(params);
    p.announce_final = params.get_bool("announce-final", false);
    p.exec = exec;
    const std::vector<double> x = uniform_feasible_x(g);
    core::rounding_result res = core::round_to_dominating_set(g, x, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.x = x;
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

// ------------------------------------------------------------- weighted

/// Builds the cost vector named by the `costs` param:
///   uniform       -- i.i.d. uniform in [1, cmax], drawn from rng(seed)
///                    (the battery model of examples/weighted_cover.cpp)
///   degree        -- cost(v) = 1 + deg(v), deterministic (hubs expensive)
///   file:<path>   -- whitespace-separated doubles, one per node
std::vector<double> make_cost_vector(const graph::graph& g,
                                     const param_map& params,
                                     std::uint64_t seed) {
  const std::string spec = params.get_string("costs", "uniform");
  if (spec == "uniform") {
    const double c_max = params.get_double("cmax", 4.0);
    if (!(c_max >= 1.0))
      throw std::invalid_argument("param 'cmax': must be >= 1");
    common::rng gen(seed);
    return graph::uniform_costs(g.node_count(), c_max, gen);
  }
  if (params.contains("cmax"))
    throw std::invalid_argument(
        "param 'cmax': only applies to costs=uniform, got costs='" + spec +
        "'");
  if (spec == "degree") {
    std::vector<double> cost(g.node_count());
    for (graph::node_id v = 0; v < g.node_count(); ++v)
      cost[v] = 1.0 + static_cast<double>(g.degree(v));
    return cost;
  }
  if (spec.rfind("file:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty())
      throw std::invalid_argument(
          "param 'costs': the file scheme needs a path (costs=file:<path>)");
    std::ifstream in(path);
    if (!in)
      throw std::invalid_argument("param 'costs': cannot open '" + path +
                                  "'");
    std::vector<double> cost;
    cost.reserve(g.node_count());
    double value = 0.0;
    while (in >> value) {
      if (!(value >= 1.0))
        throw std::invalid_argument(
            "param 'costs': '" + path + "' entry " +
            std::to_string(cost.size()) + " is " + std::to_string(value) +
            "; costs must be >= 1 (normalize first)");
      cost.push_back(value);
    }
    if (!in.eof())
      throw std::invalid_argument("param 'costs': '" + path +
                                  "' has a non-numeric entry at index " +
                                  std::to_string(cost.size()));
    if (cost.size() != g.node_count())
      throw std::invalid_argument(
          "param 'costs': '" + path + "' holds " +
          std::to_string(cost.size()) + " values for a graph of " +
          std::to_string(g.node_count()) + " nodes");
    return cost;
  }
  throw std::invalid_argument(
      "param 'costs': must be 'uniform', 'degree' or 'file:<path>', got '" +
      spec + "'");
}

class weighted_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "weighted"; }
  std::string_view description() const noexcept override {
    return "Remark after Theorem 4: weighted fractional LP (min c^T x) via "
           "cost-effectiveness thresholds; costs from --costs";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 3> keys = {"k", "costs",
                                                             "cmax"};
    return keys;
  }
  bool integral_output() const noexcept override { return false; }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    core::lp_approx_params p;
    p.k = get_k(params);
    p.exec = exec;
    const std::vector<double> cost = make_cost_vector(g, params, exec.seed);
    core::weighted_lp_result res = core::approximate_weighted_lp(g, cost, p);

    solve_result out;
    out.x = std::move(res.x);
    out.objective = res.objective;
    out.ratio_bound = res.ratio_bound;
    out.metrics = res.metrics;
    return out;
  }
};

// ------------------------------------------------------------------ cds

class cds_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "cds"; }
  std::string_view description() const noexcept override {
    return "connected dominating set: any integral base solver (base=<name>) "
           "+ the centralized 3x connector post-pass (core/cds)";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    // `base` plus the union of the integral base solvers' params; every
    // key except `base` is forwarded verbatim, and the base solver's own
    // require_known rejects what it does not accept.
    static constexpr std::array<std::string_view, 6> keys = {
        "base", "k", "variant", "known-delta", "announce-final", "max-rounds"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    const std::string base_name = params.get_string("base", "pipeline");
    if (base_name == "cds")
      throw std::invalid_argument(
          "param 'base': cds cannot stack on itself");
    // Unknown names throw here, listing the registry vocabulary; an
    // unusable (fractional-only) base is rejected BEFORE its run is paid
    // for -- on a large sweep cell that run can be minutes.
    const solver& base = solver_registry::instance().find(base_name);
    if (!base.integral_output())
      throw std::invalid_argument(
          "param 'base': solver '" + base_name +
          "' is fractional-only; cds needs an integral dominating set "
          "(try pipeline, greedy, lrg, luby, wu_li or rounding)");

    param_map base_params;
    for (const auto& [key, value] : params.entries())
      if (key != "base") base_params.set(key, value);
    solve_result out = base.solve(g, exec, base_params);

    core::cds_result connected = core::connect_dominating_set(g, out.in_set);
    out.in_set = std::move(connected.in_set);
    out.size = connected.size;
    out.objective = static_cast<double>(connected.size);
    // |CDS| <= 3|DS| and |MDS_OPT| <= |MCDS_OPT|, so tripling the base
    // guarantee is a valid bound against the connected optimum.
    out.ratio_bound = out.ratio_bound > 0.0 ? 3.0 * out.ratio_bound : 0.0;
    // metrics stay the base run's: the connector pass is the centralized
    // sink-side computation, not message rounds.
    return out;
  }
};

// ----------------------------------------------------------- arboricity

class arboricity_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "arboricity"; }
  std::string_view description() const noexcept override {
    return "Dory-Ghaffari-Ilchi-style degree-threshold sweep for bounded-"
           "arboricity graphs (arXiv 2206.05174): deterministic, "
           "O(eps^-1 log Delta) rounds, per-instance certified ratio bound";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"epsilon"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    core::arboricity_params p;
    p.epsilon = params.get_double("epsilon", 0.5);
    p.exec = exec;
    core::arboricity_result res = core::arboricity_mds(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.ratio_bound = res.ratio_bound;
    out.metrics = res.metrics;
    return out;
  }
};

// ----------------------------------------------------------------- auto

class auto_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "auto"; }
  std::string_view description() const noexcept override {
    return "portfolio meta-solver: probes degeneracy / triangle density / "
           "degree skew (graph/probe) and dispatches to the best-fitting "
           "registry solver; the choice rides in result.selection";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    // Union of the dispatch candidates' params; each candidate receives
    // only the subset it declares, so a k set for the pipeline branch is
    // not an error when the probe routes to arboricity.
    static constexpr std::array<std::string_view, 5> keys = {
        "k", "epsilon", "variant", "known-delta", "announce-final"};
    return keys;
  }

  /// The selection rule, exposed for the property harness.  The threshold
  /// sweep (core/arboricity.hpp) runs phases only while tau >= 2A + 2, so
  /// its quality hinges on how far Delta + 1 clears that floor: with a
  /// comfortable span (skewed ba / power-law graphs, stars, sparse gnp)
  /// the sweep's greedy-like phases beat the LP pipeline outright, while
  /// near or below the floor (bounded-degree grids, paths, regular and
  /// dense graphs) it degenerates toward everyone-joins cleanup.  The 1.5
  /// cut-off demands roughly two sweep phases at the default epsilon --
  /// measured across the bench families, that is exactly where the winner
  /// flips (docs/architecture.md has the table).
  [[nodiscard]] static std::string_view choose(
      const graph::probe_result& probe) {
    const double span = static_cast<double>(probe.degrees.max_degree) + 1.0;
    const double sweep_floor = 2.0 * probe.degeneracy + 2.0;
    return span >= 1.5 * sweep_floor ? "arboricity" : "pipeline";
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    graph::probe_params pp;
    pp.threads = exec.threads;
    pp.pool = exec.pool;
    const graph::probe_result probe = graph::probe(g, pp);
    const std::string_view choice = choose(probe);

    const solver& base = solver_registry::instance().find(choice);
    const auto keys = base.param_keys();
    param_map base_params;
    for (const auto& [key, value] : params.entries())
      if (std::find(keys.begin(), keys.end(), key) != keys.end())
        base_params.set(key, value);
    // Full solve(), not solve_impl: the dispatch must be bit-identical to
    // running the chosen solver directly (asserted by the harness).
    solve_result out = base.solve(g, exec, base_params);

    out.selection.attempted = true;
    out.selection.selected_solver = std::string(choice);
    out.selection.degeneracy = probe.degeneracy;
    out.selection.arboricity_lower = probe.arboricity_lower;
    out.selection.triangle_density = probe.triangle_density;
    out.selection.degree_skew = probe.degrees.skew;
    out.selection.avg_degree = probe.degrees.avg_degree;
    return out;
  }
};

// ------------------------------------------------------------ baselines

class lrg_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "lrg"; }
  std::string_view description() const noexcept override {
    return "Jia-Rajaraman-Suel Local Randomized Greedy (PODC 2001): "
           "O(log Delta) approximation in O(log n log Delta) rounds";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"max-rounds"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    baselines::lrg_params p;
    p.max_rounds = params.get_uint("max-rounds", p.max_rounds);
    p.exec = exec;
    baselines::lrg_result res = baselines::lrg_mds(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

class luby_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "luby"; }
  std::string_view description() const noexcept override {
    return "Luby's maximal independent set (1986) as a dominating set: "
           "O(log n) rounds, no approximation guarantee";
  }
  std::span<const std::string_view> param_keys() const noexcept override {
    static constexpr std::array<std::string_view, 1> keys = {"max-rounds"};
    return keys;
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map& params) const override {
    baselines::luby_params p;
    p.max_rounds = params.get_uint("max-rounds", p.max_rounds);
    p.exec = exec;
    baselines::luby_result res = baselines::luby_mis(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

class wu_li_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "wu_li"; }
  std::string_view description() const noexcept override {
    return "Wu-Li marking + Dai-Wu pruning (DialM 1999): constant rounds, "
           "no non-trivial guarantee";
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context& exec,
                          const param_map&) const override {
    baselines::wu_li_params p;
    p.exec = exec;
    baselines::wu_li_result res = baselines::wu_li_mds(g, p);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.metrics = res.metrics;
    return out;
  }
};

class greedy_solver final : public solver {
 public:
  std::string_view name() const noexcept override { return "greedy"; }
  std::string_view description() const noexcept override {
    return "centralized sequential greedy (quality yardstick; H_(Delta+1) "
           "guarantee, not a distributed algorithm -- metrics are zero)";
  }

 protected:
  solve_result solve_impl(const graph::graph& g, const exec::context&,
                          const param_map&) const override {
    baselines::greedy_result res = baselines::greedy_mds(g);

    solve_result out;
    out.in_set = std::move(res.in_set);
    out.size = res.size;
    out.objective = static_cast<double>(res.size);
    out.ratio_bound = baselines::greedy_ratio_bound(g.max_degree());
    return out;
  }
};

// -------------------------------------------------------- registrations

template <typename Solver>
std::unique_ptr<solver> make_solver() {
  return std::make_unique<Solver>();
}

const solver_registrar reg_pipeline{&make_solver<pipeline_solver>};
const solver_registrar reg_arboricity{&make_solver<arboricity_solver>};
const solver_registrar reg_auto{&make_solver<auto_solver>};
const solver_registrar reg_weighted{&make_solver<weighted_solver>};
const solver_registrar reg_cds{&make_solver<cds_solver>};
const solver_registrar reg_alg2{&make_solver<alg2_solver>};
const solver_registrar reg_alg2_fresh{&make_solver<alg2_fresh_solver>};
const solver_registrar reg_alg3{&make_solver<alg3_solver>};
const solver_registrar reg_rounding{&make_solver<rounding_solver>};
const solver_registrar reg_lrg{&make_solver<lrg_solver>};
const solver_registrar reg_luby{&make_solver<luby_solver>};
const solver_registrar reg_wu_li{&make_solver<wu_li_solver>};
const solver_registrar reg_greedy{&make_solver<greedy_solver>};

}  // namespace

namespace detail {
void link_builtin_solvers() {}
}  // namespace detail

}  // namespace domset::api
