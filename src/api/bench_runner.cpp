#include "api/bench_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <utility>

#include "api/graphs.hpp"
#include "api/registry.hpp"
#include "common/stats.hpp"
#include "graph/graph.hpp"
#include "sim/fault.hpp"
#include "sim/thread_pool.hpp"
#include "verify/coverage.hpp"
#include "verify/verify.hpp"

namespace domset::api {

namespace {

/// The subset of `all` whose keys appear in `accepted`; consumed keys are
/// recorded so the spec can reject a param no cell ever used (a typo'd
/// key silently dropped everywhere is the bug require_known exists to
/// prevent -- the sweep keeps that guarantee in aggregate).
param_map filter_params(const param_map& all,
                        std::span<const std::string_view> accepted,
                        std::set<std::string>& consumed) {
  param_map out;
  for (const auto& [key, value] : all.entries()) {
    if (std::find(accepted.begin(), accepted.end(), key) != accepted.end()) {
      out.set(key, value);
      consumed.insert(key);
    }
  }
  return out;
}

void require_all_consumed(const param_map& all,
                          const std::set<std::string>& consumed,
                          const char* which) {
  for (const auto& [key, value] : all.entries()) {
    if (consumed.find(key) == consumed.end())
      throw std::invalid_argument(std::string("bench spec: ") + which +
                                  " param '" + key +
                                  "' is accepted by nothing in the sweep");
  }
}

void require_axis(bool ok, const char* what) {
  if (!ok)
    throw std::invalid_argument(std::string("bench spec: ") + what);
}

std::string fmt_drop(double drop) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", drop);
  return buf;
}

std::string faults_spec(const run_record& r) {
  return r.exec.faults ? sim::to_string(*r.exec.faults) : std::string("none");
}

std::string cell_label(const run_record& r) {
  std::string label =
      r.alg + "/" + r.graph_family + "/n=" + std::to_string(r.nodes) +
      "/seed=" + std::to_string(r.exec.seed) + "/" +
      std::string(sim::to_string(r.exec.delivery)) +
      "/threads=" + std::to_string(r.exec.threads);
  // The degradation axes only appear when active so labels (and the error
  // messages built from them) keep their pre-fault shape on clean sweeps.
  if (r.exec.drop_probability > 0.0)
    label += "/drop=" + fmt_drop(r.exec.drop_probability);
  if (r.exec.faults && !r.exec.faults->empty())
    label += "/faults=" + faults_spec(r);
  return label;
}

}  // namespace

bench_document run_bench(const bench_spec& spec) {
  require_axis(!spec.algs.empty(), "no solvers (--alg)");
  require_axis(!spec.graphs.empty(), "no graph families (--graph)");
  require_axis(!spec.ns.empty(), "no sizes (--n)");
  require_axis(!spec.seeds.empty(), "no seeds (--seeds)");
  require_axis(!spec.deliveries.empty(), "no delivery modes (--delivery)");
  require_axis(!spec.threads.empty(), "no thread counts (--threads)");
  require_axis(spec.repeats >= 1, "repeats must be >= 1");

  // The degradation axes: empty means one implicit value from base_exec,
  // so pre-fault specs keep their meaning.  Fault specs parse up front --
  // a typo fails before any cell has run.
  std::vector<double> drops = spec.drops;
  if (drops.empty()) drops.push_back(spec.base_exec.drop_probability);
  for (const double drop : drops)
    require_axis(drop >= 0.0 && drop < 1.0, "drop must be in [0, 1)");
  struct fault_axis {
    std::shared_ptr<const sim::fault_plan> plan;  // null = reliable
  };
  std::vector<fault_axis> fault_axes;
  if (spec.faults.empty()) {
    fault_axes.push_back({spec.base_exec.faults});
  } else {
    for (const std::string& text : spec.faults) {
      sim::fault_plan plan = sim::parse_fault_plan(text);
      fault_axes.push_back(
          {plan.empty() ? nullptr
                        : std::make_shared<const sim::fault_plan>(
                              std::move(plan))});
    }
  }

  // Resolve every axis value up front so a typo fails before minutes of
  // cells have run.
  std::vector<const solver*> solvers;
  solvers.reserve(spec.algs.size());
  for (const std::string& name : spec.algs)
    solvers.push_back(&solver_registry::instance().find(name));
  std::set<std::string> graph_keys_consumed;
  std::vector<const graph_family*> families;
  families.reserve(spec.graphs.size());
  for (const std::string& name : spec.graphs) {
    const graph_family* family = find_graph_family(name);
    if (family == nullptr) {
      (void)make_graph(name, 1, 1);  // throws the teaching unknown-family error
      throw std::invalid_argument("graph family '" + name +
                                  "' is missing from graph_families()");
    }
    families.push_back(family);
  }

  // One worker pool serves the whole sweep: sized for the largest thread
  // count requested (0 = one per hardware thread dominates), bounded per
  // cell by that cell's threads value (see sim::engine_config::pool).
  exec::context pool_exec = spec.base_exec;
  const bool any_hardware =
      std::find(spec.threads.begin(), spec.threads.end(), 0U) !=
      spec.threads.end();
  pool_exec.threads =
      any_hardware ? 0
                   : *std::max_element(spec.threads.begin(), spec.threads.end());
  pool_exec.ensure_shared_pool();

  // Build every swept graph once; cells reference them by index.  The
  // graph axes are outermost in cell order, so memory peaks at the sum of
  // the swept graphs -- bench-sized by construction.
  struct graph_instance {
    const graph_family* family;
    std::size_t n;
    std::uint64_t seed;
    graph::graph g;
    std::optional<graph_source> source;  // set for file-loaded graphs
  };
  std::vector<graph_instance> instances;
  std::set<std::string> solver_keys_consumed;
  for (const graph_family* family : families) {
    const param_map params =
        filter_params(spec.graph_params, family->keys, graph_keys_consumed);
    for (const std::size_t n : spec.ns)
      for (const std::uint64_t seed : spec.seeds) {
        graph_source source;
        graph::graph g = make_graph(family->name, n, seed, params, &source);
        // Families whose size is derived (file ignores n entirely; grid/
        // tree round to the nearest feasible shape) can map distinct
        // requested n to the same built graph.  Such cells would be
        // byte-identical AND collide on the document's (family, nodes,
        // seed) key, so exact duplicates are dropped here rather than
        // emitted for the validator to reject.
        bool duplicate = false;
        for (const graph_instance& seen : instances)
          duplicate |= seen.family == family && seen.seed == seed &&
                       seen.g.node_count() == g.node_count() &&
                       seen.g.edge_count() == g.edge_count();
        if (!duplicate) {
          std::optional<graph_source> provenance;
          if (!source.path.empty()) provenance = std::move(source);
          instances.push_back(
              {family, n, seed, std::move(g), std::move(provenance)});
        }
      }
  }
  require_all_consumed(spec.graph_params, graph_keys_consumed, "graph");

  // Materialize the cell grid with its per-cell contexts and filtered
  // params; the timing loop below only runs solve().
  struct pending_cell {
    const graph::graph* g;
    const solver* s;
    param_map params;
    exec::context exec;
  };
  std::vector<pending_cell> pending;
  bench_document doc;
  doc.repeats = spec.repeats;
  for (const graph_instance& instance : instances) {
    for (const solver* s : solvers) {
      const param_map params = filter_params(
          spec.solver_params, s->param_keys(), solver_keys_consumed);
      for (const sim::delivery_mode delivery : spec.deliveries) {
        for (const std::size_t threads : spec.threads) {
          for (const double drop : drops) {
            for (const fault_axis& fa : fault_axes) {
              exec::context exec = spec.base_exec;
              exec.seed = instance.seed;
              exec.threads = threads;
              exec.delivery = delivery;
              exec.drop_probability = drop;
              exec.faults = fa.plan;
              exec.pool = pool_exec.pool;
              pending.push_back({&instance.g, s, params, exec});

              bench_cell cell;
              cell.record.alg = std::string(s->name());
              cell.record.graph_family = std::string(instance.family->name);
              cell.record.nodes = instance.g.node_count();
              cell.record.edges = instance.g.edge_count();
              cell.record.max_degree = instance.g.max_degree();
              cell.record.source = instance.source;
              cell.record.exec = exec;
              cell.record.exec.pool = nullptr;  // process-local, not recorded
              cell.record.params = params;
              doc.cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
  require_all_consumed(spec.solver_params, solver_keys_consumed, "solver");

  // Repeat-interleaved timing: every repeat visits all cells before any
  // cell is timed again, so slow patches on a shared box spread across
  // the whole grid instead of biasing one cell's median.
  std::vector<std::uint64_t> digests(pending.size(), 0);
  for (std::size_t rep = 0; rep < spec.repeats; ++rep) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      pending_cell& cell = pending[i];
      bench_cell& out = doc.cells[i];
      const auto start = std::chrono::steady_clock::now();
      solve_result result = cell.s->solve(*cell.g, cell.exec, cell.params);
      out.times_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
      const std::uint64_t digest = solution_digest(result);
      if (rep == 0) {
        digests[i] = digest;
        const bool degraded = cell.exec.faulty();
        out.record.valid =
            result.integral() && spec.verify_solutions
                ? verify::is_dominating_set(*cell.g, result.in_set)
                : true;
        // Degraded cells trade the binary verdict for the quantitative
        // report: how many holes, how deep, which fault.  Reliable cells
        // keep the hard throw -- an invalid set without faults is a bug.
        if (degraded && result.integral() && spec.verify_solutions)
          out.record.coverage = verify::coverage(*cell.g, result.in_set,
                                                 cell.exec.faults.get());
        out.record.result = std::move(result);
        if (!out.record.valid && !degraded)
          throw std::runtime_error("bench cell " + cell_label(out.record) +
                                   ": output is not a dominating set");
      } else if (digest != digests[i]) {
        throw std::runtime_error(
            "bench cell " + cell_label(out.record) +
            ": repeat " + std::to_string(rep) +
            " produced a different solution digest -- same seed must mean "
            "same solution (determinism regression)");
      }
    }
  }

  for (bench_cell& cell : doc.cells) {
    cell.median_ms = common::median(cell.times_ms);
    cell.record.elapsed_ms = cell.median_ms;
  }
  return doc;
}

std::string to_json(const bench_document& doc) {
  std::string out;
  out.reserve(2048 * (doc.cells.size() + 1));
  char buf[128];
  const auto num = [&buf](auto value) -> std::string {
    std::snprintf(buf, sizeof buf, "%" PRIu64,
                  static_cast<std::uint64_t>(value));
    return buf;
  };
  const auto flt = [&buf](double value) -> std::string {
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
  };

  out += "{\n  \"schema\": \"domset-bench/1\",\n";
  out += "  \"repeats\": " + num(doc.repeats) + ",\n";
  out += "  \"cell_count\": " + num(doc.cells.size()) + ",\n";
  out += "  \"cells\": [";
  bool first_cell = true;
  for (const bench_cell& cell : doc.cells) {
    out += first_cell ? "\n" : ",\n";
    first_cell = false;
    const run_record& r = cell.record;
    out += "    {\n";
    out += "      \"alg\": \"" + r.alg + "\",\n";
    out += "      \"graph\": \"" + r.graph_family + "\",\n";
    out += "      \"n\": " + num(r.nodes) + ",\n";
    out += "      \"seed\": " + num(r.exec.seed) + ",\n";
    out += "      \"delivery\": \"" +
           std::string(sim::to_string(r.exec.delivery)) + "\",\n";
    out += "      \"threads\": " + num(r.exec.threads) + ",\n";
    out += "      \"drop\": " + flt(r.exec.drop_probability) + ",\n";
    out += "      \"faults\": \"" + faults_spec(r) + "\",\n";
    out += "      \"median_ms\": " + flt(cell.median_ms) + ",\n";
    out += "      \"times_ms\": [";
    for (std::size_t i = 0; i < cell.times_ms.size(); ++i) {
      if (i != 0) out += ", ";
      out += flt(cell.times_ms[i]);
    }
    out += "],\n";
    out += "      \"rounds\": " + num(r.result.metrics.rounds) + ",\n";
    out += "      \"digest\": \"" + digest_hex(r.result) + "\",\n";
    out += "      \"run\": ";
    append_record_json(out, r, "      ");
    out += "\n    }";
  }
  out += first_cell ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace domset::api
