/// \file registry.hpp
/// \brief Name -> solver factory registry, self-populating via static
/// registrars.
///
/// Every algorithm in src/api/solvers.cpp registers itself with a static
/// `solver_registrar` at program start, so callers (the `domset` driver,
/// the cross-algorithm parameter sweep, external embedders) resolve
/// solvers purely by name -- adding a new algorithm is one adapter class
/// plus one registrar line, with no switch statement to extend anywhere.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "api/solver.hpp"

namespace domset::api {

namespace detail {
/// Anchor defined in solvers.cpp.  Calling it from the registry forces
/// the linker to keep that translation unit when domset is consumed as a
/// static library, so its static registrars actually run.
void link_builtin_solvers();
}  // namespace detail

class solver_registry {
 public:
  /// Factory signature registrars hand in; the produced solver's name()
  /// becomes its registry key.
  using factory_fn = std::unique_ptr<solver> (*)();

  /// The process-wide registry.
  [[nodiscard]] static solver_registry& instance();

  /// Registers a factory (called by solver_registrar at static-init
  /// time).  Throws std::logic_error on a duplicate name -- two solvers
  /// claiming one key is a programming error, not a configuration.
  void add(factory_fn make);

  /// A fresh instance of the named solver; throws std::invalid_argument
  /// listing the registered names when `name` is unknown.
  [[nodiscard]] std::unique_ptr<solver> create(std::string_view name) const;

  /// The registry-owned shared instance of the named solver (solvers are
  /// stateless); same unknown-name behavior as create().
  [[nodiscard]] const solver& find(std::string_view name) const;

  /// All registered solvers, sorted by name.
  [[nodiscard]] std::vector<const solver*> list() const;

  /// All registered names, sorted (CLI help, error messages).
  [[nodiscard]] std::vector<std::string_view> names() const;

 private:
  struct entry {
    factory_fn make;
    std::unique_ptr<solver> shared;
  };
  /// Binary search over the name-sorted entries; nullptr when absent.
  [[nodiscard]] const entry* lookup(std::string_view name) const noexcept;
  /// Shared unknown-name error (lists the registered names).
  [[noreturn]] void throw_unknown(std::string_view name) const;

  std::vector<entry> entries_;  // kept sorted by shared->name()
};

/// Registering a solver is one static object:
///   const solver_registrar reg{[] -> std::unique_ptr<solver> { ... }};
struct solver_registrar {
  explicit solver_registrar(solver_registry::factory_fn make) {
    solver_registry::instance().add(make);
  }
};

}  // namespace domset::api
