/// \file bench_runner.hpp
/// \brief The registry-driven sweep runner behind `domset bench`: one
/// declarative cross product {solver x graph family x n x seed x delivery
/// x threads}, one shared worker pool, one schema-checked JSON document.
///
/// Before this existed every sweep in the repo -- the CI bench smokes,
/// examples/parameter_sweep.cpp, ad-hoc comparison scripts -- re-implemented
/// its own nested loop, its own timing, and its own output format.  The
/// bench runner is the single substrate: callers fill a `bench_spec`,
/// `run_bench` executes every cell through `api::solver_registry` and
/// `api::make_graph` on one `sim::thread_pool` (created once via
/// `exec::context::ensure_shared_pool`), and `to_json` emits the stable
/// `domset-bench/1` document -- one embedded `domset-run/1` record per
/// cell plus median wall-time over repeat-interleaved timings (the same
/// drift-decorrelation discipline bench_p4_gather uses: repeats cycle
/// through ALL cells before re-timing any one of them, so a slow patch on
/// a shared box taxes every cell equally instead of one).
///
/// Determinism is enforced, not assumed: a cell's solution digest must be
/// identical across repeats (same seed => same solution), and integral
/// outputs are verified dominating on the first repeat.  Either failure
/// throws -- a sweep that cannot reproduce itself is a bug, not a data
/// point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/result_json.hpp"
#include "api/solver.hpp"
#include "exec/context.hpp"
#include "sim/delivery.hpp"

namespace domset::api {

/// The declarative sweep: every list is one axis of the cross product.
/// Cells are enumerated in deterministic order -- graphs (family, n,
/// seed) outermost, then solver, delivery, threads, drop, faults -- so
/// two runs of the same spec produce cell-for-cell comparable documents
/// (the property the CI trend gate keys on).
struct bench_spec {
  /// Registry names to run (resolved up front; unknown names throw before
  /// any cell executes).
  std::vector<std::string> algs;

  /// Graph-family names for api::make_graph ("gnp", "file", ...).
  std::vector<std::string> graphs;

  /// Approximate node counts.  Values that build byte-identical graphs
  /// within one family ("file" ignores n; grid/tree round to the nearest
  /// feasible shape) are deduplicated rather than emitted as colliding
  /// cells.
  std::vector<std::size_t> ns = {1000};

  /// Engine seeds; each value is both the graph-generation seed and the
  /// run seed, so a cell is reproducible from its key alone.
  std::vector<std::uint64_t> seeds = {1};

  /// Delivery modes to sweep.
  std::vector<sim::delivery_mode> deliveries = {sim::delivery_mode::automatic};

  /// Worker counts to sweep (1 = serial, 0 = one per hardware thread).
  std::vector<std::size_t> threads = {1};

  /// Message drop probabilities to sweep.  Empty (the default) means one
  /// implicit value inherited from base_exec.drop_probability, so specs
  /// written before this axis existed keep their meaning.
  std::vector<double> drops;

  /// Fault-plan specs to sweep (sim::parse_fault_plan grammar; "none" is
  /// the reliable model).  Empty means one implicit value inherited from
  /// base_exec.faults.  Cells with an active plan or a positive drop are
  /// *degraded* cells: instead of failing verification they record a
  /// verify::coverage_report, while the repeat-digest determinism check
  /// still applies -- a faulty run must be exactly reproducible.
  std::vector<std::string> faults;

  /// Timed repetitions per cell (>= 1); the document reports the median.
  std::size_t repeats = 3;

  /// Algorithm params, shared across the sweep and filtered per solver to
  /// the keys it declares (a cross-algorithm sweep sets k=3 once;
  /// solvers without a k never see it).  A key no solver in the sweep
  /// accepts is a spec error.
  param_map solver_params;

  /// Graph params, filtered per family the same way ("path" reaches only
  /// the file family, "p" only gnp, ...).  A key no swept family accepts
  /// is a spec error.
  param_map graph_params;

  /// Template for the per-cell execution context: drop_probability and
  /// congest_bit_limit are taken from here; seed/threads/delivery are
  /// overridden per cell and the pool is the shared sweep pool (an
  /// injected pool is reused, otherwise ensure_shared_pool builds one
  /// sized for the largest thread count in the sweep).
  exec::context base_exec;

  /// Verify integral outputs with verify::is_dominating_set on the first
  /// repeat (on by default; a failed cell throws).
  bool verify_solutions = true;
};

/// One executed cell: the embedded run record (its elapsed_ms is the
/// median) plus the raw repeat timings.
struct bench_cell {
  /// Full domset-run/1 record of the cell (result from the first repeat;
  /// digests of later repeats are asserted identical).
  run_record record;

  /// Wall-clock of each repeat in repeat order, milliseconds.
  std::vector<double> times_ms;

  /// Median of times_ms (== record.elapsed_ms).
  double median_ms = 0.0;
};

/// The executed sweep (serialize with to_json below).
struct bench_document {
  std::size_t repeats = 0;
  std::vector<bench_cell> cells;
};

/// Executes the sweep.  Throws std::invalid_argument on an ill-formed
/// spec (empty axis, unknown solver/family/param) and std::runtime_error
/// when a cell fails verification or repeats diverge.
[[nodiscard]] bench_document run_bench(const bench_spec& spec);

/// Serializes the document as the stable `domset-bench/1` JSON (validated
/// by scripts/validate_result_json.py, gated by
/// scripts/check_bench_trend.py).
[[nodiscard]] std::string to_json(const bench_document& doc);

}  // namespace domset::api
