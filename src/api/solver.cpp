#include "api/solver.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "core/repair.hpp"

namespace domset::api {

namespace {

[[noreturn]] void throw_malformed(std::string_view key, std::string_view value,
                                  const char* expected) {
  throw std::invalid_argument("param '" + std::string(key) + "': expected " +
                              expected + ", got '" + std::string(value) + "'");
}

}  // namespace

std::uint64_t param_map::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
  const auto it = entries().find(key);
  if (it == entries().end()) return fallback;
  const std::string& value = it->second;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || parsed < 0 ||
      errno == ERANGE)
    throw_malformed(key, value, "a non-negative integer");
  return static_cast<std::uint64_t>(parsed);
}

double param_map::get_double(std::string_view key, double fallback) const {
  const auto it = entries().find(key);
  if (it == entries().end()) return fallback;
  const std::string& value = it->second;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    throw_malformed(key, value, "a number");
  return parsed;
}

bool param_map::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries().find(key);
  if (it == entries().end()) return fallback;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw_malformed(key, value, "a boolean (true/false)");
}

void param_map::require_known(std::span<const std::string_view> known) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    bool ok = false;
    for (const std::string_view k : known) ok |= key == k;
    if (ok) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += '\'' + key + '\'';
  }
  if (unknown.empty()) return;
  std::string accepted;
  for (const std::string_view k : known) {
    if (!accepted.empty()) accepted += ", ";
    accepted += k;
  }
  if (accepted.empty()) accepted = "none";
  throw std::invalid_argument("unknown param(s) " + unknown +
                              "; this solver accepts: " + accepted);
}

solve_result solver::solve(const graph::graph& g, const exec::context& exec,
                           const param_map& params) const {
  // The self-healing params are cross-cutting: strip them before
  // require_known so every adapter accepts them without listing them.
  const core::repair_mode mode =
      core::parse_repair_mode(params.get_string("repair", "off"));
  param_map inner;
  for (const auto& [key, value] : params.entries())
    if (key != "repair" && key != "repair-radius") inner.set(key, value);

  if (mode == core::repair_mode::off) {
    if (params.contains("repair-radius"))
      throw std::invalid_argument(
          "param 'repair-radius': only applies with repair=radius");
    inner.require_known(param_keys());
    return solve_impl(g, exec, inner);
  }

  if (!integral_output())
    throw std::invalid_argument(
        "param 'repair': solver '" + std::string(name()) +
        "' is fractional-only; repair needs an integral dominating set");
  if (mode != core::repair_mode::radius && params.contains("repair-radius"))
    throw std::invalid_argument(
        "param 'repair-radius': only applies with repair=radius");
  const std::uint64_t radius = params.get_uint("repair-radius", 2);
  if (radius < 1 || radius > 0xFFFFFFFFULL)
    throw std::invalid_argument(
        "param 'repair-radius': must be an integer >= 1");

  inner.require_known(param_keys());
  solve_result out = solve_impl(g, exec, inner);

  core::repair_params rp;
  rp.mode = mode;
  rp.radius = static_cast<std::uint32_t>(radius);
  // Repair models recovery *after* the faults: the dirty subgraph is
  // re-solved on a clean copy of the context (same seed/threads/delivery,
  // no drops, no fault plan) so the patch itself cannot be damaged.
  exec::context clean = exec;
  clean.drop_probability = 0.0;
  clean.faults = nullptr;
  if (mode == core::repair_mode::radius) {
    rp.subsolver = [this, &clean, &inner](
                       const graph::graph& sub,
                       const std::vector<graph::node_id>&) {
      // `inner` carries no repair keys, so this nested solve() cannot
      // recurse into another repair pass.
      return this->solve(sub, clean, inner).in_set;
    };
  }

  core::repair_result repaired = core::repair(g, out.in_set, rp);
  out.in_set = std::move(repaired.in_set);
  out.size = static_cast<std::size_t>(
      std::count(out.in_set.begin(), out.in_set.end(), std::uint8_t{1}));
  out.objective = static_cast<double>(out.size);
  out.repair.attempted = true;
  out.repair.mode = std::string(core::to_string(mode));
  out.repair.radius = rp.mode == core::repair_mode::radius ? rp.radius : 0;
  out.repair.holes_before = repaired.holes_before;
  out.repair.holes_after = repaired.holes_after;
  out.repair.added = repaired.added;
  out.repair.touched_nodes = repaired.touched_nodes;
  return out;
}

}  // namespace domset::api
