#include "api/solver.hpp"

#include <cerrno>
#include <cstdlib>

namespace domset::api {

namespace {

[[noreturn]] void throw_malformed(std::string_view key, std::string_view value,
                                  const char* expected) {
  throw std::invalid_argument("param '" + std::string(key) + "': expected " +
                              expected + ", got '" + std::string(value) + "'");
}

}  // namespace

std::uint64_t param_map::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
  const auto it = entries().find(key);
  if (it == entries().end()) return fallback;
  const std::string& value = it->second;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || parsed < 0 ||
      errno == ERANGE)
    throw_malformed(key, value, "a non-negative integer");
  return static_cast<std::uint64_t>(parsed);
}

double param_map::get_double(std::string_view key, double fallback) const {
  const auto it = entries().find(key);
  if (it == entries().end()) return fallback;
  const std::string& value = it->second;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    throw_malformed(key, value, "a number");
  return parsed;
}

bool param_map::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries().find(key);
  if (it == entries().end()) return fallback;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw_malformed(key, value, "a boolean (true/false)");
}

void param_map::require_known(std::span<const std::string_view> known) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    bool ok = false;
    for (const std::string_view k : known) ok |= key == k;
    if (ok) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += '\'' + key + '\'';
  }
  if (unknown.empty()) return;
  std::string accepted;
  for (const std::string_view k : known) {
    if (!accepted.empty()) accepted += ", ";
    accepted += k;
  }
  if (accepted.empty()) accepted = "none";
  throw std::invalid_argument("unknown param(s) " + unknown +
                              "; this solver accepts: " + accepted);
}

}  // namespace domset::api
