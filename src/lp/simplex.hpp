// Dense tableau simplex for small linear programs.
//
// Solves  max c^T y  s.t.  A y <= b,  y >= 0  with b >= 0, so the slack
// basis is feasible and no phase-1 is needed.  That is exactly the shape of
// DLP_MDS; by strong duality its optimum equals the LP_MDS optimum and the
// optimal primal x* can be read off the slack columns' reduced costs.
//
// Pivoting: Dantzig's rule for speed with an automatic switch to Bland's
// rule (which provably terminates) once the objective stalls, so degenerate
// instances cannot cycle.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace domset::lp {

/// Row-major dense matrix.
class dense_matrix {
 public:
  dense_matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

enum class simplex_status { optimal, unbounded, iteration_limit };

struct simplex_result {
  simplex_status status = simplex_status::iteration_limit;
  double objective = 0.0;
  std::vector<double> solution;       // optimal y
  std::vector<double> dual_solution;  // dual prices (one per constraint)
  std::size_t iterations = 0;
};

struct simplex_options {
  std::size_t max_iterations = 200'000;
  /// Iterations without objective improvement before switching to Bland.
  std::size_t stall_threshold = 64;
  double pivot_epsilon = 1e-10;
};

/// Maximizes c^T y subject to A y <= b, y >= 0.
/// Preconditions: b >= 0 (checked; throws std::invalid_argument),
/// A.rows() == b.size(), A.cols() == c.size().
[[nodiscard]] simplex_result maximize(const dense_matrix& a,
                                      std::span<const double> b,
                                      std::span<const double> c,
                                      const simplex_options& options = {});

}  // namespace domset::lp
