#include "lp/simplex.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace domset::lp {

simplex_result maximize(const dense_matrix& a, std::span<const double> b,
                        std::span<const double> c,
                        const simplex_options& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m || c.size() != n)
    throw std::invalid_argument("simplex::maximize: dimension mismatch");
  for (const double bi : b)
    if (bi < 0.0)
      throw std::invalid_argument("simplex::maximize: requires b >= 0");

  // Tableau layout: columns [0..n) structural, [n..n+m) slack, column n+m
  // is the RHS.  Row m is the objective row holding reduced costs (negated
  // convention: we keep z-row as -c initially and pivot towards all >= 0).
  const std::size_t width = n + m + 1;
  dense_matrix t(m + 1, width);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t col = 0; col < n; ++col) t.at(r, col) = a.at(r, col);
    t.at(r, n + r) = 1.0;
    t.at(r, n + m) = b[r];
  }
  for (std::size_t col = 0; col < n; ++col) t.at(m, col) = -c[col];

  std::vector<std::size_t> basis(m);
  for (std::size_t r = 0; r < m; ++r) basis[r] = n + r;

  simplex_result result;
  const double eps = options.pivot_epsilon;
  double last_objective = 0.0;
  std::size_t stall = 0;
  bool use_bland = false;

  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // Entering column: most negative reduced cost (Dantzig) or first
    // negative (Bland when stalling).
    std::size_t enter = width;  // sentinel: none
    if (use_bland) {
      for (std::size_t col = 0; col < n + m; ++col) {
        if (t.at(m, col) < -eps) {
          enter = col;
          break;
        }
      }
    } else {
      double best = -eps;
      for (std::size_t col = 0; col < n + m; ++col) {
        if (t.at(m, col) < best) {
          best = t.at(m, col);
          enter = col;
        }
      }
    }
    if (enter == width) {
      result.status = simplex_status::optimal;
      break;
    }

    // Ratio test: leaving row minimizing rhs/coeff over positive coeffs;
    // ties broken by smallest basis index (Bland-compatible).
    std::size_t leave = m;  // sentinel: none
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double coeff = t.at(r, enter);
      if (coeff > eps) {
        const double ratio = t.at(r, n + m) / coeff;
        if (ratio < best_ratio - eps ||
            (ratio < best_ratio + eps &&
             (leave == m || basis[r] < basis[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) {
      result.status = simplex_status::unbounded;
      break;
    }

    // Pivot on (leave, enter).
    const double pivot = t.at(leave, enter);
    for (std::size_t col = 0; col < width; ++col) t.at(leave, col) /= pivot;
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == leave) continue;
      const double factor = t.at(r, enter);
      if (std::abs(factor) <= 0.0) continue;
      for (std::size_t col = 0; col < width; ++col)
        t.at(r, col) -= factor * t.at(leave, col);
    }
    basis[leave] = enter;

    const double objective = t.at(m, n + m);
    if (objective <= last_objective + eps) {
      if (++stall >= options.stall_threshold) use_bland = true;
    } else {
      stall = 0;
      use_bland = false;
    }
    last_objective = objective;
  }

  result.objective = t.at(m, n + m);
  result.solution.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    if (basis[r] < n) result.solution[basis[r]] = t.at(r, n + m);
  // Dual prices are the reduced costs of the slack columns at optimality.
  result.dual_solution.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    result.dual_solution[r] = t.at(m, n + r);
  return result;
}

}  // namespace domset::lp
