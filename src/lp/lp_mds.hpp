// The fractional dominating set linear program and its dual (Sect. 4).
//
//   LP_MDS :  min  1^T x   s.t.  N x >= 1,  x >= 0
//   DLP_MDS:  max  1^T y   s.t.  N y <= 1,  y >= 0
//
// where N is the neighborhood matrix (adjacency + identity).  This module
// provides feasibility checkers, objective evaluation, the Lemma 1 dual
// bound, and the exact fractional optimum via simplex.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace domset::lp {

/// Default tolerance for feasibility checks.  All modules share this value
/// so an x accepted by one checker is accepted by all.
inline constexpr double feasibility_epsilon = 1e-9;

/// Objective 1^T x.
[[nodiscard]] double objective(std::span<const double> x);

/// True iff x >= 0 and every closed neighborhood sums to >= 1 - eps.
[[nodiscard]] bool is_primal_feasible(const graph::graph& g,
                                      std::span<const double> x,
                                      double eps = feasibility_epsilon);

/// True iff y >= 0 and every closed neighborhood sums to <= 1 + eps.
[[nodiscard]] bool is_dual_feasible(const graph::graph& g,
                                    std::span<const double> y,
                                    double eps = feasibility_epsilon);

/// Per-node coverage sums  (N x)_i  -- handy for diagnosing infeasibility.
[[nodiscard]] std::vector<double> coverage(const graph::graph& g,
                                           std::span<const double> x);

/// The Lemma 1 dual-feasible assignment y_i = 1/(delta^(1)_i + 1).
/// Its objective lower-bounds every dominating set (integral or not).
[[nodiscard]] std::vector<double> lemma1_dual_assignment(const graph::graph& g);

/// Exact fractional optimum of LP_MDS (via simplex on the dual, which is
/// feasible at y = 0).  Returns both the optimal primal x* and dual y*
/// with equal objectives (strong duality), or nullopt if the solver hit
/// its iteration limit (does not happen on test-scale instances).
struct lp_optimum {
  double value = 0.0;
  std::vector<double> x;  // optimal primal (fractional dominating set)
  std::vector<double> y;  // optimal dual (fractional packing)
  std::size_t simplex_iterations = 0;
};
[[nodiscard]] std::optional<lp_optimum> solve_lp_mds(const graph::graph& g);

/// Weighted variant: min c^T x with the same constraints (the Remark after
/// Theorem 4).  Costs must be positive.
[[nodiscard]] std::optional<lp_optimum> solve_weighted_lp_mds(
    const graph::graph& g, std::span<const double> cost);

}  // namespace domset::lp
