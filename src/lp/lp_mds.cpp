#include "lp/lp_mds.hpp"

#include <stdexcept>

#include "graph/properties.hpp"
#include "lp/simplex.hpp"

namespace domset::lp {

double objective(std::span<const double> x) {
  double sum = 0.0;
  for (const double xi : x) sum += xi;
  return sum;
}

std::vector<double> coverage(const graph::graph& g,
                             std::span<const double> x) {
  const std::size_t n = g.node_count();
  std::vector<double> cov(n, 0.0);
  for (graph::node_id v = 0; v < n; ++v) {
    double sum = x[v];
    for (const graph::node_id u : g.neighbors(v)) sum += x[u];
    cov[v] = sum;
  }
  return cov;
}

bool is_primal_feasible(const graph::graph& g, std::span<const double> x,
                        double eps) {
  if (x.size() != g.node_count()) return false;
  for (const double xi : x)
    if (xi < -eps) return false;
  for (const double cov : coverage(g, x))
    if (cov < 1.0 - eps) return false;
  return true;
}

bool is_dual_feasible(const graph::graph& g, std::span<const double> y,
                      double eps) {
  if (y.size() != g.node_count()) return false;
  for (const double yi : y)
    if (yi < -eps) return false;
  for (const double cov : coverage(g, y))
    if (cov > 1.0 + eps) return false;
  return true;
}

std::vector<double> lemma1_dual_assignment(const graph::graph& g) {
  const auto d1 = graph::max_degree_1hop(g);
  std::vector<double> y(g.node_count());
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] = 1.0 / (static_cast<double>(d1[i]) + 1.0);
  return y;
}

namespace {

/// Builds the neighborhood matrix N (adjacency + identity) as a dense
/// matrix; row i is the closed neighborhood indicator of node i.
dense_matrix neighborhood_matrix(const graph::graph& g) {
  const std::size_t n = g.node_count();
  dense_matrix m(n, n);
  for (graph::node_id v = 0; v < n; ++v) {
    m.at(v, v) = 1.0;
    for (const graph::node_id u : g.neighbors(v)) m.at(v, u) = 1.0;
  }
  return m;
}

std::optional<lp_optimum> solve_impl(const graph::graph& g,
                                     std::span<const double> cost) {
  const std::size_t n = g.node_count();
  if (n == 0) return lp_optimum{};
  // Solve the dual  max 1^T y  s.t.  N y <= cost,  y >= 0  (for unit costs
  // this is DLP_MDS).  The slack basis is feasible because cost > 0.
  // By strong duality the optimum equals min cost^T x over N x >= 1, and
  // the dual prices of the <= constraints are the optimal primal x*.
  // N is symmetric, which is why one matrix serves both programs.
  const dense_matrix nm = neighborhood_matrix(g);
  const std::vector<double> ones(n, 1.0);
  const simplex_result res = maximize(nm, cost, ones);
  if (res.status != simplex_status::optimal) return std::nullopt;

  lp_optimum out;
  out.value = res.objective;
  out.y = res.solution;
  out.x = res.dual_solution;
  out.simplex_iterations = res.iterations;
  return out;
}

}  // namespace

std::optional<lp_optimum> solve_lp_mds(const graph::graph& g) {
  const std::vector<double> ones(g.node_count(), 1.0);
  return solve_impl(g, ones);
}

std::optional<lp_optimum> solve_weighted_lp_mds(const graph::graph& g,
                                                std::span<const double> cost) {
  if (cost.size() != g.node_count())
    throw std::invalid_argument("solve_weighted_lp_mds: cost size mismatch");
  for (const double ci : cost)
    if (ci <= 0.0)
      throw std::invalid_argument(
          "solve_weighted_lp_mds: costs must be positive");
  return solve_impl(g, cost);
}

}  // namespace domset::lp
