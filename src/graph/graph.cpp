#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace domset::graph {

graph_builder::graph_builder(std::size_t node_count)
    : node_count_(node_count) {}

void graph_builder::add_edge(node_id u, node_id v) {
  if (u >= node_count_ || v >= node_count_)
    throw std::invalid_argument("graph_builder::add_edge: node out of range");
  if (u == v)
    throw std::invalid_argument("graph_builder::add_edge: self-loop");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

bool graph_builder::has_edge_slow(node_id u, node_id v) const {
  if (u > v) std::swap(u, v);
  // Catch the index up with the edges added since the last query; each
  // edge is hashed exactly once over the builder's lifetime.
  if (indexed_upto_ < edges_.size()) {
    edge_index_.reserve(edges_.size());
    for (; indexed_upto_ < edges_.size(); ++indexed_upto_) {
      const auto& [a, b] = edges_[indexed_upto_];
      edge_index_.insert((static_cast<std::uint64_t>(a) << 32) | b);
    }
  }
  return edge_index_.contains((static_cast<std::uint64_t>(u) << 32) | v);
}

graph graph_builder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  graph g;
  g.offsets_.assign(node_count_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Edges were processed in sorted order, so each neighbor list is already
  // sorted; assert-level check in debug builds only.
  for (std::size_t v = 0; v < node_count_; ++v) {
    g.max_degree_ = std::max(
        g.max_degree_,
        static_cast<std::uint32_t>(g.offsets_[v + 1] - g.offsets_[v]));
  }
  edges_.clear();
  edge_index_.clear();
  indexed_upto_ = 0;
  return g;
}

bool graph::has_edge(node_id u, node_id v) const noexcept {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::string graph::summary() const {
  return "n=" + std::to_string(node_count()) +
         " m=" + std::to_string(edge_count()) +
         " maxdeg=" + std::to_string(max_degree());
}

}  // namespace domset::graph
