#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace domset::graph {

namespace {

/// Heap backing store for builder-produced graphs: the vectors never
/// reallocate once built, so the graph's spans into them stay valid for
/// the storage's lifetime.
struct csr_arrays {
  std::vector<std::size_t> offsets;
  std::vector<node_id> adjacency;
};

}  // namespace

graph_builder::graph_builder(std::size_t node_count)
    : node_count_(node_count) {}

void graph_builder::add_edge(node_id u, node_id v) {
  if (u >= node_count_ || v >= node_count_)
    throw std::invalid_argument("graph_builder::add_edge: node out of range");
  if (u == v)
    throw std::invalid_argument("graph_builder::add_edge: self-loop");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

bool graph_builder::has_edge_slow(node_id u, node_id v) const {
  if (u > v) std::swap(u, v);
  // Catch the index up with the edges added since the last query; each
  // edge is hashed exactly once over the builder's lifetime.
  if (indexed_upto_ < edges_.size()) {
    edge_index_.reserve(edges_.size());
    for (; indexed_upto_ < edges_.size(); ++indexed_upto_) {
      const auto& [a, b] = edges_[indexed_upto_];
      edge_index_.insert((static_cast<std::uint64_t>(a) << 32) | b);
    }
  }
  return edge_index_.contains((static_cast<std::uint64_t>(u) << 32) | v);
}

graph graph_builder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  auto arrays = std::make_shared<csr_arrays>();
  arrays->offsets.assign(node_count_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++arrays->offsets[u + 1];
    ++arrays->offsets[v + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i)
    arrays->offsets[i] += arrays->offsets[i - 1];

  arrays->adjacency.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(arrays->offsets.begin(),
                                  arrays->offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    arrays->adjacency[cursor[u]++] = v;
    arrays->adjacency[cursor[v]++] = u;
  }
  // Edges were processed in sorted order, so each neighbor list is already
  // sorted.
  edges_.clear();
  edge_index_.clear();
  indexed_upto_ = 0;
  return graph::adopt_csr(arrays, arrays->offsets, arrays->adjacency);
}

graph graph::adopt_csr(std::shared_ptr<const void> storage,
                       std::span<const std::size_t> offsets,
                       std::span<const node_id> adjacency) {
  graph g;
  g.storage_ = std::move(storage);
  g.offsets_ = offsets;
  g.adjacency_ = adjacency;
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    g.max_degree_ = std::max(
        g.max_degree_, static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]));
  }
  return g;
}

bool graph::has_edge(node_id u, node_id v) const noexcept {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::string graph::summary() const {
  return "n=" + std::to_string(node_count()) +
         " m=" + std::to_string(edge_count()) +
         " maxdeg=" + std::to_string(max_degree());
}

}  // namespace domset::graph
