#include "graph/properties.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace domset::graph {

std::vector<std::uint32_t> max_degree_1hop(const graph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> out(n, 0);
  for (node_id v = 0; v < n; ++v) {
    std::uint32_t best = g.degree(v);
    for (const node_id u : g.neighbors(v)) best = std::max(best, g.degree(u));
    out[v] = best;
  }
  return out;
}

std::vector<std::uint32_t> max_degree_2hop(const graph& g) {
  const std::size_t n = g.node_count();
  const std::vector<std::uint32_t> one_hop = max_degree_1hop(g);
  std::vector<std::uint32_t> out(n, 0);
  for (node_id v = 0; v < n; ++v) {
    std::uint32_t best = one_hop[v];
    for (const node_id u : g.neighbors(v)) best = std::max(best, one_hop[u]);
    out[v] = best;
  }
  return out;
}

double dual_lower_bound(const graph& g) {
  const std::vector<std::uint32_t> d1 = max_degree_1hop(g);
  double sum = 0.0;
  for (const std::uint32_t d : d1) sum += 1.0 / (static_cast<double>(d) + 1.0);
  return sum;
}

components_result connected_components(const graph& g) {
  const std::size_t n = g.node_count();
  components_result res;
  res.component.assign(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<node_id> stack;
  for (node_id start = 0; start < n; ++start) {
    if (res.component[start] != std::numeric_limits<std::uint32_t>::max())
      continue;
    const auto id = static_cast<std::uint32_t>(res.count++);
    res.component[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const node_id v = stack.back();
      stack.pop_back();
      for (const node_id u : g.neighbors(v)) {
        if (res.component[u] == std::numeric_limits<std::uint32_t>::max()) {
          res.component[u] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return res;
}

bool is_connected(const graph& g) {
  if (g.node_count() <= 1) return true;
  return connected_components(g).count == 1;
}

std::vector<std::uint32_t> bfs_distances(const graph& g, node_id source) {
  constexpr auto unreachable = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.node_count(), unreachable);
  std::queue<node_id> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const node_id v = frontier.front();
    frontier.pop();
    for (const node_id u : g.neighbors(v)) {
      if (dist[u] == unreachable) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

std::uint32_t diameter(const graph& g) {
  constexpr auto unreachable = std::numeric_limits<std::uint32_t>::max();
  const std::size_t n = g.node_count();
  if (n <= 1) return 0;
  std::uint32_t best = 0;
  for (node_id v = 0; v < n; ++v) {
    const auto dist = bfs_distances(g, v);
    for (const std::uint32_t d : dist) {
      if (d == unreachable) return unreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

double average_degree(const graph& g) {
  if (g.node_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.edge_count()) /
         static_cast<double>(g.node_count());
}

degree_stats_result degree_stats(const graph& g) {
  degree_stats_result out;
  out.max_degree = g.max_degree();
  out.avg_degree = average_degree(g);
  if (out.avg_degree > 0.0)
    out.skew = static_cast<double>(out.max_degree) / out.avg_degree;
  return out;
}

std::vector<std::size_t> degree_histogram(const graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (node_id v = 0; v < g.node_count(); ++v) ++hist[g.degree(v)];
  return hist;
}

induced_subgraph_result induced_subgraph(const graph& g,
                                         std::span<const std::uint8_t> keep) {
  induced_subgraph_result out;
  std::vector<node_id> new_id(g.node_count(), invalid_node);
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (keep[v]) {
      new_id[v] = static_cast<node_id>(out.original_id.size());
      out.original_id.push_back(v);
    }
  }
  graph_builder b(out.original_id.size());
  for (const node_id v : out.original_id) {
    for (const node_id u : g.neighbors(v)) {
      if (keep[u] && v < u) b.add_edge(new_id[v], new_id[u]);
    }
  }
  out.g = std::move(b).build();
  return out;
}

induced_subgraph_result largest_component(const graph& g) {
  const auto comps = connected_components(g);
  std::vector<std::size_t> sizes(comps.count, 0);
  for (node_id v = 0; v < g.node_count(); ++v) ++sizes[comps.component[v]];
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < comps.count; ++c)
    if (sizes[c] > sizes[best]) best = c;
  std::vector<std::uint8_t> keep(g.node_count(), 0);
  for (node_id v = 0; v < g.node_count(); ++v)
    keep[v] = comps.component[v] == best ? 1 : 0;
  return induced_subgraph(g, keep);
}

}  // namespace domset::graph
