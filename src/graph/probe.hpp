// Cheap structural probes for solver selection: degeneracy (core peel),
// arboricity bounds derived from it, and a seeded triangle sample.
//
// The `auto` meta-solver (src/api/solvers.cpp) dispatches on these values,
// so every probe here is (a) O(n + m) or cheaper -- probing must cost a
// negligible fraction of any solve it steers -- and (b) bit-identical
// across thread counts: selection feeds the determinism contract, so a
// probe that flickered with --threads would make `auto` runs
// irreproducible.  Arboricity bracketing uses the classical facts
// arboricity <= degeneracy <= 2*arboricity - 1 [Nash-Williams 1964;
// Matula-Beck 1983]; the bounded-arboricity solver the values steer toward
// is Dory-Ghaffari-Ilchi (arXiv 2206.05174).
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.hpp"
#include "graph/properties.hpp"

namespace domset::sim {
class thread_pool;
}  // namespace domset::sim

namespace domset::graph {

struct probe_params {
  /// Wedge samples for the triangle-density estimate (0 = skip sampling).
  std::size_t triangle_samples = 2048;

  /// Seed of the sample streams.  Deliberately NOT tied to the run seed:
  /// selection must depend on the graph alone, so the same graph probes
  /// identically under every exec::context.
  std::uint64_t sample_seed = 0x70726F6265ULL;

  /// Worker threads for the sampling pass (1 = serial, 0 = hardware).
  /// Every sample draws from its own derived rng stream, so the estimate
  /// is bit-identical for every worker count.
  std::size_t threads = 1;

  /// Optional shared pool (see exec::context::pool); built on demand when
  /// null and threads != 1.
  std::shared_ptr<sim::thread_pool> pool;
};

struct probe_result {
  /// Degeneracy (maximum core number): the largest k such that some
  /// subgraph has minimum degree k.  Exact, via the O(n + m) bucket peel.
  std::uint32_t degeneracy = 0;

  /// (degeneracy + 1) / 2 <= arboricity: lower bracket of the forest
  /// count [Matula-Beck].
  double arboricity_lower = 0.0;

  /// arboricity <= degeneracy: upper bracket [Nash-Williams].
  std::uint32_t arboricity_upper = 0;

  /// Wedges actually sampled (a drawn center of degree < 2 spans no wedge
  /// and is not counted).
  std::size_t wedges_sampled = 0;

  /// Sampled wedges whose endpoints are adjacent.
  std::size_t triangles_closed = 0;

  /// triangles_closed / wedges_sampled (0 when nothing was sampled): a
  /// global-clustering estimate, 1.0 on cliques, 0.0 on triangle-free
  /// graphs.
  double triangle_density = 0.0;

  /// Max/avg degree and skew, shared with the delivery heuristic
  /// (graph::degree_stats).
  degree_stats_result degrees;
};

/// Exact degeneracy via the Batagelj-Zaversnik bucket peel, O(n + m),
/// serial and deterministic.
[[nodiscard]] std::uint32_t degeneracy(const graph& g);

/// Runs every probe; see the individual field comments.
[[nodiscard]] probe_result probe(const graph& g,
                                 const probe_params& params = {});

}  // namespace domset::graph
