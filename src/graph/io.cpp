#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/thread_pool.hpp"

namespace domset::graph {

namespace {

bool is_field_ws(char c) {
  return c == ' ' || c == '\t' || c == '\v' || c == '\f';
}

/// One physical line with the trailing '\r' of a CRLF ending stripped.
std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

bool is_blank(std::string_view line) {
  return std::all_of(line.begin(), line.end(), is_field_ws);
}

bool is_comment(std::string_view line) {
  return !line.empty() && (line.front() == '#' || line.front() == '%');
}

/// Parses one base-10 uint64 at the front of `s`; returns the number of
/// characters consumed (0 = no digits or overflow).
std::size_t parse_u64(std::string_view s, std::uint64_t& out) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  while (used < s.size() && s[used] >= '0' && s[used] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(s[used] - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return 0;
    value = value * 10 + digit;
    ++used;
  }
  if (used == 0) return 0;
  out = value;
  return used;
}

/// Parses "u v" (arbitrary field whitespace, nothing else on the line).
/// Returns a static error description, or nullptr on success.
const char* parse_pair_line(std::string_view line, std::uint64_t& u,
                            std::uint64_t& v) {
  std::size_t pos = 0;
  while (pos < line.size() && is_field_ws(line[pos])) ++pos;
  std::size_t used = parse_u64(line.substr(pos), u);
  if (used == 0) return "expected two non-negative integers";
  pos += used;
  if (pos >= line.size() || !is_field_ws(line[pos]))
    return "expected whitespace between the two fields";
  while (pos < line.size() && is_field_ws(line[pos])) ++pos;
  used = parse_u64(line.substr(pos), v);
  if (used == 0) return "expected two non-negative integers";
  pos += used;
  while (pos < line.size() && is_field_ws(line[pos])) ++pos;
  if (pos != line.size()) return "trailing characters after the two fields";
  return nullptr;
}

[[noreturn]] void fail(std::uint64_t line, const std::string& what) {
  throw std::runtime_error("edge list: line " + std::to_string(line) + ": " +
                           what);
}

/// Extracts "Nodes: <n> ... Edges: <m>" from a SNAP-style comment line.
bool parse_snap_counts(std::string_view comment, std::uint64_t& n,
                       std::uint64_t& m) {
  const auto value_after = [&](std::string_view tag,
                               std::uint64_t& out) -> bool {
    const std::size_t at = comment.find(tag);
    if (at == std::string_view::npos) return false;
    std::size_t pos = at + tag.size();
    while (pos < comment.size() && is_field_ws(comment[pos])) ++pos;
    return parse_u64(comment.substr(pos), out) != 0;
  };
  return value_after("Nodes:", n) && value_after("Edges:", m);
}

/// Everything the serial prologue scan learns before chunks dispatch.
struct header_info {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::size_t body_offset = 0;      // first byte after the header line
  std::uint64_t body_first_line = 1;  // 1-based line number at body_offset
};

header_info scan_header(std::string_view text) {
  header_info h;
  std::size_t pos = 0;
  std::uint64_t line_no = 0;
  bool snap = false;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    const std::string_view line = strip_cr(text.substr(pos, end - pos));
    ++line_no;
    const std::size_t next =
        nl == std::string_view::npos ? text.size() : nl + 1;
    if (is_comment(line)) {
      snap = snap || parse_snap_counts(line, h.n, h.m);
    } else if (!is_blank(line)) {
      if (snap) {
        // A SNAP-style comment already supplied the counts; this first
        // data line is an edge and belongs to the body.
        h.body_offset = pos;
        h.body_first_line = line_no;
        return h;
      }
      const char* err = parse_pair_line(line, h.n, h.m);
      if (err != nullptr)
        fail(line_no, std::string("malformed header (want 'n m'): ") + err);
      h.body_offset = next;
      h.body_first_line = line_no + 1;
      return h;
    }
    pos = next;
  }
  if (snap) {
    // Counts but no data lines; legitimate iff the file declares m == 0
    // (the edge-count check in parse_edge_list enforces that).
    h.body_offset = text.size();
    h.body_first_line = line_no + 1;
    return h;
  }
  throw std::runtime_error("edge list: missing header line");
}

/// What one worker produced from its byte range.  Line numbers are
/// chunk-relative (0-based) until the merge adds the chunk's absolute
/// start line.
struct chunk_result {
  std::vector<std::pair<node_id, node_id>> edges;  // normalized u < v
  std::vector<std::uint64_t> edge_lines;           // per edge, chunk-relative
  std::uint64_t lines = 0;                         // physical lines consumed
  std::string error;                               // first error, if any
  std::uint64_t error_line = 0;                    // chunk-relative
};

void parse_chunk(std::string_view body, std::size_t begin, std::size_t end,
                 std::uint64_t n, chunk_result& out) {
  std::size_t pos = begin;
  while (pos < end) {
    const std::size_t nl = body.find('\n', pos);
    const std::size_t line_end = nl == std::string_view::npos ? end : nl;
    const std::string_view line = strip_cr(body.substr(pos, line_end - pos));
    const std::uint64_t line_index = out.lines++;
    pos = nl == std::string_view::npos ? end : nl + 1;
    if (is_blank(line) || is_comment(line)) continue;
    if (!out.error.empty()) continue;  // count remaining lines, parse nothing
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    const char* err = parse_pair_line(line, u, v);
    std::string message;
    if (err != nullptr) {
      message = std::string("malformed edge ('") + std::string(line) +
                "'): " + err;
    } else if (u == v) {
      message = "self-loop '" + std::to_string(u) + " " + std::to_string(v) +
                "'";
    } else if (u >= n || v >= n) {
      message = "endpoint out of range in '" + std::to_string(u) + " " +
                std::to_string(v) + "' (node count " + std::to_string(n) + ")";
    }
    if (!message.empty()) {
      out.error = std::move(message);
      out.error_line = line_index;
      continue;
    }
    if (u > v) std::swap(u, v);
    out.edges.emplace_back(static_cast<node_id>(u), static_cast<node_id>(v));
    out.edge_lines.push_back(line_index);
  }
}

}  // namespace

void write_edge_list(const graph& g, std::ostream& out) {
  out << g.node_count() << ' ' << g.edge_count() << '\n';
  for (node_id v = 0; v < g.node_count(); ++v) {
    for (const node_id u : g.neighbors(v)) {
      if (v < u) out << v << ' ' << u << '\n';
    }
  }
}

graph parse_edge_list(std::string_view text, const parse_options& opts) {
  const header_info header = scan_header(text);
  if (header.n > std::numeric_limits<node_id>::max())
    throw std::runtime_error(
        "edge list: node count " + std::to_string(header.n) +
        " exceeds the 32-bit node id space");
  const std::string_view body = text.substr(header.body_offset);

  // One newline-aligned chunk per worker.  A boundary that lands inside a
  // line is advanced past the next '\n', so every physical line belongs to
  // exactly one chunk and the concatenation of chunk results is the
  // serial parse.
  std::size_t workers =
      opts.pool != nullptr
          ? opts.pool->size()
          : (opts.threads == 0 ? sim::thread_pool::hardware_workers()
                               : opts.threads);
  workers = std::max<std::size_t>(1, std::min(workers, std::size_t{256}));
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (std::size_t w = 1; w < workers; ++w) {
    std::size_t at = std::max(bounds.back(), body.size() * w / workers);
    const std::size_t nl = body.find('\n', at);
    at = nl == std::string_view::npos ? body.size() : nl + 1;
    if (at > bounds.back()) bounds.push_back(at);
  }
  bounds.push_back(body.size());

  std::vector<chunk_result> chunks(bounds.size() - 1);
  const auto parse_one = [&](std::size_t c) {
    parse_chunk(body, bounds[c], bounds[c + 1], header.n, chunks[c]);
  };
  if (chunks.size() == 1) {
    parse_one(0);
  } else if (opts.pool != nullptr) {
    opts.pool->run_chunked(chunks.size(), chunks.size(),
                           [&](std::size_t, std::size_t lo, std::size_t hi) {
                             for (std::size_t c = lo; c < hi; ++c)
                               parse_one(c);
                           });
  } else {
    sim::thread_pool local(chunks.size());
    local.run_chunked(chunks.size(), chunks.size(),
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t c = lo; c < hi; ++c) parse_one(c);
                      });
  }

  // Merge phase: resolve chunk-relative line numbers, surface the earliest
  // error, enforce the declared edge count, and reject duplicates.
  std::vector<std::uint64_t> chunk_start_line(chunks.size() + 1,
                                              header.body_first_line);
  for (std::size_t c = 0; c < chunks.size(); ++c)
    chunk_start_line[c + 1] = chunk_start_line[c] + chunks[c].lines;
  std::size_t total_edges = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (!chunks[c].error.empty())
      fail(chunk_start_line[c] + chunks[c].error_line, chunks[c].error);
    total_edges += chunks[c].edges.size();
  }
  if (total_edges != header.m) {
    if (total_edges < header.m)
      throw std::runtime_error(
          "edge list: truncated: header declares " + std::to_string(header.m) +
          " edges, found " + std::to_string(total_edges));
    // Name the first edge beyond the declared count.
    std::size_t seen = 0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (seen + chunks[c].edges.size() > header.m) {
        fail(chunk_start_line[c] + chunks[c].edge_lines[header.m - seen],
             "edge beyond the declared count of " + std::to_string(header.m));
      }
      seen += chunks[c].edges.size();
    }
  }

  graph_builder b(static_cast<std::size_t>(header.n));
  std::unordered_set<std::uint64_t> seen_edges;
  seen_edges.reserve(total_edges * 2);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::size_t i = 0; i < chunks[c].edges.size(); ++i) {
      const auto [u, v] = chunks[c].edges[i];
      const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
      if (!seen_edges.insert(key).second)
        fail(chunk_start_line[c] + chunks[c].edge_lines[i],
             "duplicate edge '" + std::to_string(u) + " " + std::to_string(v) +
                 "' (undirected edges must be listed once)");
      b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

graph read_edge_list(std::istream& in) {
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  return parse_edge_list(text);
}

graph read_edge_list_file(const std::string& path, const parse_options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("'" + path + "': cannot open");
  std::string text;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    text.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(text.data(), size);
    if (!in) throw std::runtime_error("'" + path + "': read failed");
  }
  try {
    return parse_edge_list(text, opts);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("'" + path + "': " + e.what());
  }
}

}  // namespace domset::graph
