#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace domset::graph {

void write_edge_list(const graph& g, std::ostream& out) {
  out << g.node_count() << ' ' << g.edge_count() << '\n';
  for (node_id v = 0; v < g.node_count(); ++v) {
    for (const node_id u : g.neighbors(v)) {
      if (v < u) out << v << ' ' << u << '\n';
    }
  }
}

graph read_edge_list(std::istream& in) {
  std::string line;
  const auto next_data_line = [&]() -> bool {
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_data_line())
    throw std::runtime_error("read_edge_list: missing header line");
  std::istringstream header(line);
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(header >> n >> m))
    throw std::runtime_error("read_edge_list: malformed header");

  graph_builder b(n);
  for (std::size_t i = 0; i < m; ++i) {
    if (!next_data_line())
      throw std::runtime_error("read_edge_list: truncated edge list");
    std::istringstream edge(line);
    std::size_t u = 0;
    std::size_t v = 0;
    if (!(edge >> u >> v))
      throw std::runtime_error("read_edge_list: malformed edge line");
    if (u >= n || v >= n)
      throw std::runtime_error("read_edge_list: endpoint out of range");
    if (u == v) throw std::runtime_error("read_edge_list: self-loop");
    b.add_edge(static_cast<node_id>(u), static_cast<node_id>(v));
  }
  return std::move(b).build();
}

}  // namespace domset::graph
