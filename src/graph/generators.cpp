#include "graph/generators.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace domset::graph {

namespace {

/// Encodes an unordered pair as a 64-bit key for dedup sets.
[[nodiscard]] std::uint64_t pair_key(node_id u, node_id v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

graph empty_graph(std::size_t n) { return graph_builder(n).build(); }

graph complete_graph(std::size_t n) {
  graph_builder b(n);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) b.add_edge(u, v);
  return std::move(b).build();
}

graph path_graph(std::size_t n) {
  graph_builder b(n);
  for (node_id v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

graph cycle_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n must be >= 3");
  graph_builder b(n);
  for (node_id v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(static_cast<node_id>(n - 1), 0);
  return std::move(b).build();
}

graph star_graph(std::size_t n) {
  graph_builder b(n);
  for (node_id v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

graph complete_bipartite(std::size_t a, std::size_t b_count) {
  graph_builder b(a + b_count);
  for (node_id u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b_count; ++v)
      b.add_edge(u, static_cast<node_id>(a + v));
  return std::move(b).build();
}

graph grid_graph(std::size_t width, std::size_t height) {
  graph_builder b(width * height);
  const auto at = [width](std::size_t x, std::size_t y) {
    return static_cast<node_id>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) b.add_edge(at(x, y), at(x + 1, y));
      if (y + 1 < height) b.add_edge(at(x, y), at(x, y + 1));
    }
  }
  return std::move(b).build();
}

graph torus_graph(std::size_t width, std::size_t height) {
  if (width < 3 || height < 3)
    throw std::invalid_argument("torus_graph: dimensions must be >= 3");
  graph_builder b(width * height);
  const auto at = [width](std::size_t x, std::size_t y) {
    return static_cast<node_id>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      b.add_edge(at(x, y), at((x + 1) % width, y));
      b.add_edge(at(x, y), at(x, (y + 1) % height));
    }
  }
  return std::move(b).build();
}

graph balanced_tree(std::size_t arity, std::size_t depth) {
  if (arity < 1) throw std::invalid_argument("balanced_tree: arity >= 1");
  // Count nodes level by level to avoid overflow surprises.
  std::size_t total = 0;
  std::size_t level_size = 1;
  for (std::size_t d = 0; d <= depth; ++d) {
    total += level_size;
    level_size *= arity;
  }
  graph_builder b(total);
  // Children of node v (BFS labeling) are v*arity+1 .. v*arity+arity.
  for (node_id v = 0; v < total; ++v) {
    for (std::size_t c = 1; c <= arity; ++c) {
      const std::size_t child = static_cast<std::size_t>(v) * arity + c;
      if (child < total) b.add_edge(v, static_cast<node_id>(child));
    }
  }
  return std::move(b).build();
}

graph caterpillar(std::size_t spine, std::size_t legs) {
  graph_builder b(spine + spine * legs);
  for (node_id s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (std::size_t s = 0; s < spine; ++s)
    for (std::size_t l = 0; l < legs; ++l)
      b.add_edge(static_cast<node_id>(s),
                 static_cast<node_id>(spine + s * legs + l));
  return std::move(b).build();
}

graph greedy_adversarial(std::size_t t) {
  if (t < 1) throw std::invalid_argument("greedy_adversarial: t >= 1");
  // Elements: for each i in 1..t a block of 2^i nodes.  Set nodes: S_1..S_t
  // (covering their block) then T_1, T_2 (covering the first/second half of
  // every block).  Set nodes form a clique so any one of them dominates all
  // of them; this keeps OPT = {T_1, T_2} while preserving greedy's bait
  // ordering (the clique contribution to the span is identical across set
  // nodes in the first round and zero afterwards).
  std::size_t element_count = 0;
  for (std::size_t i = 1; i <= t; ++i) element_count += (1ULL << i);
  const std::size_t set_count = t + 2;
  graph_builder b(element_count + set_count);

  const auto set_node = [&](std::size_t idx) {
    return static_cast<node_id>(element_count + idx);
  };
  const node_id t1 = set_node(t);
  const node_id t2 = set_node(t + 1);

  std::size_t next_element = 0;
  for (std::size_t i = 1; i <= t; ++i) {
    const std::size_t block = 1ULL << i;
    const node_id s_i = set_node(i - 1);
    for (std::size_t e = 0; e < block; ++e) {
      const auto elem = static_cast<node_id>(next_element + e);
      b.add_edge(s_i, elem);
      b.add_edge(e < block / 2 ? t1 : t2, elem);
    }
    next_element += block;
  }
  for (std::size_t i = 0; i < set_count; ++i)
    for (std::size_t j = i + 1; j < set_count; ++j)
      b.add_edge(set_node(i), set_node(j));
  return std::move(b).build();
}

graph gnp_random(std::size_t n, double p, common::rng& gen) {
  graph_builder b(n);
  if (n < 2 || p <= 0.0) return std::move(b).build();
  if (p >= 1.0) return complete_graph(n);
  // Batagelj-Brandes skipping: walk the (implicitly linearised) pair list
  // with geometric jumps; O(n + m) instead of O(n^2).
  const double log_1mp = std::log(1.0 - p);
  std::size_t v = 1;
  std::ptrdiff_t w = -1;
  while (v < n) {
    const double r = gen.next_double();
    w += 1 + static_cast<std::ptrdiff_t>(
                 std::floor(std::log(1.0 - r) / log_1mp));
    while (w >= static_cast<std::ptrdiff_t>(v) && v < n) {
      w -= static_cast<std::ptrdiff_t>(v);
      ++v;
    }
    if (v < n)
      b.add_edge(static_cast<node_id>(v), static_cast<node_id>(w));
  }
  return std::move(b).build();
}

graph gnm_random(std::size_t n, std::size_t m, common::rng& gen) {
  const std::size_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  if (m > max_edges)
    throw std::invalid_argument("gnm_random: m exceeds n*(n-1)/2");
  graph_builder b(n);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    const auto u = static_cast<node_id>(gen.next_below(n));
    const auto v = static_cast<node_id>(gen.next_below(n));
    if (u == v) continue;
    if (chosen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  return std::move(b).build();
}

geometric_graph random_geometric(std::size_t n, double radius,
                                 common::rng& gen) {
  geometric_graph out;
  out.x.resize(n);
  out.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.x[i] = gen.next_double();
    out.y[i] = gen.next_double();
  }
  graph_builder b(n);
  if (n > 0 && radius > 0.0) {
    // Bucket grid with cell size >= radius: each node only checks the
    // 3x3 cell neighborhood.
    const auto cells =
        static_cast<std::size_t>(std::max(1.0, std::floor(1.0 / radius)));
    std::vector<std::vector<node_id>> grid(cells * cells);
    const auto cell_of = [&](double coord) {
      auto c = static_cast<std::size_t>(coord * static_cast<double>(cells));
      return std::min(c, cells - 1);
    };
    for (std::size_t i = 0; i < n; ++i)
      grid[cell_of(out.y[i]) * cells + cell_of(out.x[i])].push_back(
          static_cast<node_id>(i));
    const double r2 = radius * radius;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cx = cell_of(out.x[i]);
      const std::size_t cy = cell_of(out.y[i]);
      for (std::size_t dy = cy == 0 ? 0 : cy - 1;
           dy <= std::min(cy + 1, cells - 1); ++dy) {
        for (std::size_t dx = cx == 0 ? 0 : cx - 1;
             dx <= std::min(cx + 1, cells - 1); ++dx) {
          for (const node_id j : grid[dy * cells + dx]) {
            if (j <= i) continue;
            const double ddx = out.x[i] - out.x[j];
            const double ddy = out.y[i] - out.y[j];
            if (ddx * ddx + ddy * ddy <= r2)
              b.add_edge(static_cast<node_id>(i), j);
          }
        }
      }
    }
  }
  out.g = std::move(b).build();
  return out;
}

graph barabasi_albert(std::size_t n, std::size_t m, common::rng& gen) {
  if (m < 1) throw std::invalid_argument("barabasi_albert: m >= 1");
  const std::size_t seed_nodes = m + 1;
  if (n < seed_nodes)
    throw std::invalid_argument("barabasi_albert: n must be > m");
  graph_builder b(n);
  // Repeated-node list: sampling uniformly from it is sampling proportional
  // to degree.
  std::vector<node_id> endpoint_pool;
  endpoint_pool.reserve(2 * n * m);
  for (node_id u = 0; u < seed_nodes; ++u)
    for (node_id v = u + 1; v < seed_nodes; ++v) {
      b.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  for (node_id v = static_cast<node_id>(seed_nodes); v < n; ++v) {
    std::unordered_set<node_id> targets;
    while (targets.size() < m) {
      const node_id t =
          endpoint_pool[gen.next_below(endpoint_pool.size())];
      targets.insert(t);
    }
    for (const node_id t : targets) {
      b.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return std::move(b).build();
}

graph random_regular(std::size_t n, std::size_t d, common::rng& gen) {
  if (d >= n) throw std::invalid_argument("random_regular: need d < n");
  if ((n * d) % 2 != 0)
    throw std::invalid_argument("random_regular: n*d must be even");
  if (d == 0) return empty_graph(n);

  constexpr int max_attempts = 2000;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: pair up n*d stubs uniformly; reject the matching
    // if it creates a loop or parallel edge.
    std::vector<node_id> stubs;
    stubs.reserve(n * d);
    for (node_id v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    common::shuffle_span(stubs.data(), stubs.size(), gen);

    std::unordered_set<std::uint64_t> seen;
    bool ok = true;
    graph_builder b(n);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const node_id u = stubs[i];
      const node_id v = stubs[i + 1];
      if (u == v || !seen.insert(pair_key(u, v)).second) {
        ok = false;
        break;
      }
      b.add_edge(u, v);
    }
    if (ok) return std::move(b).build();
  }
  throw std::runtime_error(
      "random_regular: failed to sample a simple matching");
}

graph cluster_graph(std::size_t clusters, std::size_t cluster_size,
                    std::size_t bridges, common::rng& gen) {
  if (clusters == 0 || cluster_size == 0)
    throw std::invalid_argument("cluster_graph: empty dimensions");
  const std::size_t n = clusters * cluster_size;
  graph_builder b(n);
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::size_t base = c * cluster_size;
    for (std::size_t i = 0; i < cluster_size; ++i)
      for (std::size_t j = i + 1; j < cluster_size; ++j)
        b.add_edge(static_cast<node_id>(base + i),
                   static_cast<node_id>(base + j));
  }
  // Ring of bridges guarantees connectivity, then extra random bridges.
  if (clusters > 1) {
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::size_t next = (c + 1) % clusters;
      b.add_edge(static_cast<node_id>(c * cluster_size),
                 static_cast<node_id>(next * cluster_size + cluster_size / 2));
    }
    for (std::size_t e = 0; e < bridges; ++e) {
      const std::size_t c1 = gen.next_below(clusters);
      std::size_t c2 = gen.next_below(clusters);
      if (c1 == c2) c2 = (c2 + 1) % clusters;
      const auto u = static_cast<node_id>(c1 * cluster_size +
                                          gen.next_below(cluster_size));
      const auto v = static_cast<node_id>(c2 * cluster_size +
                                          gen.next_below(cluster_size));
      if (u != v) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

std::vector<double> uniform_costs(std::size_t n, double c_max,
                                  common::rng& gen) {
  if (c_max < 1.0)
    throw std::invalid_argument("uniform_costs: c_max must be >= 1");
  std::vector<double> costs(n);
  for (auto& c : costs) c = 1.0 + gen.next_double() * (c_max - 1.0);
  return costs;
}

}  // namespace domset::graph
