/// \file io.hpp
/// \brief Plain-text edge-list serialisation with a chunk-parallel parser.
///
/// Format:
///   line 1:  "n m"            (node count, undirected edge count)
///   lines 2..m+1:  "u v"      (0-based endpoints, u != v)
/// Comment lines starting with '#' or '%' are permitted anywhere and
/// ignored; blank (or whitespace-only) lines are skipped; fields may be
/// separated by any run of spaces/tabs and lines may end in CRLF.  A
/// SNAP-style comment header ("# Nodes: 123 Edges: 456") may replace the
/// "n m" line, in which case every data line is an edge.
///
/// The parser reports every error with its 1-based line number, rejects
/// duplicate edges (the text format declares a simple graph; a repeated
/// edge is corrupt input, not a multigraph), and rejects trailing edges
/// beyond the declared count.  parse_edge_list() can split the input
/// into byte ranges and parse them concurrently on a sim::thread_pool;
/// the result is bit-identical to the serial parse (chunks are disjoint
/// in-order line ranges, so the merged edge sequence is the serial one).
/// See docs/ingestion.md for the determinism contract and the binary
/// container that skips parsing entirely (graph/csr_file.hpp).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace domset::sim {
class thread_pool;
}  // namespace domset::sim

namespace domset::graph {

/// Knobs for parse_edge_list / read_edge_list_file.
struct parse_options {
  /// Parser worker count: 1 = serial, 0 = one per hardware thread.
  /// Ignored when `pool` is set (the pool's size rules).
  std::size_t threads = 1;
  /// Optional shared worker pool (borrowed, not owned).  Lets the parser
  /// ride the same workers the solvers use instead of spawning its own.
  sim::thread_pool* pool = nullptr;
};

/// Writes `g` in edge-list format ("n m" header, one "u v" line per edge,
/// u < v).
void write_edge_list(const graph& g, std::ostream& out);

/// Parses an edge-list stream serially.  Throws std::runtime_error on
/// malformed input (bad counts, out-of-range endpoints, self-loops,
/// duplicate edges, truncated or overlong edge lists), naming the
/// offending 1-based line.
[[nodiscard]] graph read_edge_list(std::istream& in);

/// Parses a complete edge-list text, optionally in parallel: the byte
/// range after the header is split into one newline-aligned chunk per
/// worker, chunks parse concurrently, and the per-chunk edge runs are
/// concatenated in chunk order -- bit-identical to the serial parse for
/// every worker count.  Error reporting matches read_edge_list.
[[nodiscard]] graph parse_edge_list(std::string_view text,
                                    const parse_options& opts = {});

/// Reads `path` and parses it with parse_edge_list.  Errors (including
/// an unreadable file) are prefixed with the path.
[[nodiscard]] graph read_edge_list_file(const std::string& path,
                                        const parse_options& opts = {});

}  // namespace domset::graph
