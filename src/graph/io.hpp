// Plain-text edge-list serialisation.
//
// Format:
//   line 1:  "n m"            (node count, undirected edge count)
//   lines 2..m+1:  "u v"      (0-based endpoints, u < v)
// Comment lines starting with '#' are permitted anywhere and ignored.
#pragma once

#include <iosfwd>

#include "graph/graph.hpp"

namespace domset::graph {

/// Writes `g` in edge-list format.
void write_edge_list(const graph& g, std::ostream& out);

/// Parses an edge-list stream.  Throws std::runtime_error on malformed
/// input (bad counts, out-of-range endpoints, self-loops).
[[nodiscard]] graph read_edge_list(std::istream& in);

}  // namespace domset::graph
