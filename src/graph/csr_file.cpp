#include "graph/csr_file.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define DOMSET_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace domset::graph {

namespace {

constexpr unsigned char k_magic[8] = {'D', 'C', 'S', 'R', 'G', 'R', 'F', '1'};
constexpr std::uint32_t k_version = 1;
constexpr std::uint32_t k_endian_tag = 0x01020304;
constexpr std::uint32_t k_flag_compressed = 0x1;
constexpr std::size_t k_header_bytes = 64;

/// The digest and the mmap view both reinterpret the file's uint64
/// offsets as std::size_t; that identity only holds on 64-bit
/// little-endian hosts, which is all this container supports (the file
/// carries an endianness tag so a foreign file is rejected, not
/// misread).
void require_supported_host() {
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "csr_file requires a 64-bit host");
  if constexpr (std::endian::native != std::endian::little)
    throw std::runtime_error("csr_file: big-endian hosts are not supported");
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("'" + path + "': " + what);
}

/// 64-bit FNV-1a folding whole uint64 words (not bytes): the arrays are
/// word-shaped already, and word folding keeps the validation sweep an
/// order of magnitude cheaper than a byte fold at multi-million-edge
/// sizes.
struct fnv64 {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  void word(std::uint64_t w) {
    h ^= w;
    h *= 0x100000001B3ULL;
  }
};

std::uint64_t digest_arrays(std::uint64_t nodes, std::uint64_t edges,
                            std::span<const std::size_t> offsets,
                            std::span<const node_id> adjacency) {
  fnv64 f;
  f.word(nodes);
  f.word(edges);
  for (const std::size_t o : offsets) f.word(o);
  // 2m uint32 values fold as m uint64 words; the tail element of an odd
  // count (never produced by a well-formed CSR, where 2m is even) would
  // fold alone.
  std::size_t i = 0;
  for (; i + 1 < adjacency.size(); i += 2)
    f.word(static_cast<std::uint64_t>(adjacency[i]) |
           (static_cast<std::uint64_t>(adjacency[i + 1]) << 32));
  if (i < adjacency.size()) f.word(adjacency[i]);
  return f.h;
}

void put_u32(unsigned char* at, std::uint32_t v) { std::memcpy(at, &v, 4); }
void put_u64(unsigned char* at, std::uint64_t v) { std::memcpy(at, &v, 8); }

std::uint32_t get_u32(const unsigned char* at) {
  std::uint32_t v;
  std::memcpy(&v, at, 4);
  return v;
}

std::uint64_t get_u64(const unsigned char* at) {
  std::uint64_t v;
  std::memcpy(&v, at, 8);
  return v;
}

void append_varint(std::vector<unsigned char>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

/// Varint-delta encoding of every neighbor row: first neighbor verbatim,
/// then successive gaps minus one (rows are strictly increasing).
std::vector<unsigned char> compress_adjacency(const graph& g) {
  std::vector<unsigned char> blob;
  blob.reserve(g.edge_count());  // gaps on sparse graphs are mostly 1 byte
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto row = g.neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i)
      append_varint(blob, i == 0 ? row[0] : row[i] - row[i - 1] - 1);
  }
  return blob;
}

/// Heap backing store for loads that cannot view the file directly
/// (compressed containers, hosts without mmap).
struct csr_arrays {
  std::vector<std::size_t> offsets;
  std::vector<node_id> adjacency;
};

#ifdef DOMSET_HAVE_MMAP
/// Keeps a read-only file mapping alive for graphs viewing it.
struct mmap_holder {
  void* addr = nullptr;
  std::size_t len = 0;
  ~mmap_holder() {
    if (addr != nullptr) ::munmap(addr, len);
  }
  mmap_holder() = default;
  mmap_holder(const mmap_holder&) = delete;
  mmap_holder& operator=(const mmap_holder&) = delete;
};
#endif

struct parsed_header {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t adjacency_bytes = 0;
  std::uint64_t digest = 0;
  bool compressed = false;
};

parsed_header parse_header(const std::string& path, const unsigned char* h,
                           std::uint64_t file_size) {
  if (std::memcmp(h, k_magic, sizeof k_magic) != 0)
    fail(path, "not a .dcsr file (bad magic)");
  if (get_u32(h + 8) != k_version)
    fail(path, "unsupported .dcsr version " + std::to_string(get_u32(h + 8)));
  if (get_u32(h + 12) != k_endian_tag)
    fail(path,
         "endianness mismatch (file written on a byte-swapped host?)");
  const std::uint32_t flags = get_u32(h + 16);
  if ((flags & ~k_flag_compressed) != 0)
    fail(path, "unknown flags 0x" + std::to_string(flags));
  parsed_header out;
  out.compressed = (flags & k_flag_compressed) != 0;
  out.nodes = get_u64(h + 24);
  out.edges = get_u64(h + 32);
  out.adjacency_bytes = get_u64(h + 40);
  out.digest = get_u64(h + 48);
  if (out.nodes > std::numeric_limits<node_id>::max())
    fail(path, "node count exceeds the 32-bit node id space");
  const std::uint64_t offsets_bytes = 8 * (out.nodes + 1);
  if (!out.compressed && out.adjacency_bytes != 8 * out.edges)
    fail(path, "adjacency section size disagrees with the edge count");
  if (file_size != k_header_bytes + offsets_bytes + out.adjacency_bytes)
    fail(path, "truncated or oversized file (header declares " +
                   std::to_string(k_header_bytes + offsets_bytes +
                                  out.adjacency_bytes) +
                   " bytes, file has " + std::to_string(file_size) + ")");
  return out;
}

/// Decodes the varint-delta adjacency stream into `arrays.adjacency`
/// (already sized to 2m) using the offsets for row boundaries.
void decode_adjacency(const std::string& path, const unsigned char* blob,
                      std::size_t blob_size, std::uint64_t nodes,
                      csr_arrays& arrays) {
  std::size_t at = 0;
  const auto next_varint = [&]() -> std::uint32_t {
    std::uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
      if (at >= blob_size || shift > 28)
        fail(path, "corrupt varint adjacency stream");
      const unsigned char byte = blob[at++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    if (value > std::numeric_limits<std::uint32_t>::max())
      fail(path, "corrupt varint adjacency stream");
    return static_cast<std::uint32_t>(value);
  };
  for (std::size_t v = 0; v + 1 < arrays.offsets.size(); ++v) {
    node_id prev = 0;
    for (std::size_t i = arrays.offsets[v]; i < arrays.offsets[v + 1]; ++i) {
      const std::uint32_t raw = next_varint();
      const std::uint64_t value =
          i == arrays.offsets[v]
              ? raw
              : static_cast<std::uint64_t>(prev) + raw + 1;
      if (value >= nodes) fail(path, "adjacency entry out of range");
      prev = static_cast<node_id>(value);
      arrays.adjacency[i] = prev;
    }
  }
  if (at != blob_size)
    fail(path, "trailing bytes after the adjacency stream");
}

}  // namespace

std::uint64_t graph_digest(const graph& g) {
  std::vector<std::size_t> offsets(g.node_count() + 1);
  offsets[0] = 0;
  for (node_id v = 0; v < g.node_count(); ++v) offsets[v + 1] = g.edge_end(v);
  const std::span<const node_id> adjacency{
      g.node_count() == 0 ? nullptr : g.neighbors(0).data(),
      2 * g.edge_count()};
  return digest_arrays(g.node_count(), g.edge_count(), offsets, adjacency);
}

std::string graph_digest_hex(const graph& g) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, graph_digest(g));
  return buf;
}

csr_file_info write_csr(const graph& g, const std::string& path,
                        bool compress) {
  require_supported_host();
  const std::uint64_t n = g.node_count();
  const std::uint64_t m = g.edge_count();

  std::vector<std::size_t> offsets(n + 1);
  offsets[0] = 0;
  for (node_id v = 0; v < n; ++v) offsets[v + 1] = g.edge_end(v);
  const std::span<const node_id> adjacency{
      n == 0 ? nullptr : g.neighbors(0).data(), 2 * g.edge_count()};

  std::vector<unsigned char> blob;
  std::uint64_t adjacency_bytes = 8 * m;
  if (compress) {
    blob = compress_adjacency(g);
    adjacency_bytes = blob.size();
  }

  csr_file_info info;
  info.nodes = n;
  info.edges = m;
  info.compressed = compress;
  info.digest = digest_arrays(n, m, offsets, adjacency);
  info.bytes = k_header_bytes + 8 * (n + 1) + adjacency_bytes;

  unsigned char header[k_header_bytes] = {};
  std::memcpy(header, k_magic, sizeof k_magic);
  put_u32(header + 8, k_version);
  put_u32(header + 12, k_endian_tag);
  put_u32(header + 16, compress ? k_flag_compressed : 0);
  put_u64(header + 24, n);
  put_u64(header + 32, m);
  put_u64(header + 40, adjacency_bytes);
  put_u64(header + 48, info.digest);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(path, "cannot open for writing");
  out.write(reinterpret_cast<const char*>(header), sizeof header);
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(8 * offsets.size()));
  if (compress) {
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  } else if (!adjacency.empty()) {
    out.write(reinterpret_cast<const char*>(adjacency.data()),
              static_cast<std::streamsize>(4 * adjacency.size()));
  }
  out.flush();
  if (!out) fail(path, "write failed");
  return info;
}

bool is_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  unsigned char head[sizeof k_magic];
  in.read(reinterpret_cast<char*>(head), sizeof head);
  return in.gcount() == sizeof head &&
         std::memcmp(head, k_magic, sizeof head) == 0;
}

graph load_csr(const std::string& path, csr_file_info* info) {
  require_supported_host();

  // Bring the file in: mmap when available (the raw fast path views it in
  // place), a plain read otherwise.
  std::shared_ptr<const void> holder;
  const unsigned char* base = nullptr;
  std::uint64_t file_size = 0;
  bool mapped = false;
#ifdef DOMSET_HAVE_MMAP
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail(path, "cannot open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      fail(path, "cannot stat");
    }
    file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size < k_header_bytes) {
      ::close(fd);
      fail(path, "not a .dcsr file (smaller than the header)");
    }
    void* addr = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (addr == MAP_FAILED) fail(path, "mmap failed");
    auto m = std::make_shared<mmap_holder>();
    m->addr = addr;
    m->len = file_size;
    base = static_cast<const unsigned char*>(addr);
    holder = std::move(m);
    mapped = true;
  }
#else
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail(path, "cannot open");
    file_size = static_cast<std::uint64_t>(in.tellg());
    if (file_size < k_header_bytes)
      fail(path, "not a .dcsr file (smaller than the header)");
    auto bytes = std::make_shared<std::vector<unsigned char>>(file_size);
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes->data()),
            static_cast<std::streamsize>(file_size));
    if (!in) fail(path, "read failed");
    base = bytes->data();
    holder = std::move(bytes);
  }
#endif

  const parsed_header h = parse_header(path, base, file_size);
  const auto* offsets_ptr =
      reinterpret_cast<const std::size_t*>(base + k_header_bytes);
  const std::span<const std::size_t> offsets{offsets_ptr, h.nodes + 1};
  const unsigned char* adjacency_base = base + k_header_bytes + 8 * (h.nodes + 1);

  if (offsets[0] != 0 || offsets[h.nodes] != 2 * h.edges)
    fail(path, "offsets array disagrees with the edge count");
  for (std::size_t v = 0; v < h.nodes; ++v)
    if (offsets[v] > offsets[v + 1])
      fail(path, "offsets array is not monotone");

  if (info != nullptr) {
    info->nodes = h.nodes;
    info->edges = h.edges;
    info->digest = h.digest;
    info->bytes = file_size;
    info->compressed = h.compressed;
    info->mapped = false;
  }

  if (!h.compressed) {
    const std::span<const node_id> adjacency{
        reinterpret_cast<const node_id*>(adjacency_base), 2 * h.edges};
    const std::uint64_t computed =
        digest_arrays(h.nodes, h.edges, offsets, adjacency);
    if (computed != h.digest)
      fail(path, "digest mismatch (file corrupt?)");
    if (info != nullptr) info->mapped = mapped;
    return graph::adopt_csr(std::move(holder), offsets, adjacency);
  }

  // Compressed: decode into heap arrays, then validate the digest over
  // the decoded values (the digest is format-independent by design).
  auto arrays = std::make_shared<csr_arrays>();
  arrays->offsets.assign(offsets.begin(), offsets.end());
  arrays->adjacency.resize(2 * h.edges);
  decode_adjacency(path, adjacency_base, h.adjacency_bytes, h.nodes, *arrays);
  const std::uint64_t computed =
      digest_arrays(h.nodes, h.edges, arrays->offsets, arrays->adjacency);
  if (computed != h.digest) fail(path, "digest mismatch (file corrupt?)");
  return graph::adopt_csr(arrays, arrays->offsets, arrays->adjacency);
}

}  // namespace domset::graph
