// Graph generators: the workload families the experiments sweep over.
//
// The paper targets arbitrary topologies with its general bounds and
// motivates the work with wireless ad-hoc networks (unit-disk graphs).
// We provide deterministic structured families (exact optima known in
// closed form -> strong test oracles), classical random families, and
// adversarial instances (the greedy lower-bound construction).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace domset::graph {

// ---------------------------------------------------------------------------
// Deterministic families (closed-form optima; see tests/graph_generators_test)
// ---------------------------------------------------------------------------

/// n isolated nodes (every node must dominate itself: MDS = n).
[[nodiscard]] graph empty_graph(std::size_t n);

/// Complete graph K_n (MDS = 1 for n >= 1).
[[nodiscard]] graph complete_graph(std::size_t n);

/// Path P_n (MDS = ceil(n/3)).
[[nodiscard]] graph path_graph(std::size_t n);

/// Cycle C_n, n >= 3 (MDS = ceil(n/3)).
[[nodiscard]] graph cycle_graph(std::size_t n);

/// Star S_n: node 0 is the hub, nodes 1..n-1 leaves (MDS = 1 for n >= 1).
[[nodiscard]] graph star_graph(std::size_t n);

/// Complete bipartite K_{a,b} (MDS = 2 for a,b >= 2; 1 if a or b == 1).
[[nodiscard]] graph complete_bipartite(std::size_t a, std::size_t b);

/// w x h grid, 4-neighborhood.
[[nodiscard]] graph grid_graph(std::size_t width, std::size_t height);

/// w x h torus (grid with wraparound); every node has degree 4 for w,h >= 3.
[[nodiscard]] graph torus_graph(std::size_t width, std::size_t height);

/// Complete `arity`-ary tree of the given depth (depth 0 = single root).
[[nodiscard]] graph balanced_tree(std::size_t arity, std::size_t depth);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves
/// (MDS = spine for legs >= 1: every spine node must be picked... see tests).
[[nodiscard]] graph caterpillar(std::size_t spine, std::size_t legs);

/// The classical greedy lower-bound instance mapped to dominating set.
/// Universe of 2^{t+1}-2 element nodes; disjoint "greedy bait" sets
/// S_1..S_t with |S_i| = 2^i; two "good" sets T_1, T_2 each covering half
/// of every S_i.  Set nodes form a clique so they dominate each other.
/// OPT = 2 (the T nodes) while greedy picks ~t sets: ratio Theta(log n).
[[nodiscard]] graph greedy_adversarial(std::size_t t);

// ---------------------------------------------------------------------------
// Random families
// ---------------------------------------------------------------------------

/// Erdos-Renyi G(n, p).
[[nodiscard]] graph gnp_random(std::size_t n, double p, common::rng& gen);

/// Uniform random graph with exactly m distinct edges (G(n, m)).
[[nodiscard]] graph gnm_random(std::size_t n, std::size_t m, common::rng& gen);

/// Result of a geometric graph generation: the graph plus node positions
/// (positions feed the ad-hoc-network examples).
struct geometric_graph {
  graph g;
  std::vector<double> x;  // in [0,1]
  std::vector<double> y;  // in [0,1]
};

/// Random geometric graph (unit-disk model): n points uniform in the unit
/// square, edge iff Euclidean distance <= radius.  This is the standard
/// formalisation of the ad-hoc networks in the paper's introduction.
[[nodiscard]] geometric_graph random_geometric(std::size_t n, double radius,
                                               common::rng& gen);

/// Barabasi-Albert preferential attachment: starts from a small clique,
/// each new node attaches to `m` existing nodes with probability
/// proportional to degree.  Produces the heavy-tailed degree distributions
/// where Delta-dependent bounds are stressed.
[[nodiscard]] graph barabasi_albert(std::size_t n, std::size_t m,
                                    common::rng& gen);

/// Random d-regular graph via the configuration model with rejection of
/// self-loops/multi-edges (retries whole matchings; requires n*d even,
/// d < n).  Throws std::invalid_argument on infeasible parameters.
[[nodiscard]] graph random_regular(std::size_t n, std::size_t d,
                                   common::rng& gen);

/// `clusters` cliques of `cluster_size` nodes each, plus `bridges` random
/// inter-cluster edges (connected cluster topology: MDS <= clusters).
[[nodiscard]] graph cluster_graph(std::size_t clusters,
                                  std::size_t cluster_size,
                                  std::size_t bridges, common::rng& gen);

// ---------------------------------------------------------------------------
// Node weights (for the weighted dominating set remark)
// ---------------------------------------------------------------------------

/// Uniform random node costs in [1, c_max].
[[nodiscard]] std::vector<double> uniform_costs(std::size_t n, double c_max,
                                                common::rng& gen);

}  // namespace domset::graph
