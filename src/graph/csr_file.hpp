/// \file csr_file.hpp
/// \brief The `.dcsr` binary CSR container: write once, load with mmap
/// and zero parse.
///
/// The text edge-list format (graph/io.hpp) pays a per-character parse on
/// every load; real-graph workloads load the same multi-million-edge
/// graph thousands of times.  This container stores the graph's CSR
/// arrays directly, so loading is mmap + header validation + one digest
/// sweep -- no tokenising, no graph_builder sort, no allocation
/// proportional to the graph.  The loaded graph *views* the mapped file
/// through graph::adopt_csr; the mapping is unmapped when the last copy
/// of the graph dies.
///
/// Byte layout (all fields little-endian; documented normatively in
/// docs/ingestion.md):
///
///   offset size field
///   0      8    magic "DCSRGRF1"
///   8      4    version (currently 1)
///   12     4    endianness tag 0x01020304 (a byte-swapped file is
///               rejected, not transparently converted)
///   16     4    flags: bit 0 = varint-delta compressed adjacency
///   20     4    reserved (zero)
///   24     8    node count n
///   32     8    undirected edge count m
///   40     8    adjacency section size in bytes
///   48     8    FNV-1a digest over (n, m, offsets bytes, adjacency
///               values) -- see graph_digest()
///   56     8    reserved (zero)
///   64     ...  offsets array: (n+1) x uint64
///   ...    ...  adjacency: raw (2m x uint32, rows sorted ascending) or
///               the varint-delta stream when flags bit 0 is set
///
/// The compressed variant encodes each neighbor row as LEB128 varints:
/// the first neighbor as-is, then successive gaps minus one (rows are
/// strictly increasing).  Compressed files decode into heap arrays at
/// load (they trade load-time zero-copy for bytes on disk); raw files
/// are the mmap fast path.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace domset::graph {

/// 64-bit FNV-1a folding the graph's logical content as uint64 words:
/// node count and edge count, each offsets entry, then the adjacency
/// values packed two uint32 per word.  Identical graphs have identical digests no
/// matter how they were loaded (text, raw binary, compressed binary) --
/// the cross-format agreement CI asserts -- and the .dcsr header stores
/// this value so a corrupted or truncated payload is rejected at load.
[[nodiscard]] std::uint64_t graph_digest(const graph& g);

/// graph_digest rendered as 16 lowercase hex characters (the spelling
/// every JSON surface and CI log uses).
[[nodiscard]] std::string graph_digest_hex(const graph& g);

/// What write_csr produced / load_csr consumed.
struct csr_file_info {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t digest = 0;
  /// Total file size in bytes.
  std::uint64_t bytes = 0;
  /// Varint-delta compressed adjacency?
  bool compressed = false;
  /// True when the loaded graph views the mapped file (raw containers);
  /// false when it was decoded into heap arrays (compressed containers,
  /// or platforms without mmap).  Writers always report false.
  bool mapped = false;
};

/// Writes `g` to `path` in .dcsr form.  `compress` selects the
/// varint-delta adjacency encoding.  Throws std::runtime_error on I/O
/// failure, naming the path.
csr_file_info write_csr(const graph& g, const std::string& path,
                        bool compress = false);

/// True iff `path` exists and starts with the .dcsr magic -- the probe
/// `format=auto` uses to dispatch between the binary and text loaders
/// without paying two opens.
[[nodiscard]] bool is_csr_file(const std::string& path);

/// Loads a .dcsr container.  Raw containers are mmap'ed and the returned
/// graph views the mapping (zero parse, zero copy); compressed containers
/// decode into heap arrays.  Every load validates the magic, version,
/// endianness tag, declared sizes against the file size, and the header
/// digest against a recomputed one, and throws std::runtime_error naming
/// the path and the failing check otherwise.  `info`, when non-null,
/// receives the container metadata.
[[nodiscard]] graph load_csr(const std::string& path,
                             csr_file_info* info = nullptr);

}  // namespace domset::graph
