// Structural graph properties used by the algorithms, the analysis bounds
// and the test oracles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace domset::graph {

/// delta^(1)_i: for each node, the maximum degree over its closed
/// neighborhood (Sect. 3 of the paper; feeds the Lemma 1 dual bound).
[[nodiscard]] std::vector<std::uint32_t> max_degree_1hop(const graph& g);

/// delta^(2)_i: maximum degree over all nodes within distance <= 2
/// (computed as the 1-hop maximum of delta^(1); used by Algorithm 1).
[[nodiscard]] std::vector<std::uint32_t> max_degree_2hop(const graph& g);

/// Lemma 1 lower bound: sum_i 1/(delta^(1)_i + 1) <= |DS| for every
/// dominating set DS.  This is a certified bound (the y-assignment is
/// dual-feasible), so tests may assert |DS| >= this value.
[[nodiscard]] double dual_lower_bound(const graph& g);

/// Connected components: returns (component id per node, component count).
struct components_result {
  std::vector<std::uint32_t> component;
  std::size_t count = 0;
};
[[nodiscard]] components_result connected_components(const graph& g);

[[nodiscard]] bool is_connected(const graph& g);

/// BFS hop distances from `source`; unreachable nodes get
/// std::numeric_limits<uint32_t>::max().
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const graph& g,
                                                       node_id source);

/// Exact diameter via n BFS runs; returns 0 for n <= 1 and
/// uint32_t max if the graph is disconnected.
[[nodiscard]] std::uint32_t diameter(const graph& g);

/// Average degree 2m/n (0 for the empty graph).
[[nodiscard]] double average_degree(const graph& g);

/// Summary degree statistics of a graph, computed once and shared by
/// everything that reasons about degree skew: the simulator's `auto`
/// delivery heuristic (sim/delivery.hpp), the partitioner diagnostics and
/// the bench harnesses (bench_p4_gather) -- instead of each caller
/// recomputing max/avg degree ad hoc.
struct degree_stats_result {
  /// Maximum degree Delta (0 for the empty graph).
  std::uint32_t max_degree = 0;
  /// Average degree 2m/n (0 for the empty graph).
  double avg_degree = 0.0;
  /// Skew ratio max_degree / avg_degree; defined as 1 when the average is
  /// 0 (empty or edgeless graphs are "perfectly balanced").  A star on n
  /// nodes scores ~n/2; regular graphs score exactly 1.
  double skew = 1.0;
};
[[nodiscard]] degree_stats_result degree_stats(const graph& g);

/// Degree histogram: hist[d] = number of nodes of degree d.
[[nodiscard]] std::vector<std::size_t> degree_histogram(const graph& g);

/// The subgraph induced by `keep` (nodes with keep[v] != 0), plus the
/// mapping from new ids to the original ids.
struct induced_subgraph_result {
  graph g;
  std::vector<node_id> original_id;  // new id -> old id
};
[[nodiscard]] induced_subgraph_result induced_subgraph(
    const graph& g, std::span<const std::uint8_t> keep);

/// The induced subgraph of the largest connected component (ties broken by
/// the smallest contained node id).
[[nodiscard]] induced_subgraph_result largest_component(const graph& g);

}  // namespace domset::graph
