// Immutable undirected simple graph in compressed sparse row form.
//
// This is the network topology substrate every other module builds on: the
// simulator runs node programs over it, the LP is defined by its closed
// neighborhoods, and the generators in generators.hpp produce it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace domset::graph {

/// Node identifier: dense indices 0..n-1.
using node_id = std::uint32_t;

/// Sentinel for "no node".
inline constexpr node_id invalid_node = static_cast<node_id>(-1);

class graph;

/// Incremental edge-list builder.  Self-loops are rejected (the paper's
/// closed neighborhoods N_i already include v_i); duplicate edges are
/// deduplicated at build time so generators may add edges carelessly.
class graph_builder {
 public:
  explicit graph_builder(std::size_t node_count);

  /// Number of nodes the final graph will have.
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// Adds the undirected edge {u, v}.  Precondition: u, v < node_count(),
  /// u != v (violations throw std::invalid_argument).
  void add_edge(node_id u, node_id v);

  /// True if {u,v} was already added.  Amortized O(1): the first call
  /// builds a hash index over the edges added so far and later calls keep
  /// it caught up, so rejection-sampling generators pay a constant per
  /// probe instead of the historical O(E) scan.  add_edge itself never
  /// touches the index (builders that never query pay nothing).  The
  /// legacy name is kept for API stability.  Not thread-safe despite
  /// being const: the lazy catch-up mutates the index, and builders are
  /// single-threaded objects (build the graph, then share *that*).
  [[nodiscard]] bool has_edge_slow(node_id u, node_id v) const;

  /// Number of edges added so far (before dedup).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Finalises into an immutable graph.  The builder is left empty.
  [[nodiscard]] graph build() &&;

 private:
  std::size_t node_count_;
  std::vector<std::pair<node_id, node_id>> edges_;
  /// Lazy query index: covers edges_[0, indexed_upto_), built on demand by
  /// has_edge_slow.  mutable so queries stay const.
  mutable std::unordered_set<std::uint64_t> edge_index_;
  mutable std::size_t indexed_upto_ = 0;
};

/// Immutable undirected simple graph.  Neighbor lists are sorted, enabling
/// O(log d) adjacency queries and cache-friendly traversal.
///
/// The CSR arrays live behind a shared, immutable storage handle and the
/// graph itself only holds views into them.  Two consequences: copying a
/// graph is O(1) (copies share the arrays -- safe because a graph never
/// mutates after construction), and the storage can be something other
/// than heap vectors -- adopt_csr() lets graph/csr_file.hpp back a graph
/// directly by an mmap'ed binary container, so loading a .dcsr file
/// builds no arrays at all.
class graph {
 public:
  /// Empty graph with zero nodes.
  graph() = default;

  /// Adopts externally owned CSR arrays without copying them.  `storage`
  /// keeps the memory behind `offsets` / `adjacency` alive (e.g. an mmap
  /// holder, or a struct owning the vectors) for as long as any copy of
  /// the returned graph exists.  Preconditions (trusted, the caller
  /// validates -- csr_file.hpp does so via the header digest): offsets has
  /// n+1 monotone entries starting at 0, adjacency holds the 2m sorted
  /// neighbor rows offsets describes.  The maximum degree is recomputed
  /// here from `offsets` rather than trusted.
  [[nodiscard]] static graph adopt_csr(std::shared_ptr<const void> storage,
                                       std::span<const std::size_t> offsets,
                                       std::span<const node_id> adjacency);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return adjacency_.size() / 2;
  }

  /// Degree of v (excluding v itself; the paper's delta_i).
  [[nodiscard]] std::uint32_t degree(node_id v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted open neighborhood of v.
  [[nodiscard]] std::span<const node_id> neighbors(node_id v) const noexcept {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// O(log degree) adjacency test.
  [[nodiscard]] bool has_edge(node_id u, node_id v) const noexcept;

  /// CSR index of the first entry of v's neighbor row: neighbors(v)[i]
  /// lives at flat adjacency position edge_begin(v) + i.  This stable
  /// directed-edge indexing is what the simulator's flat mailboxes are
  /// addressed by.
  [[nodiscard]] std::size_t edge_begin(node_id v) const noexcept {
    return offsets_[v];
  }

  /// One past the CSR index of the last entry of v's neighbor row.
  [[nodiscard]] std::size_t edge_end(node_id v) const noexcept {
    return offsets_[v + 1];
  }

  /// Maximum degree Delta over all nodes (0 for the empty graph).
  [[nodiscard]] std::uint32_t max_degree() const noexcept {
    return max_degree_;
  }

  /// Calls f(u) for every u in the closed neighborhood N_v = {v} + nbrs(v).
  /// v itself is visited first.
  template <typename F>
  void for_closed_neighborhood(node_id v, F&& f) const {
    f(v);
    for (const node_id u : neighbors(v)) f(u);
  }

  /// Size of the closed neighborhood |N_v| = degree(v) + 1.
  [[nodiscard]] std::uint32_t closed_degree(node_id v) const noexcept {
    return degree(v) + 1;
  }

  /// Human-readable one-line summary ("n=100 m=250 maxdeg=12").
  [[nodiscard]] std::string summary() const;

 private:
  friend class graph_builder;

  /// Keeps the CSR arrays alive: either the builder's heap vectors or an
  /// external backing store (mmap'ed file) adopted via adopt_csr().
  /// Shared between copies -- the graph is immutable, so aliasing the
  /// arrays is unobservable and makes copies O(1).
  std::shared_ptr<const void> storage_;
  std::span<const std::size_t> offsets_;  // size n+1, into storage_
  std::span<const node_id> adjacency_;    // size 2m, sorted per node
  std::uint32_t max_degree_ = 0;
};

}  // namespace domset::graph
