#include "graph/probe.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "sim/thread_pool.hpp"

namespace domset::graph {

std::uint32_t degeneracy(const graph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) return 0;

  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (node_id v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  // Batagelj-Zaversnik: vertices bucketed by current degree, peeled in
  // nondecreasing order; each peel decrements its still-unpeeled
  // neighbors and moves them one bucket down via an O(1) swap.
  std::vector<std::size_t> bin(static_cast<std::size_t>(max_deg) + 1, 0);
  for (node_id v = 0; v < n; ++v) ++bin[deg[v]];
  std::size_t start = 0;
  for (std::size_t d = 0; d <= max_deg; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<node_id> vert(n);
  std::vector<std::size_t> pos(n);
  for (node_id v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]]++;
    vert[pos[v]] = v;
  }
  for (std::size_t d = max_deg; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  std::uint32_t core = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const node_id v = vert[i];
    core = std::max(core, deg[v]);
    for (const node_id u : g.neighbors(v)) {
      if (deg[u] <= deg[v]) continue;
      const std::uint32_t du = deg[u];
      const std::size_t pu = pos[u];
      const std::size_t pw = bin[du];
      const node_id w = vert[pw];
      if (u != w) {
        vert[pu] = w;
        vert[pw] = u;
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --deg[u];
    }
  }
  return core;
}

namespace {

/// Closed-wedge count over samples [lo, hi): sample s draws from its own
/// stream rng(seed, s), so the partition into worker chunks cannot change
/// any draw -- the estimate is bit-identical for every thread count.
std::size_t sample_range(const graph& g, std::uint64_t seed, std::size_t lo,
                         std::size_t hi, std::size_t& wedges) {
  const std::size_t n = g.node_count();
  std::size_t closed = 0;
  for (std::size_t s = lo; s < hi; ++s) {
    common::rng gen(seed, s);
    const node_id v = static_cast<node_id>(gen.next_below(n));
    const auto nbrs = g.neighbors(v);
    if (nbrs.size() < 2) continue;
    const std::size_t i = gen.next_below(nbrs.size());
    std::size_t j = gen.next_below(nbrs.size() - 1);
    if (j >= i) ++j;
    ++wedges;
    const auto row = g.neighbors(nbrs[i]);
    if (std::binary_search(row.begin(), row.end(), nbrs[j])) ++closed;
  }
  return closed;
}

}  // namespace

probe_result probe(const graph& g, const probe_params& params) {
  probe_result out;
  out.degrees = degree_stats(g);
  out.degeneracy = degeneracy(g);
  out.arboricity_lower = (static_cast<double>(out.degeneracy) + 1.0) / 2.0;
  out.arboricity_upper = out.degeneracy;

  const std::size_t samples = params.triangle_samples;
  if (g.node_count() == 0 || samples == 0) return out;

  std::shared_ptr<sim::thread_pool> pool = params.pool;
  if (!pool) pool = sim::thread_pool::make_shared_if_parallel(params.threads);
  if (pool) {
    const std::size_t workers = pool->size();
    std::vector<std::size_t> closed(workers, 0), wedges(workers, 0);
    pool->run_chunked(samples, workers,
                      [&](std::size_t w, std::size_t lo, std::size_t hi) {
                        closed[w] = sample_range(g, params.sample_seed, lo, hi,
                                                 wedges[w]);
                      });
    for (std::size_t w = 0; w < workers; ++w) {
      out.triangles_closed += closed[w];
      out.wedges_sampled += wedges[w];
    }
  } else {
    out.triangles_closed =
        sample_range(g, params.sample_seed, 0, samples, out.wedges_sampled);
  }
  if (out.wedges_sampled > 0)
    out.triangle_density = static_cast<double>(out.triangles_closed) /
                           static_cast<double>(out.wedges_sampled);
  return out;
}

}  // namespace domset::graph
