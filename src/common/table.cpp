#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace domset::common {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {}

void text_table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void text_table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void text_table::print_csv(std::ostream& out) const {
  const auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      out << '"';
      for (const char ch : cell) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << cell;
    }
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      emit_cell(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string fmt_vs_bound(double measured, double bound, int precision) {
  return fmt_double(measured, precision) + " (<= " +
         fmt_double(bound, precision) + ")";
}

}  // namespace domset::common
