#include "common/wide_uint.hpp"

#include <bit>
#include <cassert>

namespace domset::common {

wide_uint::wide_uint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void wide_uint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t wide_uint::bit_width() const noexcept {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 64 +
         static_cast<std::size_t>(std::bit_width(limbs_.back()));
}

wide_uint& wide_uint::operator*=(const wide_uint& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint64_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const __uint128_t cur = static_cast<__uint128_t>(limbs_[i]) *
                                  rhs.limbs_[j] +
                              out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    std::size_t pos = i + rhs.limbs_.size();
    while (carry != 0) {
      const __uint128_t cur = static_cast<__uint128_t>(out[pos]) + carry;
      out[pos] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
      ++pos;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

std::strong_ordering operator<=>(const wide_uint& lhs,
                                 const wide_uint& rhs) noexcept {
  if (lhs.limbs_.size() != rhs.limbs_.size())
    return lhs.limbs_.size() <=> rhs.limbs_.size();
  for (std::size_t i = lhs.limbs_.size(); i-- > 0;) {
    if (lhs.limbs_[i] != rhs.limbs_[i]) return lhs.limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

wide_uint wide_uint::pow(std::uint64_t base, std::uint32_t exp) {
  wide_uint result(1);
  wide_uint acc(base);
  while (exp != 0) {
    if ((exp & 1U) != 0) result *= acc;
    exp >>= 1U;
    if (exp != 0) acc *= acc;
  }
  return result;
}

std::string wide_uint::to_hex() const {
  if (limbs_.empty()) return "0x0";
  static constexpr char digits[] = "0123456789abcdef";
  std::string out = "0x";
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const auto nibble = static_cast<unsigned>((limbs_[i] >> shift) & 0xF);
      if (leading && nibble == 0) continue;
      leading = false;
      out.push_back(digits[nibble]);
    }
  }
  return out;
}

std::strong_ordering compare_pow(std::uint64_t a, std::uint32_t p,
                                 std::uint64_t b, std::uint32_t q) {
  // Fast path: both products fit comfortably in long double heuristics is
  // tempting but incorrect at boundaries, so always use exact arithmetic.
  // The exponents in our algorithms are <= k (tens), bases <= n, so the
  // bignums stay small (a few hundred bytes) and this is never a hot path.
  return wide_uint::pow(a, p) <=> wide_uint::pow(b, q);
}

bool geq_rational_power(std::uint64_t a, std::uint64_t b, std::uint32_t num,
                        std::uint32_t den) {
  assert(den > 0);
  return compare_pow(a, den, b, num) >= 0;
}

}  // namespace domset::common
