#include "common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace domset::common {

namespace {
log_level g_level = log_level::warn;

void vlog(log_level level, const char* tag, const char* fmt, va_list args) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(log_level level) noexcept { g_level = level; }
log_level current_log_level() noexcept { return g_level; }

#define DOMSET_DEFINE_LOG_FN(fn, level, tag)      \
  void fn(const char* fmt, ...) {                 \
    va_list args;                                 \
    va_start(args, fmt);                          \
    vlog(level, tag, fmt, args);                  \
    va_end(args);                                 \
  }

DOMSET_DEFINE_LOG_FN(log_error, log_level::error, "error")
DOMSET_DEFINE_LOG_FN(log_warn, log_level::warn, "warn")
DOMSET_DEFINE_LOG_FN(log_info, log_level::info, "info")
DOMSET_DEFINE_LOG_FN(log_debug, log_level::debug, "debug")

#undef DOMSET_DEFINE_LOG_FN

}  // namespace domset::common
