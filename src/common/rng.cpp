#include "common/rng.hpp"

#include <cmath>

namespace domset::common {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t global_seed,
                          std::uint64_t stream_id) noexcept {
  // Feed both inputs through two splitmix64 rounds; a plain xor of the raw
  // inputs would make streams (s, i) and (s^1, i^1) collide.
  std::uint64_t state = global_seed;
  const std::uint64_t a = splitmix64_next(state);
  state ^= 0x2545f4914f6cdd1dULL + stream_id;
  const std::uint64_t b = splitmix64_next(state);
  return a ^ rotl(b, 23);
}

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t state = seed;
  for (auto& word : state_) word = splitmix64_next(state);
}

rng::rng(std::uint64_t global_seed, std::uint64_t stream_id) noexcept
    : rng(derive_seed(global_seed, stream_id)) {}

rng::result_type rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::next_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool rng::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double rng::next_normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

}  // namespace domset::common
