// Lightweight leveled logging.  Off by default; benches/examples turn on
// `info` to narrate progress.  Not thread-safe by design: the simulator is
// single-threaded (the synchronous model is deterministic round-lockstep).
#pragma once

#include <string>

namespace domset::common {

enum class log_level { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

/// Sets the global level; messages above it are discarded.
void set_log_level(log_level level) noexcept;
[[nodiscard]] log_level current_log_level() noexcept;

/// printf-style logging helpers.
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace domset::common
