// Aligned plain-text tables and CSV output for the experiment harnesses.
//
// Every bench binary renders its results through this writer so tables in
// EXPERIMENTS.md and on stdout share one format.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace domset::common {

/// Column-aligned table: add a header once, then rows of cells; `print`
/// pads columns to the widest cell.  Cells are preformatted strings; use
/// the fmt_* helpers for numbers.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Appends a row.  Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Renders to `out` with two-space column separation and a rule under the
  /// header.
  void print(std::ostream& out) const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering (no locale surprises).
[[nodiscard]] std::string fmt_double(double v, int precision = 3);

/// Integer rendering.
[[nodiscard]] std::string fmt_int(long long v);

/// Renders "measured (<= bound)" pairs used by the experiment tables.
[[nodiscard]] std::string fmt_vs_bound(double measured, double bound,
                                       int precision = 3);

}  // namespace domset::common
