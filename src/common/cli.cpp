#include "common/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/fault.hpp"

namespace domset::common {

cli_parser::cli_parser(std::string description)
    : description_(std::move(description)) {}

void cli_parser::add_flag(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  specs_[name] = flag_spec{default_value, help, false};
}

void cli_parser::add_switch(const std::string& name, const std::string& help) {
  specs_[name] = flag_spec{"false", help, true};
}

void cli_parser::require_nonnegative_int(const std::string& name) {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unregistered flag: " + name);
  it->second.nonnegative_int = true;
}

bool cli_parser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (it->second.is_switch) {
      values_[name] = has_value ? value : "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '--%s' expects a value\n%s", name.c_str(),
                     usage(argv[0]).c_str());
        return false;
      }
      value = argv[++i];
    }
    values_[name] = value;
  }
  for (const auto& [name, spec] : specs_) {
    if (!spec.one_of.empty()) {
      const std::string value = get_string(name);
      bool ok = false;
      for (const std::string& allowed : spec.one_of) ok |= value == allowed;
      if (!ok) {
        std::string allowed_list;
        for (const std::string& allowed : spec.one_of) {
          if (!allowed_list.empty()) allowed_list += " | ";
          allowed_list += allowed;
        }
        std::fprintf(stderr, "flag '--%s' must be one of %s, got '%s'\n%s",
                     name.c_str(), allowed_list.c_str(), value.c_str(),
                     usage(argv[0]).c_str());
        return false;
      }
    }
    if (spec.unit_interval) {
      const std::string value = get_string(name);
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() ||
          !(parsed >= 0.0 && parsed <= 1.0)) {
        std::fprintf(stderr, "flag '--%s' must be a probability in [0, 1]\n%s",
                     name.c_str(), usage(argv[0]).c_str());
        return false;
      }
    }
    if (spec.fault_spec) {
      try {
        (void)sim::parse_fault_plan(get_string(name));
      } catch (const std::invalid_argument& err) {
        std::fprintf(stderr, "flag '--%s': %s\n%s", name.c_str(), err.what(),
                     usage(argv[0]).c_str());
        return false;
      }
    }
    if (!spec.nonnegative_int) continue;
    // Require a complete, in-range decimal integer: strtoll alone maps
    // typos like "eight" to 0 (for --threads: maximum parallelism) and
    // saturates overflow to LLONG_MAX instead of failing.
    const std::string value = get_string(name);
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || parsed < 0 ||
        errno == ERANGE) {
      std::fprintf(stderr, "flag '--%s' must be a non-negative integer\n%s",
                   name.c_str(), usage(argv[0]).c_str());
      return false;
    }
  }
  return true;
}

bool cli_parser::is_set(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string cli_parser::get_string(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end())
    return it->second;
  if (const auto it = specs_.find(name); it != specs_.end())
    return it->second.default_value;
  throw std::invalid_argument("unregistered flag: " + name);
}

std::int64_t cli_parser::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double cli_parser::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool cli_parser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

void cli_parser::add_exec_flags(std::uint64_t default_seed) {
  add_flag("seed", std::to_string(default_seed), "random seed");
  specs_["seed"].nonnegative_int = true;
  add_flag("threads", "1",
           "simulator worker threads (1 = serial, 0 = one per hardware "
           "thread); results are identical for every value");
  specs_["threads"].nonnegative_int = true;
  add_flag("delivery", "auto",
           "simulator message delivery: push (receiver-side slots), pull "
           "(sender lanes + receiver gather), or auto (pull iff the run is "
           "parallel and the degree distribution is hub-skewed); results "
           "are identical for every value");
  specs_["delivery"].one_of = {"push", "pull", "auto"};
  add_flag("drop", "0",
           "message-loss probability in [0, 1] (robustness extension; "
           "0 = the paper's reliable model)");
  specs_["drop"].unit_interval = true;
  add_flag("faults", "none",
           "deterministic fault schedule, e.g. "
           "crash=7@10+link=0-3@4-9:flap=1/3+burst@5-6:p=0.5 "
           "(none = reliable; see docs/robustness.md for the grammar)");
  specs_["faults"].fault_spec = true;
  add_flag("congest-bits", "0",
           "flag messages wider than this many bits as CONGEST violations "
           "(0 = unchecked)");
  specs_["congest-bits"].nonnegative_int = true;
}

exec::context cli_parser::exec() const {
  exec::context ctx;
  const std::int64_t seed = get_int("seed");
  const std::int64_t threads = get_int("threads");
  const std::int64_t congest = get_int("congest-bits");
  // parse() already rejected negatives with usage text; these throws are
  // a backstop for callers that skipped parse().
  if (seed < 0 || threads < 0 || congest < 0)
    throw std::invalid_argument("exec flags must be non-negative");
  // The engine's limit field is 32-bit; a wider value would silently
  // truncate (possibly to 0 = unchecked), defeating the meter it enables.
  if (congest > 0xFFFFFFFFLL)
    throw std::invalid_argument("--congest-bits must fit in 32 bits");
  ctx.seed = static_cast<std::uint64_t>(seed);
  ctx.threads = static_cast<std::size_t>(threads);
  ctx.congest_bit_limit = static_cast<std::uint32_t>(congest);
  ctx.drop_probability = get_double("drop");
  ctx.delivery = sim::parse_delivery_mode(get_string("delivery"));
  sim::fault_plan plan = sim::parse_fault_plan(get_string("faults"));
  if (!plan.empty())
    ctx.faults = std::make_shared<const sim::fault_plan>(std::move(plan));
  return ctx;
}

std::string cli_parser::usage(const std::string& program) const {
  std::string out = description_ + "\n\nusage: " + program + " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (!spec.is_switch) out += " <value> (default: " + spec.default_value + ")";
    out += "\n      " + spec.help + "\n";
  }
  return out;
}

}  // namespace domset::common
