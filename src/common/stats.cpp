#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace domset::common {

void running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double running_stats::ci95_halfwidth() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

summary summarize(std::span<const double> values) {
  running_stats rs;
  for (const double v : values) rs.add(v);
  summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = median(values);
  s.ci95 = rs.ci95_halfwidth();
  return s;
}

}  // namespace domset::common
