// Arbitrary-precision unsigned integers for exact threshold arithmetic.
//
// Algorithms 2 and 3 of the paper gate node activity on conditions of the
// form  delta >= (Delta+1)^{l/k}  and  delta >= gamma^{l/(l+1)}.  Deciding
// these with floating point risks flipping a node's activity at exact
// boundary cases (e.g. Delta+1 = 16, k = 4, threshold 16^{2/4} = 4), which
// would silently break the Lemma 2/3/5/6 invariants the correctness proof
// rests on.  Both conditions are equivalent to integer comparisons
//   delta^k >= (Delta+1)^l     and     delta^{l+1} >= gamma^l,
// which we evaluate exactly with a small big-unsigned type.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace domset::common {

/// Unbounded unsigned integer with just the operations exact threshold
/// comparison needs: construction from u64, multiplication, powering and
/// three-way comparison.  Limbs are base-2^64, little-endian.
class wide_uint {
 public:
  /// Zero.
  wide_uint() = default;

  /// Value `v`.
  explicit wide_uint(std::uint64_t v);

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_width() const noexcept;

  wide_uint& operator*=(const wide_uint& rhs);
  [[nodiscard]] friend wide_uint operator*(wide_uint lhs,
                                           const wide_uint& rhs) {
    lhs *= rhs;
    return lhs;
  }

  friend std::strong_ordering operator<=>(const wide_uint& lhs,
                                          const wide_uint& rhs) noexcept;
  friend bool operator==(const wide_uint& lhs,
                         const wide_uint& rhs) noexcept = default;

  /// base^exp via binary exponentiation.  pow(0, 0) == 1 by convention.
  [[nodiscard]] static wide_uint pow(std::uint64_t base, std::uint32_t exp);

  /// Hex rendering (for diagnostics / tests).
  [[nodiscard]] std::string to_hex() const;

 private:
  void trim();

  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zeros
};

/// Exactly compares a^p with b^q.  Returns <0, 0, >0 like a spaceship.
/// Handles all zero corner cases (0^0 == 1).
[[nodiscard]] std::strong_ordering compare_pow(std::uint64_t a,
                                               std::uint32_t p,
                                               std::uint64_t b,
                                               std::uint32_t q);

/// True iff a >= b^{num/den}, i.e. a^den >= b^num, decided exactly.
/// Precondition: den > 0.
[[nodiscard]] bool geq_rational_power(std::uint64_t a, std::uint64_t b,
                                      std::uint32_t num, std::uint32_t den);

}  // namespace domset::common
