// Deterministic pseudo-random number generation for reproducible simulation.
//
// The simulator requires (a) deterministic replay given a global seed and
// (b) statistically independent streams per network node.  We use
// splitmix64 to derive stream seeds and xoshiro256** as the workhorse
// generator; both are small, fast and well studied.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace domset::common {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used for seed derivation (its outputs are equidistributed and decorrelate
/// even consecutive seeds).
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Derives a well-mixed 64-bit seed from a (global seed, stream id) pair.
/// Distinct (seed, stream) pairs map to decorrelated values.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t global_seed,
                                        std::uint64_t stream_id) noexcept;

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, but we provide the handful of
/// distributions the library needs directly (portable across standard
/// library implementations, unlike std::uniform_real_distribution).
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Constructs the generator for stream `stream_id` of `global_seed`.
  rng(std::uint64_t global_seed, std::uint64_t stream_id) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  /// Precondition: bound > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool next_bernoulli(double p) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double next_normal() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Fisher–Yates shuffle of the index range [0, n) materialised as a vector.
/// Lives here (not <algorithm>) so shuffles are reproducible across
/// platforms: std::shuffle's use of the URBG is implementation-defined.
template <typename T>
void shuffle_span(T* data, std::size_t n, rng& gen) {
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = gen.next_below(i + 1);
    if (i != j) {
      T tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
    }
  }
}

}  // namespace domset::common
