// Minimal command-line flag parsing for the examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/context.hpp"

namespace domset::common {

class cli_parser {
 public:
  /// `description` is printed by `usage()`.
  explicit cli_parser(std::string description);

  /// Registers a flag with a default value (rendered in usage).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Registers a boolean switch (present => true).
  void add_switch(const std::string& name, const std::string& help);

  /// Makes parse() reject a non-integer or negative value for an
  /// already-registered flag (the validation --threads/--seed get from
  /// add_exec_flags, for binary-specific flags like --n).
  void require_nonnegative_int(const std::string& name);

  /// Parses argv.  Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// True iff the flag was explicitly supplied on the command line (vs
  /// falling back to its default).  Lets the driver forward only the
  /// params a user actually set.
  [[nodiscard]] bool is_set(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Usage text listing all registered flags.
  [[nodiscard]] std::string usage(const std::string& program) const;

  /// Registers the standard execution flags every simulator-backed binary
  /// shares, in one call: `--seed` (default `default_seed`), `--threads`
  /// (1 = serial, 0 = one worker per hardware thread), `--delivery`
  /// (push | pull | auto), `--drop` (message-loss probability in [0, 1]),
  /// `--faults` (a sim::parse_fault_plan schedule, `none` = reliable)
  /// and `--congest-bits` (0 = unchecked).  parse() validates each value
  /// with the usual usage-and-exit path; read the result back as an
  /// exec::context with exec().  This is the single CLI insertion point
  /// for engine knobs -- a new exec::context field gets its flag here
  /// once and appears in every binary.
  void add_exec_flags(std::uint64_t default_seed = 1);

  /// The parsed execution flags as an exec::context (pool left null; call
  /// exec::context::ensure_shared_pool() to share workers across runs).
  /// Requires a prior add_exec_flags().
  [[nodiscard]] exec::context exec() const;

 private:
  struct flag_spec {
    std::string default_value;
    std::string help;
    bool is_switch = false;
    /// parse() rejects a negative integer value (used by --threads so a
    /// typo takes the usual usage-and-exit path, not an exception).
    bool nonnegative_int = false;
    /// parse() rejects values outside [0, 1] (used by --drop).
    bool unit_interval = false;
    /// parse() rejects values sim::parse_fault_plan cannot parse (used by
    /// --faults; the parse error's message is surfaced in the usage text).
    bool fault_spec = false;
    /// When non-empty, parse() rejects values outside this set (used by
    /// --delivery; enum-shaped flags fail fast on typos).
    std::vector<std::string> one_of;
  };

  std::string description_;
  std::map<std::string, flag_spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace domset::common
