// Minimal command-line flag parsing for the examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace domset::common {

class cli_parser {
 public:
  /// `description` is printed by `usage()`.
  explicit cli_parser(std::string description);

  /// Registers a flag with a default value (rendered in usage).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Registers a boolean switch (present => true).
  void add_switch(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Usage text listing all registered flags.
  [[nodiscard]] std::string usage(const std::string& program) const;

  /// Registers the standard `--threads` flag every parallel-capable binary
  /// shares (default 1 = serial; 0 = one worker per hardware thread).
  /// Read it back with threads().
  void add_threads_flag();

  /// The parsed `--threads` value; throws std::invalid_argument for
  /// negative input.  Outputs are bit-identical for every value -- this
  /// is purely a wall-clock knob.
  [[nodiscard]] std::size_t threads() const;

  /// Registers the standard `--delivery` flag (push | pull | auto,
  /// default auto) shared by every simulator-backed binary; parse()
  /// rejects other values with usage text.  Read it back with delivery()
  /// and convert via sim::parse_delivery_mode.  Like --threads, this is
  /// purely a wall-clock knob: outputs are bit-identical for every value.
  void add_delivery_flag();

  /// The parsed `--delivery` value ("push", "pull" or "auto").
  [[nodiscard]] std::string delivery() const;

 private:
  struct flag_spec {
    std::string default_value;
    std::string help;
    bool is_switch = false;
    /// parse() rejects a negative integer value (used by --threads so a
    /// typo takes the usual usage-and-exit path, not an exception).
    bool nonnegative_int = false;
    /// When non-empty, parse() rejects values outside this set (used by
    /// --delivery; enum-shaped flags fail fast on typos).
    std::vector<std::string> one_of;
  };

  std::string description_;
  std::map<std::string, flag_spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace domset::common
