// Descriptive statistics for experiment harnesses and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace domset::common {

/// Single-pass accumulator (Welford) for mean / variance / extremes.
class running_stats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Half-width of the ~95% normal-approximation confidence interval for the
  /// mean (1.96 * stderr); 0 for fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a sample (copies; does not reorder the input).
[[nodiscard]] double median(std::span<const double> values);

/// p-th percentile (0 <= p <= 100) by linear interpolation between order
/// statistics.  Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Convenience: summarise a vector of doubles.
struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double ci95 = 0.0;
};

[[nodiscard]] summary summarize(std::span<const double> values);

}  // namespace domset::common
