#include "core/rounding.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "sim/engine.hpp"

namespace domset::core {

namespace {

enum rounding_tag : std::uint16_t {
  tag_degree = 1,
  tag_d1 = 2,
  tag_xds = 3,
  tag_member = 4,
};

[[nodiscard]] std::uint32_t value_bits(std::uint64_t v) noexcept {
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::bit_width(v)));
}

/// Scaling factor applied to x_i (line 2 of Algorithm 1).
[[nodiscard]] double scaling_factor(std::uint32_t d2, rounding_variant variant) {
  const double d = static_cast<double>(d2) + 1.0;
  const double log_d = std::log(d);
  if (variant == rounding_variant::plain) return log_d;
  if (log_d <= 0.0) return 0.0;  // d = 1: isolated node, fix-up handles it
  return log_d - std::log(log_d);
}

class rounding_program {
 public:
  rounding_program(double x, rounding_variant variant, bool announce)
      : x_(x), variant_(variant), announce_(announce) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    switch (ctx.round()) {
      case 0: {  // line 1, first exchange: degrees
        degree_ = ctx.degree();
        ctx.broadcast(tag_degree, degree_, value_bits(degree_));
        break;
      }
      case 1: {  // line 1, second exchange: delta^(1)
        d1_ = degree_;
        for (const sim::message& msg : inbox)
          d1_ = std::max(d1_, static_cast<std::uint32_t>(msg.payload));
        ctx.broadcast(tag_d1, d1_, value_bits(d1_));
        break;
      }
      case 2: {  // finish delta^(2); lines 2-4
        d2_ = d1_;
        for (const sim::message& msg : inbox)
          d2_ = std::max(d2_, static_cast<std::uint32_t>(msg.payload));
        const double p = std::min(1.0, x_ * scaling_factor(d2_, variant_));
        selected_randomly_ = ctx.random().next_bernoulli(p);
        in_set_ = selected_randomly_;
        ctx.broadcast(tag_xds, in_set_ ? 1 : 0, 1);
        break;
      }
      case 3: {  // lines 5-6: fix-up for uncovered nodes
        bool covered = in_set_;
        for (const sim::message& msg : inbox) {
          if (msg.tag == tag_xds && msg.payload == 1) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          in_set_ = true;
          selected_by_fixup_ = true;
        }
        if (!announce_) {
          finished_ = true;
        } else if (in_set_) {
          ctx.broadcast(tag_member, 1, 1);
        }
        break;
      }
      case 4: {  // optional membership announcement consumption
        if (in_set_) {
          dominator_ = ctx.id();
        } else {
          for (const sim::message& msg : inbox) {
            if (msg.tag == tag_member && msg.payload == 1) {
              dominator_ = msg.from;
              break;  // inbox is sorted by sender: lowest-id dominator
            }
          }
        }
        finished_ = true;
        break;
      }
      default:
        finished_ = true;
        break;
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] bool in_set() const { return in_set_; }
  [[nodiscard]] bool selected_randomly() const { return selected_randomly_; }
  [[nodiscard]] bool selected_by_fixup() const { return selected_by_fixup_; }
  [[nodiscard]] graph::node_id dominator() const { return dominator_; }

 private:
  double x_;
  rounding_variant variant_;
  bool announce_;

  std::uint32_t degree_ = 0;
  std::uint32_t d1_ = 0;
  std::uint32_t d2_ = 0;
  bool in_set_ = false;
  bool selected_randomly_ = false;
  bool selected_by_fixup_ = false;
  graph::node_id dominator_ = graph::invalid_node;
  bool finished_ = false;
};

}  // namespace

double rounding_ratio_bound(std::uint32_t delta, double alpha) {
  return 1.0 + alpha * std::log(static_cast<double>(delta) + 1.0);
}

double rounding_ratio_bound_log_log(std::uint32_t delta, double alpha) {
  const double log_d = std::log(static_cast<double>(delta) + 1.0);
  if (log_d <= 1.0) return rounding_ratio_bound(delta, alpha);
  return 2.0 * alpha * (log_d - std::log(log_d));
}

rounding_result round_to_dominating_set(const graph::graph& g,
                                        std::span<const double> x,
                                        const rounding_params& params) {
  if (x.size() != g.node_count())
    throw std::invalid_argument("round_to_dominating_set: |x| != node count");
  const std::size_t n = g.node_count();

  rounding_result result;
  result.in_set.assign(n, 0);
  result.dominator.assign(n, graph::invalid_node);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = 8;
  sim::typed_engine<rounding_program> engine(g, cfg);
  engine.load([&](graph::node_id v) {
    return rounding_program(x[v], params.variant, params.announce_final);
  });
  result.metrics = engine.run();

  for (graph::node_id v = 0; v < n; ++v) {
    const auto& prog = engine.program(v);
    result.in_set[v] = prog.in_set() ? 1 : 0;
    if (prog.in_set()) ++result.size;
    if (prog.selected_randomly()) ++result.selected_randomly;
    if (prog.selected_by_fixup()) ++result.selected_by_fixup;
    result.dominator[v] = prog.dominator();
  }
  return result;
}

}  // namespace domset::core
