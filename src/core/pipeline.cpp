#include "core/pipeline.hpp"

namespace domset::core {

pipeline_result compute_dominating_set(const graph::graph& g,
                                       const pipeline_params& params) {
  // Both stages run on one worker pool: the rounding stage reuses the LP
  // stage's threads instead of paying a second pool construction.
  exec::context exec = params.exec;
  exec.ensure_shared_pool();

  lp_approx_params lp_params;
  lp_params.k = params.k;
  lp_params.exec = exec;

  pipeline_result result;
  result.fractional = params.assume_known_delta
                          ? approximate_lp_known_delta(g, lp_params)
                          : approximate_lp(g, lp_params);

  rounding_params r_params;
  r_params.variant = params.variant;
  r_params.announce_final = params.announce_final;
  // Independent stream for the coin flips.
  r_params.exec = exec.with_seed(exec.seed + 1);
  result.rounding =
      round_to_dominating_set(g, result.fractional.x, r_params);

  result.in_set = result.rounding.in_set;
  result.size = result.rounding.size;
  result.total_rounds =
      result.fractional.metrics.rounds + result.rounding.metrics.rounds;
  result.total_messages = result.fractional.metrics.messages_sent +
                          result.rounding.metrics.messages_sent;
  result.expected_ratio_bound =
      params.variant == rounding_variant::plain
          ? rounding_ratio_bound(result.fractional.delta,
                                 result.fractional.ratio_bound)
          : rounding_ratio_bound_log_log(result.fractional.delta,
                                         result.fractional.ratio_bound);
  return result;
}

}  // namespace domset::core
