#include "core/alg3.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/wide_uint.hpp"
#include "lp/lp_mds.hpp"
#include "sim/engine.hpp"

namespace domset::core {

namespace {

enum alg3_tag : std::uint16_t {
  tag_degree = 1,
  tag_d1 = 2,
  tag_active = 3,
  tag_a = 4,
  tag_x = 5,
  tag_color = 6,
  tag_dyn = 7,
  tag_g1 = 8,
};

/// Honest wire width of an integer payload.
[[nodiscard]] std::uint32_t value_bits(std::uint64_t v) noexcept {
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::bit_width(v)));
}

/// Stages within one inner iteration (4 rounds) and the outer boundary.
enum class alg3_phase { act, a, x, color, dyn, g1 };

struct alg3_position {
  bool prelude0 = false;
  bool prelude1 = false;
  alg3_phase phase = alg3_phase::act;
  std::uint32_t outer = 0;  // 0-based; ell = k-1-outer
  std::uint32_t inner = 0;  // 0-based; m = k-1-inner
};

[[nodiscard]] alg3_position locate(std::size_t round, std::uint32_t k) {
  alg3_position pos;
  if (round == 0) {
    pos.prelude0 = true;
    return pos;
  }
  if (round == 1) {
    pos.prelude1 = true;
    return pos;
  }
  const std::size_t t = round - 2;
  const std::size_t outer_len = 4ULL * k + 2ULL;
  pos.outer = static_cast<std::uint32_t>(t / outer_len);
  const std::size_t w = t % outer_len;
  if (w < 4ULL * k) {
    pos.inner = static_cast<std::uint32_t>(w / 4);
    switch (w % 4) {
      case 0: pos.phase = alg3_phase::act; break;
      case 1: pos.phase = alg3_phase::a; break;
      case 2: pos.phase = alg3_phase::x; break;
      default: pos.phase = alg3_phase::color; break;
    }
  } else {
    pos.phase = w == 4ULL * k ? alg3_phase::dyn : alg3_phase::g1;
  }
  return pos;
}

class alg3_program {
 public:
  alg3_program(std::uint32_t k, double eps) : k_(k), eps_(eps) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    const alg3_position pos = locate(ctx.round(), k_);
    // Past the schedule (a crash window swallowed the finishing round):
    // retire instead of underflowing the ell arithmetic below.
    if (pos.outer >= k_) {
      finished_ = true;
      return;
    }

    if (pos.prelude0) {
      // Line 2, first half: exchange degrees.
      degree_ = ctx.degree();
      dyn_degree_ = degree_ + 1;  // line 3 (delta_i + 1)
      ctx.broadcast(tag_degree, degree_, value_bits(degree_));
      return;
    }
    if (pos.prelude1) {
      // Line 2, second half: delta^(1) = max degree in N_i.
      d1_ = degree_;
      for (const sim::message& msg : inbox)
        d1_ = std::max(d1_, static_cast<std::uint32_t>(msg.payload));
      ctx.broadcast(tag_d1, d1_, value_bits(d1_));
      return;
    }

    const std::uint32_t ell = k_ - 1 - pos.outer;
    const std::uint32_t m = k_ - 1 - pos.inner;
    switch (pos.phase) {
      case alg3_phase::act: {
        if (pos.outer == 0 && pos.inner == 0) {
          // Finish line 2 / line 3: delta^(2) and the initial gamma^(2).
          d2_ = d1_;
          for (const sim::message& msg : inbox)
            d2_ = std::max(d2_, static_cast<std::uint32_t>(msg.payload));
          gamma2_ = d2_ + 1;
        } else if (pos.inner == 0) {
          // Line 27: gamma^(2) from the gamma^(1) values just received.
          gamma2_ = gamma1_;
          for (const sim::message& msg : inbox)
            gamma2_ = std::max(gamma2_, static_cast<std::uint32_t>(msg.payload));
        } else {
          // Line 21: refresh dynamic degree from the colors just received.
          refresh_dyn_degree(inbox);
        }
        // Line 7 with the dyn >= 1 guard (see header): exact comparison
        // dyn^{ell+1} >= (gamma^(2))^{ell}.
        active_ = dyn_degree_ >= 1 &&
                  common::geq_rational_power(dyn_degree_, gamma2_, ell, ell + 1);
        if (active_) ctx.broadcast(tag_active, 1, 1);  // line 8
        break;
      }
      case alg3_phase::a: {
        // Lines 10-11: a(v_i) = number of active nodes in N_i (self
        // included); gray nodes report 0.
        std::uint32_t count = active_ ? 1 : 0;
        for (const sim::message& msg : inbox)
          if (msg.tag == tag_active) ++count;
        a_ = gray_ ? 0 : count;
        ctx.broadcast(tag_a, a_, value_bits(a_));  // line 12
        break;
      }
      case alg3_phase::x: {
        // Line 13: a^(1) maximum over the closed neighborhood.
        a1_ = a_;
        for (const sim::message& msg : inbox)
          a1_ = std::max(a1_, static_cast<std::uint32_t>(msg.payload));
        // Lines 15-17: raise x to a^(1)(v_i)^{-m/(m+1)}.  In the reliable
        // model an active node always observes a^(1) >= 1 (itself if white,
        // a white neighbor's count otherwise); under message loss the
        // reports carrying that count can vanish, and 0^{-m/(m+1)} would be
        // infinite -- skip the raise in that (loss-only) situation.
        if (active_ && a1_ >= 1) {
          const double candidate = decode_x(a1_, m);
          if (candidate > x_) {
            x_ = candidate;
            x_payload_ = encode_x(a1_, m);
          }
        }
        // Line 18: broadcast x as the (base, exponent) pair.
        ctx.broadcast(tag_x, x_payload_, value_bits(x_payload_));
        break;
      }
      case alg3_phase::color: {
        // Line 19: coverage check with the x-values just received.
        if (!gray_) {
          double sum = x_;
          for (const sim::message& msg : inbox) {
            if (msg.tag != tag_x || msg.payload == 0) continue;
            const auto [base, exp] = decode_payload(msg.payload);
            sum += decode_x(base, exp);
          }
          if (sum >= 1.0 - eps_) gray_ = true;
        }
        ctx.broadcast(tag_color, gray_ ? 1 : 0, 1);  // line 20
        break;
      }
      case alg3_phase::dyn: {
        // Line 21 (final refresh of the outer iteration) + line 24.
        refresh_dyn_degree(inbox);
        ctx.broadcast(tag_dyn, dyn_degree_, value_bits(dyn_degree_));
        break;
      }
      case alg3_phase::g1: {
        // Lines 25-26: gamma^(1) maximum.
        gamma1_ = dyn_degree_;
        for (const sim::message& msg : inbox)
          gamma1_ = std::max(gamma1_, static_cast<std::uint32_t>(msg.payload));
        ctx.broadcast(tag_g1, gamma1_, value_bits(gamma1_));
        if (pos.outer + 1 == k_) finished_ = true;
        break;
      }
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] double x() const { return x_; }
  [[nodiscard]] bool gray() const { return gray_; }
  [[nodiscard]] std::uint32_t dyn_degree() const { return dyn_degree_; }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint32_t a() const { return a_; }
  [[nodiscard]] std::uint32_t a1() const { return a1_; }
  [[nodiscard]] std::uint32_t gamma2() const { return gamma2_; }
  [[nodiscard]] std::uint32_t gamma1() const { return gamma1_; }

 private:
  /// x = base^{-m/(m+1)}; m = 0 decodes to 1 regardless of base.
  [[nodiscard]] static double decode_x(std::uint32_t base, std::uint32_t m) {
    return std::pow(static_cast<double>(base),
                    -static_cast<double>(m) / (static_cast<double>(m) + 1.0));
  }

  [[nodiscard]] std::uint64_t encode_x(std::uint32_t base,
                                       std::uint32_t m) const {
    return static_cast<std::uint64_t>(base) * k_ + m + 1;
  }

  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> decode_payload(
      std::uint64_t payload) const {
    const std::uint64_t raw = payload - 1;
    return {static_cast<std::uint32_t>(raw / k_),
            static_cast<std::uint32_t>(raw % k_)};
  }

  void refresh_dyn_degree(std::span<const sim::message> inbox) {
    std::uint32_t whites = gray_ ? 0 : 1;
    for (const sim::message& msg : inbox)
      if (msg.tag == tag_color && msg.payload == 0) ++whites;
    dyn_degree_ = whites;
  }

  std::uint32_t k_;
  double eps_;

  std::uint32_t degree_ = 0;
  std::uint32_t d1_ = 0;
  std::uint32_t d2_ = 0;
  std::uint32_t gamma1_ = 0;
  std::uint32_t gamma2_ = 0;
  std::uint32_t dyn_degree_ = 0;
  std::uint32_t a_ = 0;
  std::uint32_t a1_ = 0;
  bool active_ = false;
  bool gray_ = false;
  double x_ = 0.0;
  std::uint64_t x_payload_ = 0;
  bool finished_ = false;
};

}  // namespace

double alg3_ratio_bound(std::uint32_t delta, std::uint32_t k) {
  const double d1 = static_cast<double>(delta) + 1.0;
  const double kk = static_cast<double>(k);
  return kk * (std::pow(d1, 1.0 / kk) + std::pow(d1, 2.0 / kk));
}

lp_approx_result approximate_lp(const graph::graph& g,
                                const lp_approx_params& params,
                                const alg3_observer* observer) {
  if (params.k < 1)
    throw std::invalid_argument("approximate_lp: k >= 1 required");
  const std::size_t n = g.node_count();
  const std::uint32_t k = params.k;

  lp_approx_result result;
  result.delta = g.max_degree();
  result.k = k;
  result.ratio_bound = alg3_ratio_bound(result.delta, k);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = alg3_round_count(k) + 2;
  sim::typed_engine<alg3_program> engine(g, cfg);
  engine.load([&](graph::node_id) {
    return alg3_program(k, lp::feasibility_epsilon);
  });

  if (observer != nullptr) {
    engine.set_round_observer([&, k](std::size_t round) {
      if (round < 2) return;
      const alg3_position pos = locate(round, k);
      if (pos.prelude0 || pos.prelude1 || pos.phase != alg3_phase::x) return;
      alg3_iteration_view view;
      view.ell = k - 1 - pos.outer;
      view.m = k - 1 - pos.inner;
      view.x.resize(n);
      view.gray.resize(n);
      view.dyn_degree.resize(n);
      view.active.resize(n);
      view.a.resize(n);
      view.a1.resize(n);
      view.gamma2.resize(n);
      for (graph::node_id v = 0; v < n; ++v) {
        const auto& prog = engine.program(v);
        view.x[v] = prog.x();
        view.gray[v] = prog.gray() ? 1 : 0;
        view.dyn_degree[v] = prog.dyn_degree();
        view.active[v] = prog.active() ? 1 : 0;
        view.a[v] = prog.a();
        view.a1[v] = prog.a1();
        view.gamma2[v] = prog.gamma2();
      }
      (*observer)(view);
    });
  }

  result.metrics = engine.run();
  result.x.resize(n);
  for (graph::node_id v = 0; v < n; ++v)
    result.x[v] = engine.program(v).x();
  result.objective = lp::objective(result.x);
  return result;
}

}  // namespace domset::core
