/// \file alg3.hpp
/// \brief Algorithm 3 of the paper (Theorem 5): the uniform variant that
/// needs no knowledge of the global maximum degree Delta.  Computes a
/// k*((Delta+1)^(1/k) + (Delta+1)^(2/k))-approximation of the fractional
/// dominating set LP in 4k^2 + O(k) rounds.
//
// Faithful round schedule:
//   prelude (2 rounds):  broadcast degree; broadcast delta^(1)  (line 2)
//   per inner iteration (4 rounds):
//     ACT:   line 21 of prev iteration (refresh dynamic degree) or the
//            outer-boundary line 27 (refresh gamma^(2)), then line 7
//            (activity test, exact integer comparison
//            dyn^{ell+1} >= (gamma^(2))^{ell}) and line 8 (actives
//            announce themselves);
//     A:     lines 10-12 (count active neighbors; gray nodes report 0);
//     X:     lines 13-17 (a^(1) maximum; raise x to a^(1)(v)^{-m/(m+1)});
//     COLOR: lines 19-20 (coverage check; broadcast color);
//   per outer iteration (+2 rounds):
//     DYN:   line 21 + line 24 (refresh and broadcast dynamic degree);
//     G1:    lines 25-26 (gamma^(1) maximum, broadcast).
//
// Unlike Algorithm 2, every value used by an activity check here is fresh
// (the schedule re-exchanges colors before each decision), so the Lemma
// 5/6/7 invariants hold exactly; the tests assert them without slack.
//
// Edge-case guard documented in DESIGN.md: when gamma^(2) = 0 (no white
// node within two hops) and ell >= 1, the literal test
// "dyn >= (gamma^(2))^{ell/(ell+1)}" degenerates to 0 >= 0; such a node has
// nothing left to cover, so activity additionally requires dyn >= 1.
#pragma once

#include <functional>
#include <vector>

#include "core/lp_params.hpp"
#include "graph/graph.hpp"

namespace domset::core {

/// Snapshot after the X-phase compute of one inner iteration (post line
/// 17).  gray/dyn_degree are fresh with respect to every earlier line-19
/// update, matching the paper's analysis points.
struct alg3_iteration_view {
  std::uint32_t ell = 0;
  std::uint32_t m = 0;
  std::vector<double> x;
  std::vector<std::uint8_t> gray;        // true colors (post line 19 of prev)
  std::vector<std::uint32_t> dyn_degree; // value used in this line 7 test
  std::vector<std::uint8_t> active;
  std::vector<std::uint32_t> a;          // line 10 counts (0 for gray nodes)
  std::vector<std::uint32_t> a1;         // line 13 maxima
  std::vector<std::uint32_t> gamma2;     // gamma^(2) used in this iteration
};

using alg3_observer = std::function<void(const alg3_iteration_view&)>;

/// Runs Algorithm 3 on `g`.  If `observer` is non-null it is invoked once
/// per inner iteration (k^2 times).
/// \param g the network graph; no node needs any global knowledge of it.
/// \param params trade-off parameter k plus seed/robustness/execution
///   knobs.
/// \param observer optional per-iteration state monitor (tests, benches).
/// \return the fractional solution x, its objective, run metrics and the
///   Theorem 5 ratio bound.
[[nodiscard]] lp_approx_result approximate_lp(
    const graph::graph& g, const lp_approx_params& params,
    const alg3_observer* observer = nullptr);

/// The Theorem 5 guarantee k*((Delta+1)^{1/k} + (Delta+1)^{2/k}).
[[nodiscard]] double alg3_ratio_bound(std::uint32_t delta, std::uint32_t k);

/// Exact round count of this implementation: 2 prelude rounds, k outer
/// iterations of (4k inner rounds + 2 boundary rounds).  This is the
/// "4k^2 + O(k)" of Theorem 5.
[[nodiscard]] constexpr std::size_t alg3_round_count(std::uint32_t k) {
  return 2ULL + static_cast<std::size_t>(k) * (4ULL * k + 2ULL);
}

}  // namespace domset::core
