/// \file repair.hpp
/// \brief Bounded-radius self-healing of a damaged dominating set.
//
// The LOCAL-model locality that gives the paper its constant-time bound
// also bounds the *repair* work after faults: a node's coverage depends
// only on its closed neighborhood, so a coverage hole can be fixed by
// decisions within a constant radius of it -- no global recomputation.
// Two strategies:
//   * `radius`: collect the uncovered nodes, grow an r-hop dirty region
//     around them (r = repair_params::radius), cut out the induced
//     subgraph, and re-run a solver on it (the caller supplies the
//     subsolver -- typically the same registry solver that produced the
//     damaged set, now on a fault-free context).  The sub-solution is
//     verified to dominate the subgraph and unioned into the original
//     set.  Validity of the union is structural: old members are never
//     removed, so previously covered nodes stay covered, and every hole
//     lies inside the subgraph, where the verified sub-solution gives it
//     a dominator from its own closed neighborhood (closed neighborhoods
//     only shrink under induced subgraphs, never gain impostors).
//   * `greedy`: classic deterministic greedy set cover over the holes'
//     closed neighborhoods (most new holes covered first, smallest id on
//     ties) -- at most |holes| nodes added, touching only the holes and
//     their direct neighbors.  The cheap patch for small damage.
// Both report `touched_nodes`, the size of the dirty region examined, so
// callers (and the acceptance tests) can assert repair work stayed
// proportional to the damage, not to the graph.
//
// The building blocks (dirty-ball BFS, induced-subgraph extraction, the
// greedy patch) are exposed over an `adjacency_view` so dynamic overlay
// graphs (src/dyn) reuse them without materializing a CSR first; the
// `repair()` entry point below stays CSR-based for the fault path.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace domset::core {

enum class repair_mode : std::uint8_t { off, radius, greedy };

/// Read-only adjacency abstraction the repair machinery runs on.  A
/// static CSR wraps into one via `as_view`; overlay structures such as
/// `dyn::dynamic_graph` provide their merged base+delta adjacency
/// directly, so the dirty-ball BFS and the greedy patch never force a
/// full CSR materialization.
struct adjacency_view {
  std::size_t node_count = 0;
  /// Invokes the callback once per neighbor of `v`, in ascending id
  /// order (the repair passes rely on that order for determinism).
  std::function<void(graph::node_id,
                     const std::function<void(graph::node_id)>&)>
      for_each_neighbor;
  /// Optional O(1) degree oracle.  When absent, passes that need a
  /// degree (the capped dirty-ball BFS) count neighbors instead --
  /// correct but O(d) per query, so providers with a cheap degree
  /// (CSR offsets, overlay counters) should fill it in.
  std::function<std::uint32_t(graph::node_id)> degree;
};

/// Wraps a static CSR as an adjacency view.  The view borrows `g`'s
/// storage; the graph must outlive it.
[[nodiscard]] adjacency_view as_view(const graph::graph& g);

/// The r-hop ball around a seed set (multi-source BFS).
struct dirty_ball {
  std::vector<std::uint8_t> in_ball;  ///< indicator, indexed by node id
  /// BFS depth from the nearest seed; `unreached` outside the ball.
  std::vector<std::uint32_t> depth;
  std::size_t size = 0;    ///< number of nodes in the ball
  std::size_t capped = 0;  ///< nodes pinned to the shell by the degree cap
  static constexpr std::uint32_t unreached =
      std::numeric_limits<std::uint32_t>::max();
};

/// Multi-source BFS of `radius` hops around `seeds` over any adjacency
/// view.  Duplicate seeds are fine; out-of-range seeds throw.
///
/// `degree_cap` (0 = off) bounds the frontier around hubs: a node whose
/// degree exceeds the cap still *enters* the ball, but pinned to the
/// boundary shell -- recorded at depth == radius and never expanded.
/// That keeps two invariants the interior splice relies on: every
/// neighbor of a non-capped interior node is in the ball (interior
/// nodes expand normally), and a capped node's membership is never
/// re-decided (shell nodes are pinned), so coverage outside the ball
/// cannot regress.  The cost is quality, not validity -- the
/// ball-restricted coverage check still sees every capped node, so
/// holes at or around hubs are patched, and the escape hatch still
/// guards the aggregate ball size.  See docs/dynamic.md.
[[nodiscard]] dirty_ball dirty_region(const adjacency_view& view,
                                      std::span<const graph::node_id> seeds,
                                      std::uint32_t radius,
                                      std::uint32_t degree_cap = 0);

/// Induced subgraph of the nodes flagged in `keep`, extracted from a
/// view (new ids are ascending original ids, matching
/// `graph::induced_subgraph`).
struct view_subgraph {
  graph::graph g;
  std::vector<graph::node_id> original_id;  ///< new id -> original id
};
[[nodiscard]] view_subgraph extract_subgraph(const adjacency_view& view,
                                             std::span<const std::uint8_t> keep);

/// Deterministic greedy set-cover patch over `holes` (most new holes
/// covered first, smallest id on ties), mutating `in_set` in place.
/// Touches only the holes and their direct neighbors.  Returns
/// {members added, candidate nodes examined}.
struct patch_result {
  std::size_t added = 0;
  std::size_t touched_nodes = 0;
};
patch_result greedy_patch(const adjacency_view& view,
                          std::span<const graph::node_id> holes,
                          std::vector<std::uint8_t>& in_set);

[[nodiscard]] std::string_view to_string(repair_mode mode);
/// Parses "off" | "radius" | "greedy" (throws std::invalid_argument).
[[nodiscard]] repair_mode parse_repair_mode(std::string_view text);

/// Solves the dirty subgraph: receives the induced subgraph and the
/// new-id -> original-id map, returns the subgraph-indexed indicator
/// vector of the chosen dominating set.
using repair_subsolver = std::function<std::vector<std::uint8_t>(
    const graph::graph& sub, const std::vector<graph::node_id>& original_id)>;

struct repair_params {
  repair_mode mode = repair_mode::radius;
  /// Dirty-region radius in hops around each uncovered node (radius
  /// mode).  1 already suffices for validity (the hole's own neighborhood
  /// enters the subgraph); larger radii give the subsolver room to make
  /// globally better choices, mirroring the O(k)-hop locality of the
  /// solver being repaired.
  std::uint32_t radius = 2;
  /// Required in radius mode; ignored by greedy.
  repair_subsolver subsolver;
};

struct repair_result {
  /// The repaired set (a superset of the input set).
  std::vector<std::uint8_t> in_set;
  std::size_t holes_before = 0;
  std::size_t holes_after = 0;  ///< always 0 on return (validity is enforced)
  /// Members added by the repair pass.
  std::size_t added = 0;
  /// Nodes in the dirty region the pass examined: the r-hop ball around
  /// the holes (radius mode) or the holes plus their direct neighbors
  /// (greedy).  0 when the input set was already dominating.
  std::size_t touched_nodes = 0;
};

/// Repairs `in_set` into a verified dominating set of `g`.  Throws
/// std::invalid_argument when params are inconsistent (radius mode
/// without a subsolver, mode == off) and std::runtime_error if the
/// subsolver's output fails to dominate the dirty subgraph.
[[nodiscard]] repair_result repair(const graph::graph& g,
                                   std::span<const std::uint8_t> in_set,
                                   const repair_params& params);

}  // namespace domset::core
