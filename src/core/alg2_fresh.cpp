#include "core/alg2_fresh.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/wide_uint.hpp"
#include "lp/lp_mds.hpp"
#include "sim/engine.hpp"

namespace domset::core {

namespace {

enum alg2f_tag : std::uint16_t { tag_color = 1, tag_x = 2 };

class alg2_fresh_program {
 public:
  alg2_fresh_program(std::uint32_t k, std::uint32_t delta, double eps)
      : k_(k), delta_plus_1_(delta + 1), eps_(eps) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    const std::size_t iteration = ctx.round() / 2;
    // Past the schedule (a crash window swallowed the finishing round):
    // retire instead of underflowing the phase arithmetic.
    if (iteration >= static_cast<std::size_t>(k_) * k_) {
      finished_ = true;
      return;
    }
    const bool phase_a = ctx.round() % 2 == 0;
    if (phase_a) {
      // Line 12 of the previous iteration, then line 9: announce color.
      if (iteration > 0) apply_color_update(inbox);
      ctx.broadcast(tag_color, gray_ ? 1 : 0, 1);
    } else {
      // Line 10 first: the dynamic degree is fresh...
      std::uint32_t whites = gray_ ? 0 : 1;
      for (const sim::message& msg : inbox)
        if (msg.tag == tag_color && msg.payload == 0) ++whites;
      dyn_degree_ = whites;
      // ...then lines 6-8 with the fresh value, then line 11.
      const std::uint32_t ell = k_ - 1 - static_cast<std::uint32_t>(iteration / k_);
      const std::uint32_t m = k_ - 1 - static_cast<std::uint32_t>(iteration % k_);
      active_ = common::geq_rational_power(dyn_degree_, delta_plus_1_, ell, k_);
      if (active_ && (!has_x_ || m < x_exponent_)) {
        has_x_ = true;
        x_exponent_ = m;
      }
      const std::uint64_t payload = has_x_ ? x_exponent_ + 1 : 0;
      ctx.broadcast(tag_x, payload, sim::bits_for_values(k_ + 1));
      if (iteration + 1 == static_cast<std::size_t>(k_) * k_) finished_ = true;
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] double x() const {
    return has_x_ ? decode_exponent(x_exponent_) : 0.0;
  }
  [[nodiscard]] bool gray() const { return gray_; }
  [[nodiscard]] std::uint32_t dyn_degree() const { return dyn_degree_; }
  [[nodiscard]] bool active() const { return active_; }

 private:
  [[nodiscard]] double decode_exponent(std::uint32_t m) const {
    return std::pow(static_cast<double>(delta_plus_1_),
                    -static_cast<double>(m) / static_cast<double>(k_));
  }

  void apply_color_update(std::span<const sim::message> inbox) {
    if (gray_) return;
    double sum = x();
    for (const sim::message& msg : inbox) {
      if (msg.tag != tag_x || msg.payload == 0) continue;
      sum += decode_exponent(static_cast<std::uint32_t>(msg.payload - 1));
    }
    if (sum >= 1.0 - eps_) gray_ = true;
  }

  std::uint32_t k_;
  std::uint32_t delta_plus_1_;
  double eps_;

  std::uint32_t dyn_degree_ = 0;
  bool gray_ = false;
  bool active_ = false;
  bool has_x_ = false;
  std::uint32_t x_exponent_ = 0;
  bool finished_ = false;
};

}  // namespace

lp_approx_result approximate_lp_known_delta_fresh(
    const graph::graph& g, const lp_approx_params& params,
    const alg2_observer* observer) {
  if (params.k < 1)
    throw std::invalid_argument(
        "approximate_lp_known_delta_fresh: k >= 1 required");
  const std::size_t n = g.node_count();
  const std::uint32_t delta = g.max_degree();
  const std::uint32_t k = params.k;

  lp_approx_result result;
  result.delta = delta;
  result.k = k;
  result.ratio_bound = alg2_ratio_bound(delta, k);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = alg2_round_count(k) + 2;
  sim::typed_engine<alg2_fresh_program> engine(g, cfg);
  engine.load([&](graph::node_id) {
    return alg2_fresh_program(k, delta, lp::feasibility_epsilon);
  });

  if (observer != nullptr) {
    // Views snapshot after the phase-B compute: x raises applied, activity
    // decided with the fresh degree, colors as of the last line 12.
    engine.set_round_observer([&, k](std::size_t round) {
      if (round % 2 != 1) return;
      const std::size_t iteration = round / 2;
      alg2_iteration_view view;
      view.ell = k - 1 - static_cast<std::uint32_t>(iteration / k);
      view.m = k - 1 - static_cast<std::uint32_t>(iteration % k);
      view.x.resize(n);
      view.gray.resize(n);
      view.dyn_degree.resize(n);
      view.active.resize(n);
      for (graph::node_id v = 0; v < n; ++v) {
        const auto& prog = engine.program(v);
        view.x[v] = prog.x();
        view.gray[v] = prog.gray() ? 1 : 0;
        view.dyn_degree[v] = prog.dyn_degree();
        view.active[v] = prog.active() ? 1 : 0;
      }
      (*observer)(view);
    });
  }

  result.metrics = engine.run();
  result.x.resize(n);
  for (graph::node_id v = 0; v < n; ++v)
    result.x[v] = engine.program(v).x();
  result.objective = lp::objective(result.x);
  return result;
}

}  // namespace domset::core
