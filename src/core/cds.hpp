/// \file cds.hpp
/// \brief Connected dominating set extension.
//
// The paper's related work (Sect. 2) and its ad-hoc-network motivation
// revolve around *connected* dominating sets: a routing backbone must be
// connected.  This module upgrades any dominating set to a connected one
// (per connected component of G) with the classical guarantee
// |CDS| <= 3*|DS|: in a connected graph, the "cluster graph" whose
// vertices are dominators and whose edges are dominator pairs at distance
// <= 3 is itself connected, so a spanning tree of it needs at most 2
// connector nodes per tree edge.
//
// The augmentation is a network-wide post-processing pass (the paper does
// not give a distributed connector election; [6] and [10] treat the
// problem properly), so this runs centrally on the final membership --
// the natural "sink side" computation of a deployment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace domset::core {

struct cds_result {
  /// The connected dominating set (superset of the input DS).
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Connector nodes added.
  std::size_t connectors_added = 0;
};

/// Augments dominating set `ds` with connector nodes so that within every
/// connected component of `g`, the selected nodes induce a connected
/// subgraph.  Preconditions: `ds` is a dominating set of `g` (checked;
/// throws std::invalid_argument otherwise).
/// Guarantee: size <= 3 * |ds| per component (and never worse than |V|).
[[nodiscard]] cds_result connect_dominating_set(
    const graph::graph& g, std::span<const std::uint8_t> ds);

/// True iff the members of `in_set` induce a connected subgraph within
/// every connected component of `g` that contains at least one member.
[[nodiscard]] bool is_connected_within_components(
    const graph::graph& g, std::span<const std::uint8_t> in_set);

}  // namespace domset::core
