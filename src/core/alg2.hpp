/// \file alg2.hpp
/// \brief Algorithm 2 of the paper (Theorem 4): distributed
/// k*(Delta+1)^(2/k)-approximation of the fractional dominating set LP in
/// exactly 2k^2 rounds, assuming every node knows the global maximum
/// degree Delta.
//
// Faithful round schedule (2 rounds per inner iteration):
//   round A: apply line 12 of the previous iteration (color update from the
//            x-values received), then lines 6-8 (activity check and x
//            raise), then line 9 (broadcast color);
//   round B: line 10 (recompute dynamic degree from received colors), then
//            line 11 (broadcast x).
//
// Fidelity note: with this 2-round schedule -- the one the paper's round
// count 2k^2 implies -- the dynamic degree used in the line 6 activity
// check lags the true colors by exactly one inner iteration (the line 10
// snapshot cannot see grays caused by the very next line 12).  One can show
// the Lemma 2 and Lemma 3 invariants still hold exactly on the *true*
// state (colors only move white -> gray, so the stale count upper-bounds
// the true count); the Lemma 4 z-bound can exceed the paper's constant by
// a small factor.  Tests assert Lemmas 2/3 exactly and Lemma 4 with a 2x
// allowance; the Theorem 4 objective bound is asserted as stated.
#pragma once

#include <functional>
#include <vector>

#include "core/lp_params.hpp"
#include "graph/graph.hpp"

namespace domset::core {

/// Snapshot of global state after the "round A" compute of one inner
/// iteration (i.e. after line 8, with the previous iteration's line 12
/// already applied).  Consumed by the invariant monitors and the Figure 1
/// bench.
struct alg2_iteration_view {
  std::uint32_t ell = 0;  // outer index, k-1 .. 0
  std::uint32_t m = 0;    // inner index, k-1 .. 0
  /// Current x-values (including this iteration's raises).
  std::vector<double> x;
  /// True colors: gray[v] reflects every line-12 update so far.
  std::vector<std::uint8_t> gray;
  /// Dynamic degree variable each node used in this iteration's line 6
  /// (the line 10 snapshot of the previous iteration).
  std::vector<std::uint32_t> dyn_degree;
  /// Whether the node passed the line 6 test this iteration.
  std::vector<std::uint8_t> active;
};

using alg2_observer = std::function<void(const alg2_iteration_view&)>;

/// Runs Algorithm 2 on `g`.  If `observer` is non-null it is invoked once
/// per inner iteration (k^2 times).
/// \param g the network graph; its maximum degree is the Delta every node
///   is assumed to know.
/// \param params trade-off parameter k plus seed/robustness/execution
///   knobs.
/// \param observer optional per-iteration state monitor (tests, benches).
/// \return the fractional solution x, its objective, run metrics and the
///   Theorem 4 ratio bound.
[[nodiscard]] lp_approx_result approximate_lp_known_delta(
    const graph::graph& g, const lp_approx_params& params,
    const alg2_observer* observer = nullptr);

/// The Theorem 4 guarantee k*(Delta+1)^{2/k}.
[[nodiscard]] double alg2_ratio_bound(std::uint32_t delta, std::uint32_t k);

/// The Theorem 4 round count: exactly 2k^2.
[[nodiscard]] constexpr std::size_t alg2_round_count(std::uint32_t k) {
  return 2ULL * k * k;
}

}  // namespace domset::core
