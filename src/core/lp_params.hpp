/// \file lp_params.hpp
/// \brief Shared parameter/result types of the fractional LP
/// approximation algorithms (Algorithm 2 and Algorithm 3).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.hpp"
#include "sim/metrics.hpp"

namespace domset::core {

struct lp_approx_params {
  /// The paper's trade-off parameter k >= 1: quality k*(Delta+1)^{2/k} vs
  /// time Theta(k^2).
  std::uint32_t k = 2;

  /// Execution knobs (seed, threads, pool, delivery, message loss,
  /// CONGEST bit limit) -- see exec::context for the shared semantics.
  exec::context exec;
};

struct lp_approx_result {
  /// The fractional dominating set solution (one value per node).
  std::vector<double> x;

  /// Objective sum(x).
  double objective = 0.0;

  /// Maximum degree Delta of the input graph (known a priori to Algorithm
  /// 2; measured here for both so callers can evaluate the bounds).
  std::uint32_t delta = 0;

  /// The k the run used.
  std::uint32_t k = 0;

  /// Simulator metrics (rounds, messages, bits).
  sim::run_metrics metrics;

  /// The paper's approximation-ratio guarantee for this run:
  /// k*(Delta+1)^{2/k} for Algorithm 2,
  /// k*((Delta+1)^{1/k} + (Delta+1)^{2/k}) for Algorithm 3.
  double ratio_bound = 0.0;
};

}  // namespace domset::core
