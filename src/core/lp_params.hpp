/// \file lp_params.hpp
/// \brief Shared parameter/result types of the fractional LP
/// approximation algorithms (Algorithm 2 and Algorithm 3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/delivery.hpp"
#include "sim/metrics.hpp"
#include "sim/thread_pool.hpp"

namespace domset::core {

struct lp_approx_params {
  /// The paper's trade-off parameter k >= 1: quality k*(Delta+1)^{2/k} vs
  /// time Theta(k^2).
  std::uint32_t k = 2;

  /// Engine seed.  Algorithms 2 and 3 are deterministic; the seed only
  /// matters when message loss is injected.
  std::uint64_t seed = 1;

  /// Message-loss probability (robustness extension; 0 = paper model).
  double drop_probability = 0.0;

  /// If nonzero, the engine flags any message whose declared width exceeds
  /// this many bits (run_metrics::congest_violation) -- used to assert the
  /// paper's O(log Delta) message-size claim mechanically.
  std::uint32_t congest_bit_limit = 0;

  /// Simulator worker threads (1 = serial, 0 = hardware concurrency).
  /// Purely a wall-clock knob: outputs and metrics are bit-identical for
  /// every value.
  std::size_t threads = 1;

  /// Optional shared worker pool (see sim::engine_config::pool).  Lets
  /// consecutive runs -- pipeline stages, parameter sweeps -- reuse one
  /// set of threads instead of building a pool per run.
  std::shared_ptr<sim::thread_pool> pool;

  /// Message-delivery scheme (push, pull, or resolve from degree skew;
  /// see sim::engine_config::delivery).  Like `threads`, purely a
  /// wall-clock knob: outputs are bit-identical for every value.
  sim::delivery_mode delivery = sim::delivery_mode::automatic;
};

struct lp_approx_result {
  /// The fractional dominating set solution (one value per node).
  std::vector<double> x;

  /// Objective sum(x).
  double objective = 0.0;

  /// Maximum degree Delta of the input graph (known a priori to Algorithm
  /// 2; measured here for both so callers can evaluate the bounds).
  std::uint32_t delta = 0;

  /// The k the run used.
  std::uint32_t k = 0;

  /// Simulator metrics (rounds, messages, bits).
  sim::run_metrics metrics;

  /// The paper's approximation-ratio guarantee for this run:
  /// k*(Delta+1)^{2/k} for Algorithm 2,
  /// k*((Delta+1)^{1/k} + (Delta+1)^{2/k}) for Algorithm 3.
  double ratio_bound = 0.0;
};

}  // namespace domset::core
