#include "core/weighted.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "lp/lp_mds.hpp"
#include "sim/engine.hpp"

namespace domset::core {

namespace {

enum weighted_tag : std::uint16_t { tag_color = 1, tag_x = 2 };

/// Weighted Algorithm 2 node: identical round schedule to alg2_program
/// (2 rounds per inner iteration), with the cost-effectiveness activity
/// test.  x-values still have the form (Delta+1)^{-m/k}, so the exponent
/// encoding carries over.
class weighted_alg2_program {
 public:
  weighted_alg2_program(std::uint32_t k, std::uint32_t delta, double cost,
                        double c_max, double eps)
      : k_(k),
        delta_plus_1_(delta + 1),
        cost_(cost),
        c_max_(c_max),
        eps_(eps) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    if (ctx.round() == 0) dyn_degree_ = ctx.degree() + 1;

    const std::size_t iteration = ctx.round() / 2;
    // Past the schedule (a crash window swallowed the finishing round):
    // retire instead of underflowing the phase arithmetic.
    if (iteration >= static_cast<std::size_t>(k_) * k_) {
      finished_ = true;
      return;
    }
    const bool phase_a = ctx.round() % 2 == 0;
    if (phase_a) {
      if (iteration > 0) apply_color_update(inbox);
      const std::uint32_t ell = k_ - 1 - static_cast<std::uint32_t>(iteration / k_);
      const std::uint32_t m = k_ - 1 - static_cast<std::uint32_t>(iteration % k_);
      // Activity: (c_max/c_i)*dyn >= [c_max*(Delta+1)]^{ell/k}.
      const double effectiveness =
          c_max_ / cost_ * static_cast<double>(dyn_degree_);
      const double threshold =
          std::pow(c_max_ * static_cast<double>(delta_plus_1_),
                   static_cast<double>(ell) / static_cast<double>(k_));
      active_ = effectiveness >= threshold - eps_;
      if (active_ && (!has_x_ || m < x_exponent_)) {
        has_x_ = true;
        x_exponent_ = m;
      }
      ctx.broadcast(tag_color, gray_ ? 1 : 0, 1);
    } else {
      std::uint32_t whites = gray_ ? 0 : 1;
      for (const sim::message& msg : inbox)
        if (msg.tag == tag_color && msg.payload == 0) ++whites;
      dyn_degree_ = whites;
      const std::uint64_t payload = has_x_ ? x_exponent_ + 1 : 0;
      ctx.broadcast(tag_x, payload, sim::bits_for_values(k_ + 1));
      if (iteration + 1 == static_cast<std::size_t>(k_) * k_) finished_ = true;
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] double x() const {
    return has_x_ ? decode_exponent(x_exponent_) : 0.0;
  }

 private:
  [[nodiscard]] double decode_exponent(std::uint32_t m) const {
    return std::pow(static_cast<double>(delta_plus_1_),
                    -static_cast<double>(m) / static_cast<double>(k_));
  }

  void apply_color_update(std::span<const sim::message> inbox) {
    if (gray_) return;
    double sum = x();
    for (const sim::message& msg : inbox) {
      if (msg.tag != tag_x || msg.payload == 0) continue;
      sum += decode_exponent(static_cast<std::uint32_t>(msg.payload - 1));
    }
    if (sum >= 1.0 - eps_) gray_ = true;
  }

  std::uint32_t k_;
  std::uint32_t delta_plus_1_;
  double cost_;
  double c_max_;
  double eps_;

  std::uint32_t dyn_degree_ = 0;
  bool gray_ = false;
  bool active_ = false;
  bool has_x_ = false;
  std::uint32_t x_exponent_ = 0;
  bool finished_ = false;
};

}  // namespace

double weighted_ratio_bound(std::uint32_t delta, std::uint32_t k,
                            double c_max) {
  const double d1 = static_cast<double>(delta) + 1.0;
  const double kk = static_cast<double>(k);
  return kk * std::pow(d1, 1.0 / kk) * std::pow(c_max * d1, 1.0 / kk);
}

weighted_lp_result approximate_weighted_lp(const graph::graph& g,
                                           std::span<const double> cost,
                                           const lp_approx_params& params) {
  if (params.k < 1)
    throw std::invalid_argument("approximate_weighted_lp: k >= 1 required");
  if (cost.size() != g.node_count())
    throw std::invalid_argument("approximate_weighted_lp: cost size mismatch");
  double c_max = 1.0;
  for (const double c : cost) {
    if (c < 1.0)
      throw std::invalid_argument(
          "approximate_weighted_lp: costs must be >= 1 (normalize first)");
    c_max = std::max(c_max, c);
  }

  const std::size_t n = g.node_count();
  weighted_lp_result result;
  result.delta = g.max_degree();
  result.k = params.k;
  result.c_max = c_max;
  result.ratio_bound = weighted_ratio_bound(result.delta, params.k, c_max);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = 2ULL * params.k * params.k + 2;
  sim::typed_engine<weighted_alg2_program> engine(g, cfg);
  engine.load([&](graph::node_id v) {
    return weighted_alg2_program(params.k, result.delta, cost[v], c_max,
                                 lp::feasibility_epsilon);
  });
  result.metrics = engine.run();

  result.x.resize(n);
  result.objective = 0.0;
  for (graph::node_id v = 0; v < n; ++v) {
    result.x[v] = engine.program(v).x();
    result.objective += result.x[v] * cost[v];
  }
  return result;
}

}  // namespace domset::core
