/// \file rounding.hpp
/// \brief Algorithm 1 of the paper (Theorem 3): distributed randomized
/// rounding of a feasible fractional dominating set into an integral one.
//
//   1: calculate delta^(2)_i                (2 communication rounds)
//   2: p_i := min{1, x_i * ln(delta^(2)_i + 1)}
//   3: x_DS,i := 1 with probability p_i else 0
//   4: send x_DS,i to all neighbors
//   5: if x_DS,j = 0 for all j in N_i then x_DS,i := 1
//
// Theorem 3: if the input is an alpha-approximation of LP_MDS, the output
// dominating set has expected size (1 + alpha*ln(Delta+1)) * |DS_OPT|.
//
// The Remark after Theorem 3 is also implemented: scaling by
// ln(d) - ln(ln(d)) instead of ln(d) yields expected size
// 2*alpha*(ln(Delta+1) - ln(ln(Delta+1))) * |DS_OPT|.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace domset::core {

enum class rounding_variant {
  /// p_i = min{1, x_i * ln(delta^(2)_i + 1)} -- the paper's Algorithm 1.
  plain,
  /// p_i = min{1, x_i * (ln(d) - ln(ln(d)))}, d = delta^(2)_i + 1 -- the
  /// Remark after Theorem 3.  For d = 1 the factor is defined as 0 (an
  /// isolated node relies on the line-6 fix-up, which always selects it).
  log_log,
};

struct rounding_params {
  rounding_variant variant = rounding_variant::plain;
  /// If true, members broadcast their final membership in one extra round
  /// so every node also knows its dominator (used by the clustering
  /// example).  The paper's algorithm does not need it.
  bool announce_final = false;
  /// Execution knobs (seed for the rounding coins, threads, pool,
  /// delivery, message loss) -- see exec::context.
  exec::context exec;
};

struct rounding_result {
  /// Indicator vector of the dominating set.
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Nodes selected by the probabilistic step (line 3).
  std::size_t selected_randomly = 0;
  /// Nodes added by the deterministic fix-up (line 6).
  std::size_t selected_by_fixup = 0;
  sim::run_metrics metrics;
  /// For each node, a dominator in its closed neighborhood (self if member;
  /// only populated when announce_final is set, otherwise invalid_node).
  std::vector<graph::node_id> dominator;
};

/// Rounds the fractional solution `x` (one value per node, assumed primal
/// feasible) to a dominating set by running Algorithm 1 on the simulator.
/// \param g the network graph.
/// \param x fractional LP solution, size g.node_count().
/// \param params seed, variant and execution knobs.
/// \return the dominating set plus selection diagnostics and run metrics.
[[nodiscard]] rounding_result round_to_dominating_set(
    const graph::graph& g, std::span<const double> x,
    const rounding_params& params);

/// The Theorem 3 guarantee (1 + alpha*ln(Delta+1)).
[[nodiscard]] double rounding_ratio_bound(std::uint32_t delta, double alpha);

/// The Remark guarantee 2*alpha*(ln(Delta+1) - ln(ln(Delta+1))).
[[nodiscard]] double rounding_ratio_bound_log_log(std::uint32_t delta,
                                                  double alpha);

}  // namespace domset::core
