#include "core/arboricity.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/probe.hpp"
#include "sim/engine.hpp"

namespace domset::core {

namespace {

using graph::node_id;

enum arb_tag : std::uint16_t {
  tag_join = 1,
  tag_covered = 2,
};

/// One node of the threshold sweep.  Phase t occupies rounds 2t (decision)
/// and 2t + 1 (transition); the phase after the schedule is the cleanup.
///
/// Decision round:  fold the COVERED announcements sent last round into
/// the residual count, then join (and announce JOIN) iff the residual
/// coverage w(v) = |uncovered in N[v]| reaches the phase threshold --
/// or, in cleanup, iff v itself is still uncovered.
/// Transition round: a JOIN heard (or made) covers this node; the
/// white->covered transition is announced exactly once, so residual
/// counts decrement exactly once per neighbor.
class arb_program {
 public:
  arb_program() = default;
  arb_program(const std::vector<std::uint32_t>* schedule, std::uint32_t degree)
      : schedule_(schedule), uncovered_nbrs_(degree) {}

  void on_round(sim::round_context& ctx, std::span<const sim::message> inbox) {
    if (finished_) return;
    if (ctx.round() % 2 == 0) {
      for (const sim::message& msg : inbox)
        if (msg.tag == tag_covered) --uncovered_nbrs_;
      const std::size_t phase = ctx.round() / 2;
      const std::uint64_t w =
          static_cast<std::uint64_t>(uncovered_nbrs_) + (covered_ ? 0 : 1);
      bool join = false;
      if (phase < schedule_->size()) {
        join = !in_set_ && w >= (*schedule_)[phase];
      } else {
        join = !in_set_ && !covered_;
      }
      if (join) {
        in_set_ = true;
        ctx.broadcast(tag_join, 1, 1);
      } else if (covered_ && announced_ && uncovered_nbrs_ == 0) {
        // Covered, transition announced, every neighbor covered too:
        // w = 0 stays below every threshold, so no future round can act.
        finished_ = true;
      }
    } else {
      bool covered_now = in_set_;
      for (const sim::message& msg : inbox)
        if (msg.tag == tag_join) covered_now = true;
      if (covered_now) covered_ = true;
      if (covered_ && !announced_) {
        announced_ = true;
        ctx.broadcast(tag_covered, 1, 1);
      }
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool in_set() const { return in_set_; }

 private:
  const std::vector<std::uint32_t>* schedule_ = nullptr;
  std::uint32_t uncovered_nbrs_ = 0;
  bool in_set_ = false;
  bool covered_ = false;
  bool announced_ = false;
  bool finished_ = false;
};

}  // namespace

std::vector<std::uint32_t> threshold_schedule(std::uint32_t max_degree,
                                              std::uint32_t degeneracy,
                                              double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon))
    throw std::invalid_argument(
        "param 'epsilon': must be a positive finite value");
  const std::uint64_t floor_tau = 2ULL * degeneracy + 2;
  std::vector<std::uint32_t> taus;
  std::uint64_t tau = static_cast<std::uint64_t>(max_degree) + 1;
  while (tau >= floor_tau) {
    taus.push_back(static_cast<std::uint32_t>(tau));
    const auto next =
        static_cast<std::uint64_t>(static_cast<double>(tau) / (1.0 + epsilon));
    // floor(tau / (1 + eps)) < tau mathematically; the min guards the one
    // way that can fail in floating point (epsilon denormally small).
    tau = std::min(tau - 1, next);
  }
  return taus;
}

double arboricity_ratio_bound(std::uint32_t max_degree,
                              std::uint32_t degeneracy,
                              std::span<const std::uint32_t> schedule) {
  const double a = static_cast<double>(degeneracy);
  double prev = static_cast<double>(max_degree) + 1.0;
  double ratio = 0.0;
  for (const std::uint32_t tau : schedule) {
    ratio += 2.0 * a * prev / (static_cast<double>(tau) - 2.0 * a - 1.0);
    prev = static_cast<double>(tau);
  }
  return ratio + prev;
}

arboricity_result arboricity_mds(const graph::graph& g,
                                 const arboricity_params& params) {
  const std::size_t n = g.node_count();
  arboricity_result result;
  result.in_set.assign(n, 0);
  result.degeneracy = graph::degeneracy(g);
  const std::vector<std::uint32_t> schedule =
      threshold_schedule(g.max_degree(), result.degeneracy, params.epsilon);
  result.phases = schedule.size();
  result.ratio_bound =
      arboricity_ratio_bound(g.max_degree(), result.degeneracy, schedule);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  // Schedule phases + cleanup, 2 rounds each, + the final settle rounds
  // (cleanup transition, residual drain, last finish check).
  cfg.max_rounds = 2 * (schedule.size() + 1) + 4;
  sim::typed_engine<arb_program> engine(g, cfg);
  engine.load([&](node_id v) { return arb_program(&schedule, g.degree(v)); });
  result.metrics = engine.run();

  for (node_id v = 0; v < n; ++v) {
    if (engine.program(v).in_set()) {
      result.in_set[v] = 1;
      ++result.size;
    }
  }
  return result;
}

}  // namespace domset::core
