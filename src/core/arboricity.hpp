// Bounded-arboricity dominating set via a deterministic degree-threshold
// sweep, after Dory, Ghaffari and Ilchi, "Near-Optimal Distributed
// Dominating Set in Bounded Arboricity Graphs" (arXiv 2206.05174).
//
// The algorithm sweeps a threshold tau down from Delta + 1 by factors of
// (1 + epsilon); in each phase every node whose closed neighborhood still
// contains >= tau uncovered nodes joins the dominating set, and a final
// cleanup phase lets every still-uncovered node join itself.  Each phase
// is two simulator rounds of 1-bit messages (JOIN announcements, then
// COVERED transition announcements), so the whole run takes
// O(eps^-1 log Delta) rounds -- DGI's round complexity -- with no
// randomness at all: the output is a pure function of the graph.
//
// The sweep stops at tau = 2A + 2, where A is the graph's degeneracy
// (computed centrally, like Algorithm 2's known-Delta assumption; note
// arboricity <= A <= 2*arboricity - 1, so bounded arboricity is bounded
// degeneracy).  The reported `ratio_bound` is a per-instance certificate
// derived from the actual threshold schedule:
//
//   * invariant: after the phase with threshold tau, every node has
//     fewer than tau uncovered nodes left in its closed neighborhood
//     (anyone at tau or above just joined and zeroed its residual);
//   * hence the uncovered set U_i entering phase i satisfies
//     |U_i| <= tau_{i-1} |OPT| (each optimum node dominates < tau_{i-1}
//     of them), with tau_{-1} := Delta + 1;
//   * the phase-i joiners J_i each hold >= tau_i incidences into U_i.
//     An A-degenerate subgraph on s vertices has at most A*s edges, so
//     counting those incidences over G[J_i u U_i] gives
//     |J_i| (tau_i - 2A - 1) <= 2A |U_i|  (the -1 absorbs self-coverage);
//   * the cleanup joiners are exactly U_last, at most tau_last |OPT|.
//
// Summing: |DS| <= (sum_i 2A tau_{i-1} / (tau_i - 2A - 1) + tau_last)|OPT|
// -- every factor computable before the run, so the bound ships in the
// result and the differential harness can check it against exact optima.
// This self-contained certificate is O(eps^-1 A log Delta); DGI's sharper
// forest-decomposition analysis reaches O(A), which is why dense graphs
// (2A + 2 > Delta + 1 degenerates to "everyone joins") belong to the
// pipeline solver -- the `auto` meta-solver routes accordingly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace domset::core {

struct arboricity_params {
  /// Threshold decay rate: tau <- floor(tau / (1 + epsilon)).  Smaller
  /// epsilon means more phases (more rounds) and a gentler sweep --
  /// typically a smaller set, though the per-phase union-bound
  /// *certificate* (ratio_bound) grows with the phase count.  Must be
  /// positive and finite; throws std::invalid_argument otherwise.
  double epsilon = 0.5;

  /// Execution knobs (threads, pool, delivery, faults); the algorithm is
  /// deterministic, so `seed` only matters under injected unreliability.
  exec::context exec;
};

struct arboricity_result {
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Degeneracy A the sweep floor was computed from.
  std::uint32_t degeneracy = 0;
  /// Swept thresholds (cleanup excluded); 2 rounds each.
  std::size_t phases = 0;
  /// The per-instance certificate described above (>= 1; equals Delta + 1
  /// when no threshold cleared the sweep floor).
  double ratio_bound = 0.0;
  sim::run_metrics metrics;
};

/// The threshold schedule tau_0 = Delta + 1 > tau_1 > ... >= 2A + 2,
/// strictly decreasing by floor-division with (1 + epsilon).  Empty when
/// Delta + 1 < 2A + 2 (the cleanup-only regime).
[[nodiscard]] std::vector<std::uint32_t> threshold_schedule(
    std::uint32_t max_degree, std::uint32_t degeneracy, double epsilon);

/// The certificate sum_i 2A tau_{i-1} / (tau_i - 2A - 1) + tau_last for a
/// given schedule (tau_last = Delta + 1 for an empty schedule).
[[nodiscard]] double arboricity_ratio_bound(
    std::uint32_t max_degree, std::uint32_t degeneracy,
    std::span<const std::uint32_t> schedule);

[[nodiscard]] arboricity_result arboricity_mds(const graph::graph& g,
                                               const arboricity_params& params);

}  // namespace domset::core
