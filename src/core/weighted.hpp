/// \file weighted.hpp
/// \brief Weighted fractional dominating set (Remark after Theorem 4).
//
// Every node v_i has a cost c_i in [1, c_max].  Following the remark, the
// weighted variant of Algorithm 2 replaces the dynamic degree by the
// cost-effectiveness  gamma~(v_i) := (c_max / c_i) * dyn_degree(v_i)  and a
// node is active iff  gamma~(v_i) >= [c_max * (Delta+1)]^{ell/k}; the
// x-raise (line 7) is unchanged.  The claimed approximation ratio for the
// weighted LP (min c^T x) is  k * (Delta+1)^{1/k} * [c_max*(Delta+1)]^{1/k}.
//
// The remark leaves the adapted lines to the reader ("change lines 6 and 10
// in the appropriate way"); this is our best-faith reconstruction, and the
// bench B-R2 measures the resulting ratio against the remark's bound.
// Costs are real-valued, so the activity threshold is evaluated in floating
// point (with the shared tolerance) rather than with the exact integer
// comparison used by the unweighted algorithms.
#pragma once

#include <span>

#include "core/lp_params.hpp"
#include "graph/graph.hpp"

namespace domset::core {

struct weighted_lp_result {
  std::vector<double> x;
  /// Weighted objective c^T x.
  double objective = 0.0;
  std::uint32_t delta = 0;
  std::uint32_t k = 0;
  double c_max = 0.0;
  sim::run_metrics metrics;
  /// The remark's ratio guarantee k*(Delta+1)^{1/k}*[c_max*(Delta+1)]^{1/k}.
  double ratio_bound = 0.0;
};

/// Runs the weighted Algorithm 2 variant.  Costs must lie in [1, inf);
/// c_max is taken as max(cost).  Requires cost.size() == node count.
[[nodiscard]] weighted_lp_result approximate_weighted_lp(
    const graph::graph& g, std::span<const double> cost,
    const lp_approx_params& params);

/// The remark's bound k*(Delta+1)^{1/k}*[c_max*(Delta+1)]^{1/k}.
[[nodiscard]] double weighted_ratio_bound(std::uint32_t delta, std::uint32_t k,
                                          double c_max);

}  // namespace domset::core
