/// \file alg2_fresh.hpp
/// \brief Ablation variant of Algorithm 2: fresh dynamic degrees.
//
// The paper's Algorithm 2 executes lines 6-8 (activity test, x raise)
// *before* the color exchange of lines 9-10, so the dynamic degree used by
// the test is one inner iteration stale (see alg2.hpp).  Reordering the
// loop body to
//     9: send color;  10: refresh dyn degree;  6-8: test and raise x;
//     11: send x;     12: update color
// costs nothing -- still two rounds per inner iteration, still 2k^2 rounds
// total -- but the activity decision now sees every color update, and the
// Lemma 4 z-bound holds *exactly* (the tests assert it without slack).
//
// This variant quantifies a reproduction finding: the literal pseudo-code
// schedule pays a small constant-factor in the dual accounting that a
// one-line reordering removes.  Bench A1 measures both.
#pragma once

#include "core/alg2.hpp"

namespace domset::core {

/// Runs the reordered (fresh-degree) Algorithm 2.  Same parameters,
/// metrics, view semantics and guarantees as approximate_lp_known_delta;
/// the view's dyn_degree is the *fresh* value used by the activity test.
[[nodiscard]] lp_approx_result approximate_lp_known_delta_fresh(
    const graph::graph& g, const lp_approx_params& params,
    const alg2_observer* observer = nullptr);

}  // namespace domset::core
