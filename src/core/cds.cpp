#include "core/cds.hpp"

#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace domset::core {

namespace {

using graph::node_id;

constexpr std::uint32_t unvisited = std::numeric_limits<std::uint32_t>::max();

}  // namespace

cds_result connect_dominating_set(const graph::graph& g,
                                  std::span<const std::uint8_t> ds) {
  if (!verify::is_dominating_set(g, ds))
    throw std::invalid_argument(
        "connect_dominating_set: input is not a dominating set");
  const std::size_t n = g.node_count();

  cds_result result;
  result.in_set.assign(ds.begin(), ds.end());

  const auto components = graph::connected_components(g);
  // Dominators per component.
  std::vector<std::vector<node_id>> dominators(components.count);
  for (node_id v = 0; v < n; ++v)
    if (ds[v]) dominators[components.component[v]].push_back(v);

  std::vector<std::uint8_t> in_blob(n, 0);
  std::vector<node_id> parent(n, graph::invalid_node);
  std::vector<std::uint32_t> visit_mark(n, unvisited);
  std::uint32_t epoch = 0;

  for (std::uint32_t c = 0; c < components.count; ++c) {
    const auto& doms = dominators[c];
    if (doms.size() <= 1) continue;

    // Grow a connected blob of selected nodes, absorbing the nearest
    // outside dominator each step.  The dominator "cluster graph" with
    // distance <= 3 edges is connected (every node on a path between two
    // dominators is dominated), so the nearest outside dominator is at
    // distance <= 3 and each absorption adds at most 2 connectors.
    std::size_t absorbed = 1;
    in_blob[doms.front()] = 1;
    while (absorbed < doms.size()) {
      ++epoch;
      std::queue<node_id> frontier;
      // Seed from every blob member (dominators and prior connectors): the
      // nearest outside dominator is at distance <= 3 from a blob
      // dominator, and connectors can only shorten paths.
      for (node_id v = 0; v < n; ++v) {
        if (in_blob[v] && components.component[v] == c) {
          visit_mark[v] = epoch;
          parent[v] = graph::invalid_node;
          frontier.push(v);
        }
      }
      node_id found = graph::invalid_node;
      while (!frontier.empty() && found == graph::invalid_node) {
        const node_id v = frontier.front();
        frontier.pop();
        for (const node_id u : g.neighbors(v)) {
          if (visit_mark[u] == epoch) continue;
          visit_mark[u] = epoch;
          parent[u] = v;
          if (ds[u] && !in_blob[u]) {
            found = u;
            break;
          }
          frontier.push(u);
        }
      }
      if (found == graph::invalid_node)
        throw std::logic_error(
            "connect_dominating_set: component dominators unreachable");
      // Absorb: walk the parent chain, selecting intermediate connectors.
      in_blob[found] = 1;
      ++absorbed;
      for (node_id v = parent[found]; v != graph::invalid_node;
           v = parent[v]) {
        if (!result.in_set[v]) {
          result.in_set[v] = 1;
          ++result.connectors_added;
        }
        if (!in_blob[v]) {
          in_blob[v] = 1;
          if (ds[v]) ++absorbed;  // a dominator picked up along the path
        }
      }
    }
  }

  result.size = verify::set_size(result.in_set);
  return result;
}

bool is_connected_within_components(const graph::graph& g,
                                    std::span<const std::uint8_t> in_set) {
  const std::size_t n = g.node_count();
  const auto components = graph::connected_components(g);

  std::vector<std::size_t> members_per_component(components.count, 0);
  for (node_id v = 0; v < n; ++v)
    if (in_set[v]) ++members_per_component[components.component[v]];

  std::vector<std::uint8_t> seen(n, 0);
  std::vector<node_id> stack;
  for (std::uint32_t c = 0; c < components.count; ++c) {
    if (members_per_component[c] <= 1) continue;
    // BFS through the member-induced subgraph from one member.
    node_id start = graph::invalid_node;
    for (node_id v = 0; v < n && start == graph::invalid_node; ++v)
      if (in_set[v] && components.component[v] == c) start = v;
    std::size_t reached = 1;
    seen[start] = 1;
    stack.push_back(start);
    while (!stack.empty()) {
      const node_id v = stack.back();
      stack.pop_back();
      for (const node_id u : g.neighbors(v)) {
        if (!in_set[u] || seen[u]) continue;
        seen[u] = 1;
        ++reached;
        stack.push_back(u);
      }
    }
    if (reached != members_per_component[c]) return false;
  }
  return true;
}

}  // namespace domset::core
