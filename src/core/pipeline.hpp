/// \file pipeline.hpp
/// \brief The Theorem 6 pipeline: Algorithm 3 (or 2) to approximate
/// LP_MDS, composed with Algorithm 1 to round the fractional solution
/// into a dominating set.  Expected size O(k * Delta^(2/k) * log Delta)
/// times |DS_OPT| in O(k^2) rounds -- the paper's headline result.
#pragma once

#include <cstdint>
#include <vector>

#include "core/alg2.hpp"
#include "core/alg3.hpp"
#include "core/rounding.hpp"
#include "graph/graph.hpp"

namespace domset::core {

struct pipeline_params {
  std::uint32_t k = 2;
  /// If true, use Algorithm 2 (requires global knowledge of Delta; fewer
  /// rounds).  Default is the uniform Algorithm 3.
  bool assume_known_delta = false;
  rounding_variant variant = rounding_variant::plain;
  bool announce_final = false;
  /// Execution knobs, shared by both stages (see exec::context).  The
  /// rounding stage derives its coin-flip stream from `exec.seed + 1`;
  /// when parallelism is requested and no pool is supplied, the pipeline
  /// builds one and shares it across the LP and rounding stages rather
  /// than letting each stage spin up its own.
  exec::context exec;
};

struct pipeline_result {
  /// The dominating set.
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;

  /// Fractional stage outputs.
  lp_approx_result fractional;
  /// Rounding stage outputs.
  rounding_result rounding;

  /// Total rounds across both stages.
  std::size_t total_rounds = 0;
  /// Total messages across both stages.
  std::uint64_t total_messages = 0;

  /// Theorem 6 expected-size guarantee relative to |DS_OPT|:
  /// 1 + alpha*ln(Delta+1) with alpha the fractional stage's ratio bound.
  double expected_ratio_bound = 0.0;
};

/// Runs the full distributed dominating set computation of Theorem 6.
/// \param g the network graph (the paper's communication topology).
/// \param params trade-off parameter k, seeds, robustness and execution
///   knobs for both stages.
/// \return the dominating set with per-stage metrics and the Theorem 6
///   expected-size bound.
[[nodiscard]] pipeline_result compute_dominating_set(
    const graph::graph& g, const pipeline_params& params);

}  // namespace domset::core
