#include "core/repair.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace domset::core {

std::string_view to_string(repair_mode mode) {
  switch (mode) {
    case repair_mode::off: return "off";
    case repair_mode::radius: return "radius";
    case repair_mode::greedy: return "greedy";
  }
  return "off";
}

repair_mode parse_repair_mode(std::string_view text) {
  if (text == "off") return repair_mode::off;
  if (text == "radius") return repair_mode::radius;
  if (text == "greedy") return repair_mode::greedy;
  throw std::invalid_argument("repair mode '" + std::string(text) +
                              "': expected off, radius or greedy");
}

namespace {

/// Indicator of the r-hop ball around `seeds` (multi-source BFS).
std::vector<std::uint8_t> dirty_region(const graph::graph& g,
                                       std::span<const graph::node_id> seeds,
                                       std::uint32_t radius) {
  const std::size_t n = g.node_count();
  std::vector<std::uint8_t> in_region(n, 0);
  std::vector<std::uint32_t> depth(n, 0);
  std::deque<graph::node_id> queue;
  for (const graph::node_id v : seeds) {
    if (in_region[v]) continue;
    in_region[v] = 1;
    queue.push_back(v);
  }
  while (!queue.empty()) {
    const graph::node_id v = queue.front();
    queue.pop_front();
    if (depth[v] == radius) continue;
    for (const graph::node_id u : g.neighbors(v)) {
      if (in_region[u]) continue;
      in_region[u] = 1;
      depth[u] = depth[v] + 1;
      queue.push_back(u);
    }
  }
  return in_region;
}

repair_result repair_radius(const graph::graph& g,
                            std::span<const std::uint8_t> in_set,
                            const std::vector<graph::node_id>& holes,
                            const repair_params& params) {
  if (!params.subsolver)
    throw std::invalid_argument("repair: radius mode needs a subsolver");

  repair_result result;
  result.in_set.assign(in_set.begin(), in_set.end());
  result.holes_before = holes.size();

  const std::vector<std::uint8_t> region =
      dirty_region(g, holes, params.radius);
  result.touched_nodes = static_cast<std::size_t>(
      std::count(region.begin(), region.end(), std::uint8_t{1}));

  graph::induced_subgraph_result sub = graph::induced_subgraph(g, region);
  const std::vector<std::uint8_t> sub_set =
      params.subsolver(sub.g, sub.original_id);
  if (sub_set.size() != sub.g.node_count())
    throw std::runtime_error(
        "repair: subsolver returned a wrong-sized solution");
  if (!verify::is_dominating_set(sub.g, sub_set))
    throw std::runtime_error(
        "repair: subsolver failed to dominate the dirty subgraph");

  // Union only: old coverage survives, and every hole is dominated inside
  // the subgraph, whose closed neighborhoods are subsets of the full
  // graph's -- so the union dominates g (see repair.hpp).
  for (graph::node_id s = 0; s < sub.g.node_count(); ++s) {
    if (sub_set[s] == 0) continue;
    std::uint8_t& bit = result.in_set[sub.original_id[s]];
    if (bit == 0) {
      bit = 1;
      ++result.added;
    }
  }
  return result;
}

repair_result repair_greedy(const graph::graph& g,
                            std::span<const std::uint8_t> in_set,
                            const std::vector<graph::node_id>& holes) {
  repair_result result;
  result.in_set.assign(in_set.begin(), in_set.end());
  result.holes_before = holes.size();

  // Candidates: the holes and their direct neighbors -- any node able to
  // cover at least one hole.  That set is also the touched region.
  std::vector<std::uint8_t> uncovered(g.node_count(), 0);
  for (const graph::node_id v : holes) uncovered[v] = 1;
  std::vector<graph::node_id> candidates;
  std::vector<std::uint8_t> seen(g.node_count(), 0);
  for (const graph::node_id v : holes) {
    if (!seen[v]) {
      seen[v] = 1;
      candidates.push_back(v);
    }
    for (const graph::node_id u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        candidates.push_back(u);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  result.touched_nodes = candidates.size();

  std::size_t remaining = holes.size();
  while (remaining > 0) {
    // Most holes newly covered wins; candidates are scanned in ascending
    // id, so ties resolve to the smallest id -- fully deterministic.
    graph::node_id best = graph::invalid_node;
    std::size_t best_gain = 0;
    for (const graph::node_id c : candidates) {
      if (result.in_set[c]) continue;
      std::size_t gain = uncovered[c] != 0 ? 1 : 0;
      for (const graph::node_id u : g.neighbors(c)) gain += uncovered[u] != 0;
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    // Every hole covers itself, so a positive-gain candidate always
    // exists while holes remain.
    result.in_set[best] = 1;
    ++result.added;
    if (uncovered[best]) {
      uncovered[best] = 0;
      --remaining;
    }
    for (const graph::node_id u : g.neighbors(best)) {
      if (uncovered[u]) {
        uncovered[u] = 0;
        --remaining;
      }
    }
  }
  return result;
}

}  // namespace

repair_result repair(const graph::graph& g,
                     std::span<const std::uint8_t> in_set,
                     const repair_params& params) {
  if (in_set.size() != g.node_count())
    throw std::invalid_argument("repair: |in_set| != node count");
  if (params.mode == repair_mode::off)
    throw std::invalid_argument("repair: mode is off");

  const std::vector<graph::node_id> holes =
      verify::undominated_nodes(g, in_set);
  if (holes.empty()) {
    repair_result result;
    result.in_set.assign(in_set.begin(), in_set.end());
    return result;
  }

  repair_result result = params.mode == repair_mode::radius
                             ? repair_radius(g, in_set, holes, params)
                             : repair_greedy(g, in_set, holes);
  result.holes_after = verify::undominated_nodes(g, result.in_set).size();
  if (result.holes_after != 0)
    throw std::runtime_error("repair: result still has coverage holes");
  return result;
}

}  // namespace domset::core
