#include "core/repair.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "graph/properties.hpp"
#include "verify/verify.hpp"

namespace domset::core {

std::string_view to_string(repair_mode mode) {
  switch (mode) {
    case repair_mode::off: return "off";
    case repair_mode::radius: return "radius";
    case repair_mode::greedy: return "greedy";
  }
  return "off";
}

repair_mode parse_repair_mode(std::string_view text) {
  if (text == "off") return repair_mode::off;
  if (text == "radius") return repair_mode::radius;
  if (text == "greedy") return repair_mode::greedy;
  throw std::invalid_argument("repair mode '" + std::string(text) +
                              "': expected off, radius or greedy");
}

adjacency_view as_view(const graph::graph& g) {
  adjacency_view view;
  view.node_count = g.node_count();
  view.for_each_neighbor =
      [&g](graph::node_id v, const std::function<void(graph::node_id)>& f) {
        for (const graph::node_id u : g.neighbors(v)) f(u);
      };
  view.degree = [&g](graph::node_id v) { return g.degree(v); };
  return view;
}

namespace {

std::uint32_t view_degree(const adjacency_view& view, graph::node_id v) {
  if (view.degree) return view.degree(v);
  std::uint32_t count = 0;
  view.for_each_neighbor(v, [&count](graph::node_id) { ++count; });
  return count;
}

}  // namespace

dirty_ball dirty_region(const adjacency_view& view,
                        std::span<const graph::node_id> seeds,
                        std::uint32_t radius, std::uint32_t degree_cap) {
  dirty_ball ball;
  ball.in_ball.assign(view.node_count, 0);
  ball.depth.assign(view.node_count, dirty_ball::unreached);
  // A capped node joins the ball pinned to the boundary shell (depth ==
  // radius): membership visible to the coverage check, never expanded,
  // never re-decided.  Applied to seeds too -- a touched hub seeds no
  // fan-out, its neighbors enter (if at all) through other seeds.
  const auto admit = [&](graph::node_id v, std::uint32_t depth,
                         std::deque<graph::node_id>& queue) {
    if (degree_cap != 0 && view_degree(view, v) > degree_cap) {
      ball.depth[v] = radius;
      ++ball.capped;
      return;
    }
    ball.depth[v] = depth;
    if (depth < radius) queue.push_back(v);
  };
  std::deque<graph::node_id> queue;
  for (const graph::node_id v : seeds) {
    if (v >= view.node_count)
      throw std::invalid_argument("dirty_region: seed " + std::to_string(v) +
                                  " out of range");
    if (ball.in_ball[v]) continue;
    ball.in_ball[v] = 1;
    ++ball.size;
    admit(v, 0, queue);
  }
  while (!queue.empty()) {
    const graph::node_id v = queue.front();
    queue.pop_front();
    view.for_each_neighbor(v, [&](graph::node_id u) {
      if (ball.in_ball[u]) return;
      ball.in_ball[u] = 1;
      ++ball.size;
      admit(u, ball.depth[v] + 1, queue);
    });
  }
  return ball;
}

view_subgraph extract_subgraph(const adjacency_view& view,
                               std::span<const std::uint8_t> keep) {
  if (keep.size() != view.node_count)
    throw std::invalid_argument("extract_subgraph: |keep| != node count");
  view_subgraph sub;
  std::vector<graph::node_id> new_id(view.node_count, graph::invalid_node);
  for (graph::node_id v = 0; v < view.node_count; ++v) {
    if (!keep[v]) continue;
    new_id[v] = static_cast<graph::node_id>(sub.original_id.size());
    sub.original_id.push_back(v);
  }
  graph::graph_builder builder(sub.original_id.size());
  for (const graph::node_id v : sub.original_id) {
    view.for_each_neighbor(v, [&](graph::node_id u) {
      if (u > v || new_id[u] == graph::invalid_node) return;
      builder.add_edge(new_id[u], new_id[v]);
    });
  }
  sub.g = std::move(builder).build();
  return sub;
}

patch_result greedy_patch(const adjacency_view& view,
                          std::span<const graph::node_id> holes,
                          std::vector<std::uint8_t>& in_set) {
  if (in_set.size() != view.node_count)
    throw std::invalid_argument("greedy_patch: |in_set| != node count");
  patch_result result;

  // Candidates: the holes and their direct neighbors -- any node able to
  // cover at least one hole.  That set is also the touched region.
  std::vector<std::uint8_t> uncovered(view.node_count, 0);
  for (const graph::node_id v : holes) uncovered[v] = 1;
  std::vector<graph::node_id> candidates;
  std::vector<std::uint8_t> seen(view.node_count, 0);
  for (const graph::node_id v : holes) {
    if (!seen[v]) {
      seen[v] = 1;
      candidates.push_back(v);
    }
    view.for_each_neighbor(v, [&](graph::node_id u) {
      if (!seen[u]) {
        seen[u] = 1;
        candidates.push_back(u);
      }
    });
  }
  std::sort(candidates.begin(), candidates.end());
  result.touched_nodes = candidates.size();

  std::size_t remaining = 0;
  for (const graph::node_id v : holes) remaining += uncovered[v] != 0;
  while (remaining > 0) {
    // Most holes newly covered wins; candidates are scanned in ascending
    // id, so ties resolve to the smallest id -- fully deterministic.
    graph::node_id best = graph::invalid_node;
    std::size_t best_gain = 0;
    for (const graph::node_id c : candidates) {
      if (in_set[c]) continue;
      std::size_t gain = uncovered[c] != 0 ? 1 : 0;
      view.for_each_neighbor(c,
                             [&](graph::node_id u) { gain += uncovered[u] != 0; });
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    // Every hole covers itself, so a positive-gain candidate always
    // exists while holes remain.
    in_set[best] = 1;
    ++result.added;
    if (uncovered[best]) {
      uncovered[best] = 0;
      --remaining;
    }
    view.for_each_neighbor(best, [&](graph::node_id u) {
      if (uncovered[u]) {
        uncovered[u] = 0;
        --remaining;
      }
    });
  }
  return result;
}

namespace {

repair_result repair_radius(const graph::graph& g,
                            std::span<const std::uint8_t> in_set,
                            const std::vector<graph::node_id>& holes,
                            const repair_params& params) {
  if (!params.subsolver)
    throw std::invalid_argument("repair: radius mode needs a subsolver");

  repair_result result;
  result.in_set.assign(in_set.begin(), in_set.end());
  result.holes_before = holes.size();

  const dirty_ball region = dirty_region(as_view(g), holes, params.radius);
  result.touched_nodes = region.size;

  graph::induced_subgraph_result sub =
      graph::induced_subgraph(g, region.in_ball);
  const std::vector<std::uint8_t> sub_set =
      params.subsolver(sub.g, sub.original_id);
  if (sub_set.size() != sub.g.node_count())
    throw std::runtime_error(
        "repair: subsolver returned a wrong-sized solution");
  if (!verify::is_dominating_set(sub.g, sub_set))
    throw std::runtime_error(
        "repair: subsolver failed to dominate the dirty subgraph");

  // Union only: old coverage survives, and every hole is dominated inside
  // the subgraph, whose closed neighborhoods are subsets of the full
  // graph's -- so the union dominates g (see repair.hpp).
  for (graph::node_id s = 0; s < sub.g.node_count(); ++s) {
    if (sub_set[s] == 0) continue;
    std::uint8_t& bit = result.in_set[sub.original_id[s]];
    if (bit == 0) {
      bit = 1;
      ++result.added;
    }
  }
  return result;
}

repair_result repair_greedy(const graph::graph& g,
                            std::span<const std::uint8_t> in_set,
                            const std::vector<graph::node_id>& holes) {
  repair_result result;
  result.in_set.assign(in_set.begin(), in_set.end());
  result.holes_before = holes.size();

  const patch_result patch = greedy_patch(as_view(g), holes, result.in_set);
  result.added = patch.added;
  result.touched_nodes = patch.touched_nodes;
  return result;
}

}  // namespace

repair_result repair(const graph::graph& g,
                     std::span<const std::uint8_t> in_set,
                     const repair_params& params) {
  if (in_set.size() != g.node_count())
    throw std::invalid_argument("repair: |in_set| != node count");
  if (params.mode == repair_mode::off)
    throw std::invalid_argument("repair: mode is off");

  const std::vector<graph::node_id> holes =
      verify::undominated_nodes(g, in_set);
  if (holes.empty()) {
    repair_result result;
    result.in_set.assign(in_set.begin(), in_set.end());
    return result;
  }

  repair_result result = params.mode == repair_mode::radius
                             ? repair_radius(g, in_set, holes, params)
                             : repair_greedy(g, in_set, holes);
  result.holes_after = verify::undominated_nodes(g, result.in_set).size();
  if (result.holes_after != 0)
    throw std::runtime_error("repair: result still has coverage holes");
  return result;
}

}  // namespace domset::core
