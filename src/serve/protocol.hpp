/// \file protocol.hpp
/// \brief The line-delimited request/response grammar of `domset serve`.
//
// One request per line, one response line per request, over a local
// stream socket.  Requests:
//
//   mutate <batch>     apply a '+'-joined mutation batch (dyn grammar,
//                      e.g. "mutate add=0-1+del=2-3") to the pending set
//   commit             seal the pending batch as the next epoch and wait
//                      for the repair to publish
//   query member <v>   membership of node v in the current epoch's set
//   query set          the full dominating set of the current epoch
//   query stats        shape + size + digest of the current epoch
//   query digest       size + digest of the current epoch
//   ping               liveness + current epoch
//   shutdown           drain, final-commit, stop the server
//
// Responses are `ok key=value ...` on success or
// `err request line <n>: <message>` on failure, where <n> is the 1-based
// request counter of the connection -- the same line-numbered error
// convention as the mutation-log and edge-list parsers.  Values never
// contain spaces (the set is comma-joined), so responses tokenize on
// whitespace.
//
// Parsing and formatting are pure functions, round-trippable and
// testable without a socket (tests/serve_protocol_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dyn/mutation.hpp"
#include "graph/graph.hpp"

namespace domset::serve {

enum class request_kind : std::uint8_t {
  mutate,
  commit,
  query_member,
  query_set,
  query_stats,
  query_digest,
  ping,
  shutdown,
};

struct request {
  request_kind kind = request_kind::ping;
  std::vector<dyn::mutation> batch;  ///< mutate only
  graph::node_id node = 0;           ///< query member only

  friend bool operator==(const request&, const request&) = default;
};

/// Renders the canonical request line ("mutate add=0-1", "query member 7").
[[nodiscard]] std::string to_string(const request& req);

/// Parses one request line (throws std::invalid_argument naming the
/// problem; no line number -- see parse_request_line).
[[nodiscard]] request parse_request(std::string_view line);

/// Parses one request line, prefixing any error with
/// "request line <line_no>: " -- the per-connection counter the server
/// reports back in `err` responses.
[[nodiscard]] request parse_request_line(std::string_view line,
                                         std::size_t line_no);

/// One parsed response line.
struct response {
  bool ok = false;
  /// Ordered key=value fields of an `ok` response.
  std::vector<std::pair<std::string, std::string>> fields;
  std::string error;  ///< the message of an `err` response

  /// Value of `key`, or the empty string when absent.
  [[nodiscard]] std::string get(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
};

/// Renders `ok key=value ...` (fields may be empty: plain "ok").
[[nodiscard]] std::string format_ok(
    std::vector<std::pair<std::string, std::string>> fields);

/// Renders `err request line <line_no>: <message>`.
[[nodiscard]] std::string format_error(std::size_t line_no,
                                       std::string_view message);

/// Parses a response line (throws std::invalid_argument on lines that
/// are neither `ok ...` nor `err ...`).
[[nodiscard]] response parse_response(std::string_view line);

}  // namespace domset::serve
