#include "serve/epoch_store.hpp"

#include <thread>
#include <utility>

namespace domset::serve {

epoch_store::epoch_store(std::size_t slot_count)
    : slots_(new pinned_epoch::slot[slot_count < 2 ? 2 : slot_count]),
      slot_count_(slot_count < 2 ? 2 : slot_count) {}

std::size_t epoch_store::reclaim() {
  std::size_t freed = 0;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    pinned_epoch::slot& s = slots_[i];
    if (s.state != nullptr && s.retired.load() && s.pins.load() == 0) {
      s.state.reset();
      ++freed;
    }
  }
  reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

void epoch_store::publish(epoch_state state) {
  reclaim();
  // Find a free slot, round-robin from the cursor.  Every slot occupied
  // means every past epoch is still pinned -- backpressure the writer
  // (commits stall, queries keep flowing) until one drains.
  std::size_t idx = npos;
  for (;;) {
    for (std::size_t probe = 0; probe < slot_count_; ++probe) {
      const std::size_t i = (cursor_ + probe) % slot_count_;
      if (slots_[i].state == nullptr) {
        idx = i;
        break;
      }
    }
    if (idx != npos) break;
    std::this_thread::yield();
    reclaim();
  }
  cursor_ = (idx + 1) % slot_count_;

  pinned_epoch::slot& s = slots_[idx];
  s.state = std::make_shared<const epoch_state>(std::move(state));
  s.retired.store(false);

  const std::size_t prev = current_.exchange(idx);
  if (prev != npos) slots_[prev].retired.store(true);
  published_.fetch_add(1, std::memory_order_relaxed);
}

pinned_epoch epoch_store::pin() {
  for (;;) {
    const std::size_t idx = current_.load();
    if (idx == npos) return pinned_epoch{};
    pinned_epoch::slot& s = slots_[idx];
    s.pins.fetch_add(1);
    if (!s.retired.load()) return pinned_epoch(&s);
    // Retired (and possibly reclaimed) between our index load and the
    // pin: undo and retry against the fresh current index.
    s.pins.fetch_sub(1);
  }
}

std::size_t epoch_store::resident() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < slot_count_; ++i)
    count += slots_[i].state != nullptr;
  return count;
}

}  // namespace domset::serve
