#include "serve/protocol.hpp"

#include <charconv>
#include <stdexcept>

namespace domset::serve {

namespace {

std::string_view strip(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r' ||
          text.back() == '\n'))
    text.remove_suffix(1);
  return text;
}

/// Splits off the first whitespace-delimited word.
std::string_view take_word(std::string_view& rest) {
  rest = strip(rest);
  std::size_t end = 0;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  const std::string_view word = rest.substr(0, end);
  rest.remove_prefix(end);
  rest = strip(rest);
  return word;
}

graph::node_id parse_node(std::string_view text) {
  graph::node_id value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty())
    throw std::invalid_argument("'" + std::string(text) +
                                "' is not a node id");
  return value;
}

}  // namespace

std::string to_string(const request& req) {
  switch (req.kind) {
    case request_kind::mutate:
      return "mutate " + dyn::to_string(std::span<const dyn::mutation>(
                             req.batch.data(), req.batch.size()));
    case request_kind::commit: return "commit";
    case request_kind::query_member:
      return "query member " + std::to_string(req.node);
    case request_kind::query_set: return "query set";
    case request_kind::query_stats: return "query stats";
    case request_kind::query_digest: return "query digest";
    case request_kind::ping: return "ping";
    case request_kind::shutdown: return "shutdown";
  }
  return "ping";
}

request parse_request(std::string_view line) {
  std::string_view rest = strip(line);
  if (rest.empty()) throw std::invalid_argument("empty request");
  const std::string_view command = take_word(rest);

  request req;
  if (command == "mutate") {
    req.kind = request_kind::mutate;
    if (rest.empty())
      throw std::invalid_argument("mutate needs a mutation batch");
    req.batch = dyn::parse_mutation_list(rest);
    return req;
  }
  if (command == "query") {
    const std::string_view what = take_word(rest);
    if (what == "member") {
      req.kind = request_kind::query_member;
      if (rest.empty())
        throw std::invalid_argument("query member needs a node id");
      req.node = parse_node(rest);
      return req;
    }
    if (!rest.empty())
      throw std::invalid_argument("trailing text after 'query " +
                                  std::string(what) + "'");
    if (what == "set") {
      req.kind = request_kind::query_set;
      return req;
    }
    if (what == "stats") {
      req.kind = request_kind::query_stats;
      return req;
    }
    if (what == "digest") {
      req.kind = request_kind::query_digest;
      return req;
    }
    throw std::invalid_argument(
        "unknown query '" + std::string(what) +
        "': expected member, set, stats or digest");
  }
  if (!rest.empty())
    throw std::invalid_argument("trailing text after '" +
                                std::string(command) + "'");
  if (command == "commit") {
    req.kind = request_kind::commit;
    return req;
  }
  if (command == "ping") {
    req.kind = request_kind::ping;
    return req;
  }
  if (command == "shutdown") {
    req.kind = request_kind::shutdown;
    return req;
  }
  throw std::invalid_argument(
      "unknown command '" + std::string(command) +
      "': expected mutate, commit, query, ping or shutdown");
}

request parse_request_line(std::string_view line, std::size_t line_no) {
  try {
    return parse_request(line);
  } catch (const std::invalid_argument& err) {
    throw std::invalid_argument("request line " + std::to_string(line_no) +
                                ": " + err.what());
  }
}

std::string response::get(std::string_view key) const {
  for (const auto& field : fields)
    if (field.first == key) return field.second;
  return {};
}

bool response::has(std::string_view key) const {
  for (const auto& field : fields)
    if (field.first == key) return true;
  return false;
}

std::string format_ok(
    std::vector<std::pair<std::string, std::string>> fields) {
  std::string out = "ok";
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string format_error(std::size_t line_no, std::string_view message) {
  // The parse_request_line wrapper already prefixed parser errors; only
  // add the prefix when the message lacks it (server-side errors).
  const std::string prefix = "request line " + std::to_string(line_no) + ": ";
  std::string out = "err ";
  if (std::string_view(message).substr(0, prefix.size()) == prefix)
    out += message;
  else
    out += prefix + std::string(message);
  return out;
}

response parse_response(std::string_view line) {
  std::string_view rest = strip(line);
  const std::string_view head = take_word(rest);
  response resp;
  if (head == "err") {
    resp.ok = false;
    resp.error = std::string(rest);
    return resp;
  }
  if (head != "ok")
    throw std::invalid_argument("response must start with 'ok' or 'err', got '" +
                                std::string(head) + "'");
  resp.ok = true;
  while (!rest.empty()) {
    const std::string_view token = take_word(rest);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("response field '" + std::string(token) +
                                  "' lacks '='");
    resp.fields.emplace_back(std::string(token.substr(0, eq)),
                             std::string(token.substr(eq + 1)));
  }
  return resp;
}

}  // namespace domset::serve
