#include "serve/load.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/result_json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dyn/dynamic_graph.hpp"
#include "serve/protocol.hpp"
#include "sim/delivery.hpp"

namespace domset::serve {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// One blocking line-protocol connection.
class line_client {
 public:
  explicit line_client(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("load: bad socket path '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
      throw std::runtime_error(std::string("load: socket: ") +
                               std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("load: connect '" + path +
                               "': " + std::strerror(err));
    }
  }
  ~line_client() {
    if (fd_ >= 0) ::close(fd_);
  }
  line_client(const line_client&) = delete;
  line_client& operator=(const line_client&) = delete;

  /// Sends one request line, reads one response line, parses it.
  response exchange(const std::string& request_line) {
    std::string out = request_line;
    out += '\n';
    std::string_view rest = out;
    while (!rest.empty()) {
      const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
      if (n <= 0)
        throw std::runtime_error("load: send failed (server gone?)");
      rest.remove_prefix(static_cast<std::size_t>(n));
    }
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        const std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return parse_response(line);
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0)
        throw std::runtime_error("load: connection closed mid-response");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct window {
  clock_type::time_point begin;
  clock_type::time_point end;
};

struct query_sample {
  clock_type::time_point begin;
  clock_type::time_point end;
  double ms = 0.0;
};

struct epoch_digest {
  std::uint64_t epoch = 0;
  std::string digest;
};

std::uint64_t parse_u64(const std::string& text) {
  return text.empty() ? 0 : std::stoull(text);
}

void expect_ok(const response& resp, const char* what) {
  if (!resp.ok)
    throw std::runtime_error(std::string("load: ") + what +
                             " rejected: " + resp.error);
}

latency_summary summarize(std::vector<double> times) {
  latency_summary out;
  out.count = times.size();
  if (!times.empty()) {
    out.p50_ms = common::median(times);
    out.p99_ms = common::percentile(times, 99.0);
  }
  return out;
}

}  // namespace

load_report run_load(const graph::graph& mirror_base,
                     const load_params& params) {
  if (params.batch == 0)
    throw std::invalid_argument("load: batch must be > 0");

  load_report report;
  report.clients = params.clients;

  // -- mutator state, filled by its thread --------------------------------
  std::vector<window> commit_windows;
  std::vector<double> commit_times;
  std::vector<epoch_digest> observed;  // all threads' epoch->digest pairs
  std::vector<std::string> admitted;
  std::uint64_t last_epoch = 0;
  std::string last_digest;
  std::size_t last_size = 0;
  std::exception_ptr mutator_error;

  std::thread mutator([&] {
    try {
      line_client client(params.socket_path);
      dyn::dynamic_graph mirror(mirror_base);
      dyn::workload gen(params.gen);
      const auto commit_now = [&] {
        const clock_type::time_point t0 = clock_type::now();
        const response resp = client.exchange("commit");
        const clock_type::time_point t1 = clock_type::now();
        expect_ok(resp, "commit");
        commit_windows.push_back({t0, t1});
        commit_times.push_back(ms_between(t0, t1));
        last_epoch = parse_u64(resp.get("epoch"));
        last_digest = resp.get("digest");
        last_size = static_cast<std::size_t>(parse_u64(resp.get("size")));
        observed.push_back({last_epoch, last_digest});
        (void)mirror.commit();
      };
      for (std::size_t i = 0; i < params.mutations; ++i) {
        const dyn::mutation m = gen.next(mirror, mirror.rebase_point());
        mirror.apply(m);
        const std::string atom = dyn::to_string(m);
        expect_ok(client.exchange("mutate " + atom), "mutate");
        admitted.push_back(atom);
        if ((i + 1) % params.batch == 0) commit_now();
      }
      if (params.mutations % params.batch != 0) commit_now();
    } catch (...) {
      mutator_error = std::current_exception();
    }
  });

  // -- query clients ------------------------------------------------------
  struct client_result {
    std::vector<query_sample> samples;
    std::vector<epoch_digest> observed;
    std::size_t member_ops = 0, stats_ops = 0, digest_ops = 0, set_ops = 0;
    std::exception_ptr error;
  };
  std::vector<client_result> results(params.clients);
  std::vector<std::thread> clients;
  clients.reserve(params.clients);
  const std::size_t node_span = std::max<std::size_t>(1, mirror_base.node_count());
  for (std::size_t t = 0; t < params.clients; ++t) {
    clients.emplace_back([&, t] {
      client_result& mine = results[t];
      try {
        line_client client(params.socket_path);
        common::rng rng(common::derive_seed(params.query_seed, t));
        for (std::size_t q = 0; q < params.queries_per_client; ++q) {
          // Mix: mostly membership (the hot production query), stats and
          // digest for the epoch-consistency evidence, rare full-set.
          const std::uint64_t draw = rng.next_below(100);
          std::string line;
          enum { member, stats, digest, set } op;
          if (draw < 60) {
            op = member;
            line = "query member " + std::to_string(rng.next_below(node_span));
          } else if (draw < 80) {
            op = stats;
            line = "query stats";
          } else if (draw < 95) {
            op = digest;
            line = "query digest";
          } else {
            op = set;
            line = "query set";
          }
          query_sample sample;
          sample.begin = clock_type::now();
          const response resp = client.exchange(line);
          sample.end = clock_type::now();
          sample.ms = ms_between(sample.begin, sample.end);
          expect_ok(resp, "query");
          mine.samples.push_back(sample);
          switch (op) {
            case member: ++mine.member_ops; break;
            case stats: ++mine.stats_ops; break;
            case digest: ++mine.digest_ops; break;
            case set: ++mine.set_ops; break;
          }
          if (resp.has("digest"))
            mine.observed.push_back(
                {parse_u64(resp.get("epoch")), resp.get("digest")});
        }
      } catch (...) {
        mine.error = std::current_exception();
      }
    });
  }

  mutator.join();
  for (std::thread& t : clients) t.join();
  if (mutator_error) std::rethrow_exception(mutator_error);
  for (const client_result& r : results)
    if (r.error) std::rethrow_exception(r.error);

  // -- authoritative final state (all traffic has drained) ---------------
  {
    line_client client(params.socket_path);
    const response resp = client.exchange("query digest");
    expect_ok(resp, "final query digest");
    report.final_epoch = parse_u64(resp.get("epoch"));
    report.final_size = static_cast<std::size_t>(parse_u64(resp.get("size")));
    report.final_digest = resp.get("digest");
    observed.push_back({report.final_epoch, report.final_digest});
    if (params.shutdown_server)
      expect_ok(client.exchange("shutdown"), "shutdown");
  }

  // -- merge and classify -------------------------------------------------
  report.mutations_sent = admitted.size();
  report.admitted = std::move(admitted);
  report.commits = commit_windows.size();
  report.commit = summarize(commit_times);

  std::vector<double> all_times, repair_times;
  for (client_result& r : results) {
    report.member_ops += r.member_ops;
    report.stats_ops += r.stats_ops;
    report.digest_ops += r.digest_ops;
    report.set_ops += r.set_ops;
    for (const query_sample& s : r.samples) {
      all_times.push_back(s.ms);
      // "During repair" = the round-trip overlapped some commit window
      // (the interval the admission mutex is held for commit -> repair
      // -> publish).
      const bool overlaps = std::any_of(
          commit_windows.begin(), commit_windows.end(), [&](const window& w) {
            return s.begin < w.end && w.begin < s.end;
          });
      if (overlaps) repair_times.push_back(s.ms);
    }
    for (epoch_digest& e : r.observed) observed.push_back(std::move(e));
  }
  report.query = summarize(std::move(all_times));
  report.query_during_repair = summarize(std::move(repair_times));

  std::sort(observed.begin(), observed.end(),
            [](const epoch_digest& a, const epoch_digest& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.digest < b.digest;
            });
  for (std::size_t i = 1; i < observed.size(); ++i)
    if (observed[i].epoch == observed[i - 1].epoch &&
        observed[i].digest != observed[i - 1].digest)
      ++report.epoch_digest_conflicts;

  return report;
}

std::string to_json(const load_document& doc) {
  using api::json_escape;
  using api::json_number;
  const load_report& r = doc.report;
  const auto latency_block = [](const latency_summary& l) {
    std::string out = "{ \"count\": " + std::to_string(l.count);
    out += ", \"p50_ms\": " + json_number(l.p50_ms);
    out += ", \"p99_ms\": " + json_number(l.p99_ms);
    out += " }";
    return out;
  };
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"domset-serve/1\",\n";
  out += "  \"alg\": \"" + json_escape(doc.alg) + "\",\n";
  out += "  \"graph\": {\n";
  out += "    \"family\": \"" + json_escape(doc.graph_family) + "\",\n";
  out += "    \"nodes\": " + std::to_string(doc.nodes) + ",\n";
  out += "    \"edges\": " + std::to_string(doc.edges) + ",\n";
  out += "    \"max_degree\": " + std::to_string(doc.max_degree) + "\n";
  out += "  },\n";
  out += "  \"exec\": {\n";
  out += "    \"seed\": " + std::to_string(doc.exec.seed) + ",\n";
  out += "    \"threads\": " + std::to_string(doc.exec.threads) + ",\n";
  out += "    \"delivery\": \"" +
         json_escape(sim::to_string(doc.exec.delivery)) + "\"\n";
  out += "  },\n";
  out += "  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : doc.params.entries()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"serve\": {\n";
  out += "    \"socket\": \"" + json_escape(doc.socket) + "\",\n";
  out += "    \"bias\": \"" + json_escape(doc.bias) + "\",\n";
  out += "    \"clients\": " + std::to_string(doc.clients) + ",\n";
  out += "    \"queries_per_client\": " +
         std::to_string(doc.queries_per_client) + ",\n";
  out += "    \"mutations\": " + std::to_string(doc.mutations) + ",\n";
  out += "    \"batch\": " + std::to_string(doc.batch) + "\n";
  out += "  },\n";
  out += "  \"ops\": {\n";
  out += "    \"mutate\": " + std::to_string(r.mutations_sent) + ",\n";
  out += "    \"commit\": " + std::to_string(r.commits) + ",\n";
  out += "    \"member\": " + std::to_string(r.member_ops) + ",\n";
  out += "    \"stats\": " + std::to_string(r.stats_ops) + ",\n";
  out += "    \"digest\": " + std::to_string(r.digest_ops) + ",\n";
  out += "    \"set\": " + std::to_string(r.set_ops) + "\n";
  out += "  },\n";
  out += "  \"latency\": {\n";
  out += "    \"query\": " + latency_block(r.query) + ",\n";
  out += "    \"query_during_repair\": " +
         latency_block(r.query_during_repair) + ",\n";
  out += "    \"commit\": " + latency_block(r.commit) + "\n";
  out += "  },\n";
  out += "  \"final\": {\n";
  out += "    \"epoch\": " + std::to_string(r.final_epoch) + ",\n";
  out += "    \"size\": " + std::to_string(r.final_size) + ",\n";
  out += "    \"digest\": \"" + json_escape(r.final_digest) + "\"\n";
  out += "  },\n";
  out += "  \"epoch_digest_conflicts\": " +
         std::to_string(r.epoch_digest_conflicts) + "\n";
  out += "}\n";
  return out;
}

}  // namespace domset::serve
