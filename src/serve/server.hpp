/// \file server.hpp
/// \brief The `domset serve` resident server: a dyn::incremental_engine
/// plus lock-free query answering over reader epoch pinning.
//
// Threading model (the reader/writer contract, see docs/serve.md):
//
//   * Queries never take a lock.  Every query pins the current epoch in
//     the serve::epoch_store (an immutable {snapshot, solution, digest}
//     published per commit) and answers from it -- so query latency is
//     independent of whatever the writer is doing, including a
//     full-re-solve fallback.
//
//   * Mutations are *admitted* under the admission mutex into the
//     engine's pending batch (snapshot isolation hides them from the
//     committed surface), and a single writer thread seals batches:
//     commit -> incremental repair -> snapshot -> verify dominating ->
//     publish.  The whole commit window holds the admission mutex
//     (mutators queue behind it; that is the admission-batching policy),
//     because dyn::dynamic_graph::snapshot() rebases the overlay --
//     a concurrent apply() would race the rebase.
//
//   * Commit triggers: an explicit `commit` request (the deterministic
//     path -- epoch boundaries land exactly where the client puts them,
//     which is what makes the served digest reproducible by an offline
//     `domset replay` of the same stream), a pending count reaching
//     `batch_max` (0 = off), or the `interval_ms` timer (0 = off).
//
//   * Every published epoch is verified dominating against its own
//     snapshot before readers can see it -- validity is a contract, as
//     in `domset replay`.
//
// The wire protocol is serve/protocol.hpp over an AF_UNIX stream
// socket, one thread per connection.  `handle_line()` is public so
// tests (and in-process embedding) can drive the full request surface
// without a socket.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dyn/incremental.hpp"
#include "graph/graph.hpp"
#include "serve/epoch_store.hpp"

namespace domset::serve {

struct server_params {
  /// AF_UNIX socket path (`run()` binds it; unused by in-process use).
  std::string socket_path;
  dyn::incremental_params inc;
  /// Auto-commit once this many mutations are pending (0 = only explicit
  /// `commit` requests seal epochs -- the reproducible configuration).
  std::size_t batch_max = 0;
  /// Auto-commit a non-empty pending batch after this long (0 = off).
  double interval_ms = 0.0;
  /// Epoch-store wheel size (resident epochs: current + pinned-retired).
  std::size_t epoch_slots = 64;
};

struct server_stats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t mutations_admitted = 0;
  std::uint64_t commits = 0;
  std::uint64_t epochs_published = 0;
  std::uint64_t epochs_reclaimed = 0;
};

class server {
 public:
  /// Solves `base` from scratch (epoch 0), publishes it, and starts the
  /// writer thread.  Throws what dyn::incremental_engine throws.
  server(graph::graph base, server_params params);
  ~server();
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Binds the socket, accepts connections, and blocks until a
  /// `shutdown` request (or `request_stop()`).  Performs the final
  /// drain-commit before returning.  Throws std::runtime_error on
  /// socket errors.
  void run();

  /// Stops `run()` from another thread: wakes the writer for the final
  /// drain-commit and unblocks every connection.
  void request_stop();

  /// Processes one request line and returns the response line (no
  /// trailing newline).  `line_no` is the connection's 1-based request
  /// counter, echoed in errors.  Sets `*want_shutdown` (if non-null)
  /// when the request asks for server shutdown -- the caller replies
  /// first, then calls request_stop().  Thread-safe.
  [[nodiscard]] std::string handle_line(std::string_view line,
                                        std::size_t line_no,
                                        bool* want_shutdown = nullptr);

  /// Pins the current epoch (lock-free; the in-process query surface).
  [[nodiscard]] pinned_epoch pin() { return store_.pin(); }

  [[nodiscard]] server_stats stats() const;

  /// Direct store access for tests (pin/commit stress, reclamation).
  [[nodiscard]] epoch_store& store() { return store_; }

 private:
  void writer_loop();
  /// Seals the pending batch and publishes the new epoch.  Requires the
  /// admission mutex held.
  void commit_locked();
  /// Snapshot + verify + publish the engine's current state.  Requires
  /// the admission mutex held (snapshot() rebases the overlay).
  void publish_locked();
  void connection_loop(int fd);

  server_params params_;
  dyn::incremental_engine engine_;
  epoch_store store_;

  std::mutex mu_;  ///< admission: pending surface + the commit window
  std::condition_variable writer_cv_;
  std::condition_variable commit_cv_;
  std::size_t pending_ = 0;
  bool commit_requested_ = false;
  bool stop_ = false;
  std::thread writer_;

  int listen_fd_ = -1;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;  ///< -1 once a connection has closed
  std::vector<std::thread> conn_threads_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> mutations_admitted_{0};
  std::atomic<std::uint64_t> commits_{0};
};

}  // namespace domset::serve
