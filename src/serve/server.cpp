#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/protocol.hpp"
#include "verify/verify.hpp"

namespace domset::serve {

namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

void write_all(int fd, std::string_view text) {
  // MSG_NOSIGNAL: a client that hung up mid-reply must not SIGPIPE the
  // whole server; the connection loop exits on the failed send.
  while (!text.empty()) {
    const ssize_t n = ::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    text.remove_prefix(static_cast<std::size_t>(n));
  }
}

}  // namespace

server::server(graph::graph base, server_params params)
    : params_(std::move(params)),
      engine_(std::move(base), params_.inc),
      store_(params_.epoch_slots) {
  publish_locked();  // epoch 0: no contention yet, the mutex is free
  writer_ = std::thread(&server::writer_loop, this);
}

server::~server() {
  request_stop();
  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();
  if (writer_.joinable()) writer_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void server::publish_locked() {
  epoch_state state;
  state.epoch = engine_.epoch();
  state.snapshot = engine_.snapshot();
  state.solution = engine_.solution();
  state.size = engine_.size();
  state.digest = engine_.digest();
  // The contract behind "every query is answered from a verified epoch":
  // nothing unverified is ever published.
  if (!verify::is_dominating_set(state.snapshot, state.solution))
    throw std::runtime_error(
        "serve: epoch " + std::to_string(state.epoch) +
        " failed dominating-set verification before publish");
  store_.publish(std::move(state));
}

void server::commit_locked() {
  engine_.commit_and_repair();
  publish_locked();
  pending_ = 0;
  commits_.fetch_add(1, std::memory_order_relaxed);
}

void server::writer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto ready = [this] {
      return stop_ || commit_requested_ ||
             (params_.batch_max > 0 && pending_ >= params_.batch_max);
    };
    if (params_.interval_ms > 0.0) {
      writer_cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(params_.interval_ms),
          ready);
    } else {
      writer_cv_.wait(lock, ready);
    }
    // A timer wake with pending mutations also commits -- that is the
    // interval policy; an empty pending batch never seals an epoch.
    if (pending_ > 0) {
      try {
        commit_locked();
      } catch (const std::exception& err) {
        // A failed commit/verify is an engine-integrity bug; die loudly
        // rather than serve unverified state.
        std::fprintf(stderr, "domset serve: fatal: %s\n", err.what());
        std::abort();
      }
    }
    commit_requested_ = false;
    commit_cv_.notify_all();
    if (stop_) return;
  }
}

std::string server::handle_line(std::string_view line, std::size_t line_no,
                                bool* want_shutdown) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  request req;
  try {
    req = parse_request_line(line, line_no);
  } catch (const std::invalid_argument& err) {
    return format_error(line_no, err.what());
  }

  switch (req.kind) {
    case request_kind::mutate: {
      std::unique_lock<std::mutex> lock(mu_);
      std::size_t applied = 0;
      std::string failure;
      try {
        for (const dyn::mutation& m : req.batch) {
          engine_.network().apply(m);
          ++applied;
        }
      } catch (const std::invalid_argument& err) {
        failure = err.what();
      }
      pending_ += applied;
      mutations_admitted_.fetch_add(applied, std::memory_order_relaxed);
      if (params_.batch_max > 0 && pending_ >= params_.batch_max)
        writer_cv_.notify_one();
      if (!failure.empty()) {
        // Honest partial admission: atoms before the bad one stay
        // pending (the batch is a stream, not a transaction).
        return format_error(line_no,
                            "applied " + std::to_string(applied) + " of " +
                                std::to_string(req.batch.size()) + ": " +
                                failure);
      }
      return format_ok({{"admitted", std::to_string(applied)},
                        {"pending", std::to_string(pending_)},
                        {"epoch", std::to_string(engine_.epoch())}});
    }
    case request_kind::commit: {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ > 0) {
        const std::uint64_t target = engine_.epoch() + 1;
        commit_requested_ = true;
        writer_cv_.notify_one();
        commit_cv_.wait(lock, [this, target] {
          return engine_.epoch() >= target || stop_;
        });
      }
      return format_ok({{"epoch", std::to_string(engine_.epoch())},
                        {"size", std::to_string(engine_.size())},
                        {"digest", hex64(engine_.digest())}});
    }
    case request_kind::query_member: {
      const pinned_epoch epoch = store_.pin();
      if (req.node >= epoch->solution.size())
        return format_error(
            line_no, "node " + std::to_string(req.node) +
                         " out of range (epoch " +
                         std::to_string(epoch->epoch) + " has " +
                         std::to_string(epoch->solution.size()) + " nodes)");
      return format_ok(
          {{"epoch", std::to_string(epoch->epoch)},
           {"node", std::to_string(req.node)},
           {"member", epoch->solution[req.node] != 0 ? "1" : "0"}});
    }
    case request_kind::query_set: {
      const pinned_epoch epoch = store_.pin();
      std::string members;
      for (std::size_t v = 0; v < epoch->solution.size(); ++v) {
        if (epoch->solution[v] == 0) continue;
        if (!members.empty()) members += ',';
        members += std::to_string(v);
      }
      return format_ok({{"epoch", std::to_string(epoch->epoch)},
                        {"size", std::to_string(epoch->size)},
                        {"members", std::move(members)}});
    }
    case request_kind::query_stats: {
      const pinned_epoch epoch = store_.pin();
      return format_ok(
          {{"epoch", std::to_string(epoch->epoch)},
           {"nodes", std::to_string(epoch->snapshot.node_count())},
           {"edges", std::to_string(epoch->snapshot.edge_count())},
           {"size", std::to_string(epoch->size)},
           {"digest", hex64(epoch->digest)}});
    }
    case request_kind::query_digest: {
      const pinned_epoch epoch = store_.pin();
      return format_ok({{"epoch", std::to_string(epoch->epoch)},
                        {"size", std::to_string(epoch->size)},
                        {"digest", hex64(epoch->digest)}});
    }
    case request_kind::ping: {
      const pinned_epoch epoch = store_.pin();
      return format_ok({{"epoch", std::to_string(epoch->epoch)}});
    }
    case request_kind::shutdown: {
      if (want_shutdown != nullptr) *want_shutdown = true;
      return format_ok({{"shutdown", "1"}});
    }
  }
  return format_error(line_no, "unhandled request");
}

void server::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  writer_cv_.notify_all();
  commit_cv_.notify_all();
  const std::lock_guard<std::mutex> lock(conn_mu_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (const int fd : conn_fds_)
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  std::size_t line_no = 0;
  bool want_shutdown = false;
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      std::string response = handle_line(line, ++line_no, &want_shutdown);
      response += '\n';
      write_all(fd, response);
      if (want_shutdown) break;
    }
    if (want_shutdown) break;
  }
  {
    // Mark closed before close(): request_stop must never shutdown() a
    // recycled descriptor.
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (int& entry : conn_fds_)
      if (entry == fd) entry = -1;
  }
  ::close(fd);
  if (want_shutdown) request_stop();
}

void server::run() {
  if (params_.socket_path.empty())
    throw std::runtime_error("serve: socket path is empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (params_.socket_path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("serve: socket path too long: " +
                             params_.socket_path);
  std::memcpy(addr.sun_path, params_.socket_path.c_str(),
              params_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  ::unlink(params_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: bind '" + params_.socket_path +
                             "': " + std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(err));
  }
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    listen_fd_ = fd;
  }
  {
    const pinned_epoch epoch = store_.pin();
    std::printf("serving socket=%s epoch=%" PRIu64 " nodes=%zu size=%zu "
                "digest=%s\n",
                params_.socket_path.c_str(), epoch->epoch,
                epoch->snapshot.node_count(), epoch->size,
                hex64(epoch->digest).c_str());
    std::fflush(stdout);
  }

  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back(&server::connection_loop, this, conn);
  }

  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.clear();
    conn_fds_.clear();
  }
  // The writer performs the final drain-commit on its way out (stop_ is
  // set and its loop commits any pending batch before returning).
  if (writer_.joinable()) writer_.join();
  ::unlink(params_.socket_path.c_str());

  const pinned_epoch epoch = store_.pin();
  std::printf("final epoch=%" PRIu64 " size=%zu digest=%s\n", epoch->epoch,
              epoch->size, hex64(epoch->digest).c_str());
  std::fflush(stdout);
}

server_stats server::stats() const {
  server_stats out;
  out.connections = connections_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.mutations_admitted =
      mutations_admitted_.load(std::memory_order_relaxed);
  out.commits = commits_.load(std::memory_order_relaxed);
  out.epochs_published = store_.published();
  out.epochs_reclaimed = store_.reclaimed();
  return out;
}

}  // namespace domset::serve
