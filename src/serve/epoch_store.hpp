/// \file epoch_store.hpp
/// \brief Lock-free reader epoch pinning over immutable epoch states.
//
// The serving layer's reader/writer contract: one writer thread publishes
// a new immutable `epoch_state` per commit, many reader threads answer
// queries from *some* recent epoch without ever taking a lock.  The store
// is a fixed wheel of slots; each slot carries a state pointer, an atomic
// pin count and an atomic retired flag.
//
// Reader protocol (`pin()`):
//   1. load the current slot index,
//   2. increment the slot's pin count,
//   3. re-check the retired flag -- if the slot was retired in the
//      meantime, undo the pin and retry with the fresh index; otherwise
//      the pin now protects the slot's state until released.
//
// Writer protocol (`publish()`):
//   1. place the new state in a free slot and clear its retired flag,
//   2. switch the current index to it,
//   3. set the *previous* slot's retired flag,
//   4. reclaim: any retired slot whose pin count has drained to zero
//      frees its state (`reclaim()`, also run at the top of the next
//      publish).
//
// Why a pinned reader can never observe a freed state (all operations
// seq_cst): the reader's pin increment precedes its retired load; the
// writer's retired store precedes its pin load.  If the writer's pin
// load returned 0 (reclaim allowed), the reader's increment follows it
// in the total order, so the reader's retired load follows the writer's
// retired store and observes true -- the reader backs off without
// touching the state.  Conversely a reader that saw retired == false is
// ordered before the writer's pin load, which then returns >= 1 and
// blocks reclamation.  A slot reclaimed and re-used between the
// reader's index load and its pin lands the reader on a *newer* epoch,
// which is consistent (never torn) and acceptable for "answer from a
// recent epoch" semantics.
//
// Epoch states hold a materialized `graph::graph` snapshot; snapshots
// share storage with the dynamic graph's rebase point (see
// dyn::dynamic_graph::snapshot), so a pinned epoch stays valid while
// the overlay rebases arbitrarily far ahead.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "graph/graph.hpp"

namespace domset::serve {

/// One published epoch: immutable after publish, shared by every reader
/// pinned to it.
struct epoch_state {
  std::uint64_t epoch = 0;
  /// Materialized committed snapshot (shares storage with the overlay's
  /// rebase point -- cheap to hold, survives later rebases).
  graph::graph snapshot;
  /// Dominating-set indicator over `snapshot` (verified by the writer
  /// before publish; see serve::server).
  std::vector<std::uint8_t> solution;
  std::size_t size = 0;      ///< popcount of `solution`
  std::uint64_t digest = 0;  ///< FNV-1a over the solution bits
};

class epoch_store;

/// RAII pin on one epoch.  Releasing (destruction / move-from) drops the
/// slot's pin count; the store may reclaim the slot once it is retired
/// *and* drained.  Must not outlive the store.
class pinned_epoch {
 public:
  pinned_epoch() = default;
  pinned_epoch(const pinned_epoch&) = delete;
  pinned_epoch& operator=(const pinned_epoch&) = delete;
  pinned_epoch(pinned_epoch&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  pinned_epoch& operator=(pinned_epoch&& other) noexcept {
    if (this != &other) {
      release();
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~pinned_epoch() { release(); }

  /// False only before the store's first publish.
  [[nodiscard]] explicit operator bool() const noexcept {
    return slot_ != nullptr;
  }
  [[nodiscard]] const epoch_state& operator*() const noexcept;
  [[nodiscard]] const epoch_state* operator->() const noexcept;

  void release() noexcept;

 private:
  friend class epoch_store;
  struct slot;
  explicit pinned_epoch(slot* s) noexcept : slot_(s) {}
  slot* slot_ = nullptr;
};

/// The slot wheel.  `publish`/`reclaim` are writer-thread-only;
/// `pin` is safe from any thread and never blocks.
class epoch_store {
 public:
  /// `slot_count` bounds how many epochs can be resident at once
  /// (current + retired-but-pinned).  Publishing with every slot still
  /// pinned spin-waits for a drain -- size the wheel for the longest
  /// reader you expect (queries here are single-request, so the default
  /// is generous).
  explicit epoch_store(std::size_t slot_count = 64);

  /// Publishes `state` as the new current epoch and reclaims drained
  /// retired slots.  Writer-thread only.
  void publish(epoch_state state);

  /// Pins the current epoch (lock-free, any thread).  Empty before the
  /// first publish.
  [[nodiscard]] pinned_epoch pin();

  /// Frees every retired slot whose pin count has drained.  Returns the
  /// number of slots freed.  Writer-thread only (publish calls it; tests
  /// call it directly to observe reclamation timing).
  std::size_t reclaim();

  /// Slots currently holding a state (the current epoch plus any
  /// retired-but-undrained ones).  Inherently racy against concurrent
  /// publishes -- call from the writer thread or quiesced.
  [[nodiscard]] std::size_t resident() const;

  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  std::unique_ptr<pinned_epoch::slot[]> slots_;
  std::size_t slot_count_;
  std::atomic<std::size_t> current_{npos};
  std::size_t cursor_ = 0;  ///< writer's free-slot scan position
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
};

/// Definition here so epoch_store can hold an array of slots by value.
struct pinned_epoch::slot {
  std::shared_ptr<const epoch_state> state;
  std::atomic<std::uint64_t> pins{0};
  std::atomic<bool> retired{true};
};

inline const epoch_state& pinned_epoch::operator*() const noexcept {
  return *slot_->state;
}
inline const epoch_state* pinned_epoch::operator->() const noexcept {
  return slot_->state.get();
}

inline void pinned_epoch::release() noexcept {
  if (slot_ != nullptr) {
    slot_->pins.fetch_sub(1);
    slot_ = nullptr;
  }
}

}  // namespace domset::serve
