/// \file load.hpp
/// \brief The `domset load` closed-loop load generator and its
/// `domset-serve/1` JSON document.
//
// Drives a running `domset serve` instance with a seeded client mix:
//
//   * one *mutator* client mirrors the server's graph in a local
//     dyn::dynamic_graph, draws mutations from the seeded dyn::workload
//     generator (each validated against the mirror before sending),
//     streams them as `mutate` requests, and seals an epoch with an
//     explicit `commit` every `batch` mutations -- so epoch boundaries
//     land exactly where an offline `domset replay --mutations <log>
//     --batch <batch>` of the admitted stream puts them, which is what
//     makes the served final digest reproducible offline;
//
//   * `clients` concurrent *query* clients each run a seeded stream of
//     member/stats/digest/set queries, timing every round-trip.
//
// Afterwards every query is classified by whether its round-trip window
// overlapped a commit window (the interval the admission mutex is held
// for commit -> repair -> publish) -- those are the latency-under-repair
// numbers.  Consistency evidence: every response names its epoch, and
// any two responses naming the same epoch must agree on the digest
// (`epoch_digest_conflicts` stays 0; the server additionally verifies
// each epoch dominating before publish).
//
// `run_load` is a library function so the deterministic smoke test can
// drive an in-process server over a temp socket; `domset load` wraps it
// and emits the domset-serve/1 record (validated by
// scripts/validate_result_json.py, joined into --expect-identical via
// final.digest).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "dyn/workload.hpp"
#include "exec/context.hpp"
#include "graph/graph.hpp"

namespace domset::serve {

struct load_params {
  std::string socket_path;
  /// Concurrent query clients (the mutator is one more connection).
  std::size_t clients = 8;
  std::size_t queries_per_client = 200;
  /// Total mutations the mutator streams.
  std::size_t mutations = 256;
  /// Explicit `commit` every this many mutations (> 0).
  std::size_t batch = 32;
  dyn::workload_params gen;
  /// Base seed for the per-client query streams (client t draws from
  /// derive_seed(query_seed, t)).
  std::uint64_t query_seed = 1;
  /// Send `shutdown` after the run (the CI teardown path).
  bool shutdown_server = false;
};

struct latency_summary {
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct load_report {
  std::size_t clients = 0;
  std::size_t mutations_sent = 0;
  std::size_t commits = 0;
  /// Query op counts across all clients.
  std::size_t member_ops = 0;
  std::size_t stats_ops = 0;
  std::size_t digest_ops = 0;
  std::size_t set_ops = 0;
  latency_summary query;                ///< all query round-trips
  latency_summary query_during_repair;  ///< overlapping a commit window
  latency_summary commit;               ///< commit round-trips
  std::uint64_t final_epoch = 0;
  std::size_t final_size = 0;
  std::string final_digest;  ///< 16 hex chars
  /// Epochs observed with two different digests (must be 0: an epoch is
  /// immutable once published).
  std::size_t epoch_digest_conflicts = 0;
  /// The admitted mutation stream, in order (for --log-out / offline
  /// replay agreement).
  std::vector<std::string> admitted;
};

/// Runs the load against `socket_path`.  `mirror_base` must be the same
/// graph the server was started on (same family/n/seed flags) -- the
/// mutator's mirror validates draws against it.  Throws
/// std::runtime_error on connection failure or a rejected request.
[[nodiscard]] load_report run_load(const graph::graph& mirror_base,
                                   const load_params& params);

/// Everything the domset-serve/1 record carries: the config echo plus
/// the measured report.
struct load_document {
  std::string alg;
  api::param_map params;
  exec::context exec;
  std::string graph_family;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint32_t max_degree = 0;
  std::string socket;
  std::string bias;
  std::size_t clients = 0;
  std::size_t queries_per_client = 0;
  std::size_t mutations = 0;
  std::size_t batch = 0;
  load_report report;
};

/// Serializes one pretty-printed `domset-serve/1` object.
[[nodiscard]] std::string to_json(const load_document& doc);

}  // namespace domset::serve
