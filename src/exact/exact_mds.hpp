// Exact minimum dominating set solvers.
//
// MDS is NP-hard [Garey-Johnson, Karp], but the experiment tables report
// approximation ratios against the true optimum, so we need exact optima on
// test-scale graphs.  Two solvers:
//   * branch-and-bound (default): practical to n around 60-120 depending on
//     density, with greedy upper bounds and covering lower bounds for
//     pruning;
//   * brute force: exhaustive subset scan for n <= 24, used to cross-check
//     the branch-and-bound in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace domset::exact {

struct exact_result {
  /// Optimal dominating set as an indicator vector.
  std::vector<std::uint8_t> in_set;
  /// |DS_OPT|.
  std::size_t size = 0;
  /// Search nodes explored (diagnostic).
  std::uint64_t nodes_explored = 0;
};

struct exact_options {
  /// Abort after this many search nodes (returns nullopt).  The default is
  /// generous for the graph sizes the tests and benches use.
  std::uint64_t node_budget = 50'000'000;
};

/// Exact MDS via branch and bound.  Returns nullopt only on budget
/// exhaustion.
[[nodiscard]] std::optional<exact_result> solve_mds(
    const graph::graph& g, const exact_options& options = {});

/// Exhaustive search over all 2^n subsets.  Precondition: n <= 24
/// (throws std::invalid_argument beyond that).
[[nodiscard]] exact_result brute_force_mds(const graph::graph& g);

}  // namespace domset::exact
